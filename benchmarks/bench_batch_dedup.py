"""Cross-circuit dedup savings: batch vs per-circuit compilation.

The pulse library is a cross-program artifact, and the batch engine's
claim is that sharing it across a suite pays strictly fewer GRAPE
duration searches than compiling each program against its own fresh
library.  This benchmark measures both sides on the Table 1 suite:

* **per-circuit**: every program gets a fresh ``PulseLibrary``; the
  searches it pays are exactly its own distinct unitaries;
* **batch**: one ``BatchCompiler`` run over the same suite, where a
  unitary shared by k programs costs one search.

The gap is reported as ``dedup_savings`` and asserted strictly positive
— if the suite stopped sharing any unitary across programs, this bench
is the tripwire.  QOC settings are sized for bench runtime (seconds per
program), not pulse quality; dedup counts depend only on cache keys,
which the settings do not affect.
"""

from __future__ import annotations

from typing import Dict, List

from repro.batch import BatchCompiler
from repro.config import EPOCConfig, QOCConfig
from repro.core import EPOCPipeline
from repro.qoc import PulseLibrary
from repro.workloads import resolve_suite

from _bench_common import save_results

DEDUP_QOC = QOCConfig(
    dt=1.0,
    fidelity_threshold=0.99,
    max_iterations=60,
    min_segments=2,
    max_segments=200,
)

DEDUP_EPOC = EPOCConfig(
    partition_qubit_limit=2,
    partition_gate_limit=12,
    synthesis_max_layers=6,
    regroup_qubit_limit=2,
    regroup_gate_limit=8,
    qoc=DEDUP_QOC,
)


def _per_circuit_searches() -> Dict[str, int]:
    """Compile each program with its own fresh library; count searches."""
    searches: Dict[str, int] = {}
    for name, circuit in resolve_suite("table1").items():
        library = PulseLibrary(config=DEDUP_QOC)
        EPOCPipeline(DEDUP_EPOC, library=library).compile(circuit, name)
        searches[name] = library.misses
    return searches


def test_batch_dedup(benchmark):
    report = benchmark.pedantic(
        lambda: BatchCompiler(config=DEDUP_EPOC).compile_suite(
            resolve_suite("table1")
        ),
        rounds=1,
        iterations=1,
    )
    solo = _per_circuit_searches()
    solo_total = sum(solo.values())

    rows: List[Dict[str, object]] = []
    print()
    print(f"{'circuit':<10}{'solo searches':>15}{'batch hit rate':>16}")
    for outcome in report.outcomes:
        rate = outcome.hit_rate
        rows.append(
            {
                "circuit": outcome.name,
                "solo_searches": solo[outcome.name],
                "qoc_items": outcome.qoc_items,
                "unique_qoc_items": outcome.unique_qoc_items,
                "cache_hits": outcome.cache_hits,
                "cache_misses": outcome.cache_misses,
            }
        )
        shown = f"{100.0 * rate:.1f}%" if rate is not None else "--"
        print(f"{outcome.name:<10}{solo[outcome.name]:>15}{shown:>16}")
    print(
        f"{'total':<10}{solo_total:>15}  batch searches="
        f"{report.grape_searches}  dedup_savings={report.dedup_savings}  "
        f"equiv_hits={report.equiv_hits}"
    )

    # the headline claim: sharing the library across the suite pays
    # strictly fewer searches than per-circuit compilation
    assert report.grape_searches < solo_total, (
        f"batch paid {report.grape_searches} searches, per-circuit paid "
        f"{solo_total}; the suite shares no unitaries across programs?"
    )
    assert report.dedup_savings > 0
    # exact-key sharing alone saved 6 of 37 searches on this suite;
    # equivalence-class lookup must push dedup strictly past that
    assert report.equiv_hits > 0, "no cross-circuit equivalence hits fired"
    assert report.dedup_savings > 6
    # every library entry is either a GRAPE solve or a derived equiv hit
    assert report.library_entries == report.grape_searches + report.equiv_hits

    save_results(
        "batch_dedup",
        {
            "suite": "table1",
            "per_circuit_searches_total": solo_total,
            "batch_searches": report.grape_searches,
            "dedup_savings": report.dedup_savings,
            "equiv_hits": report.equiv_hits,
            "aggregate_hit_rate": report.aggregate_hit_rate,
            "library_entries": report.library_entries,
            "rows": rows,
        },
    )

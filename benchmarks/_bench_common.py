"""Shared configuration and result persistence for the benchmarks."""

from __future__ import annotations

import json
import os

from repro import telemetry
from repro.config import EPOCConfig, QOCConfig

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: QOC settings for benchmarking: 1 ns segments, 99.5% fidelity target.
BENCH_QOC = QOCConfig(
    dt=1.0,
    fidelity_threshold=0.995,
    max_iterations=80,
    min_segments=2,
    max_segments=300,
)

#: EPOC settings for benchmarking (3-qubit blocks and regroups).
BENCH_EPOC = EPOCConfig(
    partition_qubit_limit=3,
    partition_gate_limit=16,
    synthesis_max_layers=8,
    regroup_qubit_limit=3,
    regroup_gate_limit=12,
    qoc=BENCH_QOC,
)


def save_results(name: str, payload, attach_metrics: bool = True) -> None:
    """Persist a benchmark's data series for EXPERIMENTS.md.

    When a metrics registry is installed (the benchmark ran inside
    ``telemetry.telemetry_session()``), its snapshot rides along under a
    ``_metrics`` key so runs are attributable to GRAPE-iteration /
    cache-behaviour differences after the fact.
    """
    registry = telemetry.get_metrics()
    if attach_metrics and registry.enabled and isinstance(payload, dict):
        payload = {**payload, "_metrics": registry.to_dict()}
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.json"), "w") as fh:
        json.dump(payload, fh, indent=2, default=float)

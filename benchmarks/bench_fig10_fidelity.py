"""Figure 10: circuit fidelity (ESP) with vs without the regrouping step.

Paper result: fidelities with grouping are generally higher (avg +33.77%)
because the no-grouping flow runs QOC at very fine granularity and the
per-pulse errors accumulate multiplicatively (Eq. 3), while grouping
plays fewer, larger pulses.
"""

from __future__ import annotations

import numpy as np

from _bench_common import save_results


def test_fig10_fidelity_grouping(benchmark, grouping_sweep):
    """Per-program ESP fidelity: grouped vs ungrouped (Figure 10 bars)."""
    rows = benchmark.pedantic(
        lambda: [
            {
                "circuit": name,
                "fidelity_grouped": pair["grouped"].fidelity,
                "fidelity_ungrouped": pair["ungrouped"].fidelity,
                "pulses_grouped": pair["grouped"].pulse_count,
                "pulses_ungrouped": pair["ungrouped"].pulse_count,
            }
            for name, pair in grouping_sweep.items()
        ],
        rounds=1,
        iterations=1,
    )
    print("\nFigure 10 — ESP fidelity with vs without grouping")
    print(f"{'circuit':<14}{'grouped':>9}{'no group':>10}{'pulses':>14}")
    for row in rows:
        print(
            f"{row['circuit']:<14}{row['fidelity_grouped']:>9.4f}"
            f"{row['fidelity_ungrouped']:>10.4f}"
            f"{row['pulses_grouped']:>7}/{row['pulses_ungrouped']:<6}"
        )
    gain = float(
        np.mean(
            [
                100.0
                * (row["fidelity_grouped"] - row["fidelity_ungrouped"])
                / max(row["fidelity_ungrouped"], 1e-9)
                for row in rows
            ]
        )
    )
    print(f"MEAN FIDELITY GAIN: {gain:+.2f}%   (paper: +33.77%)")
    save_results("fig10_fidelity", {"rows": rows, "mean_gain_pct": gain})

    # shape assertions: grouping plays fewer pulses and wins on average
    for row in rows:
        assert row["pulses_grouped"] <= row["pulses_ungrouped"], row
    wins = sum(
        1
        for row in rows
        if row["fidelity_grouped"] >= row["fidelity_ungrouped"] - 1e-9
    )
    assert wins >= int(0.7 * len(rows))
    assert gain > 0.0

"""Sync cost scaling: SQLite upsert-only merge vs JSON full rewrite.

The JSON store's locked load-merge-save round re-serializes every entry
on every sync, so a checkpoint against an N-entry library costs O(N)
regardless of how little changed.  The SQLite store's transactional
merge writes only the locally-new rows.  This benchmark populates both
backends with the same synthetic library at increasing sizes, then
times one *incremental* sync (a single new entry — the steady-state
checkpoint shape) against each, and asserts the headline claim: at
10^4 entries the SQLite sync is at least 10x cheaper than the JSON
rewrite.

Entries are synthetic (fixed-size envelopes under real cache keys):
sync cost depends on entry count and payload bytes, not on how the
pulses were found, and GRAPE-solving 10^4 entries would dominate the
bench for no extra signal.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List

import numpy as np

from repro.batch import SharedLibraryStore
from repro.db import SqliteLibraryStore
from repro.qoc import Pulse, PulseLibrary

from _bench_common import save_results

SIZES = (100, 1_000, 10_000)
HEADLINE_SIZE = 10_000
HEADLINE_SPEEDUP = 10.0


def _filled_library(entries: int) -> PulseLibrary:
    """A library with ``entries`` distinct synthetic 1-qubit pulses."""
    library = PulseLibrary()
    thetas = np.linspace(0.0, 3.0, entries, endpoint=False)
    controls = np.full((2, 8), 0.25)
    for theta in thetas:
        matrix = np.diag([1.0, np.exp(1j * theta)]).astype(complex)
        key = library.key_for(matrix, 1)
        library._entries[key] = Pulse(
            (0,), controls, 1.0, fidelity=1.0, unitary_distance=0.0
        )
    return library


def _one_new_entry(library: PulseLibrary) -> None:
    matrix = np.diag([1.0, np.exp(1j * 3.5)]).astype(complex)
    library._entries[library.key_for(matrix, 1)] = Pulse(
        (0,), np.full((2, 8), 0.25), 1.0, fidelity=1.0, unitary_distance=0.0
    )


def _timed_incremental_sync(store, library: PulseLibrary) -> float:
    """Seconds for one sync that publishes exactly one new entry."""
    store.sync(library)  # populate the file with the base entries
    _one_new_entry(library)
    start = time.perf_counter()
    store.sync(library)
    return time.perf_counter() - start


def test_store_scaling(tmp_path):
    rows: List[Dict[str, float]] = []
    print()
    print(f"{'entries':>8}{'json sync':>12}{'sqlite sync':>13}{'speedup':>9}")
    for size in SIZES:
        json_path = str(tmp_path / f"lib_{size}.json")
        db_path = str(tmp_path / f"lib_{size}.db")
        json_seconds = _timed_incremental_sync(
            SharedLibraryStore(json_path), _filled_library(size)
        )
        sqlite_seconds = _timed_incremental_sync(
            SqliteLibraryStore(db_path), _filled_library(size)
        )
        speedup = json_seconds / sqlite_seconds
        rows.append(
            {
                "entries": size,
                "json_sync_seconds": json_seconds,
                "sqlite_sync_seconds": sqlite_seconds,
                "speedup": speedup,
                "json_file_bytes": os.path.getsize(json_path),
                "sqlite_file_bytes": os.path.getsize(db_path),
            }
        )
        print(
            f"{size:>8}{json_seconds:>11.4f}s{sqlite_seconds:>12.4f}s"
            f"{speedup:>8.1f}x"
        )

    headline = next(r for r in rows if r["entries"] == HEADLINE_SIZE)
    assert headline["speedup"] >= HEADLINE_SPEEDUP, (
        f"incremental sync at {HEADLINE_SIZE} entries: sqlite was only "
        f"{headline['speedup']:.1f}x cheaper than the JSON rewrite "
        f"(need >= {HEADLINE_SPEEDUP}x)"
    )

    save_results(
        "store_scaling",
        {
            "workload": "one new entry synced into an N-entry library",
            "headline_entries": HEADLINE_SIZE,
            "headline_speedup": headline["speedup"],
            "rows": rows,
        },
    )

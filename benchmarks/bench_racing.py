"""Hedged-racing latency gate: raced synthesis vs serial under a stall.

Times ``synthesize_unitary`` on hard (random SU(4)) blocks while a
``synthesis.stall`` fault pins the primary QSearch strategy for
``STALL_SECONDS`` on every attempt — the "one strategy went pathological"
regime racing exists for:

``serial``
    the sequential QSearch -> LEAP -> analytic chain sleeps through the
    whole stall before it can even try the fallbacks, so every block
    costs at least the stall;
``raced``
    the stalled primary times out at ``strategy_timeout_seconds`` while
    the LEAP hedge (started ``hedge_delay_seconds`` in) solves the block
    concurrently, so the race resolves at roughly the strategy timeout —
    independent of how long the stall would have lasted.

The acceptance gate is a >= MIN_SPEEDUP median improvement of the raced
hard-block latency over serial.  A no-fault preflight also asserts the
deterministic race returns bitwise-identical circuits to the serial
chain, so the speedup is not bought with different answers.
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np

from repro.config import RacingConfig
from repro.linalg import random_unitary
from repro.racing import set_breaker_board
from repro.racing.breaker import BreakerBoard
from repro.resilience.faults import FaultPlan, set_fault_plan
from repro.synthesis import synthesize_unitary

from _bench_common import save_results

STALL_SECONDS = 1.5  # injected primary-strategy stall per attempt
STRATEGY_TIMEOUT = 0.3  # raced budget per strategy attempt
HEDGE_DELAY = 0.05
TARGET_SEEDS = (3, 11, 29)  # one hard SU(4) block per seed
MIN_SPEEDUP = 2.0

_STALL_PLAN = f"synthesis.stall@seconds={STALL_SECONDS},strategy=qsearch*-1"


def _racing(strategy_timeout: float = 30.0) -> RacingConfig:
    # the tight timeout is only for the stalled runs; the no-fault
    # preflight must leave the primary room to finish and win
    return RacingConfig(
        enabled=True,
        mode="deterministic",
        hedge_delay_seconds=HEDGE_DELAY,
        strategy_timeout_seconds=strategy_timeout,
    )


def _targets() -> List[np.ndarray]:
    return [
        random_unitary(4, np.random.default_rng(seed)) for seed in TARGET_SEEDS
    ]


def _timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def test_racing_bounds_stalled_block_latency(benchmark):
    targets = _targets()

    # preflight, no faults: deterministic racing must be output-neutral
    for target in targets:
        serial = synthesize_unitary(target)
        raced = synthesize_unitary(target, racing=_racing())
        assert raced.method == serial.method
        assert np.array_equal(raced.circuit.unitary(), serial.circuit.unitary())

    previous_plan = set_fault_plan(FaultPlan.parse(_STALL_PLAN))
    try:
        rows: List[Dict[str, float]] = []
        for seed, target in zip(TARGET_SEEDS, targets):
            serial_s = _timed(lambda: synthesize_unitary(target))
            # fresh breaker board per block so every raced round pays the
            # full timeout instead of riding an already-open breaker
            set_breaker_board(BreakerBoard())
            raced_s = _timed(
                lambda: synthesize_unitary(
                    target, racing=_racing(STRATEGY_TIMEOUT)
                )
            )
            rows.append(
                {
                    "seed": seed,
                    "serial_s": serial_s,
                    "raced_s": raced_s,
                    "speedup": serial_s / raced_s,
                }
            )
    finally:
        set_fault_plan(previous_plan)
        set_breaker_board(BreakerBoard())

    serial_median = float(np.median([r["serial_s"] for r in rows]))
    raced_median = float(np.median([r["raced_s"] for r in rows]))
    speedup = serial_median / raced_median

    print(
        f"\nhard-block synthesis under a {STALL_SECONDS}s primary stall"
        f" ({len(rows)} blocks)"
    )
    print(f"{'seed':>6}{'serial (s)':>12}{'raced (s)':>11}{'speedup':>9}")
    for row in rows:
        print(
            f"{row['seed']:>6.0f}{row['serial_s']:>12.3f}"
            f"{row['raced_s']:>11.3f}{row['speedup']:>8.2f}x"
        )
    print(f"median: serial {serial_median:.3f}s, raced {raced_median:.3f}s,"
          f" {speedup:.2f}x")

    save_results(
        "racing",
        {
            "stall_seconds": STALL_SECONDS,
            "strategy_timeout_seconds": STRATEGY_TIMEOUT,
            "hedge_delay_seconds": HEDGE_DELAY,
            "rows": rows,
            "serial_median_s": serial_median,
            "raced_median_s": raced_median,
            "median_speedup": speedup,
        },
        attach_metrics=False,
    )

    # the serial chain cannot beat the stall it sleeps through, and the
    # raced chain must stay well under it
    assert serial_median >= STALL_SECONDS
    assert speedup >= MIN_SPEEDUP, (
        f"raced hard-block latency is only {speedup:.2f}x better than "
        f"serial under a {STALL_SECONDS}s stall; need >= {MIN_SPEEDUP}x"
    )

    # pytest-benchmark row: the raced path under the no-fault common case
    benchmark.pedantic(
        lambda: synthesize_unitary(targets[0], racing=_racing()),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )

"""Ablation: the ZX optimization stage on vs off inside the pipeline.

ZX optimization shortens the circuit before partitioning, which the rest
of the pipeline converts into fewer/smaller QOC items and lower latency
(never higher: the pass keeps the original circuit when rewriting does
not help).
"""

from __future__ import annotations

from repro.core import EPOCPipeline
from repro.qoc import PulseLibrary
from repro.workloads import get_benchmark

from _bench_common import BENCH_EPOC, BENCH_QOC, save_results

_CIRCUITS = ("vqe", "grover", "qft")


def test_ablation_zx_stage(benchmark):
    """Latency with and without the ZX stage, shared pulse library."""

    def sweep():
        rows = []
        library = PulseLibrary(config=BENCH_QOC, match_global_phase=True)
        with_zx = EPOCPipeline(BENCH_EPOC, library=library)
        without_zx = EPOCPipeline(
            BENCH_EPOC.with_updates(use_zx=False), library=library
        )
        for name in _CIRCUITS:
            circuit = get_benchmark(name)
            on = with_zx.compile(circuit, name)
            off = without_zx.compile(circuit, name)
            rows.append(
                {
                    "circuit": name,
                    "latency_zx_ns": on.latency_ns,
                    "latency_nozx_ns": off.latency_ns,
                    "depth_before": on.stats.get("zx_depth_before"),
                    "depth_after": on.stats.get("zx_depth_after"),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation — ZX stage on/off")
    print(f"{'circuit':<10}{'with zx':>10}{'without':>10}{'depth':>12}")
    for row in rows:
        print(
            f"{row['circuit']:<10}{row['latency_zx_ns']:>10.1f}"
            f"{row['latency_nozx_ns']:>10.1f}"
            f"{row['depth_before']:>6.0f}->{row['depth_after']:<5.0f}"
        )
    save_results("ablation_zx", {"rows": rows})

    # shape: zx never hurts latency materially (shared cache; 15% slack
    # covers partition-boundary and duration-search granularity effects)
    for row in rows:
        assert row["latency_zx_ns"] <= 1.15 * row["latency_nozx_ns"] + 1e-6, row

"""Figure 5: ZX-calculus depth optimization over 34 random circuits.

Paper result: an average depth reduction of 1.48x across 34 randomly
selected circuits, with a deep VQE as the extreme case (7656 -> 1110,
~6.9x).  This benchmark regenerates the full series: 34 random circuits
drawn from Clifford+T-heavy and mixed-rotation families at 4-8 qubits,
plus the deep UCCSD-style VQE extreme case, and reports the per-circuit
reduction ratios and their mean.
"""

from __future__ import annotations

import numpy as np

from repro.circuits import random_circuit, random_clifford_t_circuit
from repro.workloads import clifford_vqe_ansatz
from repro.zx import optimize_circuit

from _bench_common import save_results


def _fig5_circuits():
    """The 34-circuit population.

    Mirrors the paper's "34 randomly selected circuits": Clifford+T-heavy
    randoms, mixed-rotation randoms, and a few deep warm-started
    (Clifford-point) VQE ansatz instances — the family behind the paper's
    extreme data point.
    """
    circuits = []
    for seed in range(18):
        n = 4 + seed % 5
        circuits.append(
            (f"cliffT-{n}q-{seed}", random_clifford_t_circuit(n, 12 * n, seed=seed))
        )
    for seed in range(10):
        n = 4 + seed % 4
        circuits.append(
            (
                f"mixed-{n}q-{seed}",
                random_circuit(n, 10 * n, two_qubit_fraction=0.35, seed=100 + seed),
            )
        )
    for seed in range(6):
        n = 4 + seed % 3
        circuits.append(
            (f"cliffVQE-{n}q-{seed}", clifford_vqe_ansatz(n, 20 + 10 * seed, seed=seed))
        )
    return circuits


def test_fig5_average_reduction(benchmark):
    """The headline Figure 5 series: depth reduction over 34 circuits."""

    def sweep():
        rows = []
        for name, circuit in _fig5_circuits():
            result = optimize_circuit(circuit)
            rows.append(
                {
                    "circuit": name,
                    "depth_before": result.depth_before,
                    "depth_after": result.depth_after,
                    "reduction": result.depth_reduction,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    ratios = [row["reduction"] for row in rows]
    mean = float(np.mean(ratios))
    print("\nFigure 5 — ZX optimization depth reduction (34 random circuits)")
    print(f"{'circuit':<18}{'before':>8}{'after':>8}{'ratio':>8}")
    for row in rows:
        print(
            f"{row['circuit']:<18}{row['depth_before']:>8}"
            f"{row['depth_after']:>8}{row['reduction']:>8.2f}"
        )
    print(f"{'MEAN':<18}{'':>8}{'':>8}{mean:>8.2f}   (paper: 1.48)")
    save_results("fig5_zx_depth", {"rows": rows, "mean": mean})
    # shape assertions: never worse, and a meaningful average reduction
    assert all(r >= 1.0 for r in ratios)
    assert mean >= 1.2


def test_fig5_vqe_extreme_case(benchmark):
    """The paper's extreme case: a deep VQE collapses by a large factor.

    The substrate analogue of the paper's depth-7656 VQE is a deep
    hardware-efficient ansatz at Clifford angle points (a warm-started
    VQE), which ZX-calculus collapses to near-constant depth.
    """
    deep = clifford_vqe_ansatz(6, layers=150, seed=3)

    result = benchmark.pedantic(lambda: optimize_circuit(deep), rounds=1, iterations=1)
    print(
        f"\nVQE extreme case: depth {result.depth_before} -> "
        f"{result.depth_after} ({result.depth_reduction:.2f}x; paper: 7656 -> 1110)"
    )
    save_results(
        "fig5_vqe_extreme",
        {
            "depth_before": result.depth_before,
            "depth_after": result.depth_after,
            "reduction": result.depth_reduction,
        },
    )
    assert result.depth_reduction >= 2.0


def test_fig5_optimization_speed(benchmark):
    """Timed kernel: one ZX optimization pass on a 5-qubit circuit."""
    circuit = random_clifford_t_circuit(5, 60, seed=0)
    result = benchmark(lambda: optimize_circuit(circuit))
    assert result.depth_after <= result.depth_before

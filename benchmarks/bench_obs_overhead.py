"""Observability overhead: JSONL event stream + ledger vs a bare compile.

The observer adds one event per stage boundary, one per landed block,
one per GRAPE search and two ``getrusage`` calls per stage — constant
per-stage work against compiles dominated by GRAPE binary searches per
unique unitary.  This benchmark compiles the same seed workloads (the
Table 1 suite shape: fresh pulse library each side, so both pay full
QOC cost) bare and with the JSONL sink, resource profiling and a run
ledger all on, and asserts the wall-clock overhead stays under 5%.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Tuple

from repro.config import EPOCConfig, ObsConfig, QOCConfig
from repro.core import EPOCPipeline
from repro.obs import RunLedger, validate_event
from repro.qoc import PulseLibrary
from repro.workloads import ising_trotter, qaoa_maxcut

from _bench_common import save_results

#: QOC settings sized so one compile is seconds while each distinct
#: unitary still costs a real GRAPE binary search.
OBS_QOC = QOCConfig(
    dt=1.0,
    fidelity_threshold=0.98,
    max_iterations=60,
    min_segments=2,
    max_segments=120,
)

OBS_EPOC = EPOCConfig(
    partition_qubit_limit=2,
    partition_gate_limit=8,
    synthesis_max_layers=6,
    regroup_qubit_limit=2,
    regroup_gate_limit=6,
    qoc=OBS_QOC,
)

WORKLOAD = {
    "qaoa4": lambda: qaoa_maxcut(4, layers=1, seed=7),
    "ising3": lambda: ising_trotter(3, steps=2, seed=9),
}

#: paired timing rounds; the median of per-round on/off ratios cancels
#: the load and frequency drift a min-over-rounds estimator is blind to
#: (both modes run adjacently inside each round, so drift hits the pair,
#: not one side)
ROUNDS = 5

#: the acceptance budget: observed compile <= 5% slower than bare.
BUDGET_PCT = 5.0


def _compile_suite(
    tmp_dir: str, observed: bool, round_index: int
) -> Tuple[float, Dict[str, object]]:
    """Compile the whole workload once, fresh library each call."""
    if observed:
        obs = ObsConfig(
            events_path=os.path.join(tmp_dir, f"events_{round_index}.jsonl"),
            ledger=True,
            ledger_path=os.path.join(tmp_dir, "runs.db"),
            label=f"round-{round_index}",
        )
    else:
        obs = ObsConfig()
    config = OBS_EPOC.with_updates(obs=obs)
    pipeline = EPOCPipeline(config, library=PulseLibrary(config=OBS_QOC))
    reports: Dict[str, object] = {}
    started = time.perf_counter()
    for name, build in WORKLOAD.items():
        reports[name] = pipeline.compile(build(), name)
    return time.perf_counter() - started, reports


def test_event_stream_overhead(benchmark, tmp_path):
    """The JSONL event sink + ledger must cost < 5% wall-clock."""
    tmp_dir = str(tmp_path)

    def run() -> Dict[str, List[float]]:
        times: Dict[str, List[float]] = {"off": [], "on": []}
        for index in range(ROUNDS):
            # alternate order within the pair so warm-up effects do not
            # systematically land on one side
            order = (False, True) if index % 2 == 0 else (True, False)
            for observed in order:
                elapsed, _ = _compile_suite(tmp_dir, observed, index)
                times["on" if observed else "off"].append(elapsed)
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)

    # the observed runs must have actually observed something real
    events: List[dict] = []
    for index in range(ROUNDS):
        path = os.path.join(tmp_dir, f"events_{index}.jsonl")
        events.extend(json.loads(line) for line in open(path))
    assert len(events) >= 4 * len(WORKLOAD) * ROUNDS, "suspiciously few events"
    bad = [problems for e in events if (problems := validate_event(e))]
    assert not bad, f"schema violations in the event stream: {bad[:3]}"
    ledger = RunLedger(os.path.join(tmp_dir, "runs.db"))
    assert len(ledger) == len(WORKLOAD) * ROUNDS
    assert all(r.grape_searches > 0 for r in ledger.runs(limit=100))

    ratios = sorted(on / off for on, off in zip(times["on"], times["off"]))
    overhead = ratios[len(ratios) // 2] - 1.0
    print(f"\nObservability overhead — {len(events)} events, "
          f"{len(ledger)} ledger rows")
    print(f"{'round':>6}{'off (s)':>10}{'on (s)':>10}{'ratio':>8}")
    for index, (off, on) in enumerate(zip(times["off"], times["on"])):
        print(f"{index:>6}{off:>10.2f}{on:>10.2f}{on / off:>8.3f}")
    print(f"overhead (median of paired ratios): {100.0 * overhead:+.1f}%")

    save_results(
        "obs_overhead",
        {
            "times_off_s": times["off"],
            "times_on_s": times["on"],
            "overhead_fraction": overhead,
            "overhead_pct": 100.0 * overhead,
            "budget_pct": BUDGET_PCT,
            "events": len(events),
        },
    )

    assert 100.0 * overhead < BUDGET_PCT, (
        f"observability cost {100.0 * overhead:.1f}% wall-clock, "
        f"expected < {BUDGET_PCT:.0f}%"
    )

"""Shared fixtures for the paper-reproduction benchmarks.

The figure benchmarks (8, 9, 10) all consume the same grouping-ablation
sweep over the 17-program suite, so it is computed once per session here
and cached.  Results are also dumped as JSON under
``benchmarks/results/`` so EXPERIMENTS.md can cite exact numbers.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.core import EPOCPipeline
from repro.qoc import PulseLibrary
from repro.workloads import benchmark_suite

from _bench_common import BENCH_EPOC, BENCH_QOC


@pytest.fixture(scope="session")
def grouping_sweep() -> Dict[str, Dict[str, object]]:
    """EPOC with vs without the regrouping step on the 17-program suite.

    Each setting keeps its own persistent pulse library across the suite
    (the realistic deployment mode: the library is reused between
    programs, as in AccQOC/PAQOC/EPOC).
    """
    suite = benchmark_suite()
    grouped_library = PulseLibrary(config=BENCH_QOC, match_global_phase=True)
    ungrouped_library = PulseLibrary(config=BENCH_QOC, match_global_phase=True)
    grouped_pipe = EPOCPipeline(BENCH_EPOC, library=grouped_library)
    ungrouped_pipe = EPOCPipeline(
        BENCH_EPOC, library=ungrouped_library, use_regrouping=False
    )
    results: Dict[str, Dict[str, object]] = {}
    for name, circuit in suite.items():
        results[name] = {
            "grouped": grouped_pipe.compile(circuit, name),
            "ungrouped": ungrouped_pipe.compile(circuit, name),
        }
    return results

"""Parallel-compilation scaling: wall-clock compile time vs worker count.

EPOC's synthesis and pulse-generation stages are embarrassingly parallel
(one task per partition block, one QOC problem per distinct regrouped
unitary).  This benchmark compiles a multi-block workload with ≥ 8
distinct QOC items at ``workers ∈ {0, 1, 2, 4}`` and records the speedup
over the serial path, plus how much work singleflight deduplication
saved.  Determinism is asserted, not assumed: every worker setting must
produce a bitwise-identical schedule.

Speedup is hardware-bound — the ≥ 2x-at-4-workers assertion only fires
when the machine actually exposes 4+ cores (a 1-core CI box can only
demonstrate correctness, not scaling).
"""

from __future__ import annotations

import os
import time
from typing import Dict, List

import numpy as np

from repro.config import EPOCConfig, ParallelConfig, QOCConfig
from repro.core import EPOCPipeline
from repro.qoc import PulseLibrary
from repro.workloads import ising_trotter, qaoa_maxcut, vqe_uccsd_like

from _bench_common import save_results

#: QOC settings sized so one compile is seconds, not minutes, while each
#: distinct unitary still costs a real GRAPE binary search.
SCALING_QOC = QOCConfig(
    dt=1.0,
    fidelity_threshold=0.99,
    max_iterations=60,
    min_segments=2,
    max_segments=200,
)

SCALING_EPOC = EPOCConfig(
    partition_qubit_limit=2,
    partition_gate_limit=8,
    synthesis_max_layers=6,
    regroup_qubit_limit=2,
    regroup_gate_limit=6,
    qoc=SCALING_QOC,
)

#: Distinct rotation angles per program give a workload with many unique
#: regrouped unitaries (the parallelizable QOC work).
WORKLOAD = {
    "qaoa5x2": lambda: qaoa_maxcut(5, layers=2, seed=7),
    "vqe4": lambda: vqe_uccsd_like(4, seed=13),
    "ising4": lambda: ising_trotter(4, steps=2, seed=9),
}

WORKER_SETTINGS = (0, 1, 2, 4)


def _compile_suite(workers: int) -> Dict[str, object]:
    """Compile the whole workload at one worker setting, fresh library."""
    config = SCALING_EPOC.with_updates(parallel=ParallelConfig(workers=workers))
    library = PulseLibrary(config=SCALING_QOC)
    pipeline = EPOCPipeline(config, library=library)
    reports = {}
    started = time.perf_counter()
    for name, build in WORKLOAD.items():
        reports[name] = pipeline.compile(build(), name)
    elapsed = time.perf_counter() - started
    return {
        "workers": workers,
        "elapsed_s": elapsed,
        "reports": reports,
        "library_size": len(library),
        "qoc_items": sum(r.stats["qoc_items"] for r in reports.values()),
        "unique_qoc_items": sum(
            r.stats["unique_qoc_items"] for r in reports.values()
        ),
    }


def _schedules_bitwise_equal(a, b) -> bool:
    for name in WORKLOAD:
        items_a = a["reports"][name].schedule.items
        items_b = b["reports"][name].schedule.items
        if len(items_a) != len(items_b):
            return False
        for x, y in zip(items_a, items_b):
            if x.qubits != y.qubits or x.start != y.start or x.end != y.end:
                return False
            if (x.pulse is None) != (y.pulse is None):
                return False
            if x.pulse is not None and not np.array_equal(
                x.pulse.controls, y.pulse.controls
            ):
                return False
    return True


def test_parallel_scaling(benchmark):
    """Compile wall-clock at 0/1/2/4 workers + determinism check."""
    runs: List[Dict[str, object]] = benchmark.pedantic(
        lambda: [_compile_suite(workers) for workers in WORKER_SETTINGS],
        rounds=1,
        iterations=1,
    )
    serial = runs[0]
    assert serial["library_size"] >= 8, (
        "workload must pose >= 8 distinct QOC items, got "
        f"{serial['library_size']}"
    )

    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)
    print(f"\nParallel scaling — {serial['qoc_items']:.0f} QOC items "
          f"({serial['unique_qoc_items']:.0f} unique), {cores} usable cores")
    print(f"{'workers':>8}{'compile (s)':>13}{'speedup':>9}{'identical':>11}")
    rows = []
    for run in runs:
        speedup = serial["elapsed_s"] / run["elapsed_s"]
        identical = _schedules_bitwise_equal(serial, run)
        rows.append(
            {
                "workers": run["workers"],
                "elapsed_s": run["elapsed_s"],
                "speedup_vs_serial": speedup,
                "bitwise_identical": identical,
                "qoc_items": run["qoc_items"],
                "unique_qoc_items": run["unique_qoc_items"],
            }
        )
        print(
            f"{run['workers']:>8}{run['elapsed_s']:>13.2f}{speedup:>9.2f}"
            f"{str(identical):>11}"
        )
        # the determinism guarantee holds at every worker count
        assert identical, f"workers={run['workers']} diverged from serial"

    save_results(
        "parallel_scaling",
        {
            "usable_cores": cores,
            "qoc_items": serial["qoc_items"],
            "unique_qoc_items": serial["unique_qoc_items"],
            "rows": rows,
        },
    )

    # scaling itself needs real cores; a 1-core box can only prove
    # correctness and overhead, not speedup
    if cores >= 4:
        four = next(r for r in rows if r["workers"] == 4)
        assert four["speedup_vs_serial"] >= 2.0, (
            "expected >= 2x speedup at 4 workers, got "
            f"{four['speedup_vs_serial']:.2f}x"
        )

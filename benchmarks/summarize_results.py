"""Summarize benchmarks/results/*.json into the EXPERIMENTS.md numbers.

Run after ``pytest benchmarks/ --benchmark-only``:

    python benchmarks/summarize_results.py

``--ledger [FILE]`` additionally imports every result file into the run
ledger (kind="bench", one row per result, the JSON payload under
``extra``), so benchmark history is queryable next to compile runs:

    PYTHONPATH=src python benchmarks/summarize_results.py --ledger
    PYTHONPATH=src python -m repro.cli stats list
"""

from __future__ import annotations

import argparse
import json
import os

RESULTS = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

#: every result file a bench may have written (see the bench_*.py files).
RESULT_NAMES = (
    "fig5_zx_depth",
    "fig5_vqe_extreme",
    "fig8_latency",
    "fig9_compile_time",
    "fig10_fidelity",
    "table1_comparison",
    "ablation_cache",
    "ablation_group_size",
    "ablation_zx",
    "batch_dedup",
    "parallel_scaling",
    "verify_overhead",
    "obs_overhead",
)


def _load(name):
    path = os.path.join(RESULTS, f"{name}.json")
    if not os.path.exists(path):
        return None
    with open(path) as fh:
        return json.load(fh)


def import_into_ledger(ledger_path=None) -> int:
    """Append one kind="bench" ledger row per present result file.

    Returns the number of rows written.  Import is lazy so the summary
    keeps working without ``src`` on the path.
    """
    from repro.obs import RunLedger, RunRecord

    ledger = RunLedger(ledger_path)
    written = 0
    for name in RESULT_NAMES:
        payload = _load(name)
        if payload is None:
            continue
        ledger.record(
            RunRecord(
                circuit=name,
                method="bench",
                kind="bench",
                label="summarize_results",
                extra=payload if isinstance(payload, dict) else {"data": payload},
            )
        )
        written += 1
    return written


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--ledger",
        nargs="?",
        const=True,
        default=None,
        metavar="FILE",
        help="also import the results into the run ledger "
        "(default database unless FILE is given)",
    )
    args = parser.parse_args(argv)

    fig5 = _load("fig5_zx_depth")
    if fig5:
        print(f"Fig 5  mean depth reduction : {fig5['mean']:.2f}x (paper 1.48x)")
    extreme = _load("fig5_vqe_extreme")
    if extreme:
        print(
            f"Fig 5  extreme VQE case     : {extreme['depth_before']:.0f} -> "
            f"{extreme['depth_after']:.0f} ({extreme['reduction']:.1f}x; paper 6.9x)"
        )
    fig8 = _load("fig8_latency")
    if fig8:
        print(
            f"Fig 8  mean latency saving  : {fig8['mean_saving_pct']:.1f}% "
            f"(paper 51.11%)"
        )
    fig9 = _load("fig9_compile_time")
    if fig9:
        print(
            f"Fig 9  grouping overhead    : {fig9['grouping_overhead_pct']:+.1f}% "
            f"(paper +7.11%)"
        )
    fig10 = _load("fig10_fidelity")
    if fig10:
        print(
            f"Fig 10 mean fidelity gain   : {fig10['mean_gain_pct']:+.2f}% "
            f"(paper +33.77%)"
        )
    table1 = _load("table1_comparison")
    if table1:
        print(
            f"Table 1 EPOC vs PAQOC       : -{table1['reduction_vs_paqoc_pct']:.2f}% "
            f"(paper -31.74%)"
        )
        print(
            f"Table 1 EPOC vs gate-based  : -{table1['reduction_vs_gate_pct']:.2f}% "
            f"(paper -76.80%)"
        )
    cache = _load("ablation_cache")
    if cache:
        for mode, stats in cache.items():
            print(
                f"Cache ablation [{mode:<12}] : hit rate "
                f"{stats['hit_rate']:.2%} ({stats['entries']:.0f} entries)"
            )
    obs = _load("obs_overhead")
    if obs:
        print(
            f"Obs overhead (JSONL events) : {obs['overhead_pct']:+.2f}% "
            f"(budget <{obs['budget_pct']:.0f}%)"
        )

    if args.ledger:
        path = args.ledger if isinstance(args.ledger, str) else None
        rows = import_into_ledger(path)
        print(f"imported {rows} benchmark result(s) into the run ledger")


if __name__ == "__main__":
    main()

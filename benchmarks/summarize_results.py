"""Summarize benchmarks/results/*.json into the EXPERIMENTS.md numbers.

Run after ``pytest benchmarks/ --benchmark-only``:

    python benchmarks/summarize_results.py
"""

from __future__ import annotations

import json
import os

RESULTS = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def _load(name):
    path = os.path.join(RESULTS, f"{name}.json")
    if not os.path.exists(path):
        return None
    with open(path) as fh:
        return json.load(fh)


def main() -> None:
    fig5 = _load("fig5_zx_depth")
    if fig5:
        print(f"Fig 5  mean depth reduction : {fig5['mean']:.2f}x (paper 1.48x)")
    extreme = _load("fig5_vqe_extreme")
    if extreme:
        print(
            f"Fig 5  extreme VQE case     : {extreme['depth_before']:.0f} -> "
            f"{extreme['depth_after']:.0f} ({extreme['reduction']:.1f}x; paper 6.9x)"
        )
    fig8 = _load("fig8_latency")
    if fig8:
        print(
            f"Fig 8  mean latency saving  : {fig8['mean_saving_pct']:.1f}% "
            f"(paper 51.11%)"
        )
    fig9 = _load("fig9_compile_time")
    if fig9:
        print(
            f"Fig 9  grouping overhead    : {fig9['grouping_overhead_pct']:+.1f}% "
            f"(paper +7.11%)"
        )
    fig10 = _load("fig10_fidelity")
    if fig10:
        print(
            f"Fig 10 mean fidelity gain   : {fig10['mean_gain_pct']:+.2f}% "
            f"(paper +33.77%)"
        )
    table1 = _load("table1_comparison")
    if table1:
        print(
            f"Table 1 EPOC vs PAQOC       : -{table1['reduction_vs_paqoc_pct']:.2f}% "
            f"(paper -31.74%)"
        )
        print(
            f"Table 1 EPOC vs gate-based  : -{table1['reduction_vs_gate_pct']:.2f}% "
            f"(paper -76.80%)"
        )
    cache = _load("ablation_cache")
    if cache:
        for mode, stats in cache.items():
            print(
                f"Cache ablation [{mode:<12}] : hit rate "
                f"{stats['hit_rate']:.2%} ({stats['entries']:.0f} entries)"
            )


if __name__ == "__main__":
    main()

"""Verification overhead: warn-mode stage checks vs an unverified compile.

Warn-mode verification re-derives every stage boundary — tensor
equivalence for ZX/partition/regroup, per-block synthesis infidelity,
and one propagator recomputation per *unique* pulse-library key (the
per-key memoization mirrors singleflight, so duplicated work items add
no verify cost).  All of that is linear algebra on <= 2^qubit_limit
matrices, while the compile itself runs full GRAPE binary searches per
unique unitary — so the checks must stay in the noise.  This benchmark
compiles the same seed workloads with verification off and in warn mode
(fresh pulse library each, so both sides pay full QOC cost) and asserts
the wall-clock overhead stays under 15%.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from repro.config import EPOCConfig, QOCConfig, VerifyConfig
from repro.core import EPOCPipeline
from repro.qoc import PulseLibrary
from repro.workloads import ising_trotter, qaoa_maxcut

from _bench_common import save_results

#: QOC settings sized so one compile is seconds while each distinct
#: unitary still costs a real GRAPE binary search.
VERIFY_QOC = QOCConfig(
    dt=1.0,
    fidelity_threshold=0.98,
    max_iterations=60,
    min_segments=2,
    max_segments=120,
)

VERIFY_EPOC = EPOCConfig(
    partition_qubit_limit=2,
    partition_gate_limit=8,
    synthesis_max_layers=6,
    regroup_qubit_limit=2,
    regroup_gate_limit=6,
    qoc=VERIFY_QOC,
)

WORKLOAD = {
    "qaoa4": lambda: qaoa_maxcut(4, layers=1, seed=7),
    "ising3": lambda: ising_trotter(3, steps=2, seed=9),
}

#: alternating timing rounds per mode; best-of smooths scheduler noise
ROUNDS = 2


def _compile_suite(mode: str) -> Tuple[float, Dict[str, object]]:
    """Compile the whole workload once at one verify mode, fresh library."""
    config = VERIFY_EPOC.with_updates(verify=VerifyConfig(mode=mode))
    pipeline = EPOCPipeline(config, library=PulseLibrary(config=VERIFY_QOC))
    reports: Dict[str, object] = {}
    started = time.perf_counter()
    for name, build in WORKLOAD.items():
        reports[name] = pipeline.compile(build(), name)
    return time.perf_counter() - started, reports


def test_warn_mode_overhead(benchmark):
    """Warn-mode verification must cost < 15% wall-clock."""

    def run() -> Dict[str, List[float]]:
        times: Dict[str, List[float]] = {"off": [], "warn": []}
        reports = {}
        for _ in range(ROUNDS):  # interleave modes so drift hits both
            for mode in ("off", "warn"):
                elapsed, round_reports = _compile_suite(mode)
                times[mode].append(elapsed)
                reports[mode] = round_reports
        return {"times": times, "reports": reports}

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    times, reports = result["times"], result["reports"]

    # the verified run must actually have verified something real
    checks = 0
    for name, report in reports["warn"].items():
        summary = report.verification
        assert summary is not None and summary.mode == "warn"
        assert summary.failed == 0, f"{name}: unexpected verify failures"
        checks += summary.checks
    assert checks >= 8, f"expected a real check load, got {checks}"
    for report in reports["off"].values():
        assert report.verification is None

    base = min(times["off"])
    verified = min(times["warn"])
    overhead = (verified - base) / base
    print(
        f"\nVerification overhead — {checks} checks across "
        f"{len(WORKLOAD)} programs"
    )
    print(f"{'mode':>8}{'compile (s)':>13}")
    print(f"{'off':>8}{base:>13.2f}")
    print(f"{'warn':>8}{verified:>13.2f}")
    print(f"overhead: {100.0 * overhead:+.1f}%")

    save_results(
        "verify_overhead",
        {
            "times_off_s": times["off"],
            "times_warn_s": times["warn"],
            "overhead_fraction": overhead,
            "checks": checks,
        },
    )

    assert overhead < 0.15, (
        f"warn-mode verification cost {100.0 * overhead:.1f}% wall-clock, "
        "expected < 15%"
    )

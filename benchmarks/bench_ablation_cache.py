"""Ablation: global-phase-aware pulse-library keys vs exact-match keys.

EPOC's Section 3.4 improvement over AccQOC/PAQOC is matching library
entries *up to global phase* ("similar to having a higher cache hit
rate").  This ablation compiles the Table 1 suite with both key modes and
reports hit rates and total QOC work.
"""

from __future__ import annotations

from repro.core import EPOCPipeline
from repro.qoc import PulseLibrary
from repro.workloads import get_benchmark

from _bench_common import BENCH_EPOC, BENCH_QOC, save_results

#: a representative Table 1 subset (kept small: the ablation contrasts
#: key modes, not workloads)
_CIRCUITS = ("simon", "bb84", "qaoa", "decod24")


def test_ablation_cache_key_mode(benchmark):
    """Hit-rate comparison between the two library key modes."""

    def sweep():
        results = {}
        for mode, global_phase in (("global-phase", True), ("exact", False)):
            library = PulseLibrary(config=BENCH_QOC, match_global_phase=global_phase)
            pipe = EPOCPipeline(BENCH_EPOC, library=library)
            for name in _CIRCUITS:
                pipe.compile(get_benchmark(name), name)
            results[mode] = {
                "hits": library.hits,
                "misses": library.misses,
                "hit_rate": library.hit_rate,
                "entries": len(library),
            }
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nAblation — pulse-library key mode ({', '.join(_CIRCUITS)})")
    for mode, stats in results.items():
        print(
            f"{mode:<14} hits={stats['hits']:<4} misses={stats['misses']:<4} "
            f"hit_rate={stats['hit_rate']:.2%} entries={stats['entries']}"
        )
    save_results("ablation_cache", results)
    # global-phase folding can only merge entries: fewer misses, more hits
    assert results["global-phase"]["misses"] <= results["exact"]["misses"]
    assert results["global-phase"]["hit_rate"] >= results["exact"]["hit_rate"]

"""Figure 9: compilation time with vs without the regrouping step.

Paper result: grouping introduces minimal compile-time overhead — the two
settings stay close across the suite (+7.11% on average for grouping).
Our substrate reports the honest equivalent: wall-clock compile seconds
per program under a persistent pulse library for each setting.
"""

from __future__ import annotations

import numpy as np

from _bench_common import save_results


def test_fig9_compile_time(benchmark, grouping_sweep):
    """Per-program compile time: grouped vs ungrouped (Figure 9 bars)."""
    rows = benchmark.pedantic(
        lambda: [
            {
                "circuit": name,
                "compile_grouped_s": pair["grouped"].compile_seconds,
                "compile_ungrouped_s": pair["ungrouped"].compile_seconds,
            }
            for name, pair in grouping_sweep.items()
        ],
        rounds=1,
        iterations=1,
    )
    print("\nFigure 9 — compilation time with vs without grouping (s)")
    print(f"{'circuit':<14}{'grouped':>10}{'no group':>10}")
    total_grouped = 0.0
    total_ungrouped = 0.0
    for row in rows:
        total_grouped += row["compile_grouped_s"]
        total_ungrouped += row["compile_ungrouped_s"]
        print(
            f"{row['circuit']:<14}{row['compile_grouped_s']:>10.2f}"
            f"{row['compile_ungrouped_s']:>10.2f}"
        )
    overhead_pct = 100.0 * (total_grouped / total_ungrouped - 1.0)
    print(
        f"{'TOTAL':<14}{total_grouped:>10.2f}{total_ungrouped:>10.2f}"
        f"   grouping overhead: {overhead_pct:+.1f}% (paper: +7.11%)"
    )
    save_results(
        "fig9_compile_time",
        {
            "rows": rows,
            "total_grouped_s": total_grouped,
            "total_ungrouped_s": total_ungrouped,
            "grouping_overhead_pct": overhead_pct,
        },
    )
    # shape assertion: grouping's compile cost stays the same order of
    # magnitude as the per-gate flow (the paper's "similar compile times")
    assert total_grouped <= 5.0 * max(total_ungrouped, 1e-9)

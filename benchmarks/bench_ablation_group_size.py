"""Ablation: regroup size limit sweep (1, 2, 3 qubits).

The regrouping limit trades classical QOC compute for quantum latency:
larger groups shorten the schedule but each GRAPE problem grows.  The
paper fixes the limit by cluster budget; this ablation shows the
latency/compile-time trade-off curve on our substrate.
"""

from __future__ import annotations

from repro.core import EPOCPipeline
from repro.qoc import PulseLibrary
from repro.workloads import get_benchmark

from _bench_common import BENCH_EPOC, BENCH_QOC, save_results

_CIRCUITS = ("qaoa", "decod24")


def test_ablation_regroup_size(benchmark):
    """Latency and compile time as the regroup qubit limit grows."""

    def sweep():
        rows = []
        for limit in (1, 2, 3):
            config = BENCH_EPOC.with_updates(
                regroup_qubit_limit=max(limit, 2) if limit > 1 else 2,
                regroup_gate_limit=1 if limit == 1 else BENCH_EPOC.regroup_gate_limit,
            )
            library = PulseLibrary(config=BENCH_QOC, match_global_phase=True)
            pipe = EPOCPipeline(
                config, library=library, use_regrouping=limit > 1
            )
            for name in _CIRCUITS:
                report = pipe.compile(get_benchmark(name), name)
                rows.append(
                    {
                        "limit": limit,
                        "circuit": name,
                        "latency_ns": report.latency_ns,
                        "compile_s": report.compile_seconds,
                        "qoc_items": report.stats["qoc_items"],
                    }
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation — regroup qubit limit sweep")
    print(f"{'limit':<7}{'circuit':<10}{'latency':>10}{'compile':>9}{'items':>7}")
    for row in rows:
        print(
            f"{row['limit']:<7}{row['circuit']:<10}{row['latency_ns']:>10.1f}"
            f"{row['compile_s']:>9.2f}{row['qoc_items']:>7.0f}"
        )
    save_results("ablation_group_size", {"rows": rows})

    # shape: latency is monotone non-increasing in the group limit, up to
    # the 10% binary-search granularity of the pulse-duration search
    for name in _CIRCUITS:
        series = [r["latency_ns"] for r in rows if r["circuit"] == name]
        assert series[1] <= 1.10 * series[0] + 1e-6, (name, series)
        assert series[2] <= 1.10 * series[1] + 1e-6, (name, series)

"""Warm-start iteration savings on a suite with near-duplicate blocks.

AccQOC's observation (ISCA'20): QOC problems whose targets are close
converge dramatically faster when seeded from each other's solutions.
This benchmark builds a workload shaped like a real compilation tail — a
few base unitaries already in the library, then a stream of
near-duplicates (small coherent perturbations, as adjacent Trotter steps
or re-parameterized ansatz blocks produce) — and runs every duplicate's
duration search twice:

``cold``
    ``warm_start=False``: the library answers exact-key lookups only, so
    each near-duplicate pays a full search from the random seed and the
    physics-estimate bracket;
``warm``
    ``warm_start=True`` (default): the search seeds its controls from
    the nearest library entry and its duration bracket from that
    neighbor's recorded length.

Both modes start from byte-identical preloaded libraries.  Each search
runs inside its own telemetry session, so per-search GRAPE-iteration
totals come straight off the ``qoc.search_iterations`` histogram.  The
acceptance gate is a >= 25% median per-search iteration reduction.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np
from scipy.linalg import expm
from scipy.stats import unitary_group

from repro import telemetry
from repro.config import QOCConfig
from repro.qoc.library import PulseLibrary

from _bench_common import save_results

WARM_QOC = QOCConfig(
    dt=1.0,
    fidelity_threshold=0.99,
    max_iterations=80,
    min_segments=2,
    max_segments=200,
)
COLD_QOC = QOCConfig(
    dt=1.0,
    fidelity_threshold=0.99,
    max_iterations=80,
    min_segments=2,
    max_segments=200,
    warm_start=False,
)

NUM_QUBITS = 2
NUM_BASES = 3
DUPLICATES_PER_BASE = 3
PERTURBATION = 0.03
MIN_MEDIAN_REDUCTION = 0.25


def _nearby(matrix: np.ndarray, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    h = rng.normal(size=matrix.shape) + 1j * rng.normal(size=matrix.shape)
    h = (h + h.conj().T) / 2
    return expm(1j * PERTURBATION * h) @ matrix


def _workload():
    bases = [
        unitary_group.rvs(2**NUM_QUBITS, random_state=seed)
        for seed in range(NUM_BASES)
    ]
    duplicates = [
        _nearby(base, seed=100 + index * DUPLICATES_PER_BASE + copy)
        for index, base in enumerate(bases)
        for copy in range(DUPLICATES_PER_BASE)
    ]
    return bases, duplicates


def _preload(config: QOCConfig, bases) -> PulseLibrary:
    """A library already holding the base entries (solved identically —
    base searches see an empty library, so warm/cold preloads match)."""
    library = PulseLibrary(config=config)
    for base in bases:
        library.get_pulse(base, tuple(range(NUM_QUBITS)))
    return library


def _search_iterations(library: PulseLibrary, matrix: np.ndarray) -> int:
    """Run one duration search and return its total GRAPE iterations."""
    snapshot = library.warm_snapshot()
    with telemetry.telemetry_session() as (_, registry):
        library.get_pulse(matrix, tuple(range(NUM_QUBITS)), warm_entries=snapshot)
        histogram = registry.state()["histograms"]["qoc.search_iterations"]
    assert histogram["count"] == 1
    return int(histogram["sum"])


def test_warm_start_iteration_reduction(benchmark):
    bases, duplicates = _workload()
    iterations: Dict[str, List[int]] = {}
    for mode, config in (("cold", COLD_QOC), ("warm", WARM_QOC)):
        library = _preload(config, bases)
        preload_size = len(library)
        iterations[mode] = [
            _search_iterations(library, duplicate) for duplicate in duplicates
        ]
        assert len(library) == preload_size + len(duplicates)

    median_cold = float(np.median(iterations["cold"]))
    median_warm = float(np.median(iterations["warm"]))
    reduction = 1.0 - median_warm / median_cold

    print(
        f"\nWarm-start savings — {len(duplicates)} near-duplicates of "
        f"{NUM_BASES} bases (dim {2**NUM_QUBITS})"
    )
    print(f"{'mode':>6}{'median iters':>14}{'total iters':>13}")
    for mode in ("cold", "warm"):
        print(
            f"{mode:>6}{np.median(iterations[mode]):>14.0f}"
            f"{sum(iterations[mode]):>13d}"
        )
    print(f"median per-search reduction: {100.0 * reduction:.1f}%")

    save_results(
        "warm_start",
        {
            "num_qubits": NUM_QUBITS,
            "bases": NUM_BASES,
            "duplicates": len(duplicates),
            "perturbation": PERTURBATION,
            "iterations_cold": iterations["cold"],
            "iterations_warm": iterations["warm"],
            "median_cold": median_cold,
            "median_warm": median_warm,
            "median_reduction": reduction,
            "total_cold": int(sum(iterations["cold"])),
            "total_warm": int(sum(iterations["warm"])),
        },
        attach_metrics=False,
    )

    assert reduction >= MIN_MEDIAN_REDUCTION, (
        f"warm starts cut median search iterations by only "
        f"{100.0 * reduction:.1f}%; need >= {100.0 * MIN_MEDIAN_REDUCTION:.0f}%"
    )

    library = _preload(WARM_QOC, bases)
    benchmark.pedantic(
        lambda: _search_iterations(library, duplicates[0]),
        rounds=1,
        iterations=1,
    )

"""GRAPE objective-kernel speedup: vectorized fast path vs the loop era.

Times one ``(infidelity, gradient)`` evaluation of the three kernels:

``legacy``
    a frozen copy of the pre-fast-path objective (Python forward/backward
    loops, per-call ``np.stack``, ``optimize=True`` einsums) — what the
    codebase ran before the kernel rework;
``reference``
    today's ``kernel="reference"`` — bitwise-identical math to legacy but
    with the control stack and einsum paths hoisted out of the hot loop;
``fast``
    today's default — blocked prefix-product scans, the adjoint backward
    trick, and the lab-frame gradient contraction.

The acceptance gate is fast-vs-legacy >= 2x at dim 8 / 128 segments (the
ISSUE's "objective-evaluation speedup" is measured against what the
repo ran before this change); larger segment counts and the fast-vs-
reference ratio are reported ungated — at dim 8 the batched ``eigh``
(shared by every kernel) is ~40% of the fast kernel's runtime and bounds
the achievable ratio as T grows.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List

import numpy as np
from scipy.stats import unitary_group

from repro.qoc.grape import (
    _GrapeObjective,
    _exp_derivative_factor,
    _slot_propagators_and_eig,
    control_stack_for,
)
from repro.qoc.hamiltonian import TransmonChain

from _bench_common import save_results

DT = 0.5
NUM_QUBITS = 3  # dim 8, the acceptance-gate dimension
SEGMENT_COUNTS = (128, 256)
GATED_SEGMENTS = 128
MIN_SPEEDUP = 2.0
WARMUP_EVALS = 3
TIMED_EVALS = 15
REPEATS = 5  # best-of-N medians to shrug off scheduler noise


def _legacy_objective(target, hardware, num_segments, dt):
    """The pre-fast-path objective, frozen verbatim."""
    target = np.asarray(target, dtype=complex)
    dim = target.shape[0]
    target_dag = target.conj().T
    drift = hardware.drift()
    controls_h, _ = hardware.controls()
    num_controls = len(controls_h)
    hk_stack = np.stack([np.asarray(h, dtype=complex) for h in controls_h])

    def objective(x):
        u = x.reshape(num_controls, num_segments)
        props, lams, qs = _slot_propagators_and_eig(drift, controls_h, u, dt)
        forward = np.empty((num_segments + 1, dim, dim), dtype=complex)
        forward[0] = np.eye(dim)
        for t in range(num_segments):
            forward[t + 1] = props[t] @ forward[t]
        total = forward[num_segments]
        back = np.empty((num_segments, dim, dim), dtype=complex)
        back[num_segments - 1] = target_dag
        for t in range(num_segments - 1, 0, -1):
            back[t - 1] = back[t] @ props[t]
        overlap = np.trace(target_dag @ total)
        fidelity = abs(overlap) ** 2 / dim**2
        qs_dag = np.conj(np.swapaxes(qs, 1, 2))
        factor = _exp_derivative_factor(lams, dt)
        left = back @ qs
        right = qs_dag @ forward[:num_segments]
        core = factor * np.swapaxes(right @ left, 1, 2)
        hk_eig = np.einsum(
            "tai,kij,tjb->ktab", qs_dag, hk_stack, qs, optimize=True
        )
        dz = np.einsum("tab,ktab->kt", core, hk_eig, optimize=True)
        grad = 2.0 * (np.conj(overlap) * dz).real / dim**2
        return 1.0 - fidelity, -grad.ravel()

    return objective


def _time_evals(objective: Callable, x: np.ndarray) -> float:
    """Median per-evaluation seconds, best of REPEATS timing rounds."""
    for _ in range(WARMUP_EVALS):
        objective(x)
    medians = []
    for _ in range(REPEATS):
        samples = []
        for _ in range(TIMED_EVALS):
            started = time.perf_counter()
            objective(x)
            samples.append(time.perf_counter() - started)
        medians.append(float(np.median(samples)))
    return min(medians)


def test_grape_kernel_speedup(benchmark):
    hardware = TransmonChain(NUM_QUBITS)
    target = unitary_group.rvs(hardware.dim, random_state=42)
    target_dag = target.conj().T
    controls_h, _ = hardware.controls()
    num_controls = len(controls_h)
    rng = np.random.default_rng(0)

    rows: List[Dict[str, float]] = []
    for num_segments in SEGMENT_COUNTS:
        x = rng.uniform(-0.3, 0.3, size=num_controls * num_segments)
        legacy = _legacy_objective(target, hardware, num_segments, DT)
        kernels = {
            kernel: _GrapeObjective(
                target_dag,
                hardware.drift(),
                control_stack_for(controls_h),
                num_segments,
                DT,
                kernel,
            )
            for kernel in ("fast", "reference")
        }
        # same point, same math: sanity before timing
        value_fast, grad_fast = kernels["fast"](x)
        value_leg, grad_leg = legacy(x)
        assert abs(value_fast - value_leg) < 1e-12
        np.testing.assert_allclose(grad_fast, grad_leg, atol=1e-12)

        times = {
            "legacy": _time_evals(legacy, x),
            "reference": _time_evals(kernels["reference"], x),
            "fast": _time_evals(kernels["fast"], x),
        }
        rows.append(
            {
                "dim": hardware.dim,
                "segments": num_segments,
                **{f"{name}_s": seconds for name, seconds in times.items()},
                "speedup_vs_legacy": times["legacy"] / times["fast"],
                "speedup_vs_reference": times["reference"] / times["fast"],
            }
        )

    print(f"\nGRAPE objective evaluation — dim {hardware.dim}")
    print(
        f"{'segments':>9}{'legacy (ms)':>13}{'ref (ms)':>10}"
        f"{'fast (ms)':>11}{'vs legacy':>11}{'vs ref':>8}"
    )
    for row in rows:
        print(
            f"{row['segments']:>9.0f}{1e3 * row['legacy_s']:>13.3f}"
            f"{1e3 * row['reference_s']:>10.3f}{1e3 * row['fast_s']:>11.3f}"
            f"{row['speedup_vs_legacy']:>10.2f}x"
            f"{row['speedup_vs_reference']:>7.2f}x"
        )

    save_results(
        "grape_kernel",
        {
            "dt": DT,
            "warmup_evals": WARMUP_EVALS,
            "timed_evals": TIMED_EVALS,
            "repeats": REPEATS,
            "rows": rows,
        },
        attach_metrics=False,
    )

    gated = next(r for r in rows if r["segments"] == GATED_SEGMENTS)
    assert gated["speedup_vs_legacy"] >= MIN_SPEEDUP, (
        f"fast kernel is {gated['speedup_vs_legacy']:.2f}x the legacy "
        f"objective at dim 8 / {GATED_SEGMENTS} segments; need "
        f">= {MIN_SPEEDUP}x"
    )
    benchmark.pedantic(
        lambda: kernels["fast"](x), rounds=3, iterations=5, warmup_rounds=1
    )

"""Table 1: EPOC vs PAQOC vs gate-based on the seven named circuits.

Paper result (Table 1): on simon, bb84, bv, qaoa, decod24, dnn and ham7,
EPOC reduces latency by 31.74% on average vs PAQOC and by 76.80% vs the
gate-based flow, with generally higher fidelity.  Absolute nanoseconds
depend on the hardware model; the asserted *shape* is the ordering
EPOC < PAQOC < gate-based on average and per-circuit EPOC wins.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import GateBasedFlow, PAQOCFlow
from repro.core import EPOCPipeline
from repro.qoc import PulseLibrary
from repro.workloads import table1_suite

from _bench_common import BENCH_EPOC, BENCH_QOC, save_results


def test_table1_comparison(benchmark):
    """Regenerate Table 1's latency and fidelity columns."""

    def sweep():
        suite = table1_suite()
        gate_flow = GateBasedFlow(BENCH_EPOC)
        paqoc_flow = PAQOCFlow(
            BENCH_EPOC,
            library=PulseLibrary(config=BENCH_QOC, match_global_phase=False),
        )
        epoc_pipe = EPOCPipeline(
            BENCH_EPOC,
            library=PulseLibrary(config=BENCH_QOC, match_global_phase=True),
        )
        rows = []
        for name, circuit in suite.items():
            gate = gate_flow.compile(circuit, name)
            paqoc = paqoc_flow.compile(circuit, name)
            epoc = epoc_pipe.compile(circuit, name)
            rows.append(
                {
                    "circuit": name,
                    "gate_latency_ns": gate.latency_ns,
                    "paqoc_latency_ns": paqoc.latency_ns,
                    "epoc_latency_ns": epoc.latency_ns,
                    "paqoc_fidelity": paqoc.fidelity,
                    "epoc_fidelity": epoc.fidelity,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nTable 1 — latency (ns) and fidelity per flow")
    print(
        f"{'circuit':<10}{'gate-based':>11}{'paqoc':>9}{'epoc':>9}"
        f"{'fid paqoc':>11}{'fid epoc':>10}"
    )
    for row in rows:
        print(
            f"{row['circuit']:<10}{row['gate_latency_ns']:>11.1f}"
            f"{row['paqoc_latency_ns']:>9.1f}{row['epoc_latency_ns']:>9.1f}"
            f"{row['paqoc_fidelity']:>11.3f}{row['epoc_fidelity']:>10.3f}"
        )
    vs_paqoc = float(
        np.mean(
            [
                100.0 * (1.0 - row["epoc_latency_ns"] / row["paqoc_latency_ns"])
                for row in rows
            ]
        )
    )
    vs_gate = float(
        np.mean(
            [
                100.0 * (1.0 - row["epoc_latency_ns"] / row["gate_latency_ns"])
                for row in rows
            ]
        )
    )
    print(
        f"\nEPOC latency reduction: {vs_paqoc:.2f}% vs PAQOC (paper: 31.74%), "
        f"{vs_gate:.2f}% vs gate-based (paper: 76.80%)"
    )
    save_results(
        "table1_comparison",
        {"rows": rows, "reduction_vs_paqoc_pct": vs_paqoc, "reduction_vs_gate_pct": vs_gate},
    )

    # shape assertions: the ordering the paper reports
    for row in rows:
        assert row["epoc_latency_ns"] < row["gate_latency_ns"], row
    assert vs_paqoc > 10.0
    assert vs_gate > 50.0

"""Figure 8: pulse latency with vs without the regrouping step.

Paper result: across 17 QASMBench programs, regrouping the synthesized
VUGs before QOC always shortens total circuit latency — an average 51.11%
reduction.  This benchmark runs both settings of the EPOC pipeline over
the same 17-program suite and prints the per-program latency pairs.
"""

from __future__ import annotations

import numpy as np

from _bench_common import save_results


def test_fig8_latency_grouping(benchmark, grouping_sweep):
    """Per-program latency: grouped vs ungrouped (the Figure 8 bars)."""
    rows = benchmark.pedantic(
        lambda: [
            {
                "circuit": name,
                "latency_grouped_ns": pair["grouped"].latency_ns,
                "latency_ungrouped_ns": pair["ungrouped"].latency_ns,
                "reduction_pct": 100.0
                * (1.0 - pair["grouped"].latency_ns / pair["ungrouped"].latency_ns)
                if pair["ungrouped"].latency_ns
                else 0.0,
            }
            for name, pair in grouping_sweep.items()
        ],
        rounds=1,
        iterations=1,
    )
    print("\nFigure 8 — latency with vs without grouping (ns)")
    print(f"{'circuit':<14}{'grouped':>10}{'no group':>10}{'saving':>9}")
    for row in rows:
        print(
            f"{row['circuit']:<14}{row['latency_grouped_ns']:>10.1f}"
            f"{row['latency_ungrouped_ns']:>10.1f}{row['reduction_pct']:>8.1f}%"
        )
    mean_saving = float(np.mean([row["reduction_pct"] for row in rows]))
    print(f"{'MEAN SAVING':<14}{'':>10}{'':>10}{mean_saving:>8.1f}%   (paper: 51.11%)")
    save_results("fig8_latency", {"rows": rows, "mean_saving_pct": mean_saving})

    # shape assertions: grouping never hurts beyond binary-search
    # granularity (10%), and the average saving is large
    for row in rows:
        assert (
            row["latency_grouped_ns"] <= 1.10 * row["latency_ungrouped_ns"] + 1e-6
        ), row
    # the paper reports 51% with 8-qubit regrouped blocks on a cluster;
    # at our 3-qubit regroup limit the saving is smaller but must stay
    # clearly positive on average (see EXPERIMENTS.md for the measurement)
    assert mean_saving >= 10.0

"""Tests for the run observer: lifecycle, ledger rows, off-path purity."""

import numpy as np
import pytest

from repro.config import EPOCConfig, ObsConfig, ENV_LEDGER
from repro.core import EPOCPipeline
from repro.obs import (
    EventBus,
    MemorySink,
    NULL_OBSERVER,
    RunLedger,
    RunObserver,
    observe_run,
    validate_event,
)
from repro.obs.events import get_bus, set_bus
from repro.qoc import PulseLibrary
from repro.workloads import ghz_state


@pytest.fixture(autouse=True)
def _no_env_ledger(monkeypatch):
    monkeypatch.delenv(ENV_LEDGER, raising=False)


class TestObserveRunOff:
    def test_none_config_is_null(self):
        assert observe_run(None, circuit="c", method="epoc") is NULL_OBSERVER

    def test_default_config_is_null(self):
        config = ObsConfig()
        assert not config.active
        assert observe_run(config, circuit="c", method="epoc") is NULL_OBSERVER

    def test_null_observer_is_inert(self):
        with NULL_OBSERVER as observer:
            with observer.stage("zx"):
                pass
            observer.block_progress("zx", 0, 1, 1)
            assert observer.chunk_progress("zx", 3) is None
            assert observer.record(None) is None


class TestRunObserverLifecycle:
    def test_event_envelope_and_stage_accounting(self, tmp_path):
        sink = MemorySink()
        bus = EventBus([sink])
        prev = set_bus(bus)
        try:
            observer = observe_run(
                ObsConfig(), circuit="ghz", method="epoc"
            )
            assert observer is not NULL_OBSERVER  # reuses the installed bus
            with observer:
                with observer.stage("zx"):
                    pass
                with observer.stage("zx"):  # repeated stages accumulate
                    pass
        finally:
            set_bus(prev)
        kinds = [e["event"] for e in sink.events]
        assert kinds == [
            "run_started",
            "stage_started",
            "stage_finished",
            "stage_started",
            "stage_finished",
            "run_finished",
        ]
        assert all(validate_event(e) == [] for e in sink.events)
        assert sink.events[-1]["status"] == "ok"
        assert list(observer.stage_seconds) == ["zx"]
        assert observer.wall_seconds > 0.0

    def test_error_status_on_exception(self):
        sink = MemorySink()
        prev = set_bus(EventBus([sink]))
        try:
            observer = observe_run(ObsConfig(), circuit="c", method="epoc")
            with pytest.raises(RuntimeError):
                with observer:
                    raise RuntimeError("boom")
        finally:
            set_bus(prev)
        assert sink.events[-1]["event"] == "run_finished"
        assert sink.events[-1]["status"] == "error"

    def test_owned_bus_installed_and_restored(self, tmp_path):
        config = ObsConfig(events_path=str(tmp_path / "events.jsonl"))
        observer = observe_run(config, circuit="c", method="epoc")
        outer = get_bus()
        with observer:
            assert get_bus() is observer.bus
            assert get_bus().enabled
        assert get_bus() is outer

    def test_chunk_progress_emits_every_block_once(self):
        sink = MemorySink()
        prev = set_bus(EventBus([sink]))
        try:
            observer = observe_run(ObsConfig(), circuit="c", method="epoc")
            with observer:
                on_chunk = observer.chunk_progress("synthesis", 5)
                on_chunk(0, ["a", "b"])
                on_chunk(2, ["c", "d", "e"])
        finally:
            set_bus(prev)
        progress = [e for e in sink.events if e["event"] == "block_progress"]
        assert [e["block"] for e in progress] == [0, 1, 2, 3, 4]
        assert [e["completed"] for e in progress] == [1, 2, 3, 4, 5]
        assert all(e["total"] == 5 for e in progress)


class TestLedgerRecording:
    def test_record_values_with_grape_counter(self, tmp_path):
        config = ObsConfig(ledger=True, ledger_path=str(tmp_path / "runs.db"))
        observer = observe_run(
            config, circuit="c", method="epoc", fingerprint="f1"
        )
        with observer:
            with observer.stage("pulse_generation"):
                # leaf code reaches the bus through the installed global
                get_bus().emit("grape_iteration", iterations=40, converged=True)
                get_bus().emit("grape_iteration", iterations=25, converged=False)
        run_id = observer.record_values(
            circuit="c", method="epoc", wall_seconds=1.0
        )
        record = RunLedger(str(tmp_path / "runs.db")).run(run_id)
        assert record.grape_searches == 2
        assert record.grape_iterations == 65
        assert record.fingerprint == "f1"
        assert "pulse_generation" in record.stages
        assert record.cpu_seconds >= 0.0
        assert record.resources["totals"]["peak_rss_kb"] > 0.0

    def test_ledger_only_config_still_collects_events(self, tmp_path):
        # no user-facing sink, but the grape counter still needs a live bus
        config = ObsConfig(ledger=True, ledger_path=str(tmp_path / "runs.db"))
        observer = observe_run(config, circuit="c", method="epoc")
        with observer:
            assert get_bus().enabled


class TestOutputUnchanged:
    def test_observed_compile_is_bitwise_identical(self, tmp_path, fast_epoc, fast_qoc):
        """Observability must never perturb what the compiler produces."""
        circuit = ghz_state(3)
        plain = EPOCPipeline(
            fast_epoc, library=PulseLibrary(config=fast_qoc)
        ).compile(circuit, "ghz")
        observed_config = fast_epoc.with_updates(
            obs=ObsConfig(
                events_path=str(tmp_path / "events.jsonl"),
                ledger=True,
                ledger_path=str(tmp_path / "runs.db"),
            )
        )
        observed = EPOCPipeline(
            observed_config, library=PulseLibrary(config=fast_qoc)
        ).compile(circuit, "ghz")
        assert observed.latency_ns == plain.latency_ns
        assert observed.fidelity == plain.fidelity
        assert len(observed.schedule.items) == len(plain.schedule.items)
        for a, b in zip(plain.schedule.items, observed.schedule.items):
            assert a.qubits == b.qubits
            assert a.start == b.start and a.end == b.end
            if a.pulse is not None or b.pulse is not None:
                assert np.array_equal(a.pulse.controls, b.pulse.controls)
        # and the run actually landed in the ledger
        assert len(RunLedger(str(tmp_path / "runs.db"))) == 1


class TestRacingDelta:
    def test_ledger_row_carries_only_this_runs_races(self, tmp_path):
        from repro.racing import RaceStats, set_race_stats

        stats = RaceStats()
        previous = set_race_stats(stats)
        try:
            # races recorded before the run must not leak into its row
            stats.record_race()
            stats.record("synthesis", "2q", "leap", "attempts")
            ledger = RunLedger(str(tmp_path / "runs.db"))
            observer = RunObserver(
                circuit="raced", method="epoc", ledger=ledger
            )
            with observer:
                stats.record_race()
                stats.record("synthesis", "2q", "qsearch", "attempts")
                stats.record("synthesis", "2q", "qsearch", "wins")
            run_id = observer.record_values(circuit="raced", method="epoc")
            racing = ledger.run(run_id).racing
            assert racing["races"] == 1
            assert racing["strategies"] == {
                "synthesis|2q|qsearch": {"attempts": 1, "wins": 1}
            }
        finally:
            set_race_stats(previous)

    def test_unraced_run_stores_empty_racing(self, tmp_path):
        from repro.racing import RaceStats, set_race_stats

        previous = set_race_stats(RaceStats())
        try:
            ledger = RunLedger(str(tmp_path / "runs.db"))
            observer = RunObserver(
                circuit="plain", method="epoc", ledger=ledger
            )
            with observer:
                pass
            run_id = observer.record_values(circuit="plain", method="epoc")
            assert ledger.run(run_id).racing == {}
        finally:
            set_race_stats(previous)

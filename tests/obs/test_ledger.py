"""Unit tests for the SQLite run ledger."""

import sqlite3

import pytest

from repro.obs import (
    LEDGER_SCHEMA_VERSION,
    LedgerError,
    RunLedger,
    RunRecord,
    resolve_ledger_path,
)
from repro.obs.ledger import DEFAULT_LEDGER_PATH, ENV_LEDGER


@pytest.fixture
def ledger(tmp_path):
    return RunLedger(str(tmp_path / "runs.db"))


def _record(**overrides):
    values = dict(
        circuit="ghz3",
        method="epoc",
        wall_seconds=1.5,
        latency_ns=96.0,
        fidelity=0.99,
        pulse_count=4,
        cache_hits=3,
        cache_misses=1,
        stages={"zx": 0.1, "synthesis": 1.0},
    )
    values.update(overrides)
    return RunRecord(**values)


class TestResolveLedgerPath:
    def test_explicit_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_LEDGER, "/elsewhere/runs.db")
        explicit = str(tmp_path / "mine.db")
        assert resolve_ledger_path(explicit) == explicit

    def test_env_path(self, monkeypatch, tmp_path):
        target = str(tmp_path / "env.db")
        monkeypatch.setenv(ENV_LEDGER, target)
        assert resolve_ledger_path() == target

    def test_truthy_env_means_default_path(self, monkeypatch):
        import os

        for value in ("1", "true", "YES", "on"):
            monkeypatch.setenv(ENV_LEDGER, value)
            assert resolve_ledger_path() == os.path.expanduser(
                DEFAULT_LEDGER_PATH
            )

    def test_unset_env_means_default_path(self, monkeypatch):
        import os

        monkeypatch.delenv(ENV_LEDGER, raising=False)
        assert resolve_ledger_path() == os.path.expanduser(DEFAULT_LEDGER_PATH)


class TestRunLedger:
    def test_roundtrip(self, ledger):
        run_id = ledger.record(_record(label="pr6", fingerprint="abc123"))
        assert run_id == 1
        loaded = ledger.run(run_id)
        assert loaded.circuit == "ghz3"
        assert loaded.method == "epoc"
        assert loaded.label == "pr6"
        assert loaded.fingerprint == "abc123"
        assert loaded.wall_seconds == 1.5
        assert loaded.stages == {"zx": 0.1, "synthesis": 1.0}
        assert loaded.created_at is not None
        assert loaded.hit_rate == pytest.approx(0.75)

    def test_hit_rate_none_without_cache_traffic(self):
        assert _record(cache_hits=0, cache_misses=0).hit_rate is None

    def test_runs_newest_first_with_filters(self, ledger):
        ledger.record(_record(circuit="a", method="epoc"))
        ledger.record(_record(circuit="b", method="accqoc"))
        ledger.record(_record(circuit="a", method="accqoc"))
        assert [r.circuit for r in ledger.runs()] == ["a", "b", "a"]
        assert [r.id for r in ledger.runs(circuit="a")] == [3, 1]
        assert [r.id for r in ledger.runs(method="accqoc")] == [3, 2]
        assert [r.id for r in ledger.runs(circuit="a", method="accqoc")] == [3]
        assert [r.id for r in ledger.runs(limit=1)] == [3]
        assert len(ledger) == 3

    def test_unknown_run_raises(self, ledger):
        with pytest.raises(LedgerError):
            ledger.run(99)

    def test_baseline_lifecycle(self, ledger):
        first = ledger.record(_record())
        second = ledger.record(_record())
        assert ledger.baseline() is None
        ledger.set_baseline(first)
        assert ledger.baseline().id == first
        ledger.set_baseline(second)  # re-pin overwrites
        assert ledger.baseline().id == second
        ledger.set_baseline(first, name="release")
        assert ledger.baseline("release").id == first
        assert ledger.clear_baseline() is True
        assert ledger.baseline() is None
        assert ledger.clear_baseline() is False

    def test_baseline_requires_existing_run(self, ledger):
        with pytest.raises(LedgerError):
            ledger.set_baseline(42)

    def test_reopen_preserves_rows(self, tmp_path):
        path = str(tmp_path / "runs.db")
        RunLedger(path).record(_record())
        assert len(RunLedger(path)) == 1

    def test_newer_schema_refused(self, tmp_path):
        path = str(tmp_path / "runs.db")
        RunLedger(path)
        with sqlite3.connect(path) as conn:
            conn.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(LEDGER_SCHEMA_VERSION + 1),),
            )
        with pytest.raises(LedgerError):
            RunLedger(path)

    def test_kind_and_extra_survive(self, ledger):
        run_id = ledger.record(
            _record(kind="bench", extra={"benchmark": "table1", "rounds": 3})
        )
        loaded = ledger.run(run_id)
        assert loaded.kind == "bench"
        assert loaded.extra == {"benchmark": "table1", "rounds": 3}

    def test_concurrent_style_appends(self, tmp_path):
        # two independent handles (separate connections) appending to the
        # same file, as concurrent batch invocations would
        path = str(tmp_path / "runs.db")
        first, second = RunLedger(path), RunLedger(path)
        for index in range(4):
            (first if index % 2 else second).record(_record())
        assert len(RunLedger(path)) == 4


class TestRacingColumn:
    def test_racing_roundtrip(self, ledger):
        racing = {
            "races": 3,
            "strategies": {
                "synthesis|2q|qsearch": {"attempts": 3, "wins": 2},
                "synthesis|2q|leap": {"attempts": 1, "wins": 1},
            },
            "breakers": {"synthesis:qsearch:2q": {"state": "closed"}},
        }
        run_id = ledger.record(_record(racing=racing))
        assert ledger.run(run_id).racing == racing

    def test_racing_defaults_empty(self, ledger):
        run_id = ledger.record(_record())
        assert ledger.run(run_id).racing == {}

    def test_v1_database_migrates_in_place(self, tmp_path):
        # build a schema-1 ledger by hand: the runs table without the
        # racing column and a meta row claiming version 1
        path = str(tmp_path / "v1.db")
        v1_columns = [c for c in __import__(
            "repro.obs.ledger", fromlist=["_COLUMNS"]
        )._COLUMNS if c != "racing"]
        conn = sqlite3.connect(path)
        conn.executescript(
            """
            CREATE TABLE runs (
                id INTEGER PRIMARY KEY AUTOINCREMENT,
                schema_version INTEGER NOT NULL,
                created_at REAL NOT NULL,
                kind TEXT NOT NULL, label TEXT,
                circuit TEXT NOT NULL, method TEXT NOT NULL,
                fingerprint TEXT, wall_seconds REAL, latency_ns REAL,
                fidelity REAL, pulse_count INTEGER, cache_hits INTEGER,
                cache_misses INTEGER, grape_searches INTEGER,
                grape_iterations INTEGER, degraded_blocks INTEGER,
                verification TEXT, cpu_seconds REAL, peak_rss_kb REAL,
                stages TEXT, resources TEXT, extra TEXT
            );
            CREATE TABLE baselines (name TEXT PRIMARY KEY, run_id INTEGER NOT NULL);
            CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT);
            INSERT INTO meta (key, value) VALUES ('schema_version', '1');
            """
        )
        conn.execute(
            f"INSERT INTO runs ({', '.join(v1_columns)}) VALUES "
            f"({', '.join('?' for _ in v1_columns)})",
            [
                1, 123.0, "run", None, "old", "epoc", None, 1.0, 50.0,
                0.99, 1, 0, 0, 0, 0, 0, None, 0.0, 0.0, "{}", "{}", "{}",
            ],
        )
        conn.commit()
        conn.close()

        ledger = RunLedger(path)  # opens and migrates
        old = ledger.runs(limit=5)[0]
        assert old.circuit == "old"
        assert old.racing == {}
        run_id = ledger.record(_record(racing={"races": 1, "strategies": {}}))
        assert ledger.run(run_id).racing == {"races": 1, "strategies": {}}
        with sqlite3.connect(path) as conn:
            version = conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()[0]
        assert int(version) == LEDGER_SCHEMA_VERSION

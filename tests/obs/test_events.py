"""Unit tests for the progress event schema, sinks and bus."""

import io
import json
import os

import pytest

from repro.obs import (
    EVENT_TYPES,
    EventBus,
    JsonlSink,
    MemorySink,
    NULL_BUS,
    TTYRenderer,
    validate_event,
)
from repro.obs.events import get_bus, set_bus


def _event(kind, **fields):
    return {"event": kind, "ts": 1.0, "pid": 42, **fields}


class TestValidateEvent:
    def test_every_kind_has_a_valid_example(self):
        examples = {
            "run_started": _event("run_started", circuit="c", method="epoc"),
            "stage_started": _event("stage_started", stage="zx"),
            "block_progress": _event(
                "block_progress", stage="synthesis", block=0, completed=1, total=3
            ),
            "grape_iteration": _event(
                "grape_iteration", iterations=17, converged=True
            ),
            "stage_finished": _event("stage_finished", stage="zx", seconds=0.1),
            "run_finished": _event(
                "run_finished", circuit="c", method="epoc", seconds=1.5, status="ok"
            ),
        }
        assert set(examples) == set(EVENT_TYPES)
        for kind, record in examples.items():
            assert validate_event(record) == [], kind

    def test_non_dict_rejected(self):
        assert validate_event([1, 2]) != []
        assert validate_event("run_started") != []

    def test_unknown_kind_rejected(self):
        assert validate_event(_event("teleport")) != []

    def test_missing_common_fields(self):
        record = {"event": "stage_started", "stage": "zx"}
        problems = validate_event(record)
        assert any("ts" in p for p in problems)
        assert any("pid" in p for p in problems)

    def test_missing_payload_field(self):
        record = _event("run_started", circuit="c")  # no method
        assert any("method" in p for p in validate_event(record))

    def test_bool_rejected_where_int_expected(self):
        record = _event(
            "block_progress", stage="s", block=True, completed=1, total=2
        )
        assert any("block" in p for p in validate_event(record))

    def test_unexpected_fields_rejected(self):
        record = _event("stage_started", stage="zx", extra="nope")
        assert any("extra" in p for p in validate_event(record))

    def test_block_progress_range(self):
        bad = _event("block_progress", stage="s", block=0, completed=0, total=3)
        assert any("range" in p for p in validate_event(bad))
        bad = _event("block_progress", stage="s", block=0, completed=4, total=3)
        assert any("range" in p for p in validate_event(bad))


class TestSinks:
    def test_jsonl_sink_roundtrip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        sink = JsonlSink(path)
        sink.handle(_event("stage_started", stage="zx"))
        sink.handle(_event("stage_finished", stage="zx", seconds=0.5))
        sink.close()
        lines = [json.loads(l) for l in open(path)]
        assert [l["event"] for l in lines] == ["stage_started", "stage_finished"]
        assert all(validate_event(l) == [] for l in lines)

    def test_jsonl_sink_ignores_after_close(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        sink = JsonlSink(path)
        sink.close()
        sink.handle(_event("stage_started", stage="zx"))  # must not raise
        assert open(path).read() == ""

    def test_memory_sink_buffers(self):
        sink = MemorySink()
        sink.handle(_event("stage_started", stage="zx"))
        assert len(sink.events) == 1

    def test_tty_renderer_plain_stream(self):
        stream = io.StringIO()
        renderer = TTYRenderer(stream=stream)
        renderer.handle(_event("run_started", circuit="ghz", method="epoc"))
        renderer.handle(_event("stage_started", stage="zx"))
        renderer.handle(
            _event("block_progress", stage="zx", block=0, completed=1, total=2)
        )
        renderer.handle(_event("stage_finished", stage="zx", seconds=0.25))
        renderer.handle(
            _event(
                "run_finished", circuit="ghz", method="epoc", seconds=1.0,
                status="ok",
            )
        )
        renderer.close()
        out = stream.getvalue()
        assert "compiling ghz [epoc]" in out
        assert "zx done in 0.25s" in out
        assert "finished ghz [ok]" in out
        # non-TTY output must not carry in-place redraw escapes
        assert "\x1b[2K" not in out


class TestEventBus:
    def test_emit_builds_envelope(self):
        sink = MemorySink()
        bus = EventBus([sink])
        bus.emit("stage_started", stage="zx")
        (event,) = sink.events
        assert event["event"] == "stage_started"
        assert event["pid"] == os.getpid()
        assert validate_event(event) == []

    def test_unknown_kind_raises(self):
        bus = EventBus([MemorySink()])
        with pytest.raises(ValueError):
            bus.emit("not_a_kind")

    def test_disabled_or_sinkless_bus_is_inert(self):
        assert not NULL_BUS.enabled
        assert not EventBus(enabled=True).enabled  # no sinks -> nothing listens
        sink = MemorySink()
        bus = EventBus([sink], enabled=False)
        bus.emit("stage_started", stage="zx")
        assert sink.events == []

    def test_replay_preserves_worker_identity(self):
        sink = MemorySink()
        bus = EventBus([sink])
        worker_event = _event("grape_iteration", iterations=3, converged=True)
        worker_event["pid"] = 9999
        bus.replay([worker_event])
        assert sink.events[0]["pid"] == 9999  # no rebasing on merge-back

    def test_broken_sink_never_aborts(self):
        class Broken:
            def handle(self, event):
                raise RuntimeError("boom")

            def close(self):
                raise RuntimeError("boom")

        good = MemorySink()
        bus = EventBus([Broken(), good])
        bus.emit("stage_started", stage="zx")  # must not raise
        assert len(good.events) == 1
        bus.close()  # must not raise

    def test_set_bus_roundtrip(self):
        bus = EventBus([MemorySink()])
        previous = set_bus(bus)
        try:
            assert get_bus() is bus
        finally:
            set_bus(previous)
        assert get_bus() is previous
        assert set_bus(None) is previous  # None -> NULL_BUS
        assert get_bus() is NULL_BUS
        set_bus(previous)

"""Unit tests for ledger comparison and regression detection."""

from repro.obs import (
    REGRESSION_EXIT_CODE,
    RunRecord,
    compare_runs,
    format_compare,
    format_run,
    format_run_table,
)


def _run(run_id, stages, wall=None, **overrides):
    values = dict(
        id=run_id,
        circuit="ghz3",
        method="epoc",
        wall_seconds=wall if wall is not None else sum(stages.values()),
        stages=dict(stages),
        created_at=0.0,
    )
    values.update(overrides)
    return RunRecord(**values)


class TestCompareRuns:
    def test_identical_runs_ok(self):
        base = _run(1, {"zx": 0.5, "synthesis": 2.0})
        result = compare_runs(base, _run(2, {"zx": 0.5, "synthesis": 2.0}))
        assert not result.regressed
        assert [d.stage for d in result.stages] == ["zx", "synthesis"]
        assert result.wall_delta.ratio == 1.0

    def test_stage_regression_detected(self):
        base = _run(1, {"zx": 0.5, "synthesis": 2.0})
        new = _run(2, {"zx": 1.5, "synthesis": 2.0})
        result = compare_runs(base, new)
        assert result.regressed
        regressed = {d.stage for d in result.regressions}
        assert "zx" in regressed
        delta = next(d for d in result.stages if d.stage == "zx")
        assert delta.ratio == 3.0

    def test_small_absolute_slowdowns_ignored(self):
        # 3x slower but only 2 ms absolute: scheduler noise, not a regression
        base = _run(1, {"zx": 0.001}, wall=10.0)
        new = _run(2, {"zx": 0.003}, wall=10.0)
        assert not compare_runs(base, new).regressed

    def test_min_seconds_tunable(self):
        base = _run(1, {"zx": 0.001}, wall=10.0)
        new = _run(2, {"zx": 0.003}, wall=10.0)
        assert compare_runs(base, new, min_seconds=0.001).regressed

    def test_threshold_tunable(self):
        base = _run(1, {"zx": 1.0}, wall=10.0)
        new = _run(2, {"zx": 1.2}, wall=10.0)
        assert not compare_runs(base, new).regressed  # +20% < default 25%
        assert compare_runs(base, new, threshold=0.1).regressed

    def test_wall_clock_regression(self):
        base = _run(1, {"zx": 0.1}, wall=1.0)
        new = _run(2, {"zx": 0.1}, wall=2.0)
        result = compare_runs(base, new)
        assert result.regressed
        assert result.wall_delta.regressed

    def test_one_sided_stages_never_regress(self):
        base = _run(1, {"zx": 0.5, "retired": 3.0}, wall=1.0)
        new = _run(2, {"zx": 0.5, "added": 9.0}, wall=1.0)
        result = compare_runs(base, new)
        assert not result.regressed
        stages = {d.stage: d for d in result.stages}
        assert stages["retired"].after is None
        assert stages["added"].before is None
        assert stages["added"].ratio is None

    def test_improvements_never_regress(self):
        base = _run(1, {"zx": 2.0})
        new = _run(2, {"zx": 0.5})
        assert not compare_runs(base, new).regressed


class TestFormatting:
    def test_exit_code_is_distinct(self):
        assert REGRESSION_EXIT_CODE == 3

    def test_format_run_table(self):
        out = format_run_table([_run(1, {"zx": 0.5}, fidelity=0.987)])
        assert "ghz3" in out and "epoc" in out and "0.9870" in out
        assert format_run_table([]) == "(ledger is empty)"

    def test_format_run_includes_stages_and_workers(self):
        record = _run(
            1,
            {"zx": 0.5},
            resources={
                "workers": {
                    "99": {"cpu_seconds": 1.0, "peak_rss_kb": 2048.0, "chunks": 2}
                }
            },
        )
        out = format_run(record)
        assert "zx" in out and "pid 99" in out

    def test_format_compare_verdicts(self):
        base = _run(1, {"zx": 0.5})
        ok = format_compare(compare_runs(base, _run(2, {"zx": 0.5})))
        assert "verdict: ok" in ok
        bad = format_compare(compare_runs(base, _run(2, {"zx": 5.0})))
        assert "REGRESSED" in bad and "zx" in bad


class TestAggregateStrategies:
    def _raced_run(self, run_id, racing):
        return _run(run_id, {"zx": 0.1}, racing=racing)

    def test_sums_across_runs(self):
        from repro.obs import aggregate_strategies

        records = [
            self._raced_run(
                1,
                {
                    "races": 2,
                    "strategies": {
                        "synthesis|2q|qsearch": {"attempts": 2, "wins": 1},
                        "synthesis|2q|leap": {"attempts": 1, "wins": 1},
                    },
                },
            ),
            self._raced_run(
                2,
                {
                    "races": 1,
                    "strategies": {
                        "synthesis|2q|qsearch": {"attempts": 1, "wins": 1},
                    },
                },
            ),
            _run(3, {"zx": 0.1}),  # unraced run is scanned but not counted
        ]
        report = aggregate_strategies(records)
        assert report.runs_scanned == 3
        assert report.raced_runs == 2
        assert report.races == 3
        by_key = {
            (s.site, s.signature, s.strategy): s for s in report.summaries
        }
        qsearch = by_key[("synthesis", "2q", "qsearch")]
        assert qsearch.attempts == 3
        assert qsearch.wins == 2
        assert qsearch.win_rate == 2 / 3
        assert by_key[("synthesis", "2q", "leap")].win_rate == 1.0

    def test_malformed_keys_skipped(self):
        from repro.obs import aggregate_strategies

        report = aggregate_strategies(
            [
                self._raced_run(
                    1, {"races": 1, "strategies": {"not-a-triple": {"wins": 9}}}
                )
            ]
        )
        assert report.summaries == []
        assert report.raced_runs == 1

    def test_format_empty_and_populated(self):
        from repro.obs import aggregate_strategies, format_strategies

        empty = format_strategies(aggregate_strategies([_run(1, {"zx": 0.1})]))
        assert "no raced runs" in empty
        populated = format_strategies(
            aggregate_strategies(
                [
                    self._raced_run(
                        1,
                        {
                            "races": 1,
                            "strategies": {
                                "qoc|2q|grape": {"attempts": 4, "wins": 3}
                            },
                        },
                    )
                ]
            )
        )
        assert "qoc" in populated and "grape" in populated
        assert "75.0%" in populated

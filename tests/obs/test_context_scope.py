"""Regression tests: run-state globals are context-scoped, not
process-global.

These pin the bugfix this PR ships: two threads (the compile service's
concurrent jobs) installing their own event bus / profiler / telemetry /
breaker board must never see each other's state, and a fresh thread
starts from the library defaults instead of inheriting whatever another
job installed.
"""

import threading

from repro import telemetry
from repro.obs.events import NULL_BUS, EventBus, MemorySink, get_bus, set_bus
from repro.obs.resources import NULL_PROFILER, get_profiler
from repro.racing.breaker import BreakerBoard, get_breaker_board, set_breaker_board
from repro.racing.stats import RaceStats, get_race_stats, set_race_stats


class TestBusScoping:
    def test_default_is_null_bus(self):
        assert get_bus() is NULL_BUS

    def test_set_bus_returns_previous(self):
        bus = EventBus([MemorySink()])
        try:
            assert set_bus(bus) is NULL_BUS
            assert get_bus() is bus
        finally:
            set_bus(None)
        assert get_bus() is NULL_BUS

    def test_threads_with_own_buses_stay_disjoint(self):
        """Two 'jobs' emit concurrently into their own buses; each sink
        sees only its own stream.  With a process-global bus the second
        install clobbered the first and one sink got both streams."""
        barrier = threading.Barrier(2)
        sinks = {}
        errors = []

        def job(name):
            sink = MemorySink()
            sinks[name] = sink
            set_bus(EventBus([sink]))
            barrier.wait(timeout=10)  # both buses installed before emitting
            try:
                for _ in range(25):
                    get_bus().emit("stage_started", stage=name)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=job, args=(name,))
            for name in ("alpha", "beta")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10)
        assert not errors
        for name in ("alpha", "beta"):
            events = sinks[name].events
            assert len(events) == 25
            assert {event["stage"] for event in events} == {name}

    def test_install_does_not_leak_into_new_threads(self):
        set_bus(EventBus([MemorySink()]))
        try:
            seen = []
            thread = threading.Thread(
                target=lambda: seen.append(get_bus())
            )
            thread.start()
            thread.join(10)
            # a fresh thread gets the default, not this thread's bus
            assert seen == [NULL_BUS]
        finally:
            set_bus(None)


class TestProfilerAndTelemetryScoping:
    def test_profiler_default_per_thread(self):
        seen = []
        thread = threading.Thread(target=lambda: seen.append(get_profiler()))
        thread.start()
        thread.join(10)
        assert seen == [NULL_PROFILER]

    def test_telemetry_session_is_thread_local(self):
        with telemetry.telemetry_session() as (tracer, registry):
            seen = []
            thread = threading.Thread(
                target=lambda: seen.append(
                    (telemetry.get_tracer(), telemetry.get_metrics())
                )
            )
            thread.start()
            thread.join(10)
            (other_tracer, other_metrics), = seen
            assert other_tracer is not tracer
            assert other_metrics is not registry
            assert telemetry.get_tracer() is tracer


class TestBoardAndStatsScoping:
    def test_breaker_board_is_context_scoped(self):
        board = BreakerBoard()
        previous = set_breaker_board(board)
        try:
            assert get_breaker_board() is board
            seen = []
            thread = threading.Thread(
                target=lambda: seen.append(get_breaker_board())
            )
            thread.start()
            thread.join(10)
            assert seen[0] is not board  # fresh thread, fresh board
        finally:
            set_breaker_board(previous)

    def test_race_stats_are_context_scoped(self):
        stats = RaceStats()
        previous = set_race_stats(stats)
        try:
            assert get_race_stats() is stats
            seen = []
            thread = threading.Thread(
                target=lambda: seen.append(get_race_stats())
            )
            thread.start()
            thread.join(10)
            assert seen[0] is not stats
        finally:
            set_race_stats(previous)

"""The merged observability stream from a parallel compile.

Satellite guarantee: the event stream a parallel run produces contains
every block exactly once (block progress is emitted parent-side as
chunks land, worker grape events relay through the merge-back), and the
recorded resource totals equal the parent stage usage plus the sum of
the per-worker snapshots.
"""

import json
import os

import pytest

from repro.circuits import QuantumCircuit
from repro.config import ENV_LEDGER, ObsConfig, ParallelConfig
from repro.core import EPOCPipeline
from repro.obs import RunLedger, validate_event
from repro.qoc import PulseLibrary
from repro.workloads import ghz_state


@pytest.fixture(autouse=True)
def _no_env_ledger(monkeypatch):
    monkeypatch.delenv(ENV_LEDGER, raising=False)


@pytest.fixture
def circuit():
    qc = QuantumCircuit(3)
    qc.h(0)
    qc.cx(0, 1)
    qc.t(1)
    qc.cx(1, 2)
    qc.h(2)
    qc.h(0)
    qc.cx(0, 1)
    return qc


class TestParallelMergeBack:
    def test_merged_stream_and_resource_totals(
        self, circuit, fast_epoc, fast_qoc, tmp_path
    ):
        events_path = str(tmp_path / "events.jsonl")
        ledger_path = str(tmp_path / "runs.db")
        config = fast_epoc.with_updates(
            parallel=ParallelConfig(workers=2, chunk_size=2),
            obs=ObsConfig(
                events_path=events_path, ledger=True, ledger_path=ledger_path
            ),
        )
        report = EPOCPipeline(
            config, library=PulseLibrary(config=fast_qoc)
        ).compile(circuit, "par")
        assert report.pulse_count > 0

        events = [json.loads(line) for line in open(events_path)]
        assert events, "parallel run emitted no events"
        for event in events:
            assert validate_event(event) == [], event

        # -- every block exactly once, per stage --------------------------
        for stage in ("synthesis", "pulse_generation"):
            progress = [
                e
                for e in events
                if e["event"] == "block_progress" and e["stage"] == stage
            ]
            assert progress, f"no block_progress for {stage}"
            totals = {e["total"] for e in progress}
            assert len(totals) == 1, f"inconsistent totals for {stage}"
            (total,) = totals
            assert len(progress) == total
            # completion counter is a permutation-free 1..N sequence
            assert sorted(e["completed"] for e in progress) == list(
                range(1, total + 1)
            )
            # and no block is reported twice
            blocks = [e["block"] for e in progress]
            assert len(set(blocks)) == len(blocks)

        # -- worker events relayed with their own identity -----------------
        parent_pid = os.getpid()
        grape = [e for e in events if e["event"] == "grape_iteration"]
        assert grape, "no GRAPE activity reached the merged stream"
        worker_pids = {e["pid"] for e in grape} - {parent_pid}
        assert worker_pids, "grape events did not come from worker processes"

        # -- ledger resource totals == parent stages + worker snapshots ----
        (record,) = RunLedger(ledger_path).runs(limit=1)
        workers = record.resources["workers"]
        assert set(map(int, workers)) >= worker_pids
        stage_entries = record.resources["stages"].values()
        worker_entries = workers.values()
        expected_cpu = sum(s["cpu_seconds"] for s in stage_entries) + sum(
            w["cpu_seconds"] for w in worker_entries
        )
        expected_peak = max(
            [s["peak_rss_kb"] for s in stage_entries]
            + [w["peak_rss_kb"] for w in worker_entries]
        )
        totals = record.resources["totals"]
        assert totals["cpu_seconds"] == pytest.approx(expected_cpu)
        assert totals["peak_rss_kb"] == pytest.approx(expected_peak)
        assert record.cpu_seconds == pytest.approx(expected_cpu)
        assert record.grape_searches == len(grape)

    def test_serial_stream_covers_every_pulse_item(
        self, fast_epoc, fast_qoc, tmp_path
    ):
        events_path = str(tmp_path / "events.jsonl")
        config = fast_epoc.with_updates(
            obs=ObsConfig(events_path=events_path)
        )
        EPOCPipeline(config, library=PulseLibrary(config=fast_qoc)).compile(
            ghz_state(3), "ghz"
        )
        events = [json.loads(line) for line in open(events_path)]
        progress = [
            e
            for e in events
            if e["event"] == "block_progress"
            and e["stage"] == "pulse_generation"
        ]
        assert progress
        (total,) = {e["total"] for e in progress}
        assert sorted(e["completed"] for e in progress) == list(
            range(1, total + 1)
        )
        # serial run: single process end to end
        assert {e["pid"] for e in events} == {os.getpid()}

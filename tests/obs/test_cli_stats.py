"""CLI tests for ``repro stats`` and the observability compile flags."""

import json

import pytest

from repro.cli import build_parser, main
from repro.config import ENV_LEDGER
from repro.obs import REGRESSION_EXIT_CODE, RunLedger, RunRecord
from repro.workloads import ghz_state


@pytest.fixture(autouse=True)
def _no_env_ledger(monkeypatch):
    monkeypatch.delenv(ENV_LEDGER, raising=False)


@pytest.fixture
def qasm_file(tmp_path):
    path = tmp_path / "ghz.qasm"
    path.write_text(ghz_state(3).to_qasm())
    return str(path)


@pytest.fixture
def ledger_path(tmp_path):
    path = str(tmp_path / "runs.db")
    ledger = RunLedger(path)
    ledger.record(
        RunRecord(
            circuit="ghz3",
            method="epoc",
            wall_seconds=2.0,
            stages={"zx": 0.2, "synthesis": 1.5},
        )
    )
    ledger.record(
        RunRecord(
            circuit="ghz3",
            method="epoc",
            wall_seconds=2.1,
            stages={"zx": 0.21, "synthesis": 1.55},
        )
    )
    return path


class TestParser:
    def test_obs_flags_on_compile(self):
        args = build_parser().parse_args(
            [
                "compile",
                "x.qasm",
                "--progress",
                "--progress-events",
                "ev.jsonl",
                "--ledger",
                "runs.db",
                "--label",
                "pr6",
                "--metrics-prom",
                "m.prom",
            ]
        )
        from repro.cli import _config

        obs = _config(args).obs
        assert obs.progress is True
        assert obs.events_path == "ev.jsonl"
        assert obs.ledger is True
        assert obs.ledger_path == "runs.db"
        assert obs.label == "pr6"

    def test_bare_ledger_flag_enables_default_path(self):
        args = build_parser().parse_args(["compile", "x.qasm", "--ledger"])
        from repro.cli import _config

        obs = _config(args).obs
        assert obs.ledger is True
        assert obs.ledger_path is None

    def test_obs_defaults_off(self):
        args = build_parser().parse_args(["compile", "x.qasm"])
        from repro.cli import _config

        assert not _config(args).obs.active


class TestStatsCommands:
    def test_list(self, ledger_path, capsys):
        assert main(["stats", "--ledger", ledger_path, "list"]) == 0
        out = capsys.readouterr().out
        assert "ghz3" in out and "epoc" in out

    def test_show(self, ledger_path, capsys):
        assert main(["stats", "--ledger", ledger_path, "show", "1"]) == 0
        out = capsys.readouterr().out
        assert "run 1" in out and "zx" in out

    def test_show_unknown_run_fails(self, ledger_path, capsys):
        assert main(["stats", "--ledger", ledger_path, "show", "99"]) == 1
        assert "error" in capsys.readouterr().err

    def test_compare_ok(self, ledger_path, capsys):
        assert main(["stats", "--ledger", ledger_path, "compare", "1", "2"]) == 0
        assert "verdict: ok" in capsys.readouterr().out

    def test_compare_defaults_to_two_most_recent(self, ledger_path, capsys):
        assert main(["stats", "--ledger", ledger_path, "compare"]) == 0
        out = capsys.readouterr().out
        assert "comparing run 1" in out and "run 2" in out

    def test_compare_detects_regression(self, ledger_path, capsys):
        RunLedger(ledger_path).record(
            RunRecord(
                circuit="ghz3",
                method="epoc",
                wall_seconds=4.0,
                stages={"zx": 0.2, "synthesis": 3.5},
            )
        )
        code = main(["stats", "--ledger", ledger_path, "compare", "1", "3"])
        assert code == REGRESSION_EXIT_CODE
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "synthesis" in out

    def test_compare_single_id_rejected(self, ledger_path, capsys):
        assert main(["stats", "--ledger", ledger_path, "compare", "1"]) == 1
        assert "error" in capsys.readouterr().err

    def test_compare_against_baseline(self, ledger_path, capsys):
        assert main(["stats", "--ledger", ledger_path, "baseline", "1"]) == 0
        capsys.readouterr()
        code = main(
            ["stats", "--ledger", ledger_path, "compare", "--against-baseline"]
        )
        assert code == 0
        assert "comparing run 1" in capsys.readouterr().out

    def test_compare_against_missing_baseline_fails(self, ledger_path, capsys):
        code = main(
            ["stats", "--ledger", ledger_path, "compare", "--against-baseline"]
        )
        assert code == 1
        assert "baseline" in capsys.readouterr().err

    def test_baseline_show_and_clear(self, ledger_path, capsys):
        main(["stats", "--ledger", ledger_path, "baseline", "2"])
        capsys.readouterr()
        assert main(["stats", "--ledger", ledger_path, "baseline"]) == 0
        assert "run 2" in capsys.readouterr().out
        assert (
            main(["stats", "--ledger", ledger_path, "baseline", "--clear"]) == 0
        )
        capsys.readouterr()
        assert main(["stats", "--ledger", ledger_path, "baseline"]) == 1

    def test_empty_ledger_compare_fails(self, tmp_path, capsys):
        path = str(tmp_path / "empty.db")
        RunLedger(path)
        assert main(["stats", "--ledger", path, "compare"]) == 1
        assert "fewer than two" in capsys.readouterr().err

    def test_threshold_flags(self, ledger_path, capsys):
        # +5% wall delta trips a 1% threshold with no absolute floor
        code = main(
            [
                "stats",
                "--ledger",
                ledger_path,
                "compare",
                "1",
                "2",
                "--threshold",
                "0.01",
                "--min-seconds",
                "0.0",
            ]
        )
        assert code == REGRESSION_EXIT_CODE


class TestCompileWithObs:
    def test_compile_writes_events_ledger_and_prom(
        self, qasm_file, tmp_path, capsys
    ):
        events = str(tmp_path / "events.jsonl")
        db = str(tmp_path / "runs.db")
        prom = str(tmp_path / "metrics.prom")
        code = main(
            [
                "compile",
                qasm_file,
                "--qubit-limit",
                "2",
                "--dt",
                "1.0",
                "--fidelity",
                "0.98",
                "--progress-events",
                events,
                "--ledger",
                db,
                "--label",
                "cli-test",
                "--metrics-prom",
                prom,
            ]
        )
        assert code == 0
        from repro.obs import validate_event

        lines = [json.loads(line) for line in open(events)]
        assert lines and all(validate_event(e) == [] for e in lines)
        assert lines[0]["event"] == "run_started"
        assert lines[-1]["event"] == "run_finished"
        (record,) = RunLedger(db).runs(limit=1)
        assert record.method == "epoc"
        assert record.label == "cli-test"
        assert record.grape_searches > 0
        prom_text = open(prom).read()
        assert prom_text.startswith("# TYPE")

    def test_progress_renders_to_stderr(self, qasm_file, capsys):
        code = main(
            ["compile", qasm_file, "--flow", "gate-based", "--progress"]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "compiling" in err and "finished" in err

"""Unit tests for the resource profiler."""

from repro.obs import NULL_PROFILER, ResourceProfiler, current_rusage
from repro.obs.resources import get_profiler, set_profiler


class TestCurrentRusage:
    def test_reports_positive_usage(self):
        usage = current_rusage()
        assert usage["cpu_seconds"] > 0.0
        assert usage["peak_rss_kb"] > 0.0


class TestResourceProfiler:
    def test_stage_accounting(self):
        profiler = ResourceProfiler()
        with profiler.stage("zx"):
            sum(i * i for i in range(200_000))
        entry = profiler.stages["zx"]
        assert entry["wall_seconds"] > 0.0
        assert entry["peak_rss_kb"] > 0.0

    def test_repeated_stage_accumulates_cpu_and_maxes_rss(self):
        profiler = ResourceProfiler()
        for _ in range(2):
            with profiler.stage("synthesis"):
                sum(i * i for i in range(100_000))
        assert len(profiler.stages) == 1
        entry = profiler.stages["synthesis"]
        assert entry["cpu_seconds"] >= 0.0
        assert entry["peak_rss_kb"] == current_rusage()["peak_rss_kb"]

    def test_disabled_profiler_records_nothing(self):
        profiler = ResourceProfiler(enabled=False)
        with profiler.stage("zx"):
            pass
        assert profiler.stages == {}
        profiler.merge_worker_state({"pid": 1, "cpu_seconds": 1.0})
        assert profiler.workers == {}

    def test_merge_worker_state_sums_cpu_maxes_rss(self):
        profiler = ResourceProfiler()
        profiler.merge_worker_state(
            {"pid": 7, "cpu_seconds": 1.0, "peak_rss_kb": 100.0}
        )
        profiler.merge_worker_state(
            {"pid": 7, "cpu_seconds": 0.5, "peak_rss_kb": 80.0}
        )
        profiler.merge_worker_state(
            {"pid": 8, "cpu_seconds": 2.0, "peak_rss_kb": 300.0}
        )
        assert profiler.workers[7] == {
            "cpu_seconds": 1.5,
            "peak_rss_kb": 100.0,
            "chunks": 2.0,
        }
        assert profiler.workers[8]["chunks"] == 1.0
        profiler.merge_worker_state(None)  # tolerated
        totals = profiler.totals()
        assert totals["cpu_seconds"] == 3.5
        assert totals["peak_rss_kb"] == 300.0

    def test_totals_combine_stages_and_workers(self):
        profiler = ResourceProfiler()
        with profiler.stage("zx"):
            pass
        profiler.merge_worker_state(
            {"pid": 9, "cpu_seconds": 1.0, "peak_rss_kb": 10.0}
        )
        totals = profiler.totals()
        expected_cpu = (
            sum(s["cpu_seconds"] for s in profiler.stages.values()) + 1.0
        )
        assert totals["cpu_seconds"] == expected_cpu
        assert totals["peak_rss_kb"] == max(
            s["peak_rss_kb"] for s in profiler.stages.values()
        )

    def test_snapshot_is_json_shaped(self):
        import json

        profiler = ResourceProfiler()
        with profiler.stage("zx"):
            pass
        profiler.merge_worker_state(
            {"pid": 9, "cpu_seconds": 1.0, "peak_rss_kb": 10.0}
        )
        snapshot = profiler.snapshot()
        assert set(snapshot) == {"stages", "workers", "totals"}
        assert "9" in snapshot["workers"]  # pids stringified for JSON
        json.dumps(snapshot)

    def test_trace_malloc_captures_sites(self):
        profiler = ResourceProfiler(trace_malloc=True)
        with profiler.stage("alloc"):
            _ = [bytearray(1024) for _ in range(100)]
        profiler.close()
        sites = profiler.stages["alloc"]["top_allocations"]
        assert sites and all("site" in s and "size_kb" in s for s in sites)

    def test_null_profiler_and_globals(self):
        assert not NULL_PROFILER.enabled
        profiler = ResourceProfiler()
        previous = set_profiler(profiler)
        try:
            assert get_profiler() is profiler
        finally:
            set_profiler(previous)
        assert set_profiler(None) is previous
        assert get_profiler() is NULL_PROFILER
        set_profiler(previous)

"""Tests for VUG templates, instantiation and the synthesis engines."""

import numpy as np
import pytest

from repro.exceptions import SynthesisError
from repro.circuits import QuantumCircuit
from repro.circuits.gates import gate_matrix
from repro.linalg import equal_up_to_global_phase, hs_distance, random_unitary
from repro.partition import CircuitBlock
from repro.synthesis import (
    VUGTemplate,
    instantiate,
    leap_synthesize,
    qsd_synthesize,
    qsearch_synthesize,
    synthesize_block,
    synthesize_unitary,
)
from repro.synthesis.vug import u3_gradients


class TestVUGTemplate:
    def test_initial_template(self):
        t = VUGTemplate.initial(3)
        assert t.num_params == 9
        assert t.cnot_count == 0

    def test_extension(self):
        t = VUGTemplate.initial(2).extended(0, 1)
        assert t.cnot_count == 1
        assert t.num_params == 12

    def test_structure_key_ignores_params(self):
        a = VUGTemplate.initial(2).extended(0, 1)
        b = VUGTemplate.initial(2).extended(0, 1)
        assert a.structure_key() == b.structure_key()

    def test_matrix_is_unitary(self, rng):
        t = VUGTemplate.initial(2).extended(0, 1)
        params = rng.uniform(-np.pi, np.pi, t.num_params)
        m = t.matrix(params)
        assert np.allclose(m.conj().T @ m, np.eye(4), atol=1e-10)

    def test_matrix_matches_circuit(self, rng):
        t = VUGTemplate.initial(2).extended(1, 0)
        params = rng.uniform(-np.pi, np.pi, t.num_params)
        assert np.allclose(t.matrix(params), t.to_circuit(params).unitary(), atol=1e-9)

    def test_gradient_matches_finite_difference(self, rng):
        t = VUGTemplate.initial(2).extended(0, 1)
        params = rng.uniform(-1.0, 1.0, t.num_params)
        _, grads = t.matrix_and_gradient(params)
        eps = 1e-6
        for k in range(t.num_params):
            shifted = params.copy()
            shifted[k] += eps
            numeric = (t.matrix(shifted) - t.matrix(params)) / eps
            assert np.allclose(grads[k], numeric, atol=1e-4), f"param {k}"

    def test_invalid_ops_rejected(self):
        with pytest.raises(SynthesisError):
            VUGTemplate(2, (("vug", (0, 1)),))
        with pytest.raises(SynthesisError):
            VUGTemplate(2, (("cx", (0,)),))
        with pytest.raises(SynthesisError):
            VUGTemplate(2, (("magic", (0,)),))
        with pytest.raises(SynthesisError):
            VUGTemplate(2, (("vug", (5,)),))


class TestU3Gradients:
    def test_against_finite_difference(self, rng):
        from repro.circuits.gates import u3_matrix

        theta, phi, lam = rng.uniform(-2, 2, 3)
        grads = u3_gradients(theta, phi, lam)
        eps = 1e-7
        base = u3_matrix(theta, phi, lam)
        for k, (dt, dp, dl) in enumerate([(eps, 0, 0), (0, eps, 0), (0, 0, eps)]):
            numeric = (u3_matrix(theta + dt, phi + dp, lam + dl) - base) / eps
            assert np.allclose(grads[k], numeric, atol=1e-5)


class TestInstantiate:
    def test_single_qubit_exact(self, rng):
        t = VUGTemplate.initial(1)
        target = random_unitary(2, rng)
        fit = instantiate(t, target)
        assert fit.distance < 1e-9

    def test_warm_start_used(self, rng):
        t = VUGTemplate.initial(1)
        target = random_unitary(2, rng)
        fit = instantiate(t, target)
        again = instantiate(t, target, initial=fit.params, restarts=1)
        assert again.distance < 1e-9

    def test_unreachable_target_nonzero_distance(self, rng):
        # a single-qubit layer cannot produce an entangling unitary
        t = VUGTemplate.initial(2)
        fit = instantiate(t, gate_matrix("cx"))
        assert fit.distance > 0.05


class TestQSearch:
    def test_single_qubit_shortcut(self, rng):
        target = random_unitary(2, rng)
        result = qsearch_synthesize(target)
        assert result.method == "euler"
        assert equal_up_to_global_phase(target, result.circuit.unitary(), atol=1e-8)

    def test_cnot_found_with_one_cnot(self):
        result = qsearch_synthesize(gate_matrix("cx"))
        assert result.cnot_count <= 1
        assert result.distance < 1e-6

    def test_random_two_qubit_needs_three(self, rng):
        target = random_unitary(4, rng)
        result = qsearch_synthesize(target, max_cnots=4)
        assert result.cnot_count == 3  # the known optimum for generic SU(4)
        assert result.distance < 1e-6

    def test_budget_exhaustion_raises(self, rng):
        target = random_unitary(8, rng)
        with pytest.raises(SynthesisError):
            qsearch_synthesize(target, max_cnots=2, max_nodes=5)

    def test_bad_dimension_rejected(self):
        with pytest.raises(SynthesisError):
            qsearch_synthesize(np.eye(3))

    def test_coupling_restriction(self, rng):
        target = random_unitary(4, rng)
        result = qsearch_synthesize(target, couplings=[(0, 1)])
        for gate in result.circuit:
            if gate.name == "cx":
                assert gate.qubits == (0, 1)


class TestQSD:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_exact_decomposition(self, n, rng):
        target = random_unitary(2**n, rng)
        circuit = qsd_synthesize(target)
        assert abs(hs_distance(target, circuit.unitary())) < 1e-8

    def test_gate_vocabulary(self, rng):
        circuit = qsd_synthesize(random_unitary(8, rng))
        assert {g.name for g in circuit} <= {"u3", "cx", "ry", "rz"}

    def test_identity_compact(self):
        circuit = qsd_synthesize(np.eye(4))
        assert len(circuit) <= 6

    def test_bad_dimension_rejected(self):
        with pytest.raises(SynthesisError):
            qsd_synthesize(np.eye(6))


class TestLeap:
    def test_structured_target(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1).t(1).cx(0, 1)
        result = leap_synthesize(qc.unitary(), max_cnots=4)
        assert result.distance < 1e-6
        assert result.cnot_count <= 4

    def test_budget_raises(self, rng):
        with pytest.raises(SynthesisError):
            leap_synthesize(random_unitary(8, rng), max_cnots=2)


class TestDispatcher:
    def test_never_fails_on_hard_targets(self, rng):
        target = random_unitary(8, rng)
        # starve the heuristics so the QSD fallback fires
        result = synthesize_unitary(target, max_cnots=3, qsearch_max_nodes=2)
        assert result.method == "qsd"
        assert result.distance < 1e-6

    def test_easy_target_uses_search(self):
        result = synthesize_unitary(gate_matrix("cx"))
        assert result.method == "qsearch"
        assert result.cnot_count <= 1


class TestSynthesizeBlock:
    def test_keeps_original_when_not_better(self):
        local = QuantumCircuit(2).cx(0, 1)
        block = CircuitBlock(qubits=(0, 1), circuit=local)
        out = synthesize_block(block)
        assert out.circuit.depth() <= 1

    def test_improves_redundant_block(self):
        local = QuantumCircuit(2)
        for _ in range(3):
            local.cx(0, 1)
            local.cx(0, 1)
        local.cx(0, 1)
        block = CircuitBlock(qubits=(0, 1), circuit=local)
        out = synthesize_block(block)
        assert out.circuit.two_qubit_count <= 1
        assert equal_up_to_global_phase(
            block.unitary(), out.unitary(), atol=1e-5
        )

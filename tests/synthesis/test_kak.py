"""Tests for the KAK (Cartan) decomposition of two-qubit unitaries."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SynthesisError
from repro.circuits.gates import gate_matrix
from repro.linalg import equal_up_to_global_phase, random_unitary
from repro.synthesis import (
    kak_decompose,
    kak_synthesize,
    weyl_coordinates,
)


def _sorted_abs(coords):
    return sorted(abs(c) for c in coords)


class TestDecompose:
    def test_reconstruction_random(self, rng):
        for _ in range(10):
            u = random_unitary(4, rng)
            d = kak_decompose(u)
            assert equal_up_to_global_phase(u, d.reconstruct(), atol=1e-7)

    def test_local_unitary_zero_coefficients(self, rng):
        u = np.kron(random_unitary(2, rng), random_unitary(2, rng))
        coords = weyl_coordinates(u)
        assert _sorted_abs(coords) == pytest.approx([0.0, 0.0, 0.0], abs=1e-7)

    def test_cnot_coordinates(self):
        coords = weyl_coordinates(gate_matrix("cx"))
        assert _sorted_abs(coords) == pytest.approx(
            [0.0, 0.0, math.pi / 4], abs=1e-7
        )

    def test_cz_matches_cnot_class(self):
        assert _sorted_abs(weyl_coordinates(gate_matrix("cz"))) == pytest.approx(
            _sorted_abs(weyl_coordinates(gate_matrix("cx"))), abs=1e-7
        )

    def test_swap_coordinates(self):
        coords = weyl_coordinates(gate_matrix("swap"))
        assert _sorted_abs(coords) == pytest.approx(
            [math.pi / 4] * 3, abs=1e-7
        )

    def test_local_invariance(self, rng):
        from repro.synthesis.kak import local_invariants

        u = random_unitary(4, rng)
        left = np.kron(random_unitary(2, rng), random_unitary(2, rng))
        right = np.kron(random_unitary(2, rng), random_unitary(2, rng))
        base = local_invariants(u)
        assert np.allclose(local_invariants(left @ u @ right), base, atol=1e-6)

    def test_local_invariants_distinguish_classes(self):
        from repro.synthesis.kak import local_invariants

        cx = local_invariants(gate_matrix("cx"))
        swap = local_invariants(gate_matrix("swap"))
        identity = local_invariants(np.eye(4))
        assert not np.allclose(cx, swap, atol=1e-6)
        assert not np.allclose(cx, identity, atol=1e-6)

    def test_cz_cx_same_class(self):
        from repro.synthesis.kak import local_invariants

        assert np.allclose(
            local_invariants(gate_matrix("cz")),
            local_invariants(gate_matrix("cx")),
            atol=1e-6,
        )

    def test_global_phase_recorded(self, rng):
        u = random_unitary(4, rng)
        d = kak_decompose(np.exp(0.8j) * u)
        assert equal_up_to_global_phase(u, d.reconstruct(), atol=1e-7)

    def test_wrong_shape_rejected(self):
        with pytest.raises(SynthesisError):
            kak_decompose(np.eye(8))

    def test_non_unitary_rejected(self):
        with pytest.raises(SynthesisError):
            kak_decompose(2.0 * np.eye(4))


class TestSynthesize:
    def test_exact_three_cnots(self, rng):
        for _ in range(4):
            u = random_unitary(4, rng)
            circuit = kak_synthesize(u)
            assert circuit.count_ops().get("cx", 0) == 3
            assert equal_up_to_global_phase(u, circuit.unitary(), atol=1e-6)

    def test_named_gates(self):
        for name in ("cx", "cz", "swap", "iswap"):
            u = gate_matrix(name)
            circuit = kak_synthesize(u)
            assert equal_up_to_global_phase(u, circuit.unitary(), atol=1e-6), name

    def test_local_target(self, rng):
        u = np.kron(random_unitary(2, rng), random_unitary(2, rng))
        circuit = kak_synthesize(u)
        assert equal_up_to_global_phase(u, circuit.unitary(), atol=1e-6)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_kak_round_trip_property(seed):
    """Property: decompose + reconstruct is the identity (mod phase)."""
    u = random_unitary(4, np.random.default_rng(seed))
    d = kak_decompose(u)
    assert equal_up_to_global_phase(u, d.reconstruct(), atol=1e-6)

"""Integration tests: the EPOC pipeline and all baseline flows.

These use the fast QOC configuration; they verify structure, ordering
relations between the flows, and metric bookkeeping rather than absolute
nanosecond values.
"""

import numpy as np
import pytest

from repro.baselines import AccQOCFlow, GateBasedFlow, PAQOCFlow
from repro.circuits import QuantumCircuit
from repro.core import EPOCPipeline, esp_fidelity
from repro.core.metrics import CompilationReport
from repro.qoc import PulseLibrary
from repro.workloads import ghz_state, qaoa_maxcut


@pytest.fixture
def small_circuit():
    qc = QuantumCircuit(3)
    qc.h(0)
    qc.cx(0, 1)
    qc.t(1)
    qc.cx(1, 2)
    qc.h(2)
    return qc


class TestESP:
    def test_empty_product_is_one(self):
        assert esp_fidelity([]) == 1.0

    def test_product(self):
        assert esp_fidelity([0.1, 0.2]) == pytest.approx(0.9 * 0.8)

    def test_clamped_at_zero(self):
        assert esp_fidelity([1.5]) == 0.0


class TestGateBased:
    def test_compile_report(self, small_circuit, fast_epoc):
        report = GateBasedFlow(fast_epoc).compile(small_circuit, "small")
        assert report.method == "gate-based"
        assert report.latency_ns > 0
        assert 0 < report.fidelity <= 1
        assert report.pulse_count == report.stats["native_gates"]

    def test_latency_scales_with_two_qubit_count(self, fast_epoc):
        flow = GateBasedFlow(fast_epoc)
        short = flow.compile(ghz_state(3), "ghz3")
        long = flow.compile(ghz_state(5), "ghz5")
        assert long.latency_ns > short.latency_ns

    def test_summary_row_formats(self, small_circuit, fast_epoc):
        report = GateBasedFlow(fast_epoc).compile(small_circuit, "small")
        row = report.summary_row()
        assert "gate-based" in row and "small" in row


class TestEPOCPipeline:
    def test_compile_structure(self, small_circuit, fast_epoc):
        report = EPOCPipeline(fast_epoc).compile(small_circuit, "small")
        assert report.method == "epoc"
        assert report.latency_ns > 0
        assert report.stats["qoc_items"] >= 1
        assert report.compile_seconds > 0

    def test_beats_gate_based_latency(self, small_circuit, fast_epoc):
        gate = GateBasedFlow(fast_epoc).compile(small_circuit, "s")
        epoc = EPOCPipeline(fast_epoc).compile(small_circuit, "s")
        assert epoc.latency_ns < gate.latency_ns

    def test_grouping_beats_no_grouping(self, fast_epoc):
        circuit = qaoa_maxcut(3, layers=1)
        library = PulseLibrary(config=fast_epoc.qoc)
        grouped = EPOCPipeline(fast_epoc, library=library).compile(circuit, "qaoa")
        ungrouped = EPOCPipeline(
            fast_epoc, library=library, use_regrouping=False
        ).compile(circuit, "qaoa")
        assert grouped.latency_ns <= ungrouped.latency_ns
        assert grouped.method == "epoc"
        assert ungrouped.method == "epoc-nogroup"

    def test_shared_library_caches_across_runs(self, small_circuit, fast_epoc):
        library = PulseLibrary(config=fast_epoc.qoc)
        pipe = EPOCPipeline(fast_epoc, library=library)
        pipe.compile(small_circuit, "first")
        misses_before = library.misses
        pipe.compile(small_circuit, "second")
        assert library.misses == misses_before  # every unitary cached

    def test_zx_disabled_still_works(self, small_circuit, fast_epoc):
        config = fast_epoc.with_updates(use_zx=False)
        report = EPOCPipeline(config).compile(small_circuit, "nozx")
        assert "zx_depth_before" not in report.stats
        assert report.latency_ns > 0

    def test_synthesis_disabled_still_works(self, small_circuit, fast_epoc):
        config = fast_epoc.with_updates(use_synthesis=False)
        report = EPOCPipeline(config).compile(small_circuit, "nosynth")
        assert report.latency_ns > 0

    def test_chain_routing_option(self, fast_epoc):
        # a long-range CX forces SWAP insertion when routing is enabled
        circuit = QuantumCircuit(4)
        circuit.h(0)
        circuit.cx(0, 3)
        config = fast_epoc.with_updates(route_to_chain=True)
        report = EPOCPipeline(config).compile(circuit, "routed")
        assert report.stats["routing_swaps"] >= 2
        assert report.latency_ns > 0


class TestAccQOC:
    def test_compile_structure(self, small_circuit, fast_epoc):
        report = AccQOCFlow(fast_epoc).compile(small_circuit, "small")
        assert report.method == "accqoc"
        assert report.latency_ns > 0
        assert report.stats["groups"] >= 1

    def test_beats_gate_based(self, small_circuit, fast_epoc):
        gate = GateBasedFlow(fast_epoc).compile(small_circuit, "s")
        acc = AccQOCFlow(fast_epoc).compile(small_circuit, "s")
        assert acc.latency_ns < gate.latency_ns

    def test_mst_order_covers_all_items(self, fast_epoc):
        from repro.baselines.accqoc import AccQOCFlow as Flow
        from repro.partition import regroup_circuit

        items = regroup_circuit(qaoa_maxcut(3), qubit_limit=2, gate_limit=4)
        order = Flow._mst_order(items)
        assert sorted(order) == list(range(len(items)))


class TestPAQOC:
    def test_compile_structure(self, small_circuit, fast_epoc):
        report = PAQOCFlow(fast_epoc).compile(small_circuit, "small")
        assert report.method == "paqoc"
        assert report.latency_ns > 0
        total = (
            report.stats["custom_pattern_pulses"] + report.stats["calibrated_gates"]
        )
        assert total == report.pulse_count

    def test_repeated_patterns_become_custom_gates(self, fast_epoc):
        qc = QuantumCircuit(2)
        for _ in range(4):  # the same pattern four times
            qc.h(0)
            qc.cx(0, 1)
        report = PAQOCFlow(fast_epoc).compile(qc, "rep")
        assert report.stats["custom_pattern_pulses"] >= 1

    def test_sits_between_gate_based_and_epoc(self, fast_epoc):
        circuit = qaoa_maxcut(3, layers=1)
        gate = GateBasedFlow(fast_epoc).compile(circuit, "q")
        paqoc = PAQOCFlow(fast_epoc).compile(circuit, "q")
        epoc = EPOCPipeline(fast_epoc).compile(circuit, "q")
        assert epoc.latency_ns <= paqoc.latency_ns <= gate.latency_ns

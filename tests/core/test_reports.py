"""Tests for compilation reports and pipeline statistics plumbing."""

import pytest

from repro.core.metrics import CompilationReport, esp_fidelity
from repro.pulse import PulseSchedule


def make_report(**overrides):
    defaults = dict(
        method="epoc",
        circuit_name="demo",
        num_qubits=2,
        schedule=PulseSchedule(2),
        latency_ns=123.4,
        fidelity=0.987,
        compile_seconds=1.5,
        pulse_count=4,
        stats={"qoc_items": 4.0},
    )
    defaults.update(overrides)
    return CompilationReport(**defaults)


class TestCompilationReport:
    def test_summary_row_contains_fields(self):
        row = make_report().summary_row()
        assert "demo" in row
        assert "epoc" in row
        assert "123.4" in row
        assert "0.9870" in row

    def test_stats_default_independent(self):
        a = CompilationReport(
            method="m",
            circuit_name="c",
            num_qubits=1,
            schedule=PulseSchedule(1),
            latency_ns=0.0,
            fidelity=1.0,
            compile_seconds=0.0,
            pulse_count=0,
        )
        a.stats["x"] = 1.0
        b = CompilationReport(
            method="m",
            circuit_name="c",
            num_qubits=1,
            schedule=PulseSchedule(1),
            latency_ns=0.0,
            fidelity=1.0,
            compile_seconds=0.0,
            pulse_count=0,
        )
        assert "x" not in b.stats


class TestCacheHitRateColumn:
    def test_rate_from_stats(self):
        report = make_report(stats={"cache_hits": 3.0, "cache_misses": 1.0})
        assert report.cache_hit_rate == pytest.approx(0.75)
        assert "cache= 75.0%" in report.summary_row()

    def test_no_cache_stats_shows_placeholder(self):
        report = make_report(stats={})
        assert report.cache_hit_rate is None
        assert "cache=" in report.summary_row()
        assert "%" not in report.summary_row().split("cache=")[1]

    def test_zero_lookups_is_none(self):
        report = make_report(stats={"cache_hits": 0.0, "cache_misses": 0.0})
        assert report.cache_hit_rate is None


class TestESPProperties:
    def test_monotone_in_each_term(self):
        assert esp_fidelity([0.1, 0.1]) > esp_fidelity([0.1, 0.2])

    def test_order_invariant(self):
        assert esp_fidelity([0.1, 0.3]) == pytest.approx(esp_fidelity([0.3, 0.1]))

    def test_more_pulses_never_help(self):
        base = [0.05] * 3
        assert esp_fidelity(base + [0.05]) < esp_fidelity(base)

    def test_bounds(self):
        assert 0.0 <= esp_fidelity([0.5, 0.9, 0.2]) <= 1.0

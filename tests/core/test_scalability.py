"""Scalability tests: wide registers never trigger global-unitary work.

The paper validates EPOC on a 160-qubit program; these tests exercise the
same property at CI-friendly width — the pipeline's only exponential
objects are per-block, so a 40-qubit compile must succeed quickly.
"""

import pytest

from repro.core import EPOCPipeline
from repro.qoc import PulseLibrary
from repro.workloads import ghz_state, ising_trotter
from repro.zx import optimize_circuit


class TestWideRegisters:
    def test_ghz_40_qubits(self, fast_epoc):
        circuit = ghz_state(40)
        report = EPOCPipeline(fast_epoc).compile(circuit, "ghz40")
        assert report.num_qubits == 40
        assert report.latency_ns > 0
        # a GHZ ladder serializes: latency grows with width
        assert report.pulse_count >= 10

    def test_cache_makes_wide_ladders_cheap(self, fast_epoc):
        library = PulseLibrary(config=fast_epoc.qoc)
        pipe = EPOCPipeline(fast_epoc, library=library)
        pipe.compile(ghz_state(12), "ghz12")
        misses_before = library.misses
        pipe.compile(ghz_state(30), "ghz30")
        # the wider ladder reuses the narrow ladder's block pulses
        assert library.misses <= misses_before + 4

    def test_ising_30_qubits(self, fast_epoc):
        circuit = ising_trotter(30, steps=1)
        report = EPOCPipeline(fast_epoc).compile(circuit, "ising30")
        assert report.latency_ns > 0
        assert report.stats["qoc_items"] > 0

    def test_zx_pass_on_wide_circuit(self):
        circuit = ghz_state(60)
        result = optimize_circuit(circuit)
        assert result.depth_after <= result.depth_before

    def test_latency_scales_linearly_for_ghz(self, fast_epoc):
        library = PulseLibrary(config=fast_epoc.qoc)
        pipe = EPOCPipeline(fast_epoc, library=library)
        small = pipe.compile(ghz_state(10), "ghz10")
        large = pipe.compile(ghz_state(20), "ghz20")
        ratio = large.latency_ns / small.latency_ns
        assert 1.3 <= ratio <= 3.5  # near-linear growth of the chain

"""Tests for the decoherence-aware fidelity model."""

import math

import numpy as np
import pytest

from repro.exceptions import ScheduleError
from repro.core.decoherence import (
    CoherenceModel,
    decoherence_factor,
    esp_with_decoherence,
)
from repro.pulse import PulseSchedule
from repro.qoc import Pulse


def busy_pulse(qubits, duration):
    return Pulse(
        qubits=tuple(qubits),
        controls=np.zeros((2 * len(qubits), int(duration))),
        dt=1.0,
        fidelity=1.0,
        unitary_distance=0.0,
    )


class TestCoherenceModel:
    def test_defaults_valid(self):
        model = CoherenceModel()
        assert model.pure_dephasing_rate > 0

    def test_t2_bound_enforced(self):
        with pytest.raises(ScheduleError):
            CoherenceModel(t1_ns=100.0, t2_ns=250.0)

    def test_positive_times_required(self):
        with pytest.raises(ScheduleError):
            CoherenceModel(t1_ns=0.0)

    def test_t2_saturation_zero_dephasing(self):
        model = CoherenceModel(t1_ns=100.0, t2_ns=200.0)
        assert model.pure_dephasing_rate == 0.0


class TestDecoherenceFactor:
    def test_empty_schedule_is_lossless(self):
        assert decoherence_factor(PulseSchedule(3)) == 1.0

    def test_longer_schedule_decays_more(self):
        short = PulseSchedule(1)
        short.add_pulse(busy_pulse([0], 10))
        long = PulseSchedule(1)
        long.add_pulse(busy_pulse([0], 100))
        assert decoherence_factor(long) < decoherence_factor(short)

    def test_idle_lines_dephase(self):
        # same latency, but one schedule leaves a line idle
        parallel = PulseSchedule(2)
        parallel.add_pulse(busy_pulse([0], 100))
        parallel.add_pulse(busy_pulse([1], 100))
        serial = PulseSchedule(2)
        serial.add_pulse(busy_pulse([0], 100))
        assert decoherence_factor(serial) < decoherence_factor(parallel)

    def test_exact_value_single_line(self):
        model = CoherenceModel(t1_ns=1000.0, t2_ns=1000.0)
        schedule = PulseSchedule(1)
        schedule.add_pulse(busy_pulse([0], 100))
        expected = math.exp(-100.0 / 1000.0)  # busy line: no idle dephasing
        assert decoherence_factor(schedule, model) == pytest.approx(expected)

    def test_more_qubits_decay_faster(self):
        one = PulseSchedule(1)
        one.add_pulse(busy_pulse([0], 50))
        three = PulseSchedule(3)
        three.add_pulse(busy_pulse([0], 50))
        assert decoherence_factor(three) < decoherence_factor(one)


class TestCombinedESP:
    def test_multiplies(self):
        schedule = PulseSchedule(1)
        schedule.add_pulse(busy_pulse([0], 100))
        combined = esp_with_decoherence(0.9, schedule)
        assert combined == pytest.approx(0.9 * decoherence_factor(schedule))

    def test_bounds_checked(self):
        with pytest.raises(ScheduleError):
            esp_with_decoherence(1.5, PulseSchedule(1))

    def test_latency_reduction_pays_off(self):
        """The paper's motivation, quantified: at short coherence, a
        shorter schedule beats a longer one even at equal pulse ESP."""
        model = CoherenceModel(t1_ns=2000.0, t2_ns=1500.0)
        fast = PulseSchedule(2)
        fast.add_pulse(busy_pulse([0, 1], 90))
        slow = PulseSchedule(2)
        slow.add_pulse(busy_pulse([0], 250))
        slow.add_pulse(busy_pulse([1], 250))
        assert esp_with_decoherence(0.95, fast, model) > esp_with_decoherence(
            0.97, slow, model
        )

"""Fixtures for the verification suite: isolated fault plans per test."""

import pytest

from repro.resilience import FaultPlan, set_fault_plan


@pytest.fixture(autouse=True)
def clean_fault_plan():
    """Every test starts and ends with an inactive fault plan, so an armed
    fault can never leak into (or in from) a neighbouring test."""
    previous = set_fault_plan(FaultPlan())
    yield
    set_fault_plan(previous)


@pytest.fixture
def arm_faults():
    """Install a fault plan from the ``REPRO_FAULTS`` grammar."""

    def arm(text: str) -> FaultPlan:
        plan = FaultPlan.parse(text)
        set_fault_plan(plan)
        return plan

    return arm

"""End-to-end verified compilation: every flow, warn and strict modes."""

import pytest

from repro.baselines import AccQOCFlow, GateBasedFlow, PAQOCFlow
from repro.circuits import QuantumCircuit
from repro.config import ResilienceConfig, VerifyConfig
from repro.core import EPOCPipeline
from repro.exceptions import VerificationError


def _bell_pair():
    qc = QuantumCircuit(2)
    qc.h(0)
    qc.cx(0, 1)
    return qc


def _three_qubit():
    qc = QuantumCircuit(3)
    qc.h(0)
    qc.cx(0, 1)
    qc.rz(0.3, 1)
    qc.cx(1, 2)
    return qc


def _verified(config, mode, **kwargs):
    return config.with_updates(verify=VerifyConfig(mode=mode, **kwargs))


class TestCleanRuns:
    def test_epoc_strict_passes_end_to_end(self, fast_epoc):
        config = _verified(fast_epoc, "strict")
        report = EPOCPipeline(config).compile(_three_qubit(), name="clean")
        summary = report.verification
        assert summary is not None
        assert summary.mode == "strict"
        assert summary.failed == 0
        assert summary.status == "yes"
        # one check per stage boundary plus one per block/item
        assert summary.checks >= 4
        assert {"zx", "partition", "synthesis", "regroup", "pulse"} <= set(
            summary.stage_infidelity
        )
        assert "verified=yes" in report.summary_row()
        assert report.stats["verify_checks"] == float(summary.checks)

    def test_off_mode_reports_nothing(self, fast_epoc):
        # pinned to "off" so the assertion holds even when the suite
        # runs under REPRO_VERIFY=strict (the CI verification job)
        config = _verified(fast_epoc, "off")
        report = EPOCPipeline(config).compile(_bell_pair(), name="off")
        assert report.verification is None
        assert "verified=" not in report.summary_row()
        assert "verify_checks" not in report.stats

    def test_gate_based_strict(self, fast_epoc):
        config = _verified(fast_epoc, "strict")
        report = GateBasedFlow(config).compile(_three_qubit(), name="gb")
        assert report.verification.status == "yes"
        assert "decompose" in report.verification.stage_infidelity

    def test_accqoc_warn(self, fast_epoc):
        config = _verified(fast_epoc, "warn")
        report = AccQOCFlow(config).compile(_bell_pair(), name="acc")
        summary = report.verification
        assert summary.failed == 0
        assert {"decompose", "partition", "pulse"} <= set(summary.stage_infidelity)

    def test_paqoc_warn(self, fast_epoc):
        config = _verified(fast_epoc, "warn")
        report = PAQOCFlow(config).compile(_three_qubit(), name="pa")
        summary = report.verification
        assert summary.failed == 0
        assert "decompose" in summary.stage_infidelity


class TestInjectedDegradation:
    """Acceptance: an injected GRAPE non-convergence is caught by the
    propagator-recomputing pulse check."""

    def test_warn_completes_and_names_the_block(self, fast_epoc, arm_faults):
        arm_faults("qoc.no_converge*1")
        config = _verified(fast_epoc, "warn").with_updates(
            resilience=ResilienceConfig(max_retries=0)
        )
        report = EPOCPipeline(config).compile(_bell_pair(), name="faulty")
        summary = report.verification
        assert summary.failed >= 1
        assert summary.status == "partial"
        failure = summary.failures[0]
        assert failure.stage == "pulse"
        assert failure.index is not None
        assert failure.infidelity > failure.tolerance
        assert "degraded" in failure.detail
        # the degraded block also appears on the fidelity ledger
        assert len(report.degraded_blocks) >= 1
        assert "verified=partial" in report.summary_row()

    def test_strict_raises_naming_the_block(self, fast_epoc, arm_faults):
        arm_faults("qoc.no_converge*1")
        config = _verified(fast_epoc, "strict").with_updates(
            resilience=ResilienceConfig(max_retries=0)
        )
        with pytest.raises(
            VerificationError, match=r"stage 'pulse', block \d+"
        ):
            EPOCPipeline(config).compile(_bell_pair(), name="faulty")


class TestErrorBudgetEndToEnd:
    def test_tight_budget_flags_a_clean_run(self, fast_epoc):
        """A budget below the honest per-pulse control error trips at
        finalize time even though every individual check passes."""
        config = _verified(fast_epoc, "warn", error_budget=1e-12)
        report = EPOCPipeline(config).compile(_bell_pair(), name="tight")
        summary = report.verification
        assert summary.failed == 0
        assert summary.budget_exceeded
        assert summary.status == "partial"

    def test_tight_budget_raises_in_strict(self, fast_epoc):
        config = _verified(fast_epoc, "strict", error_budget=1e-12)
        with pytest.raises(VerificationError, match="budget"):
            EPOCPipeline(config).compile(_bell_pair(), name="tight")

"""Equivalence primitives, property-style: random unitaries, cache keys,
tolerance boundaries."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.linalg import random_unitary
from repro.linalg.unitary import equal_up_to_global_phase
from repro.qoc.library import unitary_cache_key
from repro.verify.checks import (
    circuit_equivalence,
    items_as_circuit,
    unitary_infidelity,
)


class TestUnitaryInfidelity:
    def test_zero_for_identical(self, rng):
        u = random_unitary(4, rng)
        assert unitary_infidelity(u, u) == 0.0

    def test_global_phase_invariant(self, rng):
        for _ in range(20):
            u = random_unitary(4, rng)
            phase = np.exp(1j * rng.uniform(0.0, 2.0 * np.pi))
            assert unitary_infidelity(u, phase * u) < 1e-12

    def test_positive_for_distinct(self, rng):
        for _ in range(20):
            u = random_unitary(4, rng)
            v = random_unitary(4, rng)
            assert unitary_infidelity(u, v) > 1e-3


class TestCacheKeyProperty:
    """Property: colliding cache keys imply global-phase equivalence."""

    def test_phase_rotations_collide_and_are_equivalent(self, rng):
        for dim in (2, 4, 8):
            for _ in range(10):
                u = random_unitary(dim, rng)
                phase = np.exp(1j * rng.uniform(0.0, 2.0 * np.pi))
                v = phase * u
                assert unitary_cache_key(u) == unitary_cache_key(v)
                assert equal_up_to_global_phase(u, v)

    def test_collisions_only_between_equivalent_matrices(self, rng):
        """Over a batch of random unitaries plus their phase-rotated
        copies, any two with equal keys must be phase-equivalent; any two
        phase-inequivalent must have distinct keys."""
        pool = []
        for _ in range(12):
            u = random_unitary(4, rng)
            phase = np.exp(1j * rng.uniform(0.0, 2.0 * np.pi))
            pool.append(u)
            pool.append(phase * u)
        for i, a in enumerate(pool):
            for b in pool[i + 1 :]:
                if unitary_cache_key(a) == unitary_cache_key(b):
                    assert unitary_infidelity(a, b) < 1e-9
                else:
                    # distinct keys from a sub-rounding perturbation are
                    # fine; equivalent matrices must never be claimed by
                    # the inverse direction, which is what lookups rely on
                    assert not np.allclose(a, b)

    def test_sub_rounding_perturbations_collide(self, rng):
        """Perturbations below the key's rounding grid (1e-6) collide —
        and are equivalent to within the grid, so serving the cached
        pulse is correct."""
        u = random_unitary(4, rng)
        v = u + 1e-9 * (rng.standard_normal((4, 4)))
        assert unitary_cache_key(u) == unitary_cache_key(v)
        assert unitary_infidelity(u, v) < 1e-6

    def test_distinct_unitaries_do_not_collide(self, rng):
        keys = {unitary_cache_key(random_unitary(4, rng)).hex() for _ in range(30)}
        assert len(keys) == 30


class TestCircuitEquivalence:
    def _pair(self):
        a = QuantumCircuit(2)
        a.h(0)
        a.cx(0, 1)
        b = QuantumCircuit(2)
        b.h(0)
        b.cx(0, 1)
        return a, b

    def test_tensor_path_accepts_identical(self):
        a, b = self._pair()
        outcome = circuit_equivalence(a, b)
        assert outcome.method == "tensor"
        assert outcome.infidelity < 1e-12

    def test_tensor_path_rejects_a_changed_gate(self):
        a, b = self._pair()
        b.rz(0.5, 1)
        outcome = circuit_equivalence(a, b)
        assert outcome.method == "tensor"
        assert outcome.infidelity > 1e-3

    def test_width_mismatch_is_maximal(self):
        a = QuantumCircuit(2)
        b = QuantumCircuit(3)
        assert circuit_equivalence(a, b).infidelity == 1.0

    def test_state_path_above_tensor_cutoff(self):
        a = QuantumCircuit(3)
        a.h(0)
        a.cx(0, 1)
        a.cx(1, 2)
        b = QuantumCircuit(3)
        b.h(0)
        b.cx(0, 1)
        b.cx(1, 2)
        outcome = circuit_equivalence(a, b, tensor_width_cutoff=2)
        assert outcome.method == "state"
        assert outcome.infidelity < 1e-10

    def test_state_path_detects_divergence(self):
        a = QuantumCircuit(3)
        a.h(0)
        a.cx(0, 1)
        b = QuantumCircuit(3)
        b.h(0)
        b.cx(0, 1)
        b.x(2)
        outcome = circuit_equivalence(a, b, tensor_width_cutoff=2)
        assert outcome.method == "state"
        assert outcome.infidelity > 0.5

    def test_skipped_beyond_state_cutoff(self):
        a = QuantumCircuit(5)
        b = QuantumCircuit(5)
        outcome = circuit_equivalence(
            a, b, tensor_width_cutoff=2, state_width_cutoff=4
        )
        assert outcome.skipped
        assert np.isnan(outcome.infidelity)


class TestItemsAsCircuit:
    def test_reproduces_the_source_circuit(self, rng):
        from repro.partition.greedy import greedy_partition
        from repro.partition.regroup import regroup_circuit

        qc = QuantumCircuit(3)
        qc.h(0)
        qc.cx(0, 1)
        qc.rz(0.3, 1)
        qc.cx(1, 2)
        items = regroup_circuit(qc, qubit_limit=2, gate_limit=4)
        rebuilt = items_as_circuit(items, 3)
        assert circuit_equivalence(qc, rebuilt).infidelity < 1e-9

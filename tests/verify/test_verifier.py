"""StageVerifier behaviour: modes, tolerance boundaries, ledger, budget."""

import numpy as np
import pytest

from repro.config import VerifyConfig, ENV_VERIFY
from repro.exceptions import VerificationError
from repro.linalg import random_unitary
from repro.qoc import TransmonChain
from repro.qoc.latency import minimal_latency_pulse
from repro.verify import StageVerifier
from repro.verify.checks import unitary_infidelity


def _verifier(mode, **kwargs):
    return StageVerifier(VerifyConfig(mode=mode, **kwargs))


def _perturbed(u, rng, epsilon):
    """A unitary at a controlled (approximate) infidelity from ``u``."""
    herm = rng.standard_normal(u.shape) + 1j * rng.standard_normal(u.shape)
    herm = (herm + herm.conj().T) / 2.0
    eigvals, eigvecs = np.linalg.eigh(herm)
    rot = eigvecs @ np.diag(np.exp(1j * epsilon * eigvals)) @ eigvecs.conj().T
    return rot @ u


class TestModes:
    def test_off_records_nothing(self, rng):
        verifier = _verifier("off")
        assert not verifier.enabled
        u = random_unitary(4, rng)
        assert verifier.check_synthesis(0, (0, 1), u, random_unitary(4, rng)) is None
        assert verifier.finalize() is None
        assert verifier.ledger.checks == 0

    def test_env_var_drives_default_mode(self, monkeypatch):
        monkeypatch.setenv(ENV_VERIFY, "warn")
        assert StageVerifier(VerifyConfig()).mode == "warn"
        monkeypatch.delenv(ENV_VERIFY)
        assert StageVerifier(VerifyConfig()).mode == "off"

    def test_explicit_mode_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VERIFY, "strict")
        assert StageVerifier(VerifyConfig(mode="off")).mode == "off"

    def test_warn_records_failure_without_raising(self, rng):
        verifier = _verifier("warn")
        u = random_unitary(4, rng)
        record = verifier.check_synthesis(3, (0, 1), u, random_unitary(4, rng))
        assert record is not None and not record.passed
        summary = verifier.finalize()
        assert summary.failed == 1
        assert summary.status == "partial"
        assert summary.failures[0].index == 3

    def test_strict_raises_naming_stage_and_block(self, rng):
        verifier = _verifier("strict")
        u = random_unitary(4, rng)
        with pytest.raises(VerificationError, match=r"stage 'synthesis', block 7"):
            verifier.check_synthesis(7, (1, 2), u, random_unitary(4, rng))


class TestToleranceBoundary:
    """Property: checks accept at/below tolerance and reject above it,
    probed with perturbed random unitaries straddling the boundary."""

    def test_accepts_below_and_rejects_above(self, rng):
        for _ in range(5):
            u = random_unitary(4, rng)
            near = _perturbed(u, rng, 1e-7)
            far = _perturbed(u, rng, 0.3)
            low = unitary_infidelity(u, near)
            high = unitary_infidelity(u, far)
            assert low < high
            # tolerance strictly between the two measured infidelities:
            # 'near' must pass, 'far' must fail, at the same setting
            tolerance = (low + high) / 2.0
            verifier = StageVerifier(
                VerifyConfig(mode="warn", synthesis_slack=1.0),
                synthesis_threshold=tolerance,
            )
            assert verifier.check_synthesis(0, (0, 1), u, near).passed
            assert not verifier.check_synthesis(1, (0, 1), u, far).passed

    def test_exact_boundary_accepts(self, rng):
        u = random_unitary(4, rng)
        v = _perturbed(u, rng, 1e-4)
        infidelity = unitary_infidelity(u, v)
        verifier = StageVerifier(
            VerifyConfig(mode="strict", synthesis_slack=1.0),
            synthesis_threshold=infidelity,  # tolerance == measured value
        )
        assert verifier.check_synthesis(0, (0, 1), u, v).passed


class TestErrorBudget:
    def test_accumulation_across_stages(self, rng):
        verifier = _verifier("warn", error_budget=1.0)
        u = random_unitary(4, rng)
        for index in range(3):
            verifier.check_synthesis(index, (0, 1), u, _perturbed(u, rng, 1e-2))
        summary = verifier.finalize()
        assert summary.checks == 3
        assert summary.total_infidelity == pytest.approx(
            sum(r.infidelity for r in verifier.ledger.records)
        )
        assert summary.stage_infidelity["synthesis"] == pytest.approx(
            summary.total_infidelity
        )

    def test_warn_reports_blown_budget(self, rng):
        verifier = _verifier("warn", error_budget=1e-8, synthesis_slack=1e6)
        u = random_unitary(4, rng)
        verifier.check_synthesis(0, (0, 1), u, _perturbed(u, rng, 1e-2))
        summary = verifier.finalize()
        assert summary.failed == 0  # the per-check tolerance was generous
        assert summary.budget_exceeded
        assert summary.status == "partial"

    def test_strict_raises_on_blown_budget(self, rng):
        verifier = _verifier("strict", error_budget=1e-8, synthesis_slack=1e6)
        u = random_unitary(4, rng)
        verifier.check_synthesis(0, (0, 1), u, _perturbed(u, rng, 1e-2))
        with pytest.raises(VerificationError, match="error.*budget|budget"):
            verifier.finalize()

    def test_default_budget_is_derived_from_tolerances(self, rng):
        """With no explicit budget, the effective budget is the sum of
        per-check tolerances — so a run where every check passes can
        never exceed it, regardless of how many checks ran."""
        verifier = _verifier("strict")  # error_budget defaults to None
        u = random_unitary(4, rng)
        for index in range(20):
            verifier.check_synthesis(
                index, (0, 1), u, _perturbed(u, rng, 1e-5)
            )
        summary = verifier.finalize()  # strict: would raise if exceeded
        assert summary.failed == 0
        assert not summary.budget_exceeded
        assert summary.error_budget == pytest.approx(
            sum(r.tolerance for r in verifier.ledger.records)
        )
        assert summary.total_infidelity <= summary.error_budget


class TestPulseCheck:
    def test_good_pulse_passes_and_memoizes(self, fast_qoc):
        hadamard = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2)
        hardware = TransmonChain(1)
        pulse = minimal_latency_pulse(
            hadamard, (0,), config=fast_qoc, hardware=hardware
        )
        verifier = StageVerifier(
            VerifyConfig(mode="strict"),
            target_fidelity=fast_qoc.fidelity_threshold,
        )
        first = verifier.check_pulse(0, (0,), hadamard, pulse, hardware, key=b"k")
        assert first.passed
        # the memoized verdict is reused for a duplicate work item
        second = verifier.check_pulse(1, (0,), hadamard, pulse, hardware, key=b"k")
        assert second.infidelity == first.infidelity
        assert verifier.ledger.checks == 2

    def test_corrupted_waveform_is_caught(self, fast_qoc):
        """A pulse whose stored fidelity claims success but whose samples
        no longer implement the target must fail the propagator check —
        metadata is not trusted."""
        from dataclasses import replace

        hadamard = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2)
        hardware = TransmonChain(1)
        pulse = minimal_latency_pulse(
            hadamard, (0,), config=fast_qoc, hardware=hardware
        )
        corrupted = replace(pulse, controls=pulse.controls * 0.2)
        verifier = StageVerifier(
            VerifyConfig(mode="warn"),
            target_fidelity=fast_qoc.fidelity_threshold,
        )
        record = verifier.check_pulse(0, (0,), hadamard, corrupted, hardware)
        assert not record.passed
        assert record.infidelity > 1.0 - fast_qoc.fidelity_threshold

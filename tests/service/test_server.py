"""End-to-end daemon tests over the real socket protocol.

These cover the PR's two acceptance assertions:

* a daemon-compiled job's checkpoint is **bitwise-identical** to the one
  ``repro compile`` writes for the same circuit and flags;
* two concurrent jobs emit **schema-valid, non-interleaved** per-job
  event streams (the regression pinning the context-scoped event bus).
"""

import json
import time
import urllib.request

import pytest

from repro import cli
from repro.obs.events import validate_event
from repro.resilience.faults import FaultPlan, set_fault_plan
from repro.service import QuotaPolicy
from repro.service.client import ServiceError

from tests.service.conftest import BELL_QASM, SWAP_QASM, TWO_BLOCK_QASM


def _strip_envelope(event):
    """Drop the service's per-job envelope, leaving the bus event."""
    payload = dict(event)
    payload.pop("job", None)
    payload.pop("seq", None)
    return payload


def _assert_valid_stream(events, job_id):
    assert events, f"job {job_id} produced no events"
    for event in events:
        assert event["job"] == job_id
        problems = validate_event(_strip_envelope(event))
        assert not problems, f"{event}: {problems}"
    kinds = [event["event"] for event in events]
    assert kinds[0] == "run_started"
    assert kinds[-1] == "run_finished"
    assert [event["seq"] for event in events] == list(
        range(1, len(events) + 1)
    )


class TestSingleJob:
    def test_compile_round_trip(self, service, client_for):
        svc = service()
        client = client_for(svc)
        assert client.ping()["protocol"] == 1
        job = client.submit("bell", BELL_QASM)
        result = client.wait(job, timeout=120)
        assert result["state"] == "done"
        assert result["result"]["pulse_count"] == 1
        assert result["result"]["fidelity"] > 0
        _assert_valid_stream(list(client.events(job)), job)

    def test_warm_library_hits_across_jobs(self, service, client_for):
        """The amortization the daemon exists for: job 2 of the same
        circuit is served from the shared warm library."""
        svc = service(max_jobs=1)
        client = client_for(svc)
        first = client.submit("bell", BELL_QASM)
        assert client.wait(first, timeout=120)["state"] == "done"
        second = client.submit("bell-again", BELL_QASM)
        result = client.wait(second, timeout=120)
        assert result["state"] == "done"
        assert result["result"]["cache_hits"] >= 1
        assert result["result"]["cache_misses"] == 0

    def test_unknown_job_and_bad_flow(self, service, client_for):
        client = client_for(service())
        with pytest.raises(ServiceError) as err:
            client.status("j-999999")
        assert err.value.code == "not-found"
        with pytest.raises(ServiceError) as err:
            client.submit("x", BELL_QASM, flow="magic")
        assert err.value.code == "bad-request"
        with pytest.raises(ServiceError) as err:
            client.submit("x", BELL_QASM, options={"turbo": True})
        assert err.value.code == "bad-request"


class TestConcurrentJobs:
    def test_two_jobs_emit_disjoint_valid_streams(self, service, client_for):
        """Two overlapping jobs -> two schema-valid per-job streams with
        no cross-talk.  Before the bus became context-scoped, both jobs
        wrote into one process-global stream."""
        # stall every 2q pulse search briefly so the jobs overlap
        set_fault_plan(
            FaultPlan.parse("qoc.stall@qubits=2,seconds=0.5*-1")
        )
        svc = service(max_jobs=2)
        client = client_for(svc)
        first = client.submit("bell", BELL_QASM)
        second = client.submit("swap", SWAP_QASM)
        first_result = client.wait(first, timeout=120)
        second_result = client.wait(second, timeout=120)
        assert first_result["state"] == "done"
        assert second_result["state"] == "done"

        first_events = list(client.events(first))
        second_events = list(client.events(second))
        _assert_valid_stream(first_events, first)
        _assert_valid_stream(second_events, second)
        # the streams really overlapped in time (else this test proves
        # nothing about isolation)
        first_span = (first_events[0]["ts"], first_events[-1]["ts"])
        second_span = (second_events[0]["ts"], second_events[-1]["ts"])
        assert first_span[0] < second_span[1]
        assert second_span[0] < first_span[1]
        # distinct circuits -> distinct run_started payloads
        assert first_events[0]["circuit"] == "bell"
        assert second_events[0]["circuit"] == "swap"


class TestCancellation:
    def test_cancel_mid_grape(self, service, client_for):
        """A running job stalls inside the pulse search; cancel unwinds
        it through the ambient token within the poll interval."""
        set_fault_plan(
            FaultPlan.parse("qoc.stall@qubits=2,seconds=60*-1")
        )
        svc = service(max_jobs=1)
        client = client_for(svc)
        job = client.submit("bell", BELL_QASM)
        deadline = time.monotonic() + 30
        while client.status(job)["state"] == "queued":
            assert time.monotonic() < deadline, "job never started"
            time.sleep(0.05)
        cancelled_at = time.monotonic()
        client.cancel(job)
        result = client.wait(job, timeout=30)
        assert result["state"] == "cancelled"
        # cooperative, but prompt: nowhere near the 60s stall
        assert time.monotonic() - cancelled_at < 10

    def test_cancel_queued_job(self, service, client_for):
        set_fault_plan(
            FaultPlan.parse("qoc.stall@qubits=2,seconds=60*-1")
        )
        svc = service(max_jobs=1)
        client = client_for(svc)
        running = client.submit("bell", BELL_QASM)
        queued = client.submit("swap", SWAP_QASM)
        deadline = time.monotonic() + 30
        while client.status(running)["state"] == "queued":
            assert time.monotonic() < deadline
            time.sleep(0.05)
        assert client.status(queued)["state"] == "queued"
        client.cancel(queued)
        assert client.status(queued)["state"] == "cancelled"
        client.cancel(running)

    def test_cancel_finished_job_conflicts(self, service, client_for):
        client = client_for(service())
        job = client.submit("bell", BELL_QASM)
        client.wait(job, timeout=120)
        with pytest.raises(ServiceError) as err:
            client.cancel(job)
        assert err.value.code == "conflict"


class TestQuota:
    def test_rate_limit_rejection_over_the_wire(self, service, client_for):
        svc = service(quota=QuotaPolicy(jobs_per_minute=1))
        client = client_for(svc)
        job = client.submit("bell", BELL_QASM)
        with pytest.raises(ServiceError) as err:
            client.submit("bell-2", BELL_QASM)
        assert err.value.code == "quota"
        # other tenants are unaffected
        other = client.submit("bell-3", BELL_QASM, tenant="other")
        stats = client.stats()
        assert stats["quota"]["tenants"]["default"]["rejected"] == 1
        assert stats["quota"]["tenants"]["other"]["rejected"] == 0
        client.wait(job, timeout=120)
        client.wait(other, timeout=120)


class TestHttpShim:
    def test_healthz_jobs_and_stats(self, service, client_for):
        svc = service()
        client = client_for(svc)
        job = client.submit("bell", BELL_QASM)
        client.wait(job, timeout=120)
        base = f"http://127.0.0.1:{svc.port}"

        with urllib.request.urlopen(f"{base}/healthz", timeout=10) as rsp:
            health = json.load(rsp)
        assert health["ok"] and health["protocol"] == 1

        with urllib.request.urlopen(f"{base}/jobs/{job}", timeout=10) as rsp:
            view = json.load(rsp)
        assert view["state"] == "done"

        with urllib.request.urlopen(f"{base}/stats", timeout=10) as rsp:
            stats = json.load(rsp)
        assert stats["library"]["entries"] >= 1

    def test_http_submit_and_404(self, service, client_for):
        svc = service()
        base = f"http://127.0.0.1:{svc.port}"
        body = json.dumps({"name": "bell", "qasm": BELL_QASM}).encode()
        request = urllib.request.Request(
            f"{base}/jobs", data=body, method="POST"
        )
        with urllib.request.urlopen(request, timeout=10) as rsp:
            submitted = json.load(rsp)
        assert submitted["ok"] and submitted["job"].startswith("j-")
        client_for(svc).wait(submitted["job"], timeout=120)

        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(f"{base}/jobs/j-999999", timeout=10)
        assert err.value.code == 404


class TestBitwiseIdentity:
    def test_daemon_checkpoint_matches_cli_compile(
        self, service, client_for, tmp_path
    ):
        """Acceptance: a cold daemon job and `repro compile` write
        byte-identical pulse-library checkpoints."""
        qasm_path = tmp_path / "bell.qasm"
        qasm_path.write_text(BELL_QASM)
        cli_ckpt = tmp_path / "cli.json"
        svc_ckpt = tmp_path / "svc.json"

        assert (
            cli.main(
                ["compile", str(qasm_path), "--checkpoint", str(cli_ckpt)]
            )
            == 0
        )

        svc = service()  # fresh: an empty library, like the CLI run
        client = client_for(svc)
        job = client.submit(
            str(qasm_path),
            BELL_QASM,
            options={"checkpoint": str(svc_ckpt)},
        )
        assert client.wait(job, timeout=120)["state"] == "done"
        assert svc_ckpt.read_bytes() == cli_ckpt.read_bytes()


class TestDrainAndResume:
    def test_sigterm_style_drain_then_resume_bitwise(
        self, service, client_for, tmp_path
    ):
        """Drain mid-job (what the SIGTERM handler triggers), then
        `repro compile --resume` finishes from the flushed checkpoint;
        the final library equals an uninterrupted run's, bitwise."""
        qasm_path = tmp_path / "two_block.qasm"
        qasm_path.write_text(TWO_BLOCK_QASM)
        ref_ckpt = tmp_path / "ref.json"
        svc_ckpt = tmp_path / "svc.json"

        # uninterrupted reference run
        assert (
            cli.main(
                ["compile", str(qasm_path), "--checkpoint", str(ref_ckpt)]
            )
            == 0
        )

        # daemon run: the 1q pulse checkpoints, the 2q search stalls
        set_fault_plan(
            FaultPlan.parse("qoc.stall@qubits=2,seconds=120*-1")
        )
        svc = service(max_jobs=1)
        client = client_for(svc)
        job = client.submit(
            str(qasm_path),
            TWO_BLOCK_QASM,
            options={"checkpoint": str(svc_ckpt), "checkpoint_every": 1},
        )
        deadline = time.monotonic() + 60
        while not svc_ckpt.exists():
            assert time.monotonic() < deadline, "no checkpoint flushed"
            time.sleep(0.1)
        partial = json.loads(svc_ckpt.read_text())
        assert partial["entries"], "expected the solved 1q pulse on disk"

        svc.stop()  # the same drain path the SIGTERM handler invokes
        job_view = svc.get_job(job).view()
        assert job_view["state"] == "cancelled"
        journal = tmp_path / "svc.json.journal"
        assert journal.exists()
        assert '"event": "abort"' in journal.read_text()

        # resume serially and compare bitwise against the reference
        set_fault_plan(None)
        assert (
            cli.main(
                [
                    "compile",
                    str(qasm_path),
                    "--checkpoint",
                    str(svc_ckpt),
                    "--resume",
                ]
            )
            == 0
        )
        assert svc_ckpt.read_bytes() == ref_ckpt.read_bytes()


class TestDrainBehaviour:
    def test_submit_during_drain_is_rejected(self, service, client_for):
        svc = service()
        client = client_for(svc)
        client.shutdown()
        deadline = time.monotonic() + 10
        while not svc._stopped.is_set():
            assert time.monotonic() < deadline
            time.sleep(0.05)
        from repro.service.jobs import JobSpec

        response = svc.submit(JobSpec(name="late", qasm=BELL_QASM))
        assert not response["ok"]
        assert response["code"] == "shutting-down"

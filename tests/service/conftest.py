"""Shared fixtures for the compile-service tests.

Services run in-process on ephemeral ports (`port=0`), so tests can
reach into the daemon (fault plans, the shared library) while clients
exercise the real socket protocol.
"""

import pytest

from repro.resilience.faults import set_fault_plan
from repro.service import CompileService, ServiceClient

#: a 2-qubit circuit whose single block needs one 2-qubit pulse.
BELL_QASM = """OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[0];
cx q[0],q[1];
"""

#: a different 2-qubit circuit (distinct cache keys from BELL_QASM).
SWAP_QASM = """OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
cx q[0],q[1];
cx q[1],q[0];
cx q[0],q[1];
"""

#: partitions into a 1-qubit block ([x q0]) then a 2-qubit block
#: ([cx q1,q2]) — the shape the drain/resume test needs (the 1q pulse
#: checkpoints before a stalled 2q search is cancelled).
TWO_BLOCK_QASM = """OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
x q[0];
cx q[1],q[2];
"""


@pytest.fixture
def service():
    """A fresh in-process daemon on an ephemeral port; stopped after."""
    created = []

    def factory(**kwargs):
        kwargs.setdefault("port", 0)
        svc = CompileService(**kwargs).start()
        created.append(svc)
        return svc

    yield factory
    for svc in created:
        svc.stop()
    # tests arm fault plans to create long-running jobs; never leak one
    set_fault_plan(None)


@pytest.fixture
def client_for():
    def factory(svc, timeout=60.0):
        return ServiceClient(port=svc.port, timeout=timeout)

    return factory

"""Job state machine, queue ordering, and the config-identity bridge."""

import threading
import time

import pytest

from repro.service.jobs import (
    Job,
    JobEventSink,
    JobQueue,
    JobSpec,
    QueueClosed,
    build_job_config,
)


def _job(job_id="j-000001", **spec_kwargs):
    spec_kwargs.setdefault("name", "t")
    spec_kwargs.setdefault("qasm", "qreg q[1];")
    return Job(job_id, JobSpec(**spec_kwargs))


class TestJobStates:
    def test_lifecycle(self):
        job = _job()
        assert job.state == "queued"
        assert job.mark_running()
        assert job.state == "running"
        job.finish("done", result={"x": 1})
        assert job.finished
        assert job.result_view()["result"] == {"x": 1}

    def test_terminal_state_sticks(self):
        job = _job()
        job.finish("failed", error="boom")
        job.finish("done", result={})
        assert job.state == "failed"
        assert job.result_view()["error"] == "boom"

    def test_finish_rejects_non_terminal(self):
        with pytest.raises(ValueError):
            _job().finish("running")

    def test_cancel_while_queued_is_immediate(self):
        job = _job()
        assert job.request_cancel()
        assert job.state == "cancelled"
        assert job.cancel.cancelled
        # the runner must then skip it
        assert not job.mark_running()

    def test_cancel_while_running_fires_token_only(self):
        job = _job()
        job.mark_running()
        assert job.request_cancel()
        assert job.state == "running"  # unwinds cooperatively
        assert job.cancel.cancelled

    def test_cancel_after_terminal_is_noop(self):
        job = _job()
        job.finish("done")
        assert not job.request_cancel()


class TestJobEvents:
    def test_events_are_stamped_and_sequenced(self):
        job = _job()
        sink = JobEventSink(job)
        sink.handle({"event": "stage_started", "stage": "zx"})
        sink.handle({"event": "stage_finished", "stage": "zx", "seconds": 0.1})
        batch, finished = job.wait_events(0, timeout=0)
        assert [e["seq"] for e in batch] == [1, 2]
        assert all(e["job"] == job.id for e in batch)
        assert not finished

    def test_wait_events_resumes_after_cursor(self):
        job = _job()
        for index in range(5):
            job.append_event({"event": "grape_iteration", "iterations": index})
        batch, _ = job.wait_events(3, timeout=0)
        assert [e["seq"] for e in batch] == [4, 5]

    def test_wait_events_blocks_until_append(self):
        job = _job()
        job.mark_running()

        def feed():
            time.sleep(0.05)
            job.append_event({"event": "stage_started", "stage": "qoc"})

        threading.Thread(target=feed, daemon=True).start()
        batch, finished = job.wait_events(0, timeout=5.0)
        assert len(batch) == 1
        assert not finished

    def test_finished_only_when_tail_consumed(self):
        job = _job()
        job.append_event({"event": "stage_started", "stage": "qoc"})
        job.finish("done")
        batch, finished = job.wait_events(0, timeout=0)
        assert len(batch) == 1 and finished
        _, finished_at_tail = job.wait_events(1, timeout=0)
        assert finished_at_tail


class TestJobQueue:
    def test_priority_order_then_fifo(self):
        queue = JobQueue()
        first = _job("j-1", priority=5)
        second = _job("j-2", priority=0)
        third = _job("j-3", priority=5)
        for job in (first, second, third):
            queue.push(job)
        assert queue.pop(0).id == "j-2"  # lowest priority value first
        assert queue.pop(0).id == "j-1"  # FIFO within a priority
        assert queue.pop(0).id == "j-3"

    def test_pop_timeout_returns_none(self):
        assert JobQueue().pop(timeout=0.01) is None

    def test_close_wakes_blocked_poppers(self):
        queue = JobQueue()
        results = []

        def popper():
            results.append(queue.pop(timeout=10.0))

        thread = threading.Thread(target=popper, daemon=True)
        thread.start()
        time.sleep(0.05)
        queue.close()
        thread.join(2.0)
        assert results == [None]

    def test_push_after_close_raises(self):
        queue = JobQueue()
        queue.close()
        with pytest.raises(QueueClosed):
            queue.push(_job())

    def test_close_drains_remaining_jobs(self):
        queue = JobQueue()
        queue.push(_job("j-1"))
        queue.close()
        assert queue.pop(0).id == "j-1"
        assert queue.pop(0) is None


class TestBuildJobConfig:
    def test_defaults_match_the_cli(self):
        """A daemon job with no options must equal `repro compile` with no
        flags — this is the bitwise-identity contract's foundation."""
        from repro.cli import build_parser, _config

        cli_config = _config(
            build_parser().parse_args(["compile", "unused.qasm"])
        )
        job_config = build_job_config({})
        assert job_config == cli_config

    def test_options_flow_through(self):
        config = build_job_config(
            {"dt": 0.25, "fidelity": 0.9, "qubit_limit": 2, "no_zx": True}
        )
        assert config.qoc.dt == 0.25
        assert config.qoc.fidelity_threshold == 0.9
        assert config.partition_qubit_limit == 2
        assert config.regroup_qubit_limit == 2
        assert not config.use_zx

    def test_checkpoint_options(self):
        config = build_job_config(
            {"checkpoint": "/tmp/x.json", "checkpoint_every": 3,
             "resume": True}
        )
        assert config.resilience.checkpoint_path == "/tmp/x.json"
        assert config.resilience.checkpoint_every == 3
        assert config.resilience.resume

"""Wire-protocol unit tests: NDJSON round trips and the HTTP shim."""

import json

import pytest

from repro.service import protocol
from repro.service.protocol import (
    ProtocolError,
    decode_message,
    encode_message,
    http_response,
    looks_like_http,
    parse_http_request,
    validate_request,
)


class TestRoundTrip:
    def test_encode_is_one_line(self):
        blob = encode_message({"op": "ping", "nested": {"a": [1, 2]}})
        assert blob.endswith(b"\n")
        assert blob.count(b"\n") == 1

    def test_decode_inverts_encode(self):
        payload = {
            "op": "submit",
            "qasm": "OPENQASM 2.0;\nqreg q[1];\n",
            "options": {"dt": 0.5, "no_zx": True},
            "priority": -3,
        }
        assert decode_message(encode_message(payload)) == payload

    def test_every_op_round_trips_validation(self):
        requests = [
            {"op": "ping"},
            {"op": "submit", "qasm": "qreg q[1];", "name": "x",
             "flow": "epoc", "priority": 1, "tenant": "t", "options": {}},
            {"op": "status"},
            {"op": "status", "job": "j-000001"},
            {"op": "events", "job": "j-000001", "after": 4, "follow": True},
            {"op": "result", "job": "j-000001"},
            {"op": "cancel", "job": "j-000001"},
            {"op": "stats"},
            {"op": "shutdown"},
        ]
        for request in requests:
            wire = decode_message(encode_message(request))
            assert validate_request(wire) == request

    def test_decode_accepts_str_and_bytes(self):
        assert decode_message('{"op": "ping"}') == {"op": "ping"}
        assert decode_message(b'{"op": "ping"}\n') == {"op": "ping"}


class TestDecodeErrors:
    @pytest.mark.parametrize(
        "line",
        [b"", b"   \n", b"not json\n", b"[1, 2]\n", b'"just a string"\n'],
    )
    def test_rejects_malformed(self, line):
        with pytest.raises(ProtocolError):
            decode_message(line)

    def test_rejects_oversized_message(self):
        blob = b'{"op": "ping", "pad": "' + b"x" * protocol.MAX_MESSAGE_BYTES
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_message(blob)

    def test_rejects_invalid_utf8(self):
        with pytest.raises(ProtocolError, match="UTF-8"):
            decode_message(b'{"op": "\xff"}')


class TestValidation:
    def test_unknown_op(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            validate_request({"op": "frobnicate"})

    def test_missing_op(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            validate_request({"job": "j-1"})

    def test_unknown_field_rejected_not_dropped(self):
        with pytest.raises(ProtocolError, match="prioriy"):
            validate_request(
                {"op": "submit", "qasm": "qreg q[1];", "prioriy": 5}
            )

    def test_job_required(self):
        for op in ("events", "result", "cancel"):
            with pytest.raises(ProtocolError, match="requires a string"):
                validate_request({"op": op})

    def test_submit_requires_qasm(self):
        with pytest.raises(ProtocolError, match="qasm"):
            validate_request({"op": "submit"})
        with pytest.raises(ProtocolError, match="qasm"):
            validate_request({"op": "submit", "qasm": "   "})

    def test_submit_field_types(self):
        base = {"op": "submit", "qasm": "qreg q[1];"}
        with pytest.raises(ProtocolError, match="priority"):
            validate_request({**base, "priority": "high"})
        with pytest.raises(ProtocolError, match="options"):
            validate_request({**base, "options": ["--fast"]})
        with pytest.raises(ProtocolError, match="tenant"):
            validate_request({**base, "tenant": 7})

    def test_events_field_types(self):
        with pytest.raises(ProtocolError, match="after"):
            validate_request(
                {"op": "events", "job": "j-1", "after": "yes"}
            )
        with pytest.raises(ProtocolError, match="follow"):
            validate_request(
                {"op": "events", "job": "j-1", "follow": "yes"}
            )


class TestResponses:
    def test_ok_and_error_shapes(self):
        assert protocol.ok_response(x=1) == {"ok": True, "x": 1}
        err = protocol.error_response("quota", "too many")
        assert err == {"ok": False, "code": "quota", "error": "too many"}


class TestHttpShim:
    def test_sniffs_http_methods(self):
        assert looks_like_http(b"GET /healthz HTTP/1.1\r\n")
        assert looks_like_http(b"POST /jobs HTTP/1.1\r\n")
        assert not looks_like_http(b'{"op": "ping"}\n')

    @pytest.mark.parametrize(
        "line,expected",
        [
            ("GET /healthz HTTP/1.1", {"op": "ping"}),
            ("GET /stats HTTP/1.1", {"op": "stats"}),
            ("GET /jobs HTTP/1.1", {"op": "status"}),
            ("GET /jobs/j-000002 HTTP/1.1",
             {"op": "status", "job": "j-000002"}),
            ("GET /jobs/j-000002/events HTTP/1.1",
             {"op": "events", "job": "j-000002"}),
            ("GET /jobs/j-000002/result HTTP/1.1",
             {"op": "result", "job": "j-000002"}),
            ("POST /jobs/j-000002/cancel HTTP/1.1",
             {"op": "cancel", "job": "j-000002"}),
            ("POST /shutdown HTTP/1.1", {"op": "shutdown"}),
        ],
    )
    def test_routes(self, line, expected):
        assert parse_http_request(line, None) == expected

    def test_post_jobs_maps_body_to_submit(self):
        body = json.dumps({"qasm": "qreg q[1];", "name": "x"}).encode()
        request = parse_http_request("POST /jobs HTTP/1.1", body)
        assert request["op"] == "submit"
        assert request["name"] == "x"

    def test_post_jobs_without_body_rejected(self):
        with pytest.raises(ProtocolError, match="body"):
            parse_http_request("POST /jobs HTTP/1.1", None)

    def test_unroutable_path(self):
        with pytest.raises(ProtocolError, match="no route"):
            parse_http_request("GET /nope HTTP/1.1", None)
        with pytest.raises(ProtocolError, match="no route"):
            parse_http_request("DELETE /jobs/j-1 HTTP/1.1", None)

    def test_query_strings_are_stripped(self):
        assert parse_http_request("GET /stats?pretty=1 HTTP/1.1", None) == {
            "op": "stats"
        }

    @pytest.mark.parametrize(
        "payload,status",
        [
            ({"ok": True}, b"200"),
            ({"ok": False, "code": "bad-request", "error": "x"}, b"400"),
            ({"ok": False, "code": "not-found", "error": "x"}, b"404"),
            ({"ok": False, "code": "quota", "error": "x"}, b"429"),
            ({"ok": False, "code": "shutting-down", "error": "x"}, b"503"),
        ],
    )
    def test_http_response_status_mapping(self, payload, status):
        raw = http_response(payload)
        assert raw.startswith(b"HTTP/1.1 " + status)
        head, body = raw.split(b"\r\n\r\n", 1)
        assert json.loads(body) == payload
        assert f"Content-Length: {len(body)}".encode() in head

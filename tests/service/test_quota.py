"""Per-tenant quota accounting unit tests."""

from repro.service.quota import QuotaLedger, QuotaPolicy


class TestAdmission:
    def test_unlimited_by_default(self):
        ledger = QuotaLedger()
        for _ in range(100):
            assert ledger.admit("t") is None

    def test_rate_limit_sliding_window(self):
        ledger = QuotaLedger(QuotaPolicy(jobs_per_minute=2))
        assert ledger.admit("t", now=100.0) is None
        assert ledger.admit("t", now=110.0) is None
        reason = ledger.admit("t", now=120.0)
        assert reason is not None and "per minute" in reason
        # the first submission ages out of the 60s window
        assert ledger.admit("t", now=161.0) is None

    def test_rate_limit_is_per_tenant(self):
        ledger = QuotaLedger(QuotaPolicy(jobs_per_minute=1))
        assert ledger.admit("a", now=100.0) is None
        assert ledger.admit("b", now=100.0) is None
        assert ledger.admit("a", now=101.0) is not None

    def test_max_pending(self):
        ledger = QuotaLedger(QuotaPolicy(max_pending=1))
        assert ledger.admit("t") is None
        assert "queued" in ledger.admit("t")
        ledger.record_start("t")  # pending -> running frees a slot
        assert ledger.admit("t") is None

    def test_max_running(self):
        ledger = QuotaLedger(QuotaPolicy(max_running_per_tenant=1))
        assert ledger.admit("t") is None
        ledger.record_start("t")
        assert "running" in ledger.admit("t")
        ledger.record_finish("t")
        assert ledger.admit("t") is None

    def test_rejections_do_not_consume_window_slots(self):
        ledger = QuotaLedger(QuotaPolicy(jobs_per_minute=1, max_pending=1))
        assert ledger.admit("t", now=100.0) is None
        # rejected on max_pending — must not burn a rate-window slot
        assert ledger.admit("t", now=130.0) is not None
        ledger.record_start("t")
        ledger.record_finish("t")
        assert ledger.admit("t", now=161.0) is None


class TestAccounting:
    def test_queued_cancel_settles_pending(self):
        ledger = QuotaLedger(QuotaPolicy(max_pending=1))
        assert ledger.admit("t") is None
        ledger.record_finish("t", started=False)
        assert ledger.admit("t") is None

    def test_snapshot(self):
        ledger = QuotaLedger(QuotaPolicy(jobs_per_minute=1))
        ledger.admit("t")
        ledger.admit("t")  # rejected
        snap = ledger.snapshot()
        assert snap["policy"]["jobs_per_minute"] == 1
        assert snap["tenants"]["t"] == {
            "pending": 1,
            "running": 0,
            "accepted": 1,
            "rejected": 1,
        }

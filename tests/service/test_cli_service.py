"""`repro submit` / `repro status` / `repro cancel` against a live daemon."""

import time

from repro import cli
from repro.resilience.faults import FaultPlan, set_fault_plan

from tests.service.conftest import BELL_QASM


def _args(svc, *rest):
    return [*rest, "--port", str(svc.port)]


class TestServiceCli:
    def test_submit_wait_and_status(self, service, tmp_path, capsys):
        svc = service()
        qasm = tmp_path / "bell.qasm"
        qasm.write_text(BELL_QASM)

        code = cli.main(_args(svc, "submit", str(qasm), "--wait"))
        out = capsys.readouterr().out
        assert code == 0
        assert "epoc" in out and "pulses=1" in out

        assert cli.main(_args(svc, "status")) == 0
        listing = capsys.readouterr().out
        assert "j-000001" in listing and "done" in listing

        assert cli.main(_args(svc, "status", "j-000001")) == 0
        detail = capsys.readouterr().out
        assert "state       : done" in detail

    def test_submit_fire_and_forget_prints_job_id(
        self, service, tmp_path, capsys
    ):
        svc = service()
        qasm = tmp_path / "bell.qasm"
        qasm.write_text(BELL_QASM)
        assert cli.main(_args(svc, "submit", str(qasm))) == 0
        job = capsys.readouterr().out.strip()
        assert job.startswith("j-")

    def test_cancel_via_cli(self, service, tmp_path, capsys):
        set_fault_plan(FaultPlan.parse("qoc.stall@qubits=2,seconds=60*-1"))
        svc = service(max_jobs=1)
        qasm = tmp_path / "bell.qasm"
        qasm.write_text(BELL_QASM)
        assert cli.main(_args(svc, "submit", str(qasm))) == 0
        job = capsys.readouterr().out.strip()
        deadline = time.monotonic() + 30
        from repro.service import ServiceClient

        client = ServiceClient(port=svc.port)
        while client.status(job)["state"] == "queued":
            assert time.monotonic() < deadline
            time.sleep(0.05)
        assert cli.main(_args(svc, "cancel", job)) == 0
        assert job in capsys.readouterr().out

    def test_client_error_against_dead_daemon(self, capsys):
        # nothing listens on this port; the CLI reports a clean error
        assert cli.main(["status", "--port", "1", "--timeout", "0.5"]) == 1
        assert "error:" in capsys.readouterr().err

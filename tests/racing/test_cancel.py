"""Unit tests for CancelToken and the cooperative stall fault shim."""

import time

import pytest

from repro.exceptions import RaceCancelled
from repro.racing import CancelToken, cooperative_stall
from repro.resilience import Deadline


class TestCancelToken:
    def test_starts_uncancelled(self):
        token = CancelToken()
        assert not token.cancelled
        assert token.reason is None
        token.raise_if_cancelled()  # no-op

    def test_cancel_sets_and_raises(self):
        token = CancelToken()
        token.cancel("lost the race")
        assert token.cancelled
        assert token.reason == "lost the race"
        with pytest.raises(RaceCancelled, match="lost the race"):
            token.raise_if_cancelled()

    def test_first_reason_sticks(self):
        token = CancelToken()
        token.cancel("first")
        token.cancel("second")
        assert token.reason == "first"


class TestCooperativeStall:
    def test_no_armed_fault_is_a_noop(self):
        t0 = time.monotonic()
        assert cooperative_stall("synthesis.stall", strategy="qsearch") is False
        assert time.monotonic() - t0 < 0.5

    def test_armed_stall_sleeps_then_fires(self, arm_faults):
        arm_faults("synthesis.stall@seconds=0.05,strategy=qsearch")
        t0 = time.monotonic()
        fired = cooperative_stall("synthesis.stall", strategy="qsearch")
        assert fired is True
        assert time.monotonic() - t0 >= 0.05

    def test_context_keys_still_filter(self, arm_faults):
        arm_faults("synthesis.stall@seconds=5,strategy=leap")
        assert cooperative_stall("synthesis.stall", strategy="qsearch") is False

    def test_cancel_cuts_the_stall_short(self, arm_faults):
        arm_faults("qoc.stall@seconds=30")
        token = CancelToken()
        token.cancel("loser")
        t0 = time.monotonic()
        with pytest.raises(RaceCancelled):
            cooperative_stall("qoc.stall", cancel=token, qubits=2)
        assert time.monotonic() - t0 < 5.0

    def test_expired_deadline_cuts_the_stall_short(self, arm_faults):
        arm_faults("qoc.stall@seconds=30")
        t0 = time.monotonic()
        fired = cooperative_stall("qoc.stall", deadline=Deadline(0.0), qubits=2)
        assert fired is True
        assert time.monotonic() - t0 < 5.0

    def test_bad_seconds_rejected(self, arm_faults):
        arm_faults("synthesis.stall@seconds=soon")
        with pytest.raises(ValueError, match="numeric seconds"):
            cooperative_stall("synthesis.stall")

"""Unit tests for the hedged strategy race engine."""

import time

import pytest

from repro.config import RacingConfig
from repro.exceptions import SynthesisError
from repro.racing import StrategyAttempt, StrategyRace, get_breaker_board, get_race_stats


def _config(**overrides):
    values = dict(
        enabled=True,
        hedge_delay_seconds=0.02,
        strategy_timeout_seconds=10.0,
        cancel_grace_seconds=2.0,
    )
    values.update(overrides)
    return RacingConfig(**values)


def instant(value):
    """An attempt body returning ``value`` immediately."""

    def run(cancel, deadline):
        return value

    return run


def cooperative_sleep(seconds, value, step=0.005):
    """An attempt body sleeping cooperatively, polling cancel/deadline."""

    def run(cancel, deadline):
        end = time.monotonic() + seconds
        while time.monotonic() < end:
            cancel.raise_if_cancelled()
            if deadline.expired:
                raise SynthesisError("deadline expired")
            time.sleep(step)
        return value

    return run


def failing(message="boom"):
    def run(cancel, deadline):
        raise SynthesisError(message)

    return run


class TestDeterministicMode:
    def test_fast_primary_never_starts_the_hedge(self):
        race = StrategyRace(_config(hedge_delay_seconds=60.0), site="t")
        result = race.run(
            [
                StrategyAttempt("primary", instant("a")),
                StrategyAttempt("hedge", instant("b")),
            ],
            signature="2q",
        )
        assert result.winner.name == "primary"
        assert result.winner.result == "a"
        # the hedge timer never fired: no attempt, no cancellation
        assert result.outcome("hedge").status == "pending"
        stats = get_race_stats().snapshot()["strategies"]
        assert "t|2q|hedge" not in stats
        assert stats["t|2q|primary"]["wins"] == 1

    def test_hedge_wins_when_primary_fails(self):
        race = StrategyRace(_config(), site="t")
        result = race.run(
            [
                StrategyAttempt("primary", failing()),
                StrategyAttempt("hedge", instant("b")),
            ]
        )
        assert result.winner.name == "hedge"
        assert result.outcome("primary").status == "failed"
        assert isinstance(result.outcome("primary").error, SynthesisError)

    def test_priority_beats_arrival(self):
        # the hedge resolves acceptably long before the primary, but the
        # deterministic winner is still the primary
        race = StrategyRace(_config(hedge_delay_seconds=0.0), site="t")
        result = race.run(
            [
                StrategyAttempt("primary", cooperative_sleep(0.15, "slow")),
                StrategyAttempt("hedge", instant("fast")),
            ]
        )
        assert result.winner.name == "primary"
        assert result.winner.result == "slow"
        assert result.outcome("hedge").status == "acceptable"

    def test_unacceptable_results_lose_to_lower_priority(self):
        race = StrategyRace(_config(), site="t")
        result = race.run(
            [
                StrategyAttempt(
                    "primary", instant("bad"), acceptable=lambda r: r != "bad"
                ),
                StrategyAttempt("hedge", instant("good")),
            ]
        )
        assert result.winner.name == "hedge"
        assert result.outcome("primary").status == "unacceptable"

    def test_no_winner_when_everything_fails(self):
        race = StrategyRace(_config(), site="t")
        result = race.run(
            [
                StrategyAttempt("a", failing("first")),
                StrategyAttempt("b", failing("second")),
            ]
        )
        assert result.winner is None
        assert {o.status for o in result.outcomes} == {"failed"}

    def test_losers_are_cancelled(self):
        race = StrategyRace(_config(hedge_delay_seconds=0.0), site="t")
        result = race.run(
            [
                StrategyAttempt("primary", cooperative_sleep(0.05, "win")),
                StrategyAttempt("straggler", cooperative_sleep(30.0, "slow")),
            ],
            signature="2q",
        )
        assert result.winner.name == "primary"
        straggler = result.outcome("straggler")
        assert straggler.status in ("cancelled", "running")
        assert not straggler.abandoned
        stats = get_race_stats().snapshot()["strategies"]
        assert stats["t|2q|straggler"]["cancellations"] == 1

    def test_timeout_classified(self):
        race = StrategyRace(
            _config(strategy_timeout_seconds=0.05), site="t"
        )
        result = race.run(
            [StrategyAttempt("only", cooperative_sleep(30.0, "late"))],
            signature="2q",
        )
        assert result.winner is None
        outcome = result.outcome("only")
        assert outcome.status == "failed"
        assert outcome.timed_out
        stats = get_race_stats().snapshot()["strategies"]["t|2q|only"]
        assert stats["failures"] == 1 and stats["timeouts"] == 1


class TestLatencyMode:
    def test_first_acceptable_finisher_wins(self):
        race = StrategyRace(
            _config(mode="latency", hedge_delay_seconds=0.0), site="t"
        )
        result = race.run(
            [
                StrategyAttempt("primary", cooperative_sleep(0.2, "slow")),
                StrategyAttempt("hedge", instant("fast")),
            ]
        )
        assert result.winner.name == "hedge"
        assert result.winner.result == "fast"

    def test_pending_hedge_pulled_forward_when_primary_fails(self):
        race = StrategyRace(
            _config(mode="latency", hedge_delay_seconds=60.0), site="t"
        )
        t0 = time.monotonic()
        result = race.run(
            [
                StrategyAttempt("primary", failing()),
                StrategyAttempt("hedge", instant("b")),
            ]
        )
        assert result.winner.name == "hedge"
        assert time.monotonic() - t0 < 30.0


class TestBreakerIntegration:
    def test_open_breaker_skips_the_strategy(self):
        config = _config(breaker_failures=2)
        board = get_breaker_board(failure_threshold=2)
        breaker = board.breaker("t", "primary", "2q")
        breaker.record_failure()
        breaker.record_failure()
        race = StrategyRace(config, site="t")
        result = race.run(
            [
                StrategyAttempt("primary", instant("a")),
                StrategyAttempt("hedge", instant("b")),
            ],
            signature="2q",
        )
        assert result.winner.name == "hedge"
        assert result.outcome("primary").status == "skipped"
        stats = get_race_stats().snapshot()["strategies"]["t|2q|primary"]
        assert stats["skipped"] == 1 and stats["attempts"] == 0

    def test_failures_open_the_breaker_through_races(self):
        config = _config(breaker_failures=2)
        race = StrategyRace(config, site="t")
        attempts = [
            StrategyAttempt("primary", failing()),
            StrategyAttempt("fallback", instant("ok"), breaker_exempt=True),
        ]
        race.run(attempts, signature="2q")
        race.run(attempts, signature="2q")
        result = race.run(attempts, signature="2q")
        assert result.outcome("primary").status == "skipped"
        assert (
            get_breaker_board().breaker("t", "primary", "2q").state == "open"
        )

    def test_all_skipped_forces_the_last_attempt(self):
        config = _config(breaker_failures=1)
        board = get_breaker_board(failure_threshold=1)
        board.breaker("t", "a", "").record_failure()
        board.breaker("t", "b", "").record_failure()
        race = StrategyRace(config, site="t")
        result = race.run(
            [
                StrategyAttempt("a", instant("first")),
                StrategyAttempt("b", instant("second")),
            ]
        )
        assert result.winner.name == "b"

    def test_breaker_exempt_always_runs(self):
        config = _config(breaker_failures=1)
        board = get_breaker_board(failure_threshold=1)
        board.breaker("t", "fallback", "").record_failure()
        race = StrategyRace(config, site="t")
        result = race.run(
            [
                StrategyAttempt("primary", failing()),
                StrategyAttempt(
                    "fallback", instant("safe"), breaker_exempt=True
                ),
            ]
        )
        assert result.winner.name == "fallback"


def test_empty_portfolio_rejected():
    with pytest.raises(ValueError):
        StrategyRace(_config(), site="t").run([])

"""Cooperative deadline/cancellation responsiveness of the hot loops.

Racing is only as responsive as its cancellation points: these tests pin
that an already-expired deadline aborts QSearch within a bounded number
of node expansions, LEAP before growing a layer, and the pulse search
within one GRAPE probe — and that a set CancelToken unwinds each with
:class:`~repro.exceptions.RaceCancelled`.
"""

import re

import numpy as np
import pytest

from repro import telemetry
from repro.config import QOCConfig
from repro.exceptions import QOCError, RaceCancelled, SynthesisError
from repro.linalg import random_unitary
from repro.qoc import minimal_latency_pulse
from repro.racing import CancelToken
from repro.resilience import Deadline
from repro.synthesis import leap_synthesize, qsearch_synthesize
from repro.telemetry import MetricsRegistry


@pytest.fixture
def target():
    return random_unitary(4, np.random.default_rng(21))


class TestQSearchResponsiveness:
    def test_expired_deadline_aborts_within_bounded_expansions(self, target):
        with pytest.raises(SynthesisError) as excinfo:
            qsearch_synthesize(target, deadline=Deadline(0.0))
        match = re.search(r"after (\d+) nodes", str(excinfo.value))
        assert match is not None
        assert int(match.group(1)) == 0  # aborted before the first expansion

    def test_cancel_unwinds_with_race_cancelled(self, target):
        token = CancelToken()
        token.cancel("lost")
        with pytest.raises(RaceCancelled):
            qsearch_synthesize(target, cancel=token)


class TestLeapResponsiveness:
    def test_expired_deadline_aborts_before_layer_growth(self, target):
        with pytest.raises(SynthesisError, match="deadline"):
            leap_synthesize(target, deadline=Deadline(0.0))

    def test_cancel_unwinds_with_race_cancelled(self, target):
        token = CancelToken()
        token.cancel("lost")
        with pytest.raises(RaceCancelled):
            leap_synthesize(target, cancel=token)


class TestGrapeResponsiveness:
    @pytest.fixture
    def qoc(self):
        return QOCConfig(
            dt=1.0,
            fidelity_threshold=0.999,
            max_iterations=5,
            min_segments=2,
            max_segments=64,
        )

    def test_expired_deadline_stops_within_one_probe(self, qoc):
        target = random_unitary(2, np.random.default_rng(9))
        registry = MetricsRegistry()
        previous = telemetry.set_metrics(registry)
        try:
            try:
                minimal_latency_pulse(
                    target, (0,), config=qoc, deadline=Deadline(0.0)
                )
            except QOCError:
                pass  # no convergence inside the (empty) budget is fine
        finally:
            telemetry.set_metrics(previous)
        # one doubling-phase probe runs, then the expiry check stops the
        # search before the second
        assert registry.counter("qoc.search_probes") <= 1.0

    def test_cancel_unwinds_before_the_first_probe(self, qoc):
        target = random_unitary(2, np.random.default_rng(9))
        token = CancelToken()
        token.cancel("lost")
        with pytest.raises(RaceCancelled):
            minimal_latency_pulse(target, (0,), config=qoc, cancel=token)

"""Unit tests for the always-on race-stats recorder and its ledger delta."""

import pytest

from repro.racing import RaceStats, get_race_stats, set_race_stats


class TestRaceStats:
    def test_empty_snapshot(self):
        stats = RaceStats()
        assert stats.snapshot() == {"races": 0, "strategies": {}}

    def test_record_and_snapshot_keys_flatten(self):
        stats = RaceStats()
        stats.record_race()
        stats.record("synthesis", "2q", "qsearch", "attempts")
        stats.record("synthesis", "2q", "qsearch", "wins")
        stats.record("qoc", "3q", "grape", "attempts", n=2)
        snapshot = stats.snapshot()
        assert snapshot["races"] == 1
        assert snapshot["strategies"]["synthesis|2q|qsearch"]["attempts"] == 1
        assert snapshot["strategies"]["synthesis|2q|qsearch"]["wins"] == 1
        assert snapshot["strategies"]["qoc|3q|grape"]["attempts"] == 2

    def test_unknown_outcome_rejected(self):
        with pytest.raises(ValueError, match="unknown race outcome"):
            RaceStats().record("s", "2q", "x", "victories")

    def test_delta_drops_untouched_strategies(self):
        stats = RaceStats()
        stats.record("synthesis", "2q", "qsearch", "attempts")
        start = stats.snapshot()
        stats.record_race()
        stats.record("synthesis", "2q", "leap", "attempts")
        stats.record("synthesis", "2q", "leap", "wins")
        delta = RaceStats.delta(start, stats.snapshot())
        assert delta["races"] == 1
        assert delta["strategies"] == {
            "synthesis|2q|leap": {"attempts": 1, "wins": 1}
        }

    def test_delta_of_identical_snapshots_is_empty(self):
        stats = RaceStats()
        stats.record("s", "2q", "x", "attempts")
        snapshot = stats.snapshot()
        delta = RaceStats.delta(snapshot, snapshot)
        assert delta == {"races": 0, "strategies": {}}


class TestGlobalRecorder:
    def test_get_creates_once(self):
        first = get_race_stats()
        assert get_race_stats() is first

    def test_set_replaces(self):
        mine = RaceStats()
        previous = set_race_stats(mine)
        try:
            assert get_race_stats() is mine
        finally:
            set_race_stats(previous)

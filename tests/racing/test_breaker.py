"""Unit tests for the per-strategy circuit breakers."""

import pytest

from repro.racing import BreakerBoard, CircuitBreaker
from repro.racing.breaker import get_breaker_board


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


class TestCircuitBreaker:
    def test_closed_allows(self, clock):
        breaker = CircuitBreaker(clock=clock)
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_opens_after_consecutive_failures(self, clock):
        breaker = CircuitBreaker(failure_threshold=3, clock=clock)
        for _ in range(2):
            breaker.record_failure()
            assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_the_streak(self, clock):
        breaker = CircuitBreaker(failure_threshold=2, clock=clock)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_probe_after_cooldown(self, clock):
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=10.0, clock=clock
        )
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.state == "half_open"
        assert breaker.allow()  # the single probe slot
        assert not breaker.allow()  # a second caller is refused

    def test_probe_success_closes(self, clock):
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=10.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens(self, clock):
        breaker = CircuitBreaker(
            failure_threshold=5, cooldown_seconds=10.0, clock=clock
        )
        for _ in range(5):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()  # one half-open failure re-opens immediately
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.describe()["times_opened"] == 2

    def test_zero_threshold_disables(self, clock):
        breaker = CircuitBreaker(failure_threshold=0, clock=clock)
        for _ in range(100):
            breaker.record_failure()
        assert breaker.allow()

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=-1)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_seconds=-1.0)


class TestBreakerBoard:
    def test_same_key_same_breaker(self):
        board = BreakerBoard()
        first = board.breaker("synthesis", "qsearch", "2q")
        assert board.breaker("synthesis", "qsearch", "2q") is first
        assert board.breaker("synthesis", "qsearch", "3q") is not first

    def test_snapshot_keys_and_states(self):
        board = BreakerBoard(failure_threshold=1)
        board.breaker("synthesis", "qsearch", "2q").record_failure()
        board.breaker("qoc", "grape", "2q")
        snapshot = board.snapshot()
        assert set(snapshot) == {"synthesis:qsearch:2q", "qoc:grape:2q"}
        assert snapshot["synthesis:qsearch:2q"]["state"] == "open"
        assert snapshot["qoc:grape:2q"]["state"] == "closed"

    def test_global_board_updates_defaults(self):
        board = get_breaker_board(failure_threshold=7, cooldown_seconds=1.5)
        assert get_breaker_board() is board
        assert board.failure_threshold == 7
        assert board.breaker("x", "y", "z").failure_threshold == 7

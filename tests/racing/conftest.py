"""Fixtures for the racing suite: isolated process-global recorders.

Races record into the process-global breaker board, race-stats recorder
and fault plan; every test gets fresh ones so breaker state or armed
faults can never leak between tests.
"""

import pytest

from repro.config import RacingConfig
from repro.racing import BreakerBoard, RaceStats, set_breaker_board, set_race_stats
from repro.resilience import FaultPlan, set_fault_plan


@pytest.fixture(autouse=True)
def clean_racing_globals():
    previous_plan = set_fault_plan(FaultPlan())
    previous_board = set_breaker_board(BreakerBoard())
    previous_stats = set_race_stats(RaceStats())
    yield
    set_fault_plan(previous_plan)
    set_breaker_board(previous_board)
    set_race_stats(previous_stats)


@pytest.fixture
def arm_faults():
    """Install a fault plan from the ``REPRO_FAULTS`` grammar."""

    def arm(text: str) -> FaultPlan:
        plan = FaultPlan.parse(text)
        set_fault_plan(plan)
        return plan

    return arm


@pytest.fixture
def fast_racing():
    """Racing settings tuned for test speed: tiny hedge delay, short budgets."""
    return RacingConfig(
        enabled=True,
        hedge_delay_seconds=0.02,
        strategy_timeout_seconds=10.0,
        cancel_grace_seconds=2.0,
    )

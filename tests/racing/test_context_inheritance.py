"""Regression: racing strategy threads inherit the caller's context.

`threading.Thread` targets start from an *empty* contextvars context, so
without the explicit context capture in `StrategyRace.run` a strategy
body would see the default bus / no ambient cancel token even while the
submitting job had both installed.  These tests pin the capture.
"""

from repro.config import RacingConfig
from repro.exceptions import RaceCancelled
from repro.obs.events import EventBus, MemorySink, set_bus
from repro.racing import (
    CancelToken,
    StrategyAttempt,
    StrategyRace,
    cancel_scope,
    current_token,
    poll_cancellation,
)


def _race(**overrides):
    config = RacingConfig(
        enabled=True, mode="latency", hedge_delay_seconds=0.0, **overrides
    )
    return StrategyRace(config, site="synthesis")


class TestContextInheritance:
    def test_strategy_threads_see_the_callers_bus(self):
        sink = MemorySink()
        set_bus(EventBus([sink]))
        try:
            from repro.obs.events import get_bus

            def body(cancel, deadline):
                get_bus().emit("stage_started", stage="raced")
                return "ok"

            result = _race().run(
                [StrategyAttempt(name="only", run=body)]
            )
            assert result.winner is not None
            assert result.winner.result == "ok"
        finally:
            set_bus(None)
        assert [event["stage"] for event in sink.events] == ["raced"]

    def test_strategy_threads_see_the_ambient_cancel_token(self):
        token = CancelToken()
        observed = []

        def body(cancel, deadline):
            observed.append(current_token())
            return "ok"

        with cancel_scope(token):
            _race().run([StrategyAttempt(name="only", run=body)])
        assert observed == [token]

    def test_job_cancel_unwinds_a_racing_strategy(self):
        """The service's job-level cancel: the ambient token (not the
        race's own per-attempt token) stops an in-flight strategy."""
        import threading
        import time

        token = CancelToken()

        def body(cancel, deadline):
            # a cooperative strategy loop polling both tokens
            while True:
                poll_cancellation(cancel)
                time.sleep(0.005)

        def fire():
            time.sleep(0.1)
            token.cancel("job cancelled")

        threading.Thread(target=fire, daemon=True).start()
        with cancel_scope(token):
            result = _race().run([StrategyAttempt(name="only", run=body)])
        assert result.winner is None
        (outcome,) = result.outcomes
        assert outcome.status in ("failed", "cancelled")

    def test_poll_cancellation_honours_both_tokens(self):
        explicit = CancelToken()
        ambient = CancelToken()
        with cancel_scope(ambient):
            poll_cancellation(explicit)  # neither set: no raise
            ambient.cancel("ambient")
            try:
                poll_cancellation(explicit)
                raised = False
            except RaceCancelled:
                raised = True
            assert raised
        explicit.cancel("explicit")
        try:
            poll_cancellation(explicit)
            raised = False
        except RaceCancelled:
            raised = True
        assert raised

"""Raced synthesis/QOC portfolios: bitwise equivalence and hedging.

The acceptance-critical properties live here:

* deterministic-mode racing returns results bitwise-identical to the
  sequential fallback chains (same strategies, same seeds), and
* an injected ``synthesis.stall`` straggler on the primary strategy is
  hedged around — the race completes far inside the stall, bounded by
  the hedge delay plus the fallback's own runtime.
"""

import time

import numpy as np
import pytest

from repro.config import QOCConfig, RacingConfig
from repro.linalg import random_unitary
from repro.qoc import minimal_latency_pulse
from repro.qoc.hamiltonian import TransmonChain
from repro.racing import get_race_stats
from repro.racing.portfolios import raced_minimal_latency_pulse
from repro.synthesis import synthesize_unitary


def _racing(**overrides):
    values = dict(
        enabled=True,
        hedge_delay_seconds=0.05,
        strategy_timeout_seconds=30.0,
    )
    values.update(overrides)
    return RacingConfig(**values)


class TestRacedSynthesis:
    @pytest.mark.parametrize("seed", [3, 17])
    def test_bitwise_identical_to_serial(self, seed):
        target = random_unitary(4, np.random.default_rng(seed))
        serial = synthesize_unitary(target)
        raced = synthesize_unitary(target, racing=_racing())
        assert raced.method == serial.method
        assert raced.distance == serial.distance
        assert raced.cnot_count == serial.cnot_count
        assert np.array_equal(
            raced.circuit.unitary(), serial.circuit.unitary()
        )

    def test_identity_fast_path_matches(self):
        serial = synthesize_unitary(np.eye(4))
        raced = synthesize_unitary(np.eye(4), racing=_racing())
        assert raced.method == serial.method == "qsearch"
        assert np.array_equal(
            raced.circuit.unitary(), serial.circuit.unitary()
        )

    def test_stalled_primary_is_hedged_around(self, arm_faults):
        # the primary strategy stalls for 30s on every block; the hedge
        # bound is strategy_timeout (the stalled primary times out) plus
        # the fallback's own runtime — far inside the stall, which is
        # what the sequential chain would have slept through
        arm_faults("synthesis.stall@seconds=30,strategy=qsearch*-1")
        target = random_unitary(4, np.random.default_rng(5))
        t0 = time.monotonic()
        result = synthesize_unitary(
            target,
            racing=_racing(
                hedge_delay_seconds=0.05, strategy_timeout_seconds=1.0
            ),
        )
        elapsed = time.monotonic() - t0
        assert elapsed < 20.0
        assert result.method in ("leap", "kak")
        stats = get_race_stats().snapshot()["strategies"]
        assert stats["synthesis|2q|qsearch"]["timeouts"] == 1

    def test_inactive_racing_config_stays_serial(self):
        # enabled=False must not touch the race machinery at all
        result = synthesize_unitary(
            np.eye(4), racing=RacingConfig(enabled=False)
        )
        assert result.method == "qsearch"
        assert get_race_stats().snapshot()["races"] == 0


class TestRacedQOC:
    @pytest.fixture
    def qoc(self):
        return QOCConfig(
            dt=1.0,
            fidelity_threshold=0.95,
            max_iterations=40,
            min_segments=2,
            max_segments=60,
        )

    def test_bitwise_identical_to_serial(self, qoc):
        target = random_unitary(2, np.random.default_rng(7))
        hardware = TransmonChain(1)
        serial = minimal_latency_pulse(target, (0,), config=qoc, hardware=hardware)
        raced = raced_minimal_latency_pulse(
            target,
            (0,),
            config=qoc,
            hardware=hardware,
            resilience=None,
            racing=_racing(qoc_restarts=1),
        )
        assert raced.source == serial.source == "grape"
        assert raced.dt == serial.dt
        assert raced.fidelity == serial.fidelity
        assert np.array_equal(raced.controls, serial.controls)

    def test_stalled_search_is_hedged(self, qoc, arm_faults):
        # the primary pulse search stalls once (consuming the one-shot
        # spec); it times out at the strategy budget while a reseeded
        # restart hedge converges, so the race completes inside the stall
        arm_faults("qoc.stall@seconds=30*1")
        target = random_unitary(2, np.random.default_rng(7))
        t0 = time.monotonic()
        pulse = raced_minimal_latency_pulse(
            target,
            (0,),
            config=qoc,
            hardware=TransmonChain(1),
            resilience=None,
            racing=_racing(
                hedge_delay_seconds=0.05,
                strategy_timeout_seconds=1.0,
                qoc_restarts=1,
            ),
        )
        assert time.monotonic() - t0 < 20.0
        assert pulse.source == "grape"

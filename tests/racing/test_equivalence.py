"""Serial-vs-raced bitwise equivalence of a full pipeline compile.

The acceptance property for deterministic racing: with no faults
injected, a raced compile produces exactly the schedule a serial compile
does — same latency, same fidelity, and bitwise-identical pulse
waveforms — because the deterministic winner is always the result the
sequential fallback chain would have returned.
"""

from dataclasses import replace

import numpy as np

from repro.circuits import QuantumCircuit
from repro.config import RacingConfig
from repro.core import EPOCPipeline


def _small_circuit():
    qc = QuantumCircuit(3)
    qc.h(0)
    qc.cx(0, 1)
    qc.t(1)
    qc.cx(1, 2)
    qc.h(2)
    return qc


def _schedules_bitwise_equal(a, b):
    assert len(a.items) == len(b.items)
    for left, right in zip(a.items, b.items):
        assert left.qubits == right.qubits
        assert left.start == right.start
        assert left.duration == right.duration
        if left.pulse is not None or right.pulse is not None:
            assert left.pulse.source == right.pulse.source
            assert left.pulse.dt == right.pulse.dt
            assert np.array_equal(left.pulse.controls, right.pulse.controls)


def test_raced_compile_is_bitwise_identical_to_serial(fast_epoc):
    serial_config = replace(fast_epoc, racing=RacingConfig(enabled=False))
    raced_config = replace(
        fast_epoc,
        racing=RacingConfig(
            enabled=True,
            mode="deterministic",
            hedge_delay_seconds=0.02,
            strategy_timeout_seconds=30.0,
            qoc_restarts=1,
        ),
    )
    serial = EPOCPipeline(serial_config).compile(_small_circuit(), "eq")
    raced = EPOCPipeline(raced_config).compile(_small_circuit(), "eq")
    assert raced.latency_ns == serial.latency_ns
    assert raced.fidelity == serial.fidelity
    assert raced.pulse_count == serial.pulse_count
    assert raced.degraded_blocks == serial.degraded_blocks
    _schedules_bitwise_equal(raced.schedule, serial.schedule)

"""Tests for tensor embedding and state application."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CircuitError
from repro.circuits.gates import gate_matrix
from repro.linalg import (
    apply_gate_to_state,
    embed_operator,
    kron_all,
    permute_qubits,
    random_unitary,
)


class TestKronAll:
    def test_empty_is_scalar_identity(self):
        assert np.allclose(kron_all([]), np.eye(1))

    def test_matches_numpy_kron(self, rng):
        a = random_unitary(2, rng)
        b = random_unitary(2, rng)
        assert np.allclose(kron_all([a, b]), np.kron(a, b))

    def test_left_factor_is_qubit_zero(self):
        x = gate_matrix("x")
        full = kron_all([x, np.eye(2)])
        # flipping qubit 0 (MSB) maps |00> -> |10> i.e. index 0 -> 2
        state = np.zeros(4)
        state[0] = 1.0
        assert np.argmax(np.abs(full @ state)) == 2


class TestPermuteQubits:
    def test_identity_permutation(self, rng):
        u = random_unitary(8, rng)
        assert np.allclose(permute_qubits(u, [0, 1, 2]), u)

    def test_swap_two_qubits(self, rng):
        a = random_unitary(2, rng)
        b = random_unitary(2, rng)
        ab = np.kron(a, b)
        ba = np.kron(b, a)
        assert np.allclose(permute_qubits(ab, [1, 0]), ba)

    def test_invalid_permutation(self):
        with pytest.raises(CircuitError):
            permute_qubits(np.eye(4), [0, 0])

    def test_three_cycle(self, rng):
        mats = [random_unitary(2, rng) for _ in range(3)]
        full = kron_all(mats)
        # relabel qubit i -> (i+1) % 3; operator on qubit 0 moves to qubit 1
        rotated = permute_qubits(full, [1, 2, 0])
        expected = kron_all([mats[2], mats[0], mats[1]])
        assert np.allclose(rotated, expected)


class TestEmbedOperator:
    def test_embed_on_all_qubits_is_identity_op(self, rng):
        u = random_unitary(4, rng)
        assert np.allclose(embed_operator(u, (0, 1), 2), u)

    def test_embed_single_qubit(self, rng):
        u = random_unitary(2, rng)
        full = embed_operator(u, (1,), 2)
        assert np.allclose(full, np.kron(np.eye(2), u))

    def test_reversed_target_order(self):
        cx = gate_matrix("cx")
        # control on qubit 1, target on qubit 0
        full = embed_operator(cx, (1, 0), 2)
        state = np.zeros(4)
        state[0b01] = 1.0  # qubit1 (LSB) = 1 -> control fires
        out = full @ state
        assert np.argmax(np.abs(out)) == 0b11

    def test_duplicate_targets_rejected(self):
        with pytest.raises(CircuitError):
            embed_operator(gate_matrix("cx"), (0, 0), 2)

    def test_out_of_range_rejected(self):
        with pytest.raises(CircuitError):
            embed_operator(gate_matrix("x"), (3,), 2)

    def test_wrong_arity_rejected(self):
        with pytest.raises(CircuitError):
            embed_operator(gate_matrix("cx"), (0,), 2)

    def test_non_power_of_two(self):
        with pytest.raises(CircuitError):
            embed_operator(np.eye(3), (0,), 2)


class TestApplyGateToState:
    def test_matches_embedded_matrix(self, rng):
        u = random_unitary(4, rng)
        state = rng.standard_normal(8) + 1j * rng.standard_normal(8)
        expected = embed_operator(u, (0, 2), 3) @ state
        actual = apply_gate_to_state(u, state, (0, 2), 3)
        assert np.allclose(actual, expected)

    def test_batched_columns(self, rng):
        u = random_unitary(2, rng)
        batch = rng.standard_normal((8, 5)) + 1j * rng.standard_normal((8, 5))
        expected = embed_operator(u, (1,), 3) @ batch
        actual = apply_gate_to_state(u, batch, (1,), 3)
        assert np.allclose(actual, expected)

    def test_gate_shape_mismatch(self, rng):
        with pytest.raises(CircuitError):
            apply_gate_to_state(np.eye(2), np.zeros(8), (0, 1), 3)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    targets=st.permutations(list(range(3))).map(lambda p: tuple(p[:2])),
)
def test_embedding_consistency_property(seed, targets):
    """Property: embed + apply agree for random operators and targets."""
    gen = np.random.default_rng(seed)
    u = random_unitary(4, gen)
    state = gen.standard_normal(8) + 1j * gen.standard_normal(8)
    assert np.allclose(
        apply_gate_to_state(u, state, targets, 3),
        embed_operator(u, targets, 3) @ state,
    )

"""Tests for unitary metrics and constructors."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import (
    average_gate_fidelity,
    closest_unitary,
    equal_up_to_global_phase,
    global_phase_align,
    hilbert_schmidt_overlap,
    hs_distance,
    is_unitary,
    process_fidelity,
    random_hermitian,
    random_unitary,
    unitary_distance,
)


class TestIsUnitary:
    def test_identity(self):
        assert is_unitary(np.eye(4))

    def test_hadamard(self):
        h = np.array([[1, 1], [1, -1]]) / math.sqrt(2)
        assert is_unitary(h)

    def test_non_square(self):
        assert not is_unitary(np.ones((2, 3)))

    def test_non_unitary(self):
        assert not is_unitary(2.0 * np.eye(2))

    def test_vector_rejected(self):
        assert not is_unitary(np.ones(4))


class TestRandomUnitary:
    def test_is_unitary(self, rng):
        for dim in (2, 4, 8):
            assert is_unitary(random_unitary(dim, rng))

    def test_deterministic_with_seed(self):
        a = random_unitary(4, np.random.default_rng(5))
        b = random_unitary(4, np.random.default_rng(5))
        assert np.allclose(a, b)

    def test_differs_between_draws(self, rng):
        assert not np.allclose(random_unitary(4, rng), random_unitary(4, rng))


class TestRandomHermitian:
    def test_is_hermitian(self, rng):
        h = random_hermitian(8, rng)
        assert np.allclose(h, h.conj().T)


class TestGlobalPhase:
    def test_alignment_recovers_phase(self, rng):
        u = random_unitary(4, rng)
        v = np.exp(1j * 0.7) * u
        assert np.allclose(global_phase_align(u, v), u)

    def test_equal_up_to_global_phase(self, rng):
        u = random_unitary(8, rng)
        assert equal_up_to_global_phase(u, np.exp(-1.3j) * u)

    def test_different_unitaries_not_equal(self, rng):
        u = random_unitary(4, rng)
        v = random_unitary(4, rng)
        assert not equal_up_to_global_phase(u, v)

    def test_shape_mismatch(self):
        assert not equal_up_to_global_phase(np.eye(2), np.eye(4))

    def test_zero_overlap_matrix_returned_unchanged(self):
        # tr(X^dag Z) = 0: no phase is defined, matrix passes through
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        z = np.array([[1, 0], [0, -1]], dtype=complex)
        assert np.allclose(global_phase_align(x, z), z)


class TestDistances:
    def test_hs_distance_zero_for_equal(self, rng):
        u = random_unitary(4, rng)
        assert hs_distance(u, u) == pytest.approx(0.0, abs=1e-12)

    def test_hs_distance_phase_invariant(self, rng):
        u = random_unitary(4, rng)
        assert hs_distance(u, np.exp(0.5j) * u) == pytest.approx(0.0, abs=1e-12)

    def test_hs_distance_bounds(self, rng):
        u = random_unitary(8, rng)
        v = random_unitary(8, rng)
        assert 0.0 <= hs_distance(u, v) <= 1.0

    def test_unitary_distance_phase_invariant(self, rng):
        u = random_unitary(4, rng)
        assert unitary_distance(u, np.exp(2.1j) * u) == pytest.approx(0.0, abs=1e-9)

    def test_unitary_distance_orthogonal(self):
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        # |I - e^{i phi} X| is at least 1 for any phase
        assert unitary_distance(np.eye(2), x) >= 1.0 - 1e-9


class TestFidelities:
    def test_process_fidelity_self(self, rng):
        u = random_unitary(4, rng)
        assert process_fidelity(u, u) == pytest.approx(1.0)

    def test_average_gate_fidelity_identity_relation(self, rng):
        u = random_unitary(4, rng)
        v = random_unitary(4, rng)
        f_pro = process_fidelity(u, v)
        f_avg = average_gate_fidelity(u, v)
        d = 4
        assert f_avg == pytest.approx((d * f_pro + 1) / (d + 1))

    def test_overlap_conjugate_symmetry(self, rng):
        u = random_unitary(4, rng)
        v = random_unitary(4, rng)
        assert hilbert_schmidt_overlap(u, v) == pytest.approx(
            np.conj(hilbert_schmidt_overlap(v, u))
        )


class TestClosestUnitary:
    def test_projects_to_unitary(self, rng):
        m = rng.standard_normal((4, 4)) + 1j * rng.standard_normal((4, 4))
        assert is_unitary(closest_unitary(m))

    def test_fixed_point(self, rng):
        u = random_unitary(4, rng)
        assert np.allclose(closest_unitary(u), u, atol=1e-10)


@settings(max_examples=25, deadline=None)
@given(phase=st.floats(min_value=-math.pi, max_value=math.pi), seed=st.integers(0, 1000))
def test_phase_invariance_property(phase, seed):
    """Property: every metric ignores a global phase."""
    u = random_unitary(4, np.random.default_rng(seed))
    v = np.exp(1j * phase) * u
    assert hs_distance(u, v) < 1e-9
    assert unitary_distance(u, v) < 1e-7
    assert process_fidelity(u, v) > 1.0 - 1e-9

"""Tests for GF(2) linear algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import GF2Matrix


class TestBasics:
    def test_identity(self):
        m = GF2Matrix.identity(3)
        assert m.shape == (3, 3)
        assert m.rank() == 3

    def test_entries_reduced_mod_2(self):
        m = GF2Matrix([[2, 3], [4, 5]])
        assert m.data.tolist() == [[0, 1], [0, 1]]

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            GF2Matrix([1, 0, 1])

    def test_matmul(self):
        a = GF2Matrix([[1, 1], [0, 1]])
        b = GF2Matrix([[1, 0], [1, 1]])
        assert (a @ b).data.tolist() == [[0, 1], [1, 1]]

    def test_equality_and_copy(self):
        a = GF2Matrix([[1, 0], [0, 1]])
        b = a.copy()
        assert a == b
        b.add_row(0, 1)
        assert a != b

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(GF2Matrix.identity(2))


class TestGauss:
    def test_rank_of_zero(self):
        assert GF2Matrix.zeros(3, 4).rank() == 0

    def test_rank_dependent_rows(self):
        m = GF2Matrix([[1, 1, 0], [0, 1, 1], [1, 0, 1]])  # row3 = row1+row2
        assert m.rank() == 2

    def test_full_reduce_reaches_rref(self):
        m = GF2Matrix([[1, 1, 1], [0, 1, 1], [0, 0, 1]])
        m.gauss(full_reduce=True)
        assert m.data.tolist() == [[1, 0, 0], [0, 1, 0], [0, 0, 1]]

    def test_row_op_callback_replays_elimination(self):
        original = GF2Matrix([[1, 1, 0], [1, 0, 1], [0, 1, 1]])
        work = original.copy()
        ops = []
        work.gauss(full_reduce=True, row_op_callback=lambda s, d: ops.append((s, d)))
        replay = original.copy()
        for s, d in ops:
            replay.add_row(s, d)
        assert replay == work

    def test_pivot_cols_recorded(self):
        m = GF2Matrix([[0, 1, 1], [0, 0, 1]])
        pivots = []
        m.gauss(pivot_cols=pivots)
        assert pivots == [1, 2]

    def test_blocksize_same_rank(self):
        rng = np.random.default_rng(3)
        data = rng.integers(0, 2, size=(10, 12))
        plain = GF2Matrix(data).copy()
        chunked = GF2Matrix(data).copy()
        assert plain.gauss() == chunked.gauss(blocksize=3)


class TestInverse:
    def test_inverse_round_trip(self):
        m = GF2Matrix([[1, 1, 0], [0, 1, 1], [0, 0, 1]])
        inv = m.inverse()
        assert (m @ inv).data.tolist() == np.eye(3, dtype=int).tolist()

    def test_singular_raises(self):
        with pytest.raises(ValueError):
            GF2Matrix([[1, 1], [1, 1]]).inverse()

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            GF2Matrix.zeros(2, 3).inverse()


class TestNullspaceAndSolve:
    def test_nullspace_vectors_annihilate(self):
        m = GF2Matrix([[1, 1, 0], [0, 1, 1]])
        for vec in m.nullspace():
            assert np.all((m.data @ vec) % 2 == 0)

    def test_nullspace_dimension(self):
        m = GF2Matrix([[1, 1, 0], [0, 1, 1], [1, 0, 1]])  # rank 2, 3 cols
        assert len(m.nullspace()) == 1

    def test_solve_consistent(self):
        m = GF2Matrix([[1, 1, 0], [0, 1, 1], [0, 0, 1]])
        rhs = np.array([1, 0, 1], dtype=np.uint8)
        x = m.solve(rhs)
        assert x is not None
        assert np.all((m.data @ x) % 2 == rhs)

    def test_solve_inconsistent(self):
        m = GF2Matrix([[1, 1], [1, 1]])
        assert m.solve(np.array([1, 0], dtype=np.uint8)) is None


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100_000), n=st.integers(2, 6))
def test_gauss_preserves_row_space_property(seed, n):
    """Property: elimination row ops never change the GF(2) rank."""
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 2, size=(n, n + 1))
    m = GF2Matrix(data)
    rank_before = m.rank()
    m.gauss(full_reduce=True, blocksize=2)
    assert m.rank() == rank_before


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_invertible_solve_property(seed):
    """Property: for invertible M and any b, solve returns M^-1 b."""
    rng = np.random.default_rng(seed)
    while True:
        data = rng.integers(0, 2, size=(4, 4))
        m = GF2Matrix(data)
        if m.rank() == 4:
            break
    b = rng.integers(0, 2, size=4).astype(np.uint8)
    x = m.solve(b)
    expected = (m.inverse().data @ b) % 2
    assert np.array_equal(x, expected)

"""Tests for Euler-angle decompositions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SynthesisError
from repro.circuits.gates import gate_matrix, rz_matrix, ry_matrix, u3_matrix
from repro.linalg import random_unitary
from repro.linalg.decompose import euler_decompose_u3, su2_params, zyz_angles


class TestSU2Params:
    def test_determinant_one(self, rng):
        u = random_unitary(2, rng)
        special, phase = su2_params(u)
        det = special[0, 0] * special[1, 1] - special[0, 1] * special[1, 0]
        assert det == pytest.approx(1.0, abs=1e-10)
        assert np.allclose(np.exp(1j * phase) * special, u)

    def test_rejects_non_2x2(self):
        with pytest.raises(SynthesisError):
            su2_params(np.eye(4))

    def test_rejects_singular(self):
        with pytest.raises(SynthesisError):
            su2_params(np.zeros((2, 2)))


class TestZYZ:
    def test_reconstruction(self, rng):
        for _ in range(10):
            u = random_unitary(2, rng)
            theta, phi, lam, phase = zyz_angles(u)
            rebuilt = (
                np.exp(1j * phase)
                * rz_matrix(phi)
                @ ry_matrix(theta)
                @ rz_matrix(lam)
            )
            assert np.allclose(rebuilt, u, atol=1e-9)

    def test_identity(self):
        theta, phi, lam, phase = zyz_angles(np.eye(2))
        assert theta == pytest.approx(0.0, abs=1e-9)

    def test_pauli_x(self):
        theta, _, _, _ = zyz_angles(gate_matrix("x"))
        assert theta == pytest.approx(math.pi, abs=1e-9)

    def test_diagonal_gate(self):
        theta, phi, lam, phase = zyz_angles(gate_matrix("t"))
        rebuilt = (
            np.exp(1j * phase) * rz_matrix(phi) @ ry_matrix(theta) @ rz_matrix(lam)
        )
        assert np.allclose(rebuilt, gate_matrix("t"), atol=1e-9)

    def test_antidiagonal_gate(self):
        y = gate_matrix("y")
        theta, phi, lam, phase = zyz_angles(y)
        rebuilt = (
            np.exp(1j * phase) * rz_matrix(phi) @ ry_matrix(theta) @ rz_matrix(lam)
        )
        assert np.allclose(rebuilt, y, atol=1e-9)


class TestEulerU3:
    def test_round_trip_named_gates(self):
        for name in ("x", "y", "z", "h", "s", "t", "sx"):
            u = gate_matrix(name)
            theta, phi, lam, gamma = euler_decompose_u3(u)
            assert np.allclose(
                np.exp(1j * gamma) * u3_matrix(theta, phi, lam), u, atol=1e-9
            )


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_u3_round_trip_property(seed):
    """Property: euler_decompose_u3 is exact on Haar-random 2x2 unitaries."""
    u = random_unitary(2, np.random.default_rng(seed))
    theta, phi, lam, gamma = euler_decompose_u3(u)
    assert np.allclose(np.exp(1j * gamma) * u3_matrix(theta, phi, lam), u, atol=1e-8)

"""Parallel-vs-serial equivalence: the headline determinism guarantee.

Seeded GRAPE plus singleflight dispatch means the parallel engine must
produce bitwise-identical schedules, identical latency/fidelity, an
identical library, and identical cache accounting — ``workers=0`` and
``workers=4`` are the same compiler at different speeds.
"""

import numpy as np
import pytest

from repro.baselines import AccQOCFlow, PAQOCFlow
from repro.circuits import QuantumCircuit
from repro.config import ParallelConfig
from repro.core import EPOCPipeline
from repro.exceptions import QOCError
from repro.qoc import PulseLibrary
from repro.workloads import qaoa_maxcut


@pytest.fixture
def circuit():
    qc = QuantumCircuit(3)
    qc.h(0)
    qc.cx(0, 1)
    qc.t(1)
    qc.cx(1, 2)
    qc.h(2)
    qc.h(0)
    qc.cx(0, 1)
    return qc


def _assert_equivalent(serial_report, parallel_report, serial_lib, parallel_lib):
    assert parallel_report.latency_ns == serial_report.latency_ns
    assert parallel_report.fidelity == serial_report.fidelity
    serial_items = serial_report.schedule.items
    parallel_items = parallel_report.schedule.items
    assert len(parallel_items) == len(serial_items)
    for a, b in zip(serial_items, parallel_items):
        assert a.qubits == b.qubits
        assert a.start == b.start and a.end == b.end
        if a.pulse is not None or b.pulse is not None:
            # the determinism guarantee is bitwise, not approximate
            assert np.array_equal(a.pulse.controls, b.pulse.controls)
            assert a.pulse.dt == b.pulse.dt
    assert len(parallel_lib) == len(serial_lib)
    assert parallel_lib.hits == serial_lib.hits
    assert parallel_lib.misses == serial_lib.misses


class TestEPOCEquivalence:
    def test_workers4_matches_serial(self, circuit, fast_epoc, fast_qoc):
        serial_lib = PulseLibrary(config=fast_qoc)
        serial = EPOCPipeline(fast_epoc, library=serial_lib).compile(
            circuit, "serial"
        )
        parallel_lib = PulseLibrary(config=fast_qoc)
        config = fast_epoc.with_updates(parallel=ParallelConfig(workers=4))
        parallel = EPOCPipeline(config, library=parallel_lib).compile(
            circuit, "parallel"
        )
        _assert_equivalent(serial, parallel, serial_lib, parallel_lib)
        assert parallel.stats["unique_qoc_items"] == serial.stats[
            "unique_qoc_items"
        ]

    def test_chunked_dispatch_matches_serial(self, circuit, fast_epoc, fast_qoc):
        serial_lib = PulseLibrary(config=fast_qoc)
        serial = EPOCPipeline(fast_epoc, library=serial_lib).compile(circuit, "s")
        parallel_lib = PulseLibrary(config=fast_qoc)
        config = fast_epoc.with_updates(
            parallel=ParallelConfig(workers=2, chunk_size=3)
        )
        parallel = EPOCPipeline(config, library=parallel_lib).compile(circuit, "p")
        _assert_equivalent(serial, parallel, serial_lib, parallel_lib)

    def test_warm_library_short_circuits_dispatch(self, circuit, fast_epoc, fast_qoc):
        library = PulseLibrary(config=fast_qoc)
        config = fast_epoc.with_updates(parallel=ParallelConfig(workers=2))
        pipe = EPOCPipeline(config, library=library)
        pipe.compile(circuit, "first")
        misses_before = library.misses
        pipe.compile(circuit, "second")
        assert library.misses == misses_before  # all unitaries already cached


class TestBaselineEquivalence:
    def test_accqoc_workers_match_serial(self, fast_epoc, fast_qoc):
        circuit = qaoa_maxcut(3, layers=1)
        serial_lib = PulseLibrary(config=fast_qoc, match_global_phase=False)
        serial = AccQOCFlow(fast_epoc, library=serial_lib).compile(circuit, "s")
        parallel_lib = PulseLibrary(config=fast_qoc, match_global_phase=False)
        config = fast_epoc.with_updates(parallel=ParallelConfig(workers=4))
        parallel = AccQOCFlow(config, library=parallel_lib).compile(circuit, "p")
        _assert_equivalent(serial, parallel, serial_lib, parallel_lib)

    def test_paqoc_workers_match_serial(self, fast_epoc, fast_qoc):
        qc = QuantumCircuit(2)
        for _ in range(3):
            qc.h(0)
            qc.cx(0, 1)
        serial_lib = PulseLibrary(config=fast_qoc, match_global_phase=False)
        serial = PAQOCFlow(fast_epoc, library=serial_lib).compile(qc, "s")
        parallel_lib = PulseLibrary(config=fast_qoc, match_global_phase=False)
        config = fast_epoc.with_updates(parallel=ParallelConfig(workers=4))
        parallel = PAQOCFlow(config, library=parallel_lib).compile(qc, "p")
        _assert_equivalent(serial, parallel, serial_lib, parallel_lib)
        assert parallel.stats["custom_pattern_pulses"] == serial.stats[
            "custom_pattern_pulses"
        ]


class TestSingleflight:
    def test_duplicates_solved_once(self, fast_qoc, monkeypatch):
        """N occurrences of the same unitary must cost one GRAPE search."""
        import repro.qoc.latency as latency_mod

        calls = []
        real = latency_mod.pulse_for_unitary

        def counting(matrix, num_qubits, config=None, **kwargs):
            calls.append(num_qubits)
            return real(matrix, num_qubits, config, **kwargs)

        monkeypatch.setattr(latency_mod, "pulse_for_unitary", counting)
        from repro.circuits.gates import gate_matrix

        library = PulseLibrary(config=fast_qoc)
        h = gate_matrix("h")
        x = gate_matrix("x")
        requests = [(h, (0,)), (h, (1,)), (x, (0,)), (h, (2,)), (x, (2,))]
        pulses = library.get_pulses(requests)  # inline singleflight
        assert len(calls) == 2  # h and x solved once each
        assert library.misses == 2 and library.hits == 3
        # every duplicate request got the shared envelope on its own line
        assert pulses[0].qubits == (0,) and pulses[1].qubits == (1,)
        assert np.array_equal(pulses[0].controls, pulses[1].controls)

    def test_qoc_error_propagates_through_pool(self, fast_qoc):
        """An unsolvable target raises cleanly out of the parallel path."""
        from dataclasses import replace

        from repro.circuits.gates import gate_matrix

        hard = replace(fast_qoc, max_segments=2, fidelity_threshold=0.999999)
        library = PulseLibrary(config=hard)
        from repro.parallel import ParallelExecutor

        with ParallelExecutor(workers=2) as executor:
            with pytest.raises(QOCError):
                library.get_pulses(
                    [
                        (gate_matrix("cx"), (0, 1)),
                        (gate_matrix("h"), (0,)),
                    ],
                    executor=executor,
                )
            assert executor._pool is None  # pool shut down, no hang

"""Unit tests for the ParallelExecutor and its worker entry points."""

import os
import pickle

import numpy as np
import pytest

from repro import telemetry
from repro.config import ParallelConfig
from repro.exceptions import QOCError
from repro.parallel import ParallelExecutor, PulseTask, run_chunk
from repro.qoc.latency import pulse_for_unitary


class _SquareTask:
    """A trivial picklable task for executor plumbing tests."""

    def __init__(self, value):
        self.value = value

    def run(self):
        return self.value * self.value


class _FailingTask:
    def __init__(self, exc):
        self.exc = exc

    def run(self):
        raise self.exc


class TestResolvedWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert ParallelConfig().resolved_workers() == 0

    def test_env_var_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert ParallelConfig().resolved_workers() == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert ParallelConfig(workers=1).resolved_workers() == 1
        assert ParallelConfig(workers=0).resolved_workers() == 0

    def test_negative_means_all_cores(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert ParallelConfig(workers=-1).resolved_workers() == (
            os.cpu_count() or 1
        )

    def test_bad_env_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError):
            ParallelConfig().resolved_workers()


class TestSerialFallback:
    def test_workers_zero_runs_inline(self):
        with ParallelExecutor(workers=0) as executor:
            assert not executor.is_parallel
            assert executor.map([_SquareTask(i) for i in range(5)]) == [
                0, 1, 4, 9, 16,
            ]
        assert executor._pool is None  # no pool was ever created

    def test_below_min_tasks_runs_inline(self):
        with ParallelExecutor(workers=2, min_tasks=10) as executor:
            assert executor.map([_SquareTask(3)]) == [9]
            assert executor._pool is None

    def test_empty_task_list(self):
        with ParallelExecutor(workers=2) as executor:
            assert executor.map([]) == []


class TestParallelMap:
    def test_results_preserve_task_order(self):
        with ParallelExecutor(workers=2) as executor:
            assert executor.map([_SquareTask(i) for i in range(7)]) == [
                i * i for i in range(7)
            ]

    def test_chunking_preserves_order(self):
        with ParallelExecutor(workers=2, chunk_size=3) as executor:
            assert executor.map([_SquareTask(i) for i in range(8)]) == [
                i * i for i in range(8)
            ]

    def test_worker_error_propagates_and_pool_shuts_down(self):
        tasks = [_SquareTask(1), _FailingTask(QOCError("unreachable")),
                 _SquareTask(2)]
        with ParallelExecutor(workers=2) as executor:
            with pytest.raises(QOCError, match="unreachable"):
                executor.map(tasks)
            assert executor._pool is None  # torn down, not hung

    def test_pool_reused_across_maps(self):
        with ParallelExecutor(workers=2) as executor:
            executor.map([_SquareTask(i) for i in range(3)])
            pool = executor._pool
            executor.map([_SquareTask(i) for i in range(3)])
            assert executor._pool is pool

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            ParallelExecutor(workers=1, chunk_size=0)


class TestPulseTask:
    def test_task_is_picklable(self, fast_qoc):
        from repro.circuits.gates import gate_matrix

        task = PulseTask(matrix=gate_matrix("x"), num_qubits=1, config=fast_qoc)
        assert pickle.loads(pickle.dumps(task)).num_qubits == 1

    def test_run_matches_direct_solve(self, fast_qoc):
        from repro.circuits.gates import gate_matrix

        task = PulseTask(matrix=gate_matrix("h"), num_qubits=1, config=fast_qoc)
        direct = pulse_for_unitary(gate_matrix("h"), 1, fast_qoc)
        via_task = task.run()
        assert np.array_equal(via_task.controls, direct.controls)
        assert via_task.duration == direct.duration

    def test_run_chunk_collects_telemetry(self, fast_qoc):
        from repro.circuits.gates import gate_matrix

        task = PulseTask(matrix=gate_matrix("x"), num_qubits=1, config=fast_qoc)
        result = run_chunk([task], collect_telemetry=True)
        assert len(result.values) == 1
        assert result.metrics_state["counters"]["grape.runs"] >= 1
        names = [state["name"] for state in result.span_states]
        assert "qoc.pulse_search" in names

    def test_run_chunk_without_telemetry(self, fast_qoc):
        from repro.circuits.gates import gate_matrix

        task = PulseTask(matrix=gate_matrix("x"), num_qubits=1, config=fast_qoc)
        result = run_chunk([task], collect_telemetry=False)
        assert result.metrics_state is None
        assert result.span_states == []


class TestTelemetryFanIn:
    def test_worker_metrics_and_spans_merge_into_parent(self, fast_qoc):
        from repro.circuits.gates import gate_matrix

        tasks = [
            PulseTask(matrix=gate_matrix(name), num_qubits=1, config=fast_qoc)
            for name in ("x", "h")
        ]
        with telemetry.telemetry_session() as (tracer, registry):
            with ParallelExecutor(workers=2) as executor:
                executor.map(tasks)
        assert registry.counter("grape.runs") >= 2
        assert registry.counter("parallel.tasks") == 2.0
        # worker span trees were grafted into the parent trace
        assert any(span.name == "qoc.pulse_search" for span in tracer.walk())
        # and export still works on the merged tree
        events = tracer.to_chrome_trace()["traceEvents"]
        assert any(event["name"] == "grape" for event in events)

"""Regression: `ParallelExecutor.shutdown` is idempotent and
exception-safe (the service's drain path calls it concurrently with
crash-recovery paths)."""

import threading

from repro.parallel import ParallelExecutor


class _BrokenPool:
    """A pool whose shutdown always raises (a worker died mid-teardown)."""

    def __init__(self):
        self.calls = 0

    def shutdown(self, wait=True, cancel_futures=False):
        self.calls += 1
        raise RuntimeError("pool already broken")


class TestShutdown:
    def test_shutdown_without_pool_is_noop(self):
        executor = ParallelExecutor(workers=0)
        executor.shutdown()
        executor.shutdown()

    def test_double_shutdown_tears_down_once(self):
        executor = ParallelExecutor(workers=2)
        pool = _BrokenPool.__new__(_BrokenPool)  # placeholder object
        pool.calls = 0
        pool.shutdown = lambda wait=True, cancel_futures=False: (
            setattr(pool, "calls", pool.calls + 1)
        )
        executor._pool = pool
        executor.shutdown()
        executor.shutdown()
        assert pool.calls == 1
        assert executor._pool is None

    def test_shutdown_swallows_pool_errors(self):
        executor = ParallelExecutor(workers=2)
        broken = _BrokenPool()
        executor._pool = broken
        executor.shutdown()  # must not raise
        assert broken.calls == 1
        assert executor._pool is None
        executor.shutdown()  # and stays idempotent afterwards
        assert broken.calls == 1

    def test_concurrent_shutdown_is_single_teardown(self):
        executor = ParallelExecutor(workers=2)
        calls = []
        gate = threading.Event()

        class _SlowPool:
            def shutdown(self, wait=True, cancel_futures=False):
                calls.append(threading.current_thread().name)
                gate.wait(1.0)

        executor._pool = _SlowPool()
        threads = [
            threading.Thread(target=executor.shutdown, name=f"t{i}")
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        gate.set()
        for thread in threads:
            thread.join(5)
        assert len(calls) == 1
        assert executor._pool is None

    def test_context_manager_still_shuts_down(self):
        with ParallelExecutor(workers=0) as executor:
            assert not executor.is_parallel
        assert executor._pool is None

"""Tests for gate definitions and the registry."""

import math

import numpy as np
import pytest

from repro.exceptions import CircuitError
from repro.circuits.gates import (
    GATE_SPECS,
    Gate,
    controlled,
    gate_matrix,
    rx_matrix,
    ry_matrix,
    rz_matrix,
    u3_matrix,
)
from repro.linalg import is_unitary, equal_up_to_global_phase


class TestMatrices:
    def test_all_registered_gates_are_unitary(self, rng):
        for name, spec in GATE_SPECS.items():
            params = tuple(rng.uniform(0, 2 * math.pi, spec.num_params))
            assert is_unitary(spec.matrix(params)), name

    def test_matrix_shapes(self):
        for name, spec in GATE_SPECS.items():
            params = (0.3,) * spec.num_params
            dim = 2**spec.num_qubits
            assert spec.matrix(params).shape == (dim, dim), name

    def test_x_flips(self):
        assert np.allclose(gate_matrix("x") @ [1, 0], [0, 1])

    def test_h_creates_superposition(self):
        out = gate_matrix("h") @ [1, 0]
        assert np.allclose(np.abs(out) ** 2, [0.5, 0.5])

    def test_rotation_composition(self):
        assert np.allclose(
            rx_matrix(0.3) @ rx_matrix(0.4), rx_matrix(0.7), atol=1e-12
        )
        assert np.allclose(
            rz_matrix(0.3) @ rz_matrix(0.4), rz_matrix(0.7), atol=1e-12
        )

    def test_rotation_at_2pi_is_minus_identity(self):
        for fn in (rx_matrix, ry_matrix, rz_matrix):
            assert np.allclose(fn(2 * math.pi), -np.eye(2), atol=1e-12)

    def test_u3_equals_named_specials(self):
        assert equal_up_to_global_phase(
            u3_matrix(math.pi / 2, 0.0, math.pi), gate_matrix("h")
        )
        assert equal_up_to_global_phase(u3_matrix(math.pi, 0.0, math.pi), gate_matrix("x"))

    def test_controlled_structure(self):
        cx = controlled(gate_matrix("x"))
        assert np.allclose(cx, gate_matrix("cx"))
        ccx = controlled(controlled(gate_matrix("x")))
        assert np.allclose(ccx, gate_matrix("ccx"))

    def test_sx_squared_is_x(self):
        sx = gate_matrix("sx")
        assert np.allclose(sx @ sx, gate_matrix("x"), atol=1e-12)

    def test_unknown_gate(self):
        with pytest.raises(CircuitError):
            gate_matrix("nope")

    def test_wrong_param_count(self):
        with pytest.raises(CircuitError):
            gate_matrix("rx", ())


class TestGateObject:
    def test_basic_gate(self):
        g = Gate("cx", (0, 1))
        assert g.num_qubits == 2
        assert g.is_unitary_op
        assert np.allclose(g.matrix(), gate_matrix("cx"))

    def test_repeated_qubits_rejected(self):
        with pytest.raises(CircuitError):
            Gate("cx", (1, 1))

    def test_wrong_arity_rejected(self):
        with pytest.raises(CircuitError):
            Gate("cx", (0,))

    def test_wrong_params_rejected(self):
        with pytest.raises(CircuitError):
            Gate("rx", (0,), ())

    def test_unknown_name_rejected(self):
        with pytest.raises(CircuitError):
            Gate("quux", (0,))

    def test_unitary_gate_requires_matrix(self):
        with pytest.raises(CircuitError):
            Gate("unitary", (0,))

    def test_unitary_gate_shape_checked(self):
        with pytest.raises(CircuitError):
            Gate("unitary", (0, 1), matrix_override=np.eye(2))

    def test_pseudo_ops_have_no_matrix(self):
        g = Gate("barrier", (0, 1))
        assert not g.is_unitary_op
        with pytest.raises(CircuitError):
            g.matrix()
        with pytest.raises(CircuitError):
            g.inverse()

    def test_with_qubits(self):
        g = Gate("cx", (0, 1)).with_qubits((3, 2))
        assert g.qubits == (3, 2)


class TestInverses:
    @pytest.mark.parametrize("name", sorted(GATE_SPECS))
    def test_inverse_matrix(self, name, rng):
        spec = GATE_SPECS[name]
        params = tuple(rng.uniform(0, 2 * math.pi, spec.num_params))
        g = Gate(name, tuple(range(spec.num_qubits)), params)
        product = g.inverse().matrix() @ g.matrix()
        assert np.allclose(product, np.eye(2**spec.num_qubits), atol=1e-9), name

    def test_unitary_gate_inverse(self, rng):
        from repro.linalg import random_unitary

        u = random_unitary(4, rng)
        g = Gate("unitary", (0, 1), matrix_override=u)
        assert np.allclose(g.inverse().matrix() @ u, np.eye(4), atol=1e-10)

"""Tests for basis decomposition passes."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CircuitError
from repro.circuits import QuantumCircuit, random_circuit
from repro.circuits.gates import GATE_SPECS
from repro.circuits.transpile import decompose_to_cx_u3, decompose_to_zx_basis
from repro.linalg import equal_up_to_global_phase, random_unitary

_ZX_BASIS = {"rz", "rx", "h", "cx", "cz"}
_NATIVE = {"u3", "cx"}


@pytest.mark.parametrize("name", sorted(GATE_SPECS))
def test_every_gate_decomposes_to_zx_basis(name, rng):
    spec = GATE_SPECS[name]
    qc = QuantumCircuit(spec.num_qubits)
    params = [float(rng.uniform(0, 2 * math.pi)) for _ in range(spec.num_params)]
    qc.add(name, list(range(spec.num_qubits)), params)
    out = decompose_to_zx_basis(qc)
    assert {g.name for g in out} <= _ZX_BASIS
    assert equal_up_to_global_phase(qc.unitary(), out.unitary(), atol=1e-7)


@pytest.mark.parametrize("name", sorted(GATE_SPECS))
def test_every_gate_decomposes_to_native(name, rng):
    spec = GATE_SPECS[name]
    qc = QuantumCircuit(spec.num_qubits)
    params = [float(rng.uniform(0, 2 * math.pi)) for _ in range(spec.num_params)]
    qc.add(name, list(range(spec.num_qubits)), params)
    out = decompose_to_cx_u3(qc)
    assert {g.name for g in out} <= _NATIVE
    assert equal_up_to_global_phase(qc.unitary(), out.unitary(), atol=1e-7)


def test_pseudo_ops_dropped():
    qc = QuantumCircuit(2).h(0)
    qc.barrier()
    qc.measure_all()
    out = decompose_to_zx_basis(qc)
    assert all(g.is_unitary_op for g in out)


def test_single_qubit_raw_unitary_supported(rng):
    qc = QuantumCircuit(1)
    u = random_unitary(2, rng)
    qc.unitary_gate(u, [0])
    out = decompose_to_zx_basis(qc)
    assert equal_up_to_global_phase(u, out.unitary(), atol=1e-8)


def test_multi_qubit_raw_unitary_rejected(rng):
    qc = QuantumCircuit(2)
    qc.unitary_gate(random_unitary(4, rng), [0, 1])
    with pytest.raises(CircuitError):
        decompose_to_zx_basis(qc)


def test_u3_merging_reduces_gate_count():
    qc = QuantumCircuit(1)
    for _ in range(6):
        qc.h(0)
        qc.t(0)
    native = decompose_to_cx_u3(qc)
    # 12 single-qubit gates merge into one u3
    assert len(native) == 1
    assert equal_up_to_global_phase(qc.unitary(), native.unitary(), atol=1e-8)


def test_identity_run_merges_away():
    qc = QuantumCircuit(1).h(0).h(0)
    native = decompose_to_cx_u3(qc)
    assert len(native) == 0


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_random_circuit_decomposition_property(seed):
    """Property: both passes preserve the unitary on random circuits."""
    qc = random_circuit(3, 20, seed=seed)
    u = qc.unitary()
    assert equal_up_to_global_phase(u, decompose_to_zx_basis(qc).unitary(), atol=1e-6)
    assert equal_up_to_global_phase(u, decompose_to_cx_u3(qc).unitary(), atol=1e-6)

"""Tests for the QuantumCircuit IR."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CircuitError
from repro.circuits import QuantumCircuit, random_circuit
from repro.circuits.gates import gate_matrix
from repro.linalg import equal_up_to_global_phase, is_unitary


class TestConstruction:
    def test_empty(self):
        qc = QuantumCircuit(3)
        assert len(qc) == 0
        assert qc.depth() == 0
        assert np.allclose(qc.unitary(), np.eye(8))

    def test_negative_qubits_rejected(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(-1)

    def test_out_of_range_gate_rejected(self):
        qc = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            qc.cx(0, 5)

    def test_builder_methods_chain(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1)
        assert [g.name for g in qc] == ["h", "cx"]

    def test_repr_contains_counts(self):
        qc = QuantumCircuit(2).h(0).h(1).cx(0, 1)
        assert "h:2" in repr(qc)


class TestStructure:
    def test_count_ops(self):
        qc = QuantumCircuit(2).h(0).h(1).cx(0, 1)
        assert qc.count_ops() == {"h": 2, "cx": 1}

    def test_two_qubit_count(self):
        qc = QuantumCircuit(3).h(0).cx(0, 1).cz(1, 2).ccx(0, 1, 2)
        assert qc.two_qubit_count == 3

    def test_depth_parallel_gates(self):
        qc = QuantumCircuit(4)
        for q in range(4):
            qc.h(q)
        assert qc.depth() == 1

    def test_depth_serial_chain(self):
        qc = QuantumCircuit(3).cx(0, 1).cx(1, 2).cx(0, 1)
        assert qc.depth() == 3

    def test_barrier_synchronizes_depth(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.barrier()
        qc.h(1)  # must land after the barrier level
        assert qc.depth() == 2

    def test_layers_partition_all_gates(self):
        qc = random_circuit(4, 30, seed=0)
        layers = qc.layers()
        assert sum(len(l) for l in layers) == len(qc)

    def test_active_qubits(self):
        qc = QuantumCircuit(5).h(1).cx(1, 3)
        assert qc.active_qubits() == [1, 3]


class TestSemantics:
    def test_ghz_statevector(self):
        qc = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2)
        sv = qc.statevector()
        assert abs(sv[0]) ** 2 == pytest.approx(0.5)
        assert abs(sv[7]) ** 2 == pytest.approx(0.5)

    def test_unitary_is_unitary(self):
        qc = random_circuit(4, 25, seed=1)
        assert is_unitary(qc.unitary())

    def test_unitary_matches_gate_product(self, rng):
        qc = QuantumCircuit(2).h(0).cx(0, 1).t(1)
        from repro.linalg import embed_operator

        expected = (
            embed_operator(gate_matrix("t"), (1,), 2)
            @ gate_matrix("cx")
            @ embed_operator(gate_matrix("h"), (0,), 2)
        )
        assert np.allclose(qc.unitary(), expected)

    def test_unitary_size_guard(self):
        qc = QuantumCircuit(13)
        with pytest.raises(CircuitError):
            qc.unitary()

    def test_statevector_initial_state(self):
        qc = QuantumCircuit(1).x(0)
        out = qc.statevector(np.array([0.0, 1.0]))
        assert np.allclose(out, [1.0, 0.0])

    def test_statevector_shape_checked(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(2).statevector(np.zeros(3))

    def test_measure_ignored_in_unitary(self):
        qc = QuantumCircuit(1).h(0)
        qc.measure_all()
        assert np.allclose(qc.unitary(), gate_matrix("h"))


class TestComposition:
    def test_inverse_cancels(self):
        qc = random_circuit(3, 20, seed=2)
        identity = np.eye(8)
        product = qc.inverse().unitary() @ qc.unitary()
        assert np.allclose(product, identity, atol=1e-9)

    def test_compose_identity_map(self):
        a = QuantumCircuit(2).h(0)
        b = QuantumCircuit(2).cx(0, 1)
        combined = a.compose(b)
        assert [g.name for g in combined] == ["h", "cx"]

    def test_compose_with_mapping(self):
        a = QuantumCircuit(3)
        b = QuantumCircuit(2).cx(0, 1)
        combined = a.compose(b, qubits=[2, 0])
        assert combined.gates[0].qubits == (2, 0)

    def test_compose_bad_map_rejected(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(3).compose(QuantumCircuit(2), qubits=[0])

    def test_remapped(self):
        qc = QuantumCircuit(2).cx(0, 1)
        wide = qc.remapped([4, 2], 5)
        assert wide.gates[0].qubits == (4, 2)

    def test_without_pseudo_ops(self):
        qc = QuantumCircuit(2).h(0)
        qc.barrier()
        qc.measure_all()
        clean = qc.without_pseudo_ops()
        assert [g.name for g in clean] == ["h"]

    def test_copy_is_independent(self):
        qc = QuantumCircuit(2).h(0)
        clone = qc.copy()
        clone.x(1)
        assert len(qc) == 1 and len(clone) == 2


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_inverse_property(seed):
    """Property: U(C) . U(C^-1) = identity for random circuits."""
    qc = random_circuit(3, 15, seed=seed)
    product = qc.unitary() @ qc.inverse().unitary()
    assert np.allclose(product, np.eye(8), atol=1e-8)

"""Tests for the line-topology router."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CircuitError
from repro.circuits import QuantumCircuit, random_circuit
from repro.circuits.routing import RoutingResult, line_coupling_map, route_to_line
from repro.linalg import equal_up_to_global_phase


def routed_equivalent(original: QuantumCircuit) -> bool:
    result = route_to_line(original)
    corrected = result.circuit.compose(result.layout_correction())
    return equal_up_to_global_phase(
        original.unitary(), corrected.unitary(), atol=1e-8
    )


class TestCouplingMap:
    def test_chain_shape(self):
        assert line_coupling_map(4) == [(0, 1), (1, 2), (2, 3)]

    def test_single_qubit(self):
        assert line_coupling_map(1) == []


class TestRouting:
    def test_adjacent_gates_untouched(self):
        qc = QuantumCircuit(3).cx(0, 1).cx(1, 2)
        result = route_to_line(qc)
        assert result.swap_count == 0
        assert result.final_layout == (0, 1, 2)

    def test_distant_gate_gets_swaps(self):
        qc = QuantumCircuit(4).cx(0, 3)
        result = route_to_line(qc)
        assert result.swap_count >= 2
        for gate in result.circuit.gates:
            if gate.num_qubits == 2:
                assert abs(gate.qubits[0] - gate.qubits[1]) == 1

    def test_all_two_qubit_gates_adjacent(self):
        qc = random_circuit(5, 40, seed=3)
        result = route_to_line(qc)
        for gate in result.circuit.unitary_gates():
            if gate.num_qubits == 2:
                assert abs(gate.qubits[0] - gate.qubits[1]) == 1

    def test_semantic_equivalence_small(self):
        qc = QuantumCircuit(4)
        qc.h(0)
        qc.cx(0, 3)
        qc.t(3)
        qc.cx(3, 1)
        assert routed_equivalent(qc)

    def test_wide_gate_rejected(self):
        qc = QuantumCircuit(3).ccx(0, 1, 2)
        with pytest.raises(CircuitError):
            route_to_line(qc)

    def test_pseudo_ops_pass_through(self):
        qc = QuantumCircuit(2).h(0)
        qc.barrier()
        result = route_to_line(qc)
        assert any(g.name == "barrier" for g in result.circuit)

    def test_layout_correction_restores_order(self):
        qc = QuantumCircuit(4).cx(0, 3).cx(1, 3)
        result = route_to_line(qc)
        corrected = result.circuit.compose(result.layout_correction())
        assert equal_up_to_global_phase(qc.unitary(), corrected.unitary(), atol=1e-8)


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_routing_equivalence_property(seed):
    """Property: routing + layout correction preserves the unitary."""
    qc = random_circuit(4, 20, seed=seed)
    assert routed_equivalent(qc)

"""Tests for the circuit dependency DAG."""

import networkx as nx
import pytest

from repro.circuits import QuantumCircuit, circuit_to_dag, random_circuit


class TestStructure:
    def test_chain_dependencies(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1).h(1)
        dag = circuit_to_dag(qc)
        assert dag.successors(0) == [1]
        assert dag.successors(1) == [2]
        assert dag.predecessors(2) == [1]

    def test_independent_gates_unconnected(self):
        qc = QuantumCircuit(2).h(0).h(1)
        dag = circuit_to_dag(qc)
        assert dag.graph.number_of_edges() == 0

    def test_front_layer(self):
        qc = QuantumCircuit(3).h(0).h(1).cx(0, 1).h(2)
        dag = circuit_to_dag(qc)
        assert sorted(dag.front_layer()) == [0, 1, 3]

    def test_topological_order_is_valid(self):
        qc = random_circuit(4, 30, seed=3)
        dag = circuit_to_dag(qc)
        position = {n: i for i, n in enumerate(dag.topological_order())}
        for u, v in dag.graph.edges:
            assert position[u] < position[v]

    def test_layers_match_generations(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1).h(0).h(1)
        dag = circuit_to_dag(qc)
        layers = dag.layers()
        assert layers[0] == [0]
        assert layers[1] == [1]
        assert sorted(layers[2]) == [2, 3]

    def test_gate_accessor(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1)
        dag = circuit_to_dag(qc)
        assert dag.gate(1).name == "cx"


class TestCriticality:
    def test_serial_chain_all_critical(self):
        qc = QuantumCircuit(2).cx(0, 1).cx(0, 1).cx(0, 1)
        weights = circuit_to_dag(qc).critical_path_weights()
        assert all(w == pytest.approx(1.0) for w in weights.values())

    def test_side_branch_less_critical(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 1).cx(0, 1).cx(0, 1)  # long chain
        qc.h(2)  # isolated gate
        weights = circuit_to_dag(qc).critical_path_weights()
        assert weights[3] < weights[0]

    def test_custom_weight_function(self):
        qc = QuantumCircuit(2)
        qc.h(0)  # cheap
        qc.cx(0, 1)  # expensive
        qc.h(1)
        weights = circuit_to_dag(qc).critical_path_weights(
            lambda g: 10.0 if g.name == "cx" else 1.0
        )
        assert weights[1] == pytest.approx(1.0)  # cx dominates the path

    def test_empty_circuit(self):
        assert circuit_to_dag(QuantumCircuit(2)).critical_path_weights() == {}

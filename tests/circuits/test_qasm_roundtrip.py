"""QASM round-trip property test over the whole benchmark suite.

For every builder in the workloads library, emitting QASM and parsing it
back must reproduce a unitarily equivalent circuit (global phase is not
observable, so equivalence is measured with the process-fidelity check
from :mod:`repro.verify.checks`).  This pins the writer and parser to
each other across every gate the suite exercises.
"""

import math

import pytest

from repro.circuits import QuantumCircuit
from repro.circuits.qasm import circuit_to_qasm, parse_qasm
from repro.verify.checks import circuit_equivalence
from repro.workloads import SUITE_FAMILIES, get_benchmark

TOLERANCE = 1e-9


@pytest.mark.parametrize("name", sorted(SUITE_FAMILIES["full"]))
def test_benchmark_round_trips(name):
    original = get_benchmark(name)
    restored = parse_qasm(circuit_to_qasm(original))
    assert restored.num_qubits == original.num_qubits
    outcome = circuit_equivalence(original, restored)
    assert outcome.method == "tensor"  # suite circuits are small enough
    assert outcome.infidelity < TOLERANCE


def test_round_trip_is_stable():
    """A second emit/parse round produces identical QASM text."""
    original = get_benchmark("qft")
    once = circuit_to_qasm(parse_qasm(circuit_to_qasm(original)))
    twice = circuit_to_qasm(parse_qasm(once))
    assert once == twice


def test_round_trip_preserves_parameters():
    qc = QuantumCircuit(2)
    qc.rx(0.12345, 0)
    qc.rz(-math.pi / 7, 1)
    qc.cx(0, 1)
    restored = parse_qasm(circuit_to_qasm(qc))
    assert circuit_equivalence(qc, restored).infidelity < TOLERANCE

"""The shipped example QASM files must parse and behave sensibly."""

import pathlib

import numpy as np
import pytest

from repro.circuits import QuantumCircuit

QASM_DIR = pathlib.Path(__file__).resolve().parent.parent.parent / "examples" / "qasm"
FILES = sorted(QASM_DIR.glob("*.qasm"))


@pytest.mark.parametrize("path", FILES, ids=lambda p: p.name)
def test_file_parses(path):
    circuit = QuantumCircuit.from_qasm(path.read_text())
    assert len(circuit) > 0


def test_corpus_not_empty():
    assert len(FILES) >= 3


def test_ghz5_semantics():
    circuit = QuantumCircuit.from_qasm((QASM_DIR / "ghz5.qasm").read_text())
    state = circuit.without_pseudo_ops().statevector()
    probs = np.abs(state) ** 2
    assert probs[0] == pytest.approx(0.5)
    assert probs[-1] == pytest.approx(0.5)


def test_teleport_core_transfers_state():
    """The coherent teleport circuit must move q0's state onto q2."""
    circuit = QuantumCircuit.from_qasm(
        (QASM_DIR / "teleport_core.qasm").read_text()
    )
    state = circuit.statevector()
    # reduced density matrix of qubit 2 (LSB in big-endian indexing)
    rho = np.zeros((2, 2), dtype=complex)
    full = state.reshape(2, 2, 2)
    for a in range(2):
        for b in range(2):
            rho += np.outer(full[a, b, :], full[a, b, :].conj())
    # the teleported state: u3(pi/5, 0.3, -0.2)|0>
    from repro.circuits.gates import u3_matrix

    target = u3_matrix(np.pi / 5, 0.3, -0.2) @ np.array([1.0, 0.0])
    expected = np.outer(target, target.conj())
    assert np.allclose(rho, expected, atol=1e-8)

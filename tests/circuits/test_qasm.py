"""Tests for the OpenQASM 2.0 parser and writer."""

import math

import numpy as np
import pytest

from repro.exceptions import QasmError
from repro.circuits import QuantumCircuit, parse_qasm, random_circuit
from repro.linalg import equal_up_to_global_phase


HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


class TestParsing:
    def test_simple_program(self):
        qc = parse_qasm(HEADER + "qreg q[2];\nh q[0];\ncx q[0], q[1];\n")
        assert qc.num_qubits == 2
        assert [g.name for g in qc] == ["h", "cx"]

    def test_parameters_with_pi(self):
        qc = parse_qasm(HEADER + "qreg q[1];\nrz(pi/2) q[0];\nrx(-pi/4) q[0];\n")
        assert qc.gates[0].params[0] == pytest.approx(math.pi / 2)
        assert qc.gates[1].params[0] == pytest.approx(-math.pi / 4)

    def test_expression_arithmetic(self):
        qc = parse_qasm(HEADER + "qreg q[1];\nrz(2*pi/8 + 0.5) q[0];\n")
        assert qc.gates[0].params[0] == pytest.approx(math.pi / 4 + 0.5)

    def test_expression_functions(self):
        qc = parse_qasm(HEADER + "qreg q[1];\nrz(cos(0)) q[0];\nrx(sqrt(4)) q[0];\n")
        assert qc.gates[0].params[0] == pytest.approx(1.0)
        assert qc.gates[1].params[0] == pytest.approx(2.0)

    def test_power_operator(self):
        qc = parse_qasm(HEADER + "qreg q[1];\nrz(2^3) q[0];\n")
        assert qc.gates[0].params[0] == pytest.approx(8.0)

    def test_register_broadcast(self):
        qc = parse_qasm(HEADER + "qreg q[3];\nh q;\n")
        assert [g.name for g in qc] == ["h", "h", "h"]
        assert [g.qubits[0] for g in qc] == [0, 1, 2]

    def test_mixed_broadcast(self):
        qc = parse_qasm(HEADER + "qreg a[1];\nqreg b[3];\ncx a[0], b;\n")
        assert len(qc) == 3
        assert all(g.qubits[0] == 0 for g in qc)

    def test_multiple_registers_flattened(self):
        qc = parse_qasm(HEADER + "qreg a[2];\nqreg b[2];\ncx a[1], b[0];\n")
        assert qc.num_qubits == 4
        assert qc.gates[0].qubits == (1, 2)

    def test_measure_and_barrier(self):
        text = HEADER + "qreg q[2];\ncreg c[2];\nbarrier q;\nmeasure q -> c;\n"
        qc = parse_qasm(text)
        names = [g.name for g in qc]
        assert names == ["barrier", "measure", "measure"]

    def test_gate_definition_expansion(self):
        text = (
            HEADER
            + "qreg q[2];\n"
            + "gate foo(a) x0, x1 { rz(a) x0; cx x0, x1; rz(-a/2) x1; }\n"
            + "foo(pi) q[0], q[1];\n"
        )
        qc = parse_qasm(text)
        assert [g.name for g in qc] == ["rz", "cx", "rz"]
        assert qc.gates[0].params[0] == pytest.approx(math.pi)
        assert qc.gates[2].params[0] == pytest.approx(-math.pi / 2)

    def test_nested_gate_definitions(self):
        text = (
            HEADER
            + "qreg q[2];\n"
            + "gate inner a { h a; }\n"
            + "gate outer a, b { inner a; cx a, b; }\n"
            + "outer q[0], q[1];\n"
        )
        qc = parse_qasm(text)
        assert [g.name for g in qc] == ["h", "cx"]

    def test_builtin_cx_u_aliases(self):
        qc = parse_qasm("OPENQASM 2.0;\nqreg q[2];\nCX q[0], q[1];\nU(0.1,0.2,0.3) q[0];\n")
        assert [g.name for g in qc] == ["cx", "u3"]

    def test_opaque_skipped(self):
        qc = parse_qasm(HEADER + "opaque magic q;\nqreg q[1];\nh q[0];\n")
        assert [g.name for g in qc] == ["h"]

    def test_comments_ignored(self):
        qc = parse_qasm(HEADER + "// a comment\nqreg q[1]; // trailing\nh q[0];\n")
        assert len(qc) == 1


class TestParseErrors:
    def test_unknown_gate(self):
        with pytest.raises(QasmError):
            parse_qasm(HEADER + "qreg q[1];\nfrobnicate q[0];\n")

    def test_unknown_register(self):
        with pytest.raises(QasmError):
            parse_qasm(HEADER + "qreg q[1];\nh r[0];\n")

    def test_index_out_of_range(self):
        with pytest.raises(QasmError):
            parse_qasm(HEADER + "qreg q[1];\nh q[4];\n")

    def test_classical_control_unsupported(self):
        with pytest.raises(QasmError):
            parse_qasm(HEADER + "qreg q[1];\ncreg c[1];\nif (c==1) x q[0];\n")

    def test_mismatched_broadcast(self):
        with pytest.raises(QasmError):
            parse_qasm(HEADER + "qreg a[2];\nqreg b[3];\ncx a, b;\n")

    def test_bad_token(self):
        with pytest.raises(QasmError):
            parse_qasm(HEADER + "qreg q[1];\nh q[0]; @\n")

    def test_wrong_macro_arity(self):
        text = HEADER + "qreg q[2];\ngate foo a { h a; }\nfoo q[0], q[1];\n"
        with pytest.raises(QasmError):
            parse_qasm(text)


class TestWriter:
    def test_round_trip_unitary(self):
        qc = random_circuit(4, 30, seed=5)
        back = parse_qasm(qc.to_qasm())
        assert equal_up_to_global_phase(qc.unitary(), back.unitary(), atol=1e-8)

    def test_round_trip_with_measures(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1)
        qc.measure_all()
        text = qc.to_qasm()
        assert "creg" in text and "measure" in text
        back = parse_qasm(text)
        assert sum(1 for g in back if g.name == "measure") == 2

    def test_single_qubit_unitary_gate_serialized(self, rng):
        from repro.linalg import random_unitary

        qc = QuantumCircuit(1)
        u = random_unitary(2, rng)
        qc.unitary_gate(u, [0])
        back = parse_qasm(qc.to_qasm())
        assert equal_up_to_global_phase(u, back.unitary(), atol=1e-8)

    def test_multi_qubit_unitary_rejected(self, rng):
        from repro.linalg import random_unitary

        qc = QuantumCircuit(2)
        qc.unitary_gate(random_unitary(4, rng), [0, 1])
        with pytest.raises(QasmError):
            qc.to_qasm()

"""Tests for random-circuit generators."""

import pytest

from repro.exceptions import CircuitError
from repro.circuits import (
    random_circuit,
    random_clifford_t_circuit,
    random_layered_ansatz,
)
from repro.linalg import is_unitary


class TestRandomCircuit:
    def test_gate_count(self):
        qc = random_circuit(4, 37, seed=0)
        assert len(qc) == 37

    def test_deterministic(self):
        a = random_circuit(4, 20, seed=9)
        b = random_circuit(4, 20, seed=9)
        assert [g.name for g in a] == [g.name for g in b]
        assert [g.qubits for g in a] == [g.qubits for g in b]

    def test_produces_unitary(self):
        assert is_unitary(random_circuit(3, 25, seed=1).unitary())

    def test_single_qubit_register(self):
        qc = random_circuit(1, 10, seed=2)
        assert all(g.num_qubits == 1 for g in qc)

    def test_two_qubit_fraction_zero(self):
        qc = random_circuit(4, 30, two_qubit_fraction=0.0, seed=3)
        assert qc.two_qubit_count == 0

    def test_two_qubit_fraction_one(self):
        qc = random_circuit(4, 30, two_qubit_fraction=1.0, seed=4)
        assert qc.two_qubit_count == 30

    def test_zero_qubits_rejected(self):
        with pytest.raises(CircuitError):
            random_circuit(0, 5)


class TestCliffordT:
    def test_gate_set(self):
        qc = random_clifford_t_circuit(4, 40, seed=5)
        allowed = {"h", "s", "sdg", "t", "tdg", "x", "z", "cx", "cz"}
        assert {g.name for g in qc} <= allowed


class TestLayeredAnsatz:
    def test_structure(self):
        qc = random_layered_ansatz(4, 3, seed=6)
        counts = qc.count_ops()
        assert counts["ry"] == 12
        assert counts["rz"] == 12
        assert counts["cx"] == 9

    def test_custom_entangler(self):
        qc = random_layered_ansatz(3, 2, seed=7, entangler="cz")
        assert "cz" in qc.count_ops()

"""Tests for the benchmark workload library."""

import numpy as np
import pytest

from repro.exceptions import CircuitError
from repro.circuits import parse_qasm
from repro.linalg import equal_up_to_global_phase, is_unitary
from repro.workloads import (
    bell_state,
    benchmark_suite,
    bernstein_vazirani,
    deutsch_jozsa,
    get_benchmark,
    ghz_state,
    grover_circuit,
    qft_circuit,
    qpe_circuit,
    simon_circuit,
    table1_suite,
    vqe_uccsd_like,
    w_state,
)


class TestSuites:
    def test_figure_suite_has_17(self):
        assert len(benchmark_suite()) == 17

    def test_table1_has_7(self):
        suite = table1_suite()
        assert set(suite) == {"simon", "bb84", "bv", "qaoa", "decod24", "dnn", "ham7"}

    def test_all_benchmarks_build_and_are_unitary(self):
        for name, qc in benchmark_suite().items():
            assert len(qc) > 0, name
            assert is_unitary(qc.unitary()), name

    def test_unknown_benchmark(self):
        with pytest.raises(CircuitError):
            get_benchmark("does_not_exist")

    def test_deterministic_construction(self):
        a = get_benchmark("dnn")
        b = get_benchmark("dnn")
        assert [g.params for g in a] == [g.params for g in b]

    def test_qasm_round_trip_all(self):
        for name, qc in benchmark_suite().items():
            back = parse_qasm(qc.to_qasm())
            assert equal_up_to_global_phase(
                qc.unitary(), back.unitary(), atol=1e-7
            ), name


class TestSemantics:
    def test_bell_probabilities(self):
        probs = np.abs(bell_state().statevector()) ** 2
        assert probs[0] == pytest.approx(0.5)
        assert probs[3] == pytest.approx(0.5)

    def test_ghz_probabilities(self):
        sv = ghz_state(4).statevector()
        assert abs(sv[0]) ** 2 == pytest.approx(0.5)
        assert abs(sv[-1]) ** 2 == pytest.approx(0.5)

    def test_w_state_single_excitation(self):
        sv = w_state(3).statevector()
        probs = np.abs(sv) ** 2
        ones = {0b100: 1 / 3, 0b010: 1 / 3, 0b001: 1 / 3}
        for idx, expected in ones.items():
            assert probs[idx] == pytest.approx(expected, abs=1e-9)

    def test_bv_recovers_secret(self):
        secret = 0b101
        qc = bernstein_vazirani(4, secret=secret)
        sv = qc.statevector()
        probs = np.abs(sv) ** 2
        # data register (qubits 0-2) must read the secret; ancilla in |->
        data_marginal = np.zeros(8)
        for idx, p in enumerate(probs):
            data_marginal[idx >> 1] += p
        assert data_marginal[secret] == pytest.approx(1.0, abs=1e-9)

    def test_simon_orthogonal_outcomes(self):
        sv = simon_circuit(0b11).statevector()
        probs = np.abs(sv) ** 2
        marginal = {}
        for idx, p in enumerate(probs):
            marginal[idx >> 2] = marginal.get(idx >> 2, 0.0) + p
        support = {y for y, p in marginal.items() if p > 1e-9}
        assert support == {0b00, 0b11}  # y . s = 0 for s = 11

    def test_grover_amplifies_marked(self):
        sv = grover_circuit(3, marked=0b110).statevector()
        probs = np.abs(sv) ** 2
        assert probs[0b110] > 0.7

    def test_qpe_reads_phase(self):
        sv = qpe_circuit(3, phase=3.0 / 8.0).statevector()
        probs = np.abs(sv) ** 2
        best = int(np.argmax(probs))
        counting = best >> 1  # drop target qubit (LSB)
        assert counting == 3

    def test_deutsch_jozsa_balanced_nonzero(self):
        qc = deutsch_jozsa(3, balanced=True)
        sv = qc.statevector()
        probs = np.abs(sv) ** 2
        # data register should never read all-zeros for a balanced oracle
        zero_prob = probs[0] + probs[1]
        assert zero_prob == pytest.approx(0.0, abs=1e-9)

    def test_deutsch_jozsa_constant_reads_zero(self):
        qc = deutsch_jozsa(3, balanced=False)
        probs = np.abs(qc.statevector()) ** 2
        assert probs[0] + probs[1] == pytest.approx(1.0, abs=1e-9)

    def test_qft_on_basis_state_uniform(self):
        qc = qft_circuit(3)
        probs = np.abs(qc.statevector()) ** 2
        assert np.allclose(probs, 1.0 / 8.0, atol=1e-9)

    def test_vqe_ansatz_heavily_optimizable(self):
        from repro.zx import optimize_circuit

        qc = vqe_uccsd_like(4)
        result = optimize_circuit(qc)
        assert result.depth_after < result.depth_before

    def test_clifford_vqe_collapses(self):
        from repro.workloads import clifford_vqe_ansatz
        from repro.zx import optimize_circuit

        deep = clifford_vqe_ansatz(4, layers=30, seed=0)
        result = optimize_circuit(deep)
        assert result.depth_reduction > 2.0

    def test_diagonal_trotter_merges_steps(self):
        from repro.workloads import diagonal_trotter_evolution
        from repro.zx import optimize_circuit

        qc = diagonal_trotter_evolution(5, steps=10)
        result = optimize_circuit(qc)
        assert result.depth_after < result.depth_before

    def test_extension_names_in_registry(self):
        assert get_benchmark("trotter").num_qubits == 6
        assert get_benchmark("clifford_vqe").num_qubits == 5

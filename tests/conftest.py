"""Shared fixtures: deterministic RNGs and fast QOC settings for tests."""

import numpy as np
import pytest

from repro.config import EPOCConfig, QOCConfig


@pytest.fixture
def rng():
    """A deterministic random generator for each test."""
    return np.random.default_rng(1234)


@pytest.fixture
def fast_qoc():
    """QOC settings tuned for test speed, not pulse quality."""
    return QOCConfig(
        dt=1.0,
        fidelity_threshold=0.98,
        max_iterations=60,
        min_segments=2,
        max_segments=120,
    )


@pytest.fixture
def fast_epoc(fast_qoc):
    """A full EPOC configuration with test-speed QOC settings."""
    return EPOCConfig(
        partition_qubit_limit=2,
        partition_gate_limit=8,
        synthesis_max_layers=4,
        regroup_qubit_limit=2,
        regroup_gate_limit=6,
        qoc=fast_qoc,
    )

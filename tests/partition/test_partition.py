"""Tests for greedy partitioning, blocks and regrouping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import PartitionError
from repro.circuits import QuantumCircuit, random_circuit
from repro.linalg import equal_up_to_global_phase
from repro.linalg.tensor import apply_gate_to_state
from repro.partition import (
    CircuitBlock,
    blocks_to_circuit,
    blocks_as_unitaries,
    greedy_partition,
    regroup_circuit,
)


class TestCircuitBlock:
    def test_basic_block(self):
        local = QuantumCircuit(2).h(0).cx(0, 1)
        block = CircuitBlock(qubits=(1, 3), circuit=local)
        assert block.num_qubits == 2
        assert block.num_gates == 2
        assert block.unitary().shape == (4, 4)

    def test_global_gate(self):
        local = QuantumCircuit(1).h(0)
        block = CircuitBlock(qubits=(2,), circuit=local)
        gate = block.to_global_gate()
        assert gate.qubits == (2,)
        assert gate.name == "unitary"

    def test_qubit_count_mismatch_rejected(self):
        with pytest.raises(PartitionError):
            CircuitBlock(qubits=(0, 1, 2), circuit=QuantumCircuit(2))

    def test_unsorted_qubits_rejected(self):
        with pytest.raises(PartitionError):
            CircuitBlock(qubits=(3, 1), circuit=QuantumCircuit(2))


class TestGreedyPartition:
    def test_respects_qubit_limit(self):
        qc = random_circuit(6, 50, seed=0)
        for block in greedy_partition(qc, qubit_limit=3, gate_limit=10):
            assert block.num_qubits <= 3

    def test_respects_gate_limit(self):
        qc = random_circuit(6, 50, seed=1)
        for block in greedy_partition(qc, qubit_limit=3, gate_limit=7):
            assert block.num_gates <= 7

    def test_all_gates_covered(self):
        qc = random_circuit(5, 40, seed=2)
        blocks = greedy_partition(qc, qubit_limit=3, gate_limit=8)
        assert sum(b.num_gates for b in blocks) == len(qc)

    def test_recomposition_preserves_unitary(self):
        qc = random_circuit(5, 40, seed=3)
        blocks = greedy_partition(qc, qubit_limit=3, gate_limit=10)
        rec = blocks_to_circuit(blocks, 5)
        assert equal_up_to_global_phase(qc.unitary(), rec.unitary(), atol=1e-9)

    def test_wide_gate_rejected(self):
        qc = QuantumCircuit(3).ccx(0, 1, 2)
        with pytest.raises(PartitionError):
            greedy_partition(qc, qubit_limit=2, gate_limit=10)

    def test_pseudo_ops_dropped(self):
        qc = QuantumCircuit(2).h(0)
        qc.barrier()
        qc.measure_all()
        blocks = greedy_partition(qc, qubit_limit=2, gate_limit=10)
        assert sum(b.num_gates for b in blocks) == 1

    def test_invalid_limits_rejected(self):
        qc = QuantumCircuit(2).h(0)
        with pytest.raises(PartitionError):
            greedy_partition(qc, qubit_limit=0)
        with pytest.raises(PartitionError):
            greedy_partition(qc, gate_limit=0)

    def test_block_indices_sequential(self):
        qc = random_circuit(5, 30, seed=4)
        blocks = greedy_partition(qc, qubit_limit=2, gate_limit=5)
        assert [b.index for b in blocks] == list(range(len(blocks)))

    def test_source_indices_recorded(self):
        qc = random_circuit(4, 20, seed=5)
        blocks = greedy_partition(qc, qubit_limit=2, gate_limit=5)
        all_indices = sorted(i for b in blocks for i in b.source_indices)
        assert all_indices == list(range(len(qc)))

    def test_single_qubit_circuit(self):
        qc = QuantumCircuit(1).h(0).t(0).h(0)
        blocks = greedy_partition(qc, qubit_limit=1, gate_limit=2)
        assert len(blocks) == 2

    def test_empty_circuit(self):
        assert greedy_partition(QuantumCircuit(3), 2, 5) == []


class TestRegroup:
    def test_items_reproduce_unitary(self):
        qc = random_circuit(5, 30, seed=6)
        items = regroup_circuit(qc, qubit_limit=3, gate_limit=8)
        u = np.eye(2**5, dtype=complex)
        for item in items:
            u = apply_gate_to_state(item.matrix, u, item.qubits, 5)
        assert equal_up_to_global_phase(qc.unitary(), u, atol=1e-9)

    def test_per_gate_mode(self):
        qc = random_circuit(4, 20, seed=7)
        items = regroup_circuit(qc, qubit_limit=2, gate_limit=1)
        assert len(items) == len(qc)

    def test_source_gates_accounted(self):
        qc = random_circuit(4, 20, seed=8)
        items = regroup_circuit(qc, qubit_limit=3, gate_limit=6)
        assert sum(i.source_gates for i in items) == len(qc)

    def test_matrix_dimensions(self):
        qc = random_circuit(4, 20, seed=9)
        for item in regroup_circuit(qc, qubit_limit=2, gate_limit=6):
            assert item.matrix.shape == (item.dim, item.dim)
            assert item.dim == 2**item.num_qubits


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    qubit_limit=st.integers(1, 4),
    gate_limit=st.integers(1, 12),
)
def test_partition_recomposition_property(seed, qubit_limit, gate_limit):
    """Property: partition + recompose = original, for any limits."""
    qc = random_circuit(4, 25, seed=seed)
    blocks = greedy_partition(qc, qubit_limit=max(qubit_limit, 2), gate_limit=gate_limit)
    rec = blocks_to_circuit(blocks, 4)
    assert equal_up_to_global_phase(qc.unitary(), rec.unitary(), atol=1e-8)

"""Tests for the circuit-level commutation/aggregation pass."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit, random_circuit
from repro.linalg import equal_up_to_global_phase
from repro.zx.peephole import (
    basic_optimization,
    cancel_and_fuse_pass,
    hadamard_conjugation_pass,
)


class TestCancellation:
    def test_adjacent_self_inverse_pairs(self):
        qc = QuantumCircuit(2).h(0).h(0).cx(0, 1).cx(0, 1)
        out = basic_optimization(qc)
        assert len(out) == 0

    def test_rotation_fusion(self):
        qc = QuantumCircuit(1).rz(0.3, 0).rz(0.4, 0)
        out = basic_optimization(qc)
        assert len(out) == 1
        assert out.gates[0].params[0] == pytest.approx(0.7)

    def test_rotation_fusion_to_identity(self):
        qc = QuantumCircuit(1).rz(0.3, 0).rz(-0.3, 0)
        assert len(basic_optimization(qc)) == 0

    def test_full_turn_rotation_dropped(self):
        qc = QuantumCircuit(1).rz(2 * math.pi, 0)
        assert len(basic_optimization(qc)) == 0

    def test_named_phase_gates_fuse_with_rz(self):
        qc = QuantumCircuit(1).t(0).t(0)
        out = basic_optimization(qc)
        assert len(out) == 1
        assert out.gates[0].params[0] == pytest.approx(math.pi / 2)

    def test_commutation_through_cx_control(self):
        # rz on the control commutes through CX, so the two rz gates fuse
        qc = QuantumCircuit(2).rz(0.3, 0).cx(0, 1).rz(0.4, 0)
        out = basic_optimization(qc)
        assert out.count_ops().get("rz", 0) == 1

    def test_commutation_through_cx_target(self):
        qc = QuantumCircuit(2).rx(0.3, 1).cx(0, 1).rx(0.4, 1)
        out = basic_optimization(qc)
        assert out.count_ops().get("rx", 0) == 1

    def test_blocking_gate_prevents_fusion(self):
        # h on the wire blocks rz from commuting
        qc = QuantumCircuit(1).rz(0.3, 0).h(0).rz(0.4, 0)
        out = basic_optimization(qc)
        assert out.count_ops().get("rz", 0) + out.count_ops().get("rx", 0) >= 2

    def test_cx_cancellation_across_commuting_gate(self):
        qc = QuantumCircuit(2).cx(0, 1).rz(0.5, 0).cx(0, 1)
        out = basic_optimization(qc)
        assert out.count_ops().get("cx", 0) == 0

    def test_symmetric_cz_cancels_with_swapped_operands(self):
        qc = QuantumCircuit(2).cz(0, 1)
        qc.add("cz", [1, 0])
        out = basic_optimization(qc)
        assert len(out) == 0

    def test_barrier_blocks_everything(self):
        qc = QuantumCircuit(1).h(0)
        qc.barrier()
        qc.h(0)
        out = cancel_and_fuse_pass(qc)
        assert out.count_ops().get("h", 0) == 2


class TestHadamardConjugation:
    def test_h_rz_h_becomes_rx(self):
        qc = QuantumCircuit(1).h(0).rz(0.6, 0).h(0)
        out = hadamard_conjugation_pass(qc)
        assert [g.name for g in out] == ["rx"]
        assert equal_up_to_global_phase(qc.unitary(), out.unitary(), atol=1e-9)

    def test_h_rx_h_becomes_rz(self):
        qc = QuantumCircuit(1).h(0).rx(0.6, 0).h(0)
        out = hadamard_conjugation_pass(qc)
        assert [g.name for g in out] == ["rz"]

    def test_interleaved_other_qubit_untouched(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1).rz(0.5, 0).h(0)
        out = hadamard_conjugation_pass(qc)
        # the cx sits between the hadamards on wire 0: no rewrite
        assert out.count_ops().get("h", 0) == 2


class TestSemantics:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_circuits_preserved(self, seed):
        qc = random_circuit(4, 40, seed=seed)
        out = basic_optimization(qc)
        assert equal_up_to_global_phase(qc.unitary(), out.unitary(), atol=1e-7)
        assert out.depth() <= qc.depth()


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_peephole_unitary_property(seed):
    qc = random_circuit(3, 30, seed=seed)
    out = basic_optimization(qc)
    assert equal_up_to_global_phase(qc.unitary(), out.unitary(), atol=1e-7)

"""End-to-end ZX tests: conversion, simplification, extraction, optimize."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ZXError
from repro.circuits import (
    QuantumCircuit,
    random_circuit,
    random_clifford_t_circuit,
)
from repro.linalg import equal_up_to_global_phase
from repro.zx import (
    circuit_to_zx,
    extract_circuit,
    full_reduce,
    optimize_circuit,
)
from repro.zx.graph import EdgeType, VertexType
from repro.zx.simplify import to_graph_like
from repro.zx.tensor import zx_to_matrix


def zx_equal(qc: QuantumCircuit, atol=1e-6) -> bool:
    g = circuit_to_zx(qc)
    full_reduce(g)
    extracted = extract_circuit(g)
    return equal_up_to_global_phase(qc.unitary(), extracted.unitary(), atol=atol)


class TestConversion:
    def test_ghz_diagram_semantics(self):
        qc = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2)
        g = circuit_to_zx(qc)
        m = zx_to_matrix(g)
        u = qc.unitary()
        # align scale on the largest entry
        idx = np.unravel_index(np.argmax(np.abs(m)), m.shape)
        scale = m[idx] / u[idx]
        assert np.allclose(u * scale, m, atol=1e-8)

    def test_boundary_counts(self):
        qc = random_circuit(4, 10, seed=0)
        g = circuit_to_zx(qc)
        assert len(g.inputs) == 4
        assert len(g.outputs) == 4
        g.check_well_formed()

    def test_hadamard_becomes_edge(self):
        qc = QuantumCircuit(1).h(0)
        g = circuit_to_zx(qc)
        assert len(g.spiders()) == 0
        (b_in,) = g.inputs
        (b_out,) = g.outputs
        assert g.edge_type(b_in, b_out) == EdgeType.HADAMARD


class TestFullReduce:
    def test_result_is_graph_like(self):
        qc = random_clifford_t_circuit(4, 40, seed=1)
        g = circuit_to_zx(qc)
        full_reduce(g)
        assert g.is_graph_like()

    def test_clifford_circuit_reduces_hard(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1).cx(0, 1).h(0)  # identity
        g = circuit_to_zx(qc)
        full_reduce(g)
        assert len(g.spiders()) <= 2

    def test_removes_all_interior_proper_clifford_spiders(self):
        # the gadget-free rule set guarantees removal of every interior
        # ±pi/2 spider (lcomp) and every *adjacent pair* of interior Pauli
        # spiders (pivot); an isolated interior Pauli spider may survive.
        qc = random_clifford_t_circuit(3, 30, seed=2)
        g = circuit_to_zx(qc)
        full_reduce(g)
        for v in g.spiders():
            if g.is_interior(v):
                assert not g.is_proper_clifford_phase(v)
                if g.is_pauli_phase(v):
                    assert not any(
                        g.is_interior(w) and g.is_pauli_phase(w)
                        for w in g.neighbors(v)
                        if not g.is_boundary(w)
                    )


class TestExtraction:
    @pytest.mark.parametrize("seed", range(8))
    def test_clifford_t_unitary_preserved(self, seed):
        assert zx_equal(random_clifford_t_circuit(3, 25, seed=seed))

    @pytest.mark.parametrize("seed", range(4))
    def test_mixed_rotations_preserved(self, seed):
        assert zx_equal(random_circuit(4, 30, seed=seed))

    def test_bare_wires(self):
        qc = QuantumCircuit(3)  # identity circuit
        g = circuit_to_zx(qc)
        full_reduce(g)
        extracted = extract_circuit(g)
        assert np.allclose(extracted.unitary(), np.eye(8))

    def test_swap_network(self):
        qc = QuantumCircuit(3).swap(0, 1).swap(1, 2)
        assert zx_equal(qc)

    def test_extraction_requires_graph_like(self):
        qc = QuantumCircuit(2).cx(0, 1)
        g = circuit_to_zx(qc)  # still has X spiders
        with pytest.raises(ZXError):
            extract_circuit(g)

    def test_unbalanced_boundaries_rejected(self):
        g = circuit_to_zx(QuantumCircuit(2).cx(0, 1))
        to_graph_like(g)
        g.remove_vertex(g.inputs[0])
        with pytest.raises(ZXError):
            extract_circuit(g)

    def test_extracted_vocabulary(self):
        qc = random_clifford_t_circuit(3, 20, seed=11)
        g = circuit_to_zx(qc)
        full_reduce(g)
        extracted = extract_circuit(g)
        assert {gate.name for gate in extracted} <= {"rz", "h", "cz", "cx", "swap"}


class TestOptimizeCircuit:
    def test_never_increases_depth(self):
        for seed in range(6):
            qc = random_clifford_t_circuit(4, 40, seed=seed)
            result = optimize_circuit(qc)
            assert result.depth_after <= result.depth_before

    def test_identity_heavy_circuit_collapses(self):
        qc = QuantumCircuit(2)
        for _ in range(4):
            qc.cx(0, 1)
            qc.cx(0, 1)
        result = optimize_circuit(qc)
        assert result.depth_after == 0

    def test_reduction_ratio_property(self):
        qc = random_clifford_t_circuit(5, 60, seed=3)
        result = optimize_circuit(qc)
        assert result.depth_reduction >= 1.0
        assert equal_up_to_global_phase(
            qc.unitary(), result.circuit.unitary(), atol=1e-6
        )

    def test_pseudo_ops_dropped(self):
        qc = QuantumCircuit(2).h(0)
        qc.measure_all()
        result = optimize_circuit(qc)
        assert all(g.is_unitary_op for g in result.circuit)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_zx_pipeline_unitary_property(seed):
    """Property: full pipeline preserves the unitary up to global phase."""
    qc = random_clifford_t_circuit(3, 20, seed=seed)
    result = optimize_circuit(qc)
    assert equal_up_to_global_phase(qc.unitary(), result.circuit.unitary(), atol=1e-6)

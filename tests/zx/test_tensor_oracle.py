"""Tests for the brute-force ZX tensor oracle itself.

The oracle certifies the rewrite rules, so it must itself be validated
against the independent circuit simulator.
"""

import numpy as np
import pytest

from repro.exceptions import ZXError
from repro.circuits import QuantumCircuit, random_circuit
from repro.zx.conversion import circuit_to_zx
from repro.zx.graph import EdgeType, VertexType, ZXGraph
from repro.zx.tensor import zx_to_matrix


def aligned_equal(a, b, atol=1e-8):
    idx = np.unravel_index(np.argmax(np.abs(b)), b.shape)
    if abs(a[idx]) < 1e-12:
        return False
    scale = b[idx] / a[idx]
    return np.allclose(a * scale, b, atol=atol)


class TestAgainstSimulator:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_circuits(self, seed):
        qc = random_circuit(2, 8, seed=seed)
        graph = circuit_to_zx(qc)
        assert aligned_equal(qc.unitary(), zx_to_matrix(graph))

    def test_single_gates(self):
        for build in (
            lambda q: q.h(0),
            lambda q: q.t(0),
            lambda q: q.rx(0.4, 0),
            lambda q: q.rz(1.1, 0),
        ):
            qc = QuantumCircuit(1)
            build(qc)
            assert aligned_equal(qc.unitary(), zx_to_matrix(circuit_to_zx(qc)))

    def test_two_qubit_gates(self):
        for build in (lambda q: q.cx(0, 1), lambda q: q.cz(0, 1)):
            qc = QuantumCircuit(2)
            build(qc)
            assert aligned_equal(qc.unitary(), zx_to_matrix(circuit_to_zx(qc)))


class TestDirectDiagrams:
    def test_bare_wire(self):
        g = ZXGraph()
        b_in = g.add_vertex(VertexType.BOUNDARY)
        b_out = g.add_vertex(VertexType.BOUNDARY)
        g.add_edge(b_in, b_out)
        g.inputs.append(b_in)
        g.outputs.append(b_out)
        assert np.allclose(zx_to_matrix(g), np.eye(2))

    def test_hadamard_wire(self):
        g = ZXGraph()
        b_in = g.add_vertex(VertexType.BOUNDARY)
        b_out = g.add_vertex(VertexType.BOUNDARY)
        g.add_edge(b_in, b_out, EdgeType.HADAMARD)
        g.inputs.append(b_in)
        g.outputs.append(b_out)
        m = zx_to_matrix(g)
        h = np.array([[1, 1], [1, -1]]) / np.sqrt(2)
        assert aligned_equal(h, m)

    def test_x_spider_is_not_z_spider(self):
        def one_spider(vtype):
            g = ZXGraph()
            b_in = g.add_vertex(VertexType.BOUNDARY)
            b_out = g.add_vertex(VertexType.BOUNDARY)
            v = g.add_vertex(vtype, phase=0.5)
            g.add_edge(b_in, v)
            g.add_edge(v, b_out)
            g.inputs.append(b_in)
            g.outputs.append(b_out)
            return zx_to_matrix(g)

        z = one_spider(VertexType.Z)
        x = one_spider(VertexType.X)
        assert not aligned_equal(z, x)

    def test_spider_count_guard(self):
        g = ZXGraph()
        b_in = g.add_vertex(VertexType.BOUNDARY)
        b_out = g.add_vertex(VertexType.BOUNDARY)
        g.inputs.append(b_in)
        g.outputs.append(b_out)
        prev = b_in
        for _ in range(25):
            v = g.add_vertex(VertexType.Z)
            g.add_edge(prev, v)
            prev = v
        g.add_edge(prev, b_out)
        with pytest.raises(ZXError):
            zx_to_matrix(g)

    def test_state_diagram_no_inputs(self):
        # a single Z spider wired to one output is the |0> + |1> state
        g = ZXGraph()
        b_out = g.add_vertex(VertexType.BOUNDARY)
        v = g.add_vertex(VertexType.Z)
        g.add_edge(v, b_out)
        g.outputs.append(b_out)
        m = zx_to_matrix(g)
        assert m.shape == (2, 1)
        assert abs(m[0, 0]) == pytest.approx(abs(m[1, 0]))

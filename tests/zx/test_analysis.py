"""Tests for the T-count / resource analysis helpers."""

import math

import pytest

from repro.circuits import QuantumCircuit, random_clifford_t_circuit
from repro.zx import circuit_to_zx, full_reduce, optimize_circuit
from repro.zx.analysis import circuit_metrics, non_clifford_spiders, t_count


class TestTCount:
    def test_clifford_circuit_is_zero(self):
        qc = QuantumCircuit(2).h(0).s(1).cx(0, 1).cz(0, 1)
        assert t_count(qc) == 0

    def test_t_gates_counted(self):
        qc = QuantumCircuit(1).t(0).tdg(0).t(0)
        assert t_count(qc) == 3

    def test_clifford_rotations_free(self):
        qc = QuantumCircuit(1).rz(math.pi / 2, 0).rx(math.pi, 0).rz(0.0, 0)
        assert t_count(qc) == 0

    def test_generic_rotations_counted(self):
        qc = QuantumCircuit(1).rz(0.3, 0).rx(1.1, 0)
        assert t_count(qc) == 2

    def test_raw_unitary_conservative(self, rng):
        from repro.linalg import random_unitary

        qc = QuantumCircuit(1)
        qc.unitary_gate(random_unitary(2, rng), [0])
        assert t_count(qc) == 1


class TestNonCliffordSpiders:
    def test_counts_t_spiders(self):
        qc = QuantumCircuit(1).t(0).s(0).t(0)
        g = circuit_to_zx(qc)
        assert non_clifford_spiders(g) == 2

    def test_fusion_merges_t_pairs(self):
        # two adjacent T gates fuse into one Clifford S spider
        qc = QuantumCircuit(1).t(0).t(0)
        g = circuit_to_zx(qc)
        full_reduce(g)
        assert non_clifford_spiders(g) == 0


class TestMetricsAndInvariants:
    def test_metrics_fields(self):
        qc = QuantumCircuit(2).h(0).t(0).cx(0, 1)
        metrics = circuit_metrics(qc)
        assert metrics == {"gates": 3, "depth": 3, "two_qubit": 1, "t_count": 1}

    @pytest.mark.parametrize("seed", range(5))
    def test_optimization_never_increases_t_count(self, seed):
        qc = random_clifford_t_circuit(3, 30, seed=seed)
        result = optimize_circuit(qc)
        assert t_count(result.circuit) <= t_count(qc)

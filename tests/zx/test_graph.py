"""Tests for the ZX-diagram data structure."""

import pytest

from repro.exceptions import ZXError
from repro.zx.graph import EdgeType, VertexType, ZXGraph


def two_spiders(etype=EdgeType.SIMPLE, types=(VertexType.Z, VertexType.Z)):
    g = ZXGraph()
    v = g.add_vertex(types[0])
    w = g.add_vertex(types[1])
    g.add_edge(v, w, etype)
    return g, v, w


class TestVertices:
    def test_add_and_query(self):
        g = ZXGraph()
        v = g.add_vertex(VertexType.Z, phase=0.5, qubit=1, row=2)
        assert g.type(v) == VertexType.Z
        assert g.phase(v) == 0.5
        assert g.has_vertex(v)

    def test_phase_normalization(self):
        g = ZXGraph()
        v = g.add_vertex(VertexType.Z, phase=2.5)
        assert g.phase(v) == pytest.approx(0.5)
        g.add_phase(v, -1.0)
        assert g.phase(v) == pytest.approx(1.5)

    def test_phase_snapping(self):
        g = ZXGraph()
        v = g.add_vertex(VertexType.Z, phase=0.5 + 1e-14)
        assert g.phase(v) == 0.5

    def test_remove_vertex_cleans_edges(self):
        g, v, w = two_spiders()
        g.remove_vertex(v)
        assert not g.has_vertex(v)
        assert g.degree(w) == 0

    def test_remove_boundary_updates_lists(self):
        g = ZXGraph()
        b = g.add_vertex(VertexType.BOUNDARY)
        g.inputs.append(b)
        g.remove_vertex(b)
        assert g.inputs == []

    def test_pauli_and_clifford_predicates(self):
        g = ZXGraph()
        for phase, pauli, clifford in (
            (0.0, True, False),
            (1.0, True, False),
            (0.5, False, True),
            (1.5, False, True),
            (0.25, False, False),
        ):
            v = g.add_vertex(VertexType.Z, phase=phase)
            assert g.is_pauli_phase(v) == pauli
            assert g.is_proper_clifford_phase(v) == clifford


class TestEdges:
    def test_add_edge_both_directions(self):
        g, v, w = two_spiders()
        assert g.has_edge(v, w) and g.has_edge(w, v)
        assert g.edge_type(v, w) == EdgeType.SIMPLE

    def test_duplicate_edge_rejected(self):
        g, v, w = two_spiders()
        with pytest.raises(ZXError):
            g.add_edge(v, w)

    def test_toggle_edge_type(self):
        g, v, w = two_spiders()
        g.toggle_edge_type(v, w)
        assert g.edge_type(v, w) == EdgeType.HADAMARD

    def test_missing_edge_queries_raise(self):
        g = ZXGraph()
        v = g.add_vertex(VertexType.Z)
        w = g.add_vertex(VertexType.Z)
        with pytest.raises(ZXError):
            g.edge_type(v, w)
        with pytest.raises(ZXError):
            g.remove_edge(v, w)


class TestSmartEdges:
    def test_hadamard_self_loop_adds_pi(self):
        g = ZXGraph()
        v = g.add_vertex(VertexType.Z, phase=0.0)
        g.add_edge_smart(v, v, EdgeType.HADAMARD)
        assert g.phase(v) == pytest.approx(1.0)

    def test_simple_self_loop_vanishes(self):
        g = ZXGraph()
        v = g.add_vertex(VertexType.Z)
        g.add_edge_smart(v, v, EdgeType.SIMPLE)
        assert g.phase(v) == 0.0
        assert g.degree(v) == 0

    def test_parallel_hadamard_edges_cancel(self):
        g, v, w = two_spiders(EdgeType.HADAMARD)
        g.add_edge_smart(v, w, EdgeType.HADAMARD)
        assert not g.has_edge(v, w)

    def test_simple_plus_hadamard_same_color(self):
        g, v, w = two_spiders(EdgeType.SIMPLE)
        g.add_edge_smart(v, w, EdgeType.HADAMARD)
        assert g.edge_type(v, w) == EdgeType.SIMPLE
        assert g.phase(v) + g.phase(w) == pytest.approx(1.0)

    def test_parallel_simple_different_color_cancel(self):
        g, v, w = two_spiders(EdgeType.SIMPLE, (VertexType.Z, VertexType.X))
        g.add_edge_smart(v, w, EdgeType.SIMPLE)
        assert not g.has_edge(v, w)

    def test_parallel_hadamard_different_color_keep_one(self):
        g, v, w = two_spiders(EdgeType.HADAMARD, (VertexType.Z, VertexType.X))
        g.add_edge_smart(v, w, EdgeType.HADAMARD)
        assert g.edge_type(v, w) == EdgeType.HADAMARD


class TestStructure:
    def test_stats_and_repr(self):
        g, v, w = two_spiders()
        stats = g.stats()
        assert stats["vertices"] == 2
        assert stats["edges"] == 1
        assert "ZXGraph" in repr(g)

    def test_copy_independence(self):
        g, v, w = two_spiders()
        clone = g.copy()
        clone.remove_vertex(v)
        assert g.has_vertex(v)

    def test_is_graph_like(self):
        g, v, w = two_spiders(EdgeType.HADAMARD)
        assert g.is_graph_like()
        g2, _, _ = two_spiders(EdgeType.SIMPLE)
        assert not g2.is_graph_like()

    def test_check_well_formed_boundary_degree(self):
        g = ZXGraph()
        b = g.add_vertex(VertexType.BOUNDARY)
        g.inputs.append(b)
        with pytest.raises(ZXError):
            g.check_well_formed()

    def test_interior_predicate(self):
        g = ZXGraph()
        b = g.add_vertex(VertexType.BOUNDARY)
        s1 = g.add_vertex(VertexType.Z)
        s2 = g.add_vertex(VertexType.Z)
        g.add_edge(b, s1)
        g.add_edge(s1, s2, EdgeType.HADAMARD)
        assert not g.is_interior(s1)
        assert g.is_interior(s2)
        assert not g.is_interior(b)

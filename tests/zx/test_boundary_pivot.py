"""Tests for the boundary-pivot extension of the simplifier."""

import numpy as np
import pytest

from repro.exceptions import ZXError
from repro.circuits import QuantumCircuit, random_clifford_t_circuit
from repro.linalg import equal_up_to_global_phase
from repro.zx import circuit_to_zx, extract_circuit, full_reduce
from repro.zx.graph import EdgeType, VertexType, ZXGraph
from repro.zx.rules import insert_wire_spider
from repro.zx.simplify import boundary_pivot_simp, interior_clifford_simp, to_graph_like


class TestInsertWireSpider:
    def test_preserves_wire_semantics(self):
        qc = QuantumCircuit(1).t(0)
        g = circuit_to_zx(qc)
        (spider,) = g.spiders()
        boundary = g.inputs[0]
        from repro.zx.tensor import zx_to_matrix

        before = zx_to_matrix(g)
        dummy = insert_wire_spider(g, spider, boundary)
        after = zx_to_matrix(g)
        idx = np.unravel_index(np.argmax(np.abs(after)), after.shape)
        scale = after[idx] / before[idx]
        assert np.allclose(before * scale, after, atol=1e-8)
        assert g.type(dummy) == VertexType.Z
        assert g.edge_type(spider, dummy) == EdgeType.HADAMARD

    def test_requires_boundary(self):
        g = ZXGraph()
        a = g.add_vertex(VertexType.Z)
        b = g.add_vertex(VertexType.Z)
        g.add_edge(a, b)
        with pytest.raises(ZXError):
            insert_wire_spider(g, a, b)


class TestBoundaryPivot:
    def test_fires_on_clifford_circuits(self):
        fired = 0
        for seed in range(10):
            qc = random_clifford_t_circuit(3, 30, seed=seed)
            g = circuit_to_zx(qc)
            to_graph_like(g)
            interior_clifford_simp(g)
            fired += boundary_pivot_simp(g)
        assert fired > 0  # the rule genuinely triggers on this family

    @pytest.mark.parametrize("seed", range(8))
    def test_preserves_unitary_through_extraction(self, seed):
        qc = random_clifford_t_circuit(3, 30, seed=seed)
        g = circuit_to_zx(qc)
        full_reduce(g)
        extracted = extract_circuit(g)
        assert equal_up_to_global_phase(
            qc.unitary(), extracted.unitary(), atol=1e-6
        )

    def test_reduces_spider_count(self):
        # averaged over seeds, clifford_simp with boundary pivots leaves
        # no more spiders than the interior-only fixpoint
        for seed in range(5):
            qc = random_clifford_t_circuit(4, 40, seed=seed)
            g1 = circuit_to_zx(qc)
            to_graph_like(g1)
            interior_clifford_simp(g1)
            interior_only = len(g1.spiders())
            g2 = circuit_to_zx(qc)
            full_reduce(g2)
            assert len(g2.spiders()) <= interior_only

"""Semantic tests for individual ZX rewrite rules.

Each rule is applied to a small diagram and the linear map before/after is
compared (up to global scalar) with the brute-force tensor oracle.
"""

import numpy as np
import pytest

from repro.exceptions import ZXError
from repro.circuits import QuantumCircuit
from repro.zx.conversion import circuit_to_zx
from repro.zx.graph import EdgeType, VertexType, ZXGraph
from repro.zx.rules import (
    color_change,
    fuse_spiders,
    local_complementation,
    pivot,
    remove_identity,
)
from repro.zx.simplify import to_graph_like
from repro.zx.tensor import zx_to_matrix


def aligned_equal(a: np.ndarray, b: np.ndarray, atol: float = 1e-8) -> bool:
    """Equality up to a global non-zero scalar."""
    idx = np.unravel_index(np.argmax(np.abs(b)), b.shape)
    if abs(a[idx]) < 1e-12:
        return np.allclose(a, 0, atol=atol) and np.allclose(b, 0, atol=atol)
    scale = b[idx] / a[idx]
    return np.allclose(a * scale, b, atol=atol)


def check_preserves_semantics(graph: ZXGraph, apply_rule) -> None:
    before = zx_to_matrix(graph)
    apply_rule(graph)
    after = zx_to_matrix(graph)
    assert aligned_equal(before, after)


class TestFusion:
    def test_fusion_adds_phases(self):
        qc = QuantumCircuit(1)
        qc.rz(0.3, 0)
        qc.rz(0.4, 0)
        g = circuit_to_zx(qc)
        spiders = g.spiders()
        check_preserves_semantics(g, lambda gr: fuse_spiders(gr, *spiders))
        (remaining,) = g.spiders()
        assert g.phase(remaining) == pytest.approx(0.7 / np.pi)

    def test_fusion_requires_same_color(self):
        g = ZXGraph()
        v = g.add_vertex(VertexType.Z)
        w = g.add_vertex(VertexType.X)
        g.add_edge(v, w)
        with pytest.raises(ZXError):
            fuse_spiders(g, v, w)

    def test_fusion_requires_plain_edge(self):
        g = ZXGraph()
        v = g.add_vertex(VertexType.Z)
        w = g.add_vertex(VertexType.Z)
        g.add_edge(v, w, EdgeType.HADAMARD)
        with pytest.raises(ZXError):
            fuse_spiders(g, v, w)

    def test_fusion_transfers_neighbors(self):
        qc = QuantumCircuit(2)
        qc.rz(0.3, 0)
        qc.cz(0, 1)
        g = circuit_to_zx(qc)
        # fuse the rz spider with the cz spider on qubit 0
        z_spiders = [v for v in g.spiders() if g.type(v) == VertexType.Z]
        pair = None
        for v in z_spiders:
            for w in g.neighbors(v):
                if (
                    not g.is_boundary(w)
                    and g.type(w) == VertexType.Z
                    and g.edge_type(v, w) == EdgeType.SIMPLE
                ):
                    pair = (v, w)
        assert pair is not None
        check_preserves_semantics(g, lambda gr: fuse_spiders(gr, *pair))


class TestIdentity:
    def test_zero_phase_spider_removed(self):
        qc = QuantumCircuit(1)
        qc.rz(0.0, 0)
        g = circuit_to_zx(qc)
        (v,) = g.spiders()
        check_preserves_semantics(g, lambda gr: remove_identity(gr, v))
        assert len(g.spiders()) == 0

    def test_mixed_edge_types_leave_hadamard(self):
        g = ZXGraph()
        b1 = g.add_vertex(VertexType.BOUNDARY)
        b2 = g.add_vertex(VertexType.BOUNDARY)
        v = g.add_vertex(VertexType.Z)
        g.inputs.append(b1)
        g.outputs.append(b2)
        g.add_edge(b1, v, EdgeType.HADAMARD)
        g.add_edge(v, b2, EdgeType.SIMPLE)
        check_preserves_semantics(g, lambda gr: remove_identity(gr, v))
        assert g.edge_type(b1, b2) == EdgeType.HADAMARD

    def test_nonzero_phase_rejected(self):
        qc = QuantumCircuit(1)
        qc.t(0)
        g = circuit_to_zx(qc)
        (v,) = g.spiders()
        with pytest.raises(ZXError):
            remove_identity(g, v)

    def test_high_degree_rejected(self):
        qc = QuantumCircuit(2)
        qc.cz(0, 1)
        g = circuit_to_zx(qc)
        v = g.spiders()[0]
        with pytest.raises(ZXError):
            remove_identity(g, v)


class TestColorChange:
    def test_semantics_preserved(self):
        qc = QuantumCircuit(2)
        qc.rx(0.7, 0)
        qc.cx(0, 1)
        g = circuit_to_zx(qc)
        x_spider = next(v for v in g.spiders() if g.type(v) == VertexType.X)
        check_preserves_semantics(g, lambda gr: color_change(gr, x_spider))
        assert all(g.type(v) != VertexType.X or v != x_spider for v in g.spiders())

    def test_boundary_rejected(self):
        g = ZXGraph()
        b = g.add_vertex(VertexType.BOUNDARY)
        with pytest.raises(ZXError):
            color_change(g, b)


def _graph_like_from(qc: QuantumCircuit) -> ZXGraph:
    g = circuit_to_zx(qc)
    to_graph_like(g)
    return g


class TestLocalComplementation:
    def _find_candidate(self, g):
        for v in g.spiders():
            if (
                g.is_proper_clifford_phase(v)
                and g.is_interior(v)
                and all(
                    g.edge_type(v, w) == EdgeType.HADAMARD
                    and g.type(w) == VertexType.Z
                    for w in g.neighbors(v)
                )
            ):
                return v
        return None

    def test_semantics_preserved(self):
        # hand-build a diagram with a genuinely interior ±pi/2 spider:
        # two wires, each boundary attached to its own spider, and a
        # central s-spider H-connected to both wire spiders.
        g = ZXGraph()
        wires = []
        for q in range(2):
            b_in = g.add_vertex(VertexType.BOUNDARY, qubit=q)
            b_out = g.add_vertex(VertexType.BOUNDARY, qubit=q)
            spider_in = g.add_vertex(VertexType.Z, phase=0.25, qubit=q)
            spider_out = g.add_vertex(VertexType.Z, phase=0.75, qubit=q)
            g.inputs.append(b_in)
            g.outputs.append(b_out)
            g.add_edge(b_in, spider_in)
            g.add_edge(spider_in, spider_out, EdgeType.HADAMARD)
            g.add_edge(spider_out, b_out)
            wires.append((spider_in, spider_out))
        center = g.add_vertex(VertexType.Z, phase=0.5)
        for spider_in, spider_out in wires:
            g.add_edge(center, spider_in, EdgeType.HADAMARD)
            g.add_edge(center, spider_out, EdgeType.HADAMARD)
        v = self._find_candidate(g)
        assert v == center
        check_preserves_semantics(g, lambda gr: local_complementation(gr, v))

    def test_non_clifford_phase_rejected(self):
        g = ZXGraph()
        v = g.add_vertex(VertexType.Z, phase=0.25)
        with pytest.raises(ZXError):
            local_complementation(g, v)

    def test_boundary_adjacent_rejected(self):
        qc = QuantumCircuit(1)
        qc.s(0)
        g = _graph_like_from(qc)
        (v,) = g.spiders()
        with pytest.raises(ZXError):
            local_complementation(g, v)


class TestPivot:
    def test_semantics_preserved(self):
        # build an interior Pauli pair via H-conjugated CZ structure
        qc = QuantumCircuit(3)
        qc.cz(0, 1)
        qc.h(0)
        qc.h(1)
        qc.cz(0, 1)
        qc.h(0)
        qc.h(1)
        qc.cz(0, 2)
        qc.cz(1, 2)
        g = _graph_like_from(qc)
        candidate = None
        for u, v, etype in g.edges():
            if etype != EdgeType.HADAMARD:
                continue
            if g.is_boundary(u) or g.is_boundary(v):
                continue
            if (
                g.is_pauli_phase(u)
                and g.is_pauli_phase(v)
                and g.is_interior(u)
                and g.is_interior(v)
            ):
                candidate = (u, v)
                break
        if candidate is None:
            pytest.skip("structure produced no interior Pauli pair")
        check_preserves_semantics(g, lambda gr: pivot(gr, *candidate))

    def test_non_pauli_rejected(self):
        g = ZXGraph()
        u = g.add_vertex(VertexType.Z, phase=0.25)
        v = g.add_vertex(VertexType.Z)
        g.add_edge(u, v, EdgeType.HADAMARD)
        with pytest.raises(ZXError):
            pivot(g, u, v)

    def test_requires_hadamard_edge(self):
        g = ZXGraph()
        u = g.add_vertex(VertexType.Z)
        v = g.add_vertex(VertexType.Z)
        g.add_edge(u, v, EdgeType.SIMPLE)
        with pytest.raises(ZXError):
            pivot(g, u, v)

"""Tests for pulse scheduling and the calibrated latency model."""

import numpy as np
import pytest

from repro.config import HardwareConfig
from repro.exceptions import ScheduleError
from repro.circuits.gates import Gate
from repro.pulse import GateLatencyModel, PulseSchedule
from repro.qoc import Pulse


def make_pulse(qubits, segments, dt=1.0, distance=0.01):
    return Pulse(
        qubits=tuple(qubits),
        controls=np.zeros((2 * len(qubits), segments)),
        dt=dt,
        fidelity=0.999,
        unitary_distance=distance,
    )


class TestSchedule:
    def test_sequential_same_qubit(self):
        s = PulseSchedule(1)
        s.add_pulse(make_pulse([0], 10))
        s.add_pulse(make_pulse([0], 5))
        assert s.latency == pytest.approx(15.0)

    def test_parallel_different_qubits(self):
        s = PulseSchedule(2)
        s.add_pulse(make_pulse([0], 10))
        s.add_pulse(make_pulse([1], 7))
        assert s.latency == pytest.approx(10.0)

    def test_two_qubit_pulse_synchronizes(self):
        s = PulseSchedule(2)
        s.add_pulse(make_pulse([0], 10))
        item = s.add_pulse(make_pulse([0, 1], 5))
        assert item.start == pytest.approx(10.0)
        assert s.latency == pytest.approx(15.0)

    def test_barrier_synchronizes_without_time(self):
        s = PulseSchedule(2)
        s.add_pulse(make_pulse([0], 10))
        s.add_barrier()
        item = s.add_pulse(make_pulse([1], 5))
        assert item.start == pytest.approx(10.0)

    def test_empty_schedule(self):
        s = PulseSchedule(3)
        assert s.latency == 0.0
        assert len(s) == 0

    def test_out_of_range_rejected(self):
        s = PulseSchedule(2)
        with pytest.raises(ScheduleError):
            s.add_interval([5], 1.0)

    def test_negative_duration_rejected(self):
        s = PulseSchedule(2)
        with pytest.raises(ScheduleError):
            s.add_interval([0], -1.0)

    def test_zero_qubits_rejected(self):
        with pytest.raises(ScheduleError):
            PulseSchedule(0)

    def test_empty_qubit_interval_rejected(self):
        # an interval on no qubits would silently occupy no line and
        # vanish from the latency/utilization accounting
        s = PulseSchedule(2)
        with pytest.raises(ScheduleError):
            s.add_interval([], 1.0)

    def test_empty_qubit_interval_rejected_any_duration(self):
        s = PulseSchedule(2)
        with pytest.raises(ScheduleError):
            s.add_interval((), 0.0)

    def test_line_utilization(self):
        s = PulseSchedule(2)
        s.add_pulse(make_pulse([0], 10))
        s.add_pulse(make_pulse([1], 5))
        util = s.line_utilization()
        assert util[0] == pytest.approx(1.0)
        assert util[1] == pytest.approx(0.5)

    def test_fidelity_product(self):
        s = PulseSchedule(1)
        s.add_pulse(make_pulse([0], 5, distance=0.1))
        s.add_pulse(make_pulse([0], 5, distance=0.2))
        assert s.fidelity_product() == pytest.approx(0.9 * 0.8)

    def test_intervals_without_pulse_skip_fidelity(self):
        s = PulseSchedule(1)
        s.add_interval([0], 5.0)
        assert s.fidelity_product() == 1.0


class TestGateLatencyModel:
    def test_durations_by_arity(self):
        hw = HardwareConfig(
            one_qubit_gate_ns=10.0, two_qubit_gate_ns=100.0, three_qubit_gate_ns=500.0
        )
        model = GateLatencyModel(hw)
        assert model.duration(Gate("h", (0,))) == 10.0
        assert model.duration(Gate("cx", (0, 1))) == 100.0
        assert model.duration(Gate("ccx", (0, 1, 2))) == 500.0

    def test_pseudo_ops_free(self):
        model = GateLatencyModel()
        assert model.duration(Gate("barrier", (0,))) == 0.0

    def test_raw_unitary_rejected(self):
        model = GateLatencyModel()
        gate = Gate("unitary", (0,), matrix_override=np.eye(2))
        with pytest.raises(ScheduleError):
            model.duration(gate)

"""Tests for pulse/schedule serialization."""

import json

import numpy as np
import pytest

from repro.exceptions import ScheduleError
from repro.pulse import PulseSchedule
from repro.pulse.serialize import pulse_from_dict, pulse_to_dict, schedule_to_dict
from repro.qoc import Pulse


@pytest.fixture
def pulse(rng):
    return Pulse(
        qubits=(1, 2),
        controls=rng.uniform(-1, 1, (4, 6)),
        dt=0.5,
        fidelity=0.998,
        unitary_distance=0.02,
        source="grape",
    )


class TestPulseRoundTrip:
    def test_round_trip(self, pulse):
        rebuilt = pulse_from_dict(pulse_to_dict(pulse))
        assert rebuilt.qubits == pulse.qubits
        assert rebuilt.dt == pulse.dt
        assert rebuilt.fidelity == pulse.fidelity
        assert np.allclose(rebuilt.controls, pulse.controls)

    def test_json_serializable(self, pulse):
        text = json.dumps(pulse_to_dict(pulse))
        rebuilt = pulse_from_dict(json.loads(text))
        assert rebuilt.duration == pytest.approx(pulse.duration)

    def test_missing_field_rejected(self):
        with pytest.raises(ScheduleError):
            pulse_from_dict({"qubits": [0]})


class TestScheduleSerialization:
    def test_schedule_payload(self, pulse):
        schedule = PulseSchedule(4)
        schedule.add_pulse(pulse)
        schedule.add_interval([0], 10.0, label="cal")
        payload = schedule_to_dict(schedule)
        assert payload["num_qubits"] == 4
        assert payload["latency_ns"] == pytest.approx(schedule.latency)
        assert len(payload["items"]) == 2
        assert "pulse" in payload["items"][0]
        assert "pulse" not in payload["items"][1]
        json.dumps(payload)  # fully serializable

    def test_timing_preserved(self, pulse):
        schedule = PulseSchedule(4)
        first = schedule.add_pulse(pulse)
        second = schedule.add_pulse(pulse)
        payload = schedule_to_dict(schedule)
        assert payload["items"][0]["start_ns"] == pytest.approx(first.start)
        assert payload["items"][1]["start_ns"] == pytest.approx(second.start)

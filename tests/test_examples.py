"""Smoke tests: every example script compiles and exposes a main().

Full example runs involve minutes of GRAPE, so CI-level checks validate
structure; `examples/quickstart.py` is additionally executed with a
monkeypatched fast configuration.
"""

import importlib.util
import pathlib
import py_compile

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_has_main_guard(path):
    text = path.read_text()
    assert 'if __name__ == "__main__":' in text, path.name
    assert "def main(" in text, path.name


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # the deliverable floor

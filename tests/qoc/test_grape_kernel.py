"""Regression tests for the vectorized GRAPE objective kernel.

Three layers of guarantees:

1. the ``"reference"`` kernel is *bitwise* pinned to the pre-fast-path
   objective (a frozen legacy copy lives in this file);
2. the ``"fast"`` kernel agrees with the reference to <= 1e-12 across
   dimensions and segment counts (it reassociates floating point, which
   is the documented reason the kernels are a config switch rather than
   bitwise-identical);
3. the supporting pieces — blocked prefix scan, resampling, final-eval
   reuse, batched first-probe eigensystems — are individually exact.
"""

import numpy as np
import pytest
from scipy.stats import unitary_group

import repro.qoc.grape as grape_module
from repro.config import QOCConfig
from repro.qoc.grape import (
    _GrapeObjective,
    _cumulative_products,
    _exp_derivative_factor,
    _resample_controls,
    _slot_propagators_and_eig,
    control_stack_for,
    grape_optimize,
)
from repro.qoc.hamiltonian import TransmonChain


def _legacy_objective(target, hardware, num_segments, dt):
    """The pre-fast-path objective, frozen verbatim for bitwise pinning."""
    target = np.asarray(target, dtype=complex)
    dim = target.shape[0]
    target_dag = target.conj().T
    drift = hardware.drift()
    controls_h, _ = hardware.controls()
    num_controls = len(controls_h)
    hk_stack = np.stack([np.asarray(h, dtype=complex) for h in controls_h])

    def objective(x):
        u = x.reshape(num_controls, num_segments)
        props, lams, qs = _slot_propagators_and_eig(drift, controls_h, u, dt)
        forward = np.empty((num_segments + 1, dim, dim), dtype=complex)
        forward[0] = np.eye(dim)
        for t in range(num_segments):
            forward[t + 1] = props[t] @ forward[t]
        total = forward[num_segments]
        back = np.empty((num_segments, dim, dim), dtype=complex)
        back[num_segments - 1] = target_dag
        for t in range(num_segments - 1, 0, -1):
            back[t - 1] = back[t] @ props[t]
        overlap = np.trace(target_dag @ total)
        fidelity = abs(overlap) ** 2 / dim**2
        qs_dag = np.conj(np.swapaxes(qs, 1, 2))
        factor = _exp_derivative_factor(lams, dt)
        left = back @ qs
        right = qs_dag @ forward[:num_segments]
        core = factor * np.swapaxes(right @ left, 1, 2)
        hk_eig = np.einsum(
            "tai,kij,tjb->ktab", qs_dag, hk_stack, qs, optimize=True
        )
        dz = np.einsum("tab,ktab->kt", core, hk_eig, optimize=True)
        grad = 2.0 * (np.conj(overlap) * dz).real / dim**2
        return 1.0 - fidelity, -grad.ravel()

    return objective


def _make_objective(target, hardware, num_segments, dt, kernel):
    controls_h, _ = hardware.controls()
    return _GrapeObjective(
        np.asarray(target, dtype=complex).conj().T,
        hardware.drift(),
        control_stack_for(controls_h),
        num_segments,
        dt,
        kernel,
    )


class TestKernelEquivalence:
    @pytest.mark.parametrize("num_qubits", [1, 2, 3])
    @pytest.mark.parametrize("num_segments", [3, 17, 64])
    def test_fast_matches_reference(self, num_qubits, num_segments):
        hardware = TransmonChain(num_qubits)
        target = unitary_group.rvs(
            hardware.dim, random_state=num_qubits * 100 + num_segments
        )
        rng = np.random.default_rng(5)
        num_controls = len(hardware.controls()[0])
        x = rng.uniform(-0.3, 0.3, size=num_controls * num_segments)
        fast = _make_objective(target, hardware, num_segments, 0.5, "fast")
        ref = _make_objective(target, hardware, num_segments, 0.5, "reference")
        value_fast, grad_fast = fast(x)
        value_ref, grad_ref = ref(x)
        assert value_fast == pytest.approx(value_ref, abs=1e-12)
        np.testing.assert_allclose(grad_fast, grad_ref, atol=1e-12)

    @pytest.mark.parametrize("num_qubits", [1, 2, 3])
    @pytest.mark.parametrize("num_segments", [1, 5, 33])
    def test_reference_is_bitwise_legacy(self, num_qubits, num_segments):
        hardware = TransmonChain(num_qubits)
        target = unitary_group.rvs(
            hardware.dim, random_state=num_qubits * 10 + num_segments
        )
        rng = np.random.default_rng(11)
        num_controls = len(hardware.controls()[0])
        x = rng.uniform(-0.3, 0.3, size=num_controls * num_segments)
        ref = _make_objective(target, hardware, num_segments, 0.5, "reference")
        legacy = _legacy_objective(target, hardware, num_segments, 0.5)
        value_ref, grad_ref = ref(x)
        value_leg, grad_leg = legacy(x)
        assert value_ref == value_leg
        assert np.array_equal(grad_ref, grad_leg)

    @pytest.mark.parametrize("kernel", ["fast", "reference"])
    def test_grape_optimize_converges_either_kernel(self, kernel):
        config = QOCConfig(
            dt=1.0, fidelity_threshold=0.98, max_iterations=80, kernel=kernel
        )
        hardware = TransmonChain(1)
        target = unitary_group.rvs(2, random_state=3)
        result = grape_optimize(target, hardware, 12, config=config)
        assert result.converged
        # the reported unitary must match a fresh propagation of the
        # returned controls (guards the final-evaluation reuse)
        controls_h, _ = hardware.controls()
        redone = grape_module.propagate(
            hardware.drift(), controls_h, result.controls, config.dt
        )
        np.testing.assert_allclose(result.final_unitary, redone, atol=1e-10)

    def test_kernels_agree_end_to_end(self):
        hardware = TransmonChain(2)
        target = unitary_group.rvs(4, random_state=9)
        results = {}
        for kernel in ("fast", "reference"):
            config = QOCConfig(
                dt=1.0,
                fidelity_threshold=0.98,
                max_iterations=60,
                kernel=kernel,
            )
            results[kernel] = grape_optimize(target, hardware, 20, config=config)
        assert results["fast"].converged == results["reference"].converged
        assert results["fast"].fidelity == pytest.approx(
            results["reference"].fidelity, abs=1e-6
        )


class TestCumulativeProducts:
    @pytest.mark.parametrize("num_t", [1, 2, 4, 5, 16, 33, 120])
    def test_matches_serial_fold(self, num_t):
        rng = np.random.default_rng(num_t)
        d = 4
        props = np.array(
            [unitary_group.rvs(d, random_state=num_t * 10 + t) for t in range(num_t)]
        )
        scan = _cumulative_products(props)
        expected = np.empty_like(props)
        acc = np.eye(d, dtype=complex)
        for t in range(num_t):
            acc = props[t] @ acc
            expected[t] = acc
        np.testing.assert_allclose(scan, expected, atol=1e-12)


class TestFinalEvalReuse:
    def test_propagate_not_called_after_minimize(self, monkeypatch):
        calls = {"n": 0}
        original = grape_module.propagate

        def counting(*args, **kwargs):
            calls["n"] += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(grape_module, "propagate", counting)
        config = QOCConfig(dt=1.0, fidelity_threshold=0.98, max_iterations=60)
        hardware = TransmonChain(1)
        target = unitary_group.rvs(2, random_state=4)
        result = grape_optimize(target, hardware, 12, config=config)
        # L-BFGS-B returns its best evaluated point, so the kept total
        # propagator is reused and no post-minimize propagation runs
        assert calls["n"] == 0
        assert result.converged


class TestFirstEig:
    def _first_eig_for(self, u0, hardware, dt):
        controls_h, _ = hardware.controls()
        stack = control_stack_for(controls_h)
        props, lams, qs = _slot_propagators_and_eig(
            hardware.drift(), controls_h, u0, dt, control_stack=stack
        )
        return (u0, props, lams, qs)

    def test_precomputed_first_eig_is_bitwise_neutral(self):
        config = QOCConfig(dt=1.0, fidelity_threshold=0.98, max_iterations=40)
        hardware = TransmonChain(2)
        target = unitary_group.rvs(4, random_state=8)
        num_controls = len(hardware.controls()[0])
        num_segments = 14
        u0 = np.random.default_rng(config.seed).uniform(
            -0.1, 0.1, size=(num_controls, num_segments)
        )
        cold = grape_optimize(target, hardware, num_segments, config=config)
        seeded = grape_optimize(
            target,
            hardware,
            num_segments,
            config=config,
            first_eig=self._first_eig_for(u0, hardware, config.dt),
        )
        assert np.array_equal(cold.controls, seeded.controls)
        assert cold.fidelity == seeded.fidelity
        assert np.array_equal(cold.final_unitary, seeded.final_unitary)

    def test_mismatched_first_eig_is_ignored(self):
        config = QOCConfig(dt=1.0, fidelity_threshold=0.98, max_iterations=40)
        hardware = TransmonChain(2)
        target = unitary_group.rvs(4, random_state=8)
        num_controls = len(hardware.controls()[0])
        num_segments = 14
        wrong_u0 = np.full((num_controls, num_segments), 0.05)
        cold = grape_optimize(target, hardware, num_segments, config=config)
        seeded = grape_optimize(
            target,
            hardware,
            num_segments,
            config=config,
            first_eig=self._first_eig_for(wrong_u0, hardware, config.dt),
        )
        # the guard must fall back to a local eigh, not use stale data
        assert np.array_equal(cold.controls, seeded.controls)


class TestResampleControls:
    def _legacy_resample(self, controls, num_segments):
        old = controls.shape[1]
        if old == num_segments:
            return controls.copy()
        old_axis = np.linspace(0.0, 1.0, old)
        new_axis = np.linspace(0.0, 1.0, num_segments)
        return np.vstack(
            [np.interp(new_axis, old_axis, line) for line in controls]
        )

    @pytest.mark.parametrize("old,new", [(5, 9), (9, 5), (2, 40), (40, 3)])
    def test_matches_legacy_interp(self, old, new):
        rng = np.random.default_rng(old * 100 + new)
        controls = rng.normal(size=(4, old))
        resampled = _resample_controls(controls, new)
        assert resampled.shape == (4, new)
        np.testing.assert_allclose(
            resampled, self._legacy_resample(controls, new), atol=1e-12
        )

    def test_endpoints_exact(self):
        controls = np.random.default_rng(0).normal(size=(3, 7))
        resampled = _resample_controls(controls, 23)
        np.testing.assert_array_equal(resampled[:, 0], controls[:, 0])
        np.testing.assert_array_equal(resampled[:, -1], controls[:, -1])

    def test_same_length_returns_copy(self):
        controls = np.ones((2, 6))
        out = _resample_controls(controls, 6)
        assert np.array_equal(out, controls)
        assert out is not controls

    def test_single_segment_repeats(self):
        controls = np.array([[2.0], [3.0]])
        out = _resample_controls(controls, 4)
        np.testing.assert_array_equal(
            out, [[2.0, 2.0, 2.0, 2.0], [3.0, 3.0, 3.0, 3.0]]
        )


class TestKernelConfig:
    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            QOCConfig(kernel="turbo")

    def test_negative_warm_distance_rejected(self):
        with pytest.raises(ValueError):
            QOCConfig(warm_start_max_distance=-0.1)

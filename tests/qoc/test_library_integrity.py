"""Artifact integrity: schema versions, checksums, quarantine on load."""

import json

import numpy as np
import pytest

from repro.circuits.gates import gate_matrix
from repro.exceptions import QOCError
from repro.qoc import PulseLibrary
from repro.verify.artifacts import (
    LIBRARY_SCHEMA_VERSION,
    pulse_checksum,
    validate_entry,
)


@pytest.fixture
def warm_library(fast_qoc):
    library = PulseLibrary(config=fast_qoc)
    library.get_pulse(gate_matrix("x"), (0,))
    library.get_pulse(gate_matrix("h"), (0,))
    return library


def _saved_payload(library, tmp_path):
    path = str(tmp_path / "lib.json")
    library.save(path)
    with open(path) as fh:
        return path, json.load(fh)


def _rewrite(path, payload):
    with open(path, "w") as fh:
        json.dump(payload, fh)


class TestSavedEnvelope:
    def test_payload_carries_schema_and_checksums(self, warm_library, tmp_path):
        _, payload = _saved_payload(warm_library, tmp_path)
        assert payload["schema"] == LIBRARY_SCHEMA_VERSION
        assert len(payload["entries"]) == 2
        for entry in payload["entries"]:
            assert entry["checksum"] == pulse_checksum(entry["pulse"])
            assert validate_entry(entry) == []

    def test_newer_schema_is_refused(self, warm_library, fast_qoc, tmp_path):
        path, payload = _saved_payload(warm_library, tmp_path)
        payload["schema"] = LIBRARY_SCHEMA_VERSION + 1
        _rewrite(path, payload)
        with pytest.raises(QOCError, match="schema"):
            PulseLibrary(config=fast_qoc).load(path)

    def test_non_object_payload_is_refused(self, fast_qoc, tmp_path):
        path = str(tmp_path / "lib.json")
        with open(path, "w") as fh:
            json.dump([1, 2, 3], fh)
        with pytest.raises(QOCError, match="not a library payload"):
            PulseLibrary(config=fast_qoc).load(path)

    def test_invalid_json_is_refused(self, fast_qoc, tmp_path):
        path = str(tmp_path / "lib.json")
        with open(path, "w") as fh:
            fh.write('{"schema": 2, "entries": [')  # truncated write
        with pytest.raises(QOCError, match="not valid JSON"):
            PulseLibrary(config=fast_qoc).load(path)


class TestQuarantine:
    """Acceptance: a hand-corrupted entry is quarantined on load while
    the rest of the library loads intact."""

    def _load_with_corruption(self, warm_library, fast_qoc, tmp_path, mutate):
        path, payload = _saved_payload(warm_library, tmp_path)
        mutate(payload["entries"][0])
        _rewrite(path, payload)
        fresh = PulseLibrary(config=fast_qoc)
        loaded = fresh.load(path)
        return fresh, loaded

    def test_checksum_mismatch_is_quarantined(
        self, warm_library, fast_qoc, tmp_path
    ):
        def flip_sample(entry):
            entry["pulse"]["controls_real"][0][0] += 0.25  # the "flipped bit"

        fresh, loaded = self._load_with_corruption(
            warm_library, fast_qoc, tmp_path, flip_sample
        )
        assert loaded == 1
        assert fresh.quarantined == 1
        assert len(fresh) == 1  # the healthy entry still serves lookups

    def test_odd_length_key_hex_is_quarantined(
        self, warm_library, fast_qoc, tmp_path
    ):
        fresh, loaded = self._load_with_corruption(
            warm_library,
            fast_qoc,
            tmp_path,
            lambda entry: entry.update(key=entry["key"][:-1]),
        )
        assert loaded == 1
        assert fresh.quarantined == 1

    def test_missing_key_is_quarantined(self, warm_library, fast_qoc, tmp_path):
        fresh, loaded = self._load_with_corruption(
            warm_library, fast_qoc, tmp_path, lambda entry: entry.pop("key")
        )
        assert loaded == 1
        assert fresh.quarantined == 1

    def test_non_finite_samples_are_quarantined(
        self, warm_library, fast_qoc, tmp_path
    ):
        def poison(entry):
            entry["pulse"]["controls_real"][0][0] = float("nan")
            entry["checksum"] = pulse_checksum(entry["pulse"])  # checksum "fixed"

        fresh, loaded = self._load_with_corruption(
            warm_library, fast_qoc, tmp_path, poison
        )
        assert loaded == 1
        assert fresh.quarantined == 1

    def test_strict_load_raises_naming_the_entry(
        self, warm_library, fast_qoc, tmp_path
    ):
        path, payload = _saved_payload(warm_library, tmp_path)
        payload["entries"][1]["pulse"]["dt"] = -1.0
        payload["entries"][1]["checksum"] = pulse_checksum(
            payload["entries"][1]["pulse"]
        )
        _rewrite(path, payload)
        fresh = PulseLibrary(config=fast_qoc)
        with pytest.raises(QOCError, match="entry 1"):
            fresh.load(path, strict=True)
        # strict refusal must not half-load: nothing was merged
        assert len(fresh) == 0

    def test_no_half_load_on_quarantine(self, warm_library, fast_qoc, tmp_path):
        """Entries are fully staged before any merge, so a corrupted
        entry *after* healthy ones never leaves partial state behind on
        the strict path, and hit/miss counters stay coherent."""
        path, payload = _saved_payload(warm_library, tmp_path)
        payload["entries"].append({"key": "zz", "pulse": {}})
        _rewrite(path, payload)
        fresh = PulseLibrary(config=fast_qoc)
        assert fresh.load(path) == 2
        assert fresh.quarantined == 1
        # both healthy pulses answer without recomputation
        fresh.get_pulse(gate_matrix("x"), (0,))
        fresh.get_pulse(gate_matrix("h"), (0,))
        assert fresh.misses == 0

    def test_legacy_schema_one_still_loads(self, warm_library, fast_qoc, tmp_path):
        """A pre-versioning payload (no schema, no checksums) must keep
        loading — old checkpoints stay resumable."""
        path, payload = _saved_payload(warm_library, tmp_path)
        payload.pop("schema")
        for entry in payload["entries"]:
            entry.pop("checksum")
        _rewrite(path, payload)
        fresh = PulseLibrary(config=fast_qoc)
        assert fresh.load(path) == 2
        assert fresh.quarantined == 0

"""Tests for the three-level (leakage-aware) transmon extension."""

import numpy as np
import pytest

from repro.config import QOCConfig
from repro.exceptions import QOCError
from repro.circuits.gates import gate_matrix
from repro.qoc.transmon3 import (
    ThreeLevelTransmon,
    _annihilation,
    grape_three_level,
)


@pytest.fixture
def qutrit_qoc():
    return QOCConfig(dt=1.0, fidelity_threshold=0.999, max_iterations=120)


class TestModel:
    def test_annihilation_operator(self):
        a = _annihilation()
        number = a.conj().T @ a
        assert np.allclose(np.diagonal(number), [0, 1, 2])

    def test_drift_hermitian(self):
        for n in (1, 2):
            h0 = ThreeLevelTransmon(n).drift()
            assert np.allclose(h0, h0.conj().T)

    def test_anharmonicity_on_level_two_only(self):
        hw = ThreeLevelTransmon(1)
        h0 = hw.drift()
        # n(n-1)/2 * alpha: 0 for levels 0,1; alpha for level 2
        assert h0[0, 0] == pytest.approx(0.0)
        assert h0[1, 1] == pytest.approx(0.0)
        assert h0[2, 2] == pytest.approx(hw.anharmonicity)

    def test_controls_couple_to_level_two(self):
        matrices, labels = ThreeLevelTransmon(1).controls()
        assert labels == ["X0", "Y0"]
        # the ladder drive has a 1<->2 matrix element of sqrt(2)/2
        assert abs(matrices[0][1, 2]) == pytest.approx(np.sqrt(2) / 2)

    def test_computational_indices(self):
        assert ThreeLevelTransmon(1).computational_indices() == [0, 1]
        assert ThreeLevelTransmon(2).computational_indices() == [0, 1, 3, 4]

    def test_invalid_size(self):
        with pytest.raises(QOCError):
            ThreeLevelTransmon(0)


class TestLeakageGrape:
    def test_slow_x_gate_converges_without_leakage(self, qutrit_qoc):
        result = grape_three_level(
            gate_matrix("x"), ThreeLevelTransmon(1), 10, qutrit_qoc
        )
        assert result.fidelity > 0.999
        assert result.leakage < 1e-4

    def test_fast_x_gate_leaks(self, qutrit_qoc):
        fast = grape_three_level(
            gate_matrix("x"), ThreeLevelTransmon(1), 3, qutrit_qoc
        )
        slow = grape_three_level(
            gate_matrix("x"), ThreeLevelTransmon(1), 12, qutrit_qoc
        )
        # the anharmonicity speed limit: faster pulse, more leakage
        assert fast.leakage > slow.leakage
        assert fast.fidelity < slow.fidelity

    def test_dimension_checked(self, qutrit_qoc):
        with pytest.raises(QOCError):
            grape_three_level(gate_matrix("cx"), ThreeLevelTransmon(1), 5, qutrit_qoc)

    def test_segments_checked(self, qutrit_qoc):
        with pytest.raises(QOCError):
            grape_three_level(gate_matrix("x"), ThreeLevelTransmon(1), 0, qutrit_qoc)

    def test_warm_start_shape_checked(self, qutrit_qoc):
        with pytest.raises(QOCError):
            grape_three_level(
                gate_matrix("x"),
                ThreeLevelTransmon(1),
                5,
                qutrit_qoc,
                initial_controls=np.zeros((2, 3)),
            )

    def test_duration(self, qutrit_qoc):
        result = grape_three_level(
            gate_matrix("x"), ThreeLevelTransmon(1), 7, qutrit_qoc
        )
        assert result.duration == pytest.approx(7.0)

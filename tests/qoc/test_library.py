"""Tests for the pulse library and its cache-key semantics."""

import numpy as np
import pytest

from repro.exceptions import QOCError
from repro.circuits.gates import gate_matrix
from repro.linalg import random_unitary
from repro.qoc import Pulse, PulseLibrary, unitary_cache_key


class TestCacheKey:
    def test_equal_matrices_same_key(self, rng):
        u = random_unitary(4, rng)
        assert unitary_cache_key(u) == unitary_cache_key(u.copy())

    def test_global_phase_folds_when_enabled(self, rng):
        u = random_unitary(4, rng)
        v = np.exp(1.3j) * u
        assert unitary_cache_key(u, global_phase=True) == unitary_cache_key(
            v, global_phase=True
        )

    def test_global_phase_distinguishes_when_disabled(self, rng):
        u = random_unitary(4, rng)
        v = np.exp(1.3j) * u
        assert unitary_cache_key(u, global_phase=False) != unitary_cache_key(
            v, global_phase=False
        )

    def test_different_unitaries_different_keys(self, rng):
        assert unitary_cache_key(random_unitary(4, rng)) != unitary_cache_key(
            random_unitary(4, rng)
        )

    def test_negative_zero_normalized(self):
        a = np.array([[1.0, 0.0], [0.0, 1.0]], dtype=complex)
        b = np.array([[1.0, -0.0], [-0.0, 1.0]], dtype=complex)
        assert unitary_cache_key(a) == unitary_cache_key(b)

    def test_tiny_noise_same_key(self, rng):
        u = random_unitary(4, rng)
        noisy = u + 1e-9
        assert unitary_cache_key(u) == unitary_cache_key(noisy)


class TestCacheKeyEdgeCases:
    def test_signed_zero_with_phase_folding_disabled(self):
        a = np.array([[1.0, 0.0], [0.0, 1.0]], dtype=complex)
        b = np.array([[1.0, -0.0], [-0.0, 1.0]], dtype=complex)
        assert unitary_cache_key(a, global_phase=False) == unitary_cache_key(
            b, global_phase=False
        )

    def test_signed_zero_after_phase_rotation(self, rng):
        # the phase rotation itself can mint -0.0 components; keys for a
        # matrix and its exact copy must still agree
        u = np.exp(0.75j) * random_unitary(4, rng)
        assert unitary_cache_key(u) == unitary_cache_key(u.copy())

    def test_near_zero_pivot_skips_rotation(self):
        # every entry below the 1e-12 pivot floor: the fold is skipped and
        # no divide-by-zero warning or NaN leaks into the key
        tiny = np.full((2, 2), 1e-13 + 1e-13j)
        with np.errstate(all="raise"):
            key = unitary_cache_key(tiny, global_phase=True)
        assert isinstance(key, bytes)
        assert key == unitary_cache_key(tiny.copy(), global_phase=True)

    def test_near_zero_pivot_phase_not_folded(self):
        # with the rotation skipped, a phase-rotated copy keys differently
        # even in global-phase mode (there is no pivot to align on);
        # decimals=15 keeps the 1e-13 entries from rounding away
        tiny = np.diag([1e-13, 1e-13]).astype(complex)
        rotated = np.exp(1.1j) * tiny
        assert unitary_cache_key(
            tiny, global_phase=True, decimals=15
        ) != unitary_cache_key(rotated, global_phase=True, decimals=15)

    def test_zero_matrix_keys_cleanly(self):
        zero = np.zeros((2, 2), dtype=complex)
        with np.errstate(all="raise"):
            assert unitary_cache_key(zero) == unitary_cache_key(zero.copy())

    def test_phase_collides_only_when_enabled(self, rng):
        u = random_unitary(2, rng)
        v = np.exp(0.4j) * u
        assert unitary_cache_key(u, global_phase=True) == unitary_cache_key(
            v, global_phase=True
        )
        assert unitary_cache_key(u, global_phase=False) != unitary_cache_key(
            v, global_phase=False
        )


class TestCacheKeyTieBreak:
    """Pivot selection must not depend on which near-tied magnitude wins.

    Phase rotation perturbs entry magnitudes at machine precision, so two
    phase-equivalent matrices with (near-)equal largest magnitudes could
    canonicalize through *different* pivots under a strict argmax — keyed
    differently, costing a spurious GRAPE search.  The key must pick the
    first index within tolerance of the maximum instead.
    """

    def test_exact_tie_keys_equal_under_phase(self):
        # both diagonal entries have magnitude exactly 0.8
        m1 = np.diag([0.8, 0.8 * np.exp(0.3j)]).astype(complex)
        m2 = np.exp(0.7j) * m1
        assert unitary_cache_key(m1) == unitary_cache_key(m2)

    def test_near_tie_flipped_argmax_keys_equal(self):
        # perturb below the tolerance so a strict argmax would flip
        # pivots between the two phase-equivalent matrices
        m1 = np.diag([0.8, 0.8 * np.exp(0.3j)]).astype(complex)
        m2 = np.exp(0.7j) * m1
        m2[0, 0] *= 1.0 - 5e-13
        assert unitary_cache_key(m1) == unitary_cache_key(m2)

    def test_near_tie_reversed_perturbation(self):
        m1 = np.diag([0.8, 0.8 * np.exp(0.3j)]).astype(complex)
        m1[0, 0] *= 1.0 - 5e-13  # now m1 carries the smaller first entry
        m2 = np.exp(1.1j) * np.diag([0.8, 0.8 * np.exp(0.3j)]).astype(complex)
        assert unitary_cache_key(m1) == unitary_cache_key(m2)

    def test_tie_break_does_not_merge_distinct_matrices(self):
        # equal-magnitude entries but genuinely different phases relative
        # to the pivot must still key apart
        m1 = np.diag([0.8, 0.8 * np.exp(0.3j)]).astype(complex)
        m2 = np.diag([0.8, 0.8 * np.exp(0.9j)]).astype(complex)
        assert unitary_cache_key(m1) != unitary_cache_key(m2)

    def test_hadamard_like_all_tied(self, rng):
        # every entry of H has magnitude 1/sqrt(2): the maximal tie
        h = gate_matrix("h")
        assert unitary_cache_key(h) == unitary_cache_key(np.exp(1.9j) * h)


class TestPulseObject:
    def test_duration(self):
        p = Pulse((0,), np.zeros((2, 7)), dt=0.5, fidelity=1.0, unitary_distance=0.0)
        assert p.duration == pytest.approx(3.5)
        assert p.num_segments == 7

    def test_retarget(self):
        p = Pulse((0, 1), np.zeros((4, 5)), dt=1.0, fidelity=1.0, unitary_distance=0.0)
        q = p.on_qubits((2, 3))
        assert q.qubits == (2, 3)
        assert q.duration == p.duration

    def test_retarget_arity_checked(self):
        p = Pulse((0,), np.zeros((2, 5)), dt=1.0, fidelity=1.0, unitary_distance=0.0)
        with pytest.raises(QOCError):
            p.on_qubits((0, 1))

    def test_invalid_shape_rejected(self):
        with pytest.raises(QOCError):
            Pulse((0,), np.zeros(5), dt=1.0, fidelity=1.0, unitary_distance=0.0)

    def test_invalid_dt_rejected(self):
        with pytest.raises(QOCError):
            Pulse((0,), np.zeros((2, 5)), dt=0.0, fidelity=1.0, unitary_distance=0.0)


class TestPulseLibrary:
    def test_miss_then_hit(self, fast_qoc):
        lib = PulseLibrary(config=fast_qoc)
        lib.get_pulse(gate_matrix("x"), (0,))
        lib.get_pulse(gate_matrix("x"), (0,))
        assert lib.misses == 1
        assert lib.hits == 1
        assert len(lib) == 1

    def test_global_phase_hit(self, fast_qoc):
        lib = PulseLibrary(config=fast_qoc, match_global_phase=True)
        lib.get_pulse(gate_matrix("x"), (0,))
        lib.get_pulse(np.exp(0.9j) * gate_matrix("x"), (0,))
        assert lib.hits == 1

    def test_exact_mode_misses_phase_variant(self, fast_qoc):
        lib = PulseLibrary(config=fast_qoc, match_global_phase=False)
        lib.get_pulse(gate_matrix("x"), (0,))
        lib.get_pulse(np.exp(0.9j) * gate_matrix("x"), (0,))
        assert lib.misses == 2

    def test_retargeting_counts_as_hit(self, fast_qoc):
        lib = PulseLibrary(config=fast_qoc)
        lib.get_pulse(gate_matrix("x"), (0,))
        pulse = lib.get_pulse(gate_matrix("x"), (3,))
        assert lib.hits == 1
        assert pulse.qubits == (3,)

    def test_hit_rate(self, fast_qoc):
        lib = PulseLibrary(config=fast_qoc)
        assert lib.hit_rate == 0.0
        lib.get_pulse(gate_matrix("x"), (0,))
        lib.get_pulse(gate_matrix("x"), (0,))
        assert lib.hit_rate == pytest.approx(0.5)
        lib.clear_statistics()
        assert lib.hit_rate == 0.0

    def test_hardware_models_cached(self, fast_qoc):
        lib = PulseLibrary(config=fast_qoc)
        assert lib.hardware_for(2) is lib.hardware_for(2)

    def test_load_replace_resets_statistics(self, fast_qoc, tmp_path):
        # hit_rate after load(replace=True) must describe the loaded
        # library, not the discarded one (regression test)
        source = PulseLibrary(config=fast_qoc)
        source.get_pulse(gate_matrix("x"), (0,))
        path = str(tmp_path / "lib.json")
        source.save(path)

        lib = PulseLibrary(config=fast_qoc)
        lib.get_pulse(gate_matrix("x"), (0,))
        lib.get_pulse(gate_matrix("x"), (0,))
        assert lib.hits == 1 and lib.misses == 1

        assert lib.load(path, replace=True) == 1
        assert lib.hits == 0
        assert lib.misses == 0
        assert lib.hit_rate == 0.0

    def test_load_merge_keeps_statistics(self, fast_qoc, tmp_path):
        source = PulseLibrary(config=fast_qoc)
        source.get_pulse(gate_matrix("x"), (0,))
        path = str(tmp_path / "lib.json")
        source.save(path)

        lib = PulseLibrary(config=fast_qoc)
        lib.get_pulse(gate_matrix("h"), (0,))
        lib.load(path, replace=False)
        assert lib.misses == 1

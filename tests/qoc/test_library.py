"""Tests for the pulse library and its cache-key semantics."""

import numpy as np
import pytest

from repro.exceptions import QOCError
from repro.circuits.gates import gate_matrix
from repro.linalg import random_unitary
from repro.qoc import Pulse, PulseLibrary, unitary_cache_key


class TestCacheKey:
    def test_equal_matrices_same_key(self, rng):
        u = random_unitary(4, rng)
        assert unitary_cache_key(u) == unitary_cache_key(u.copy())

    def test_global_phase_folds_when_enabled(self, rng):
        u = random_unitary(4, rng)
        v = np.exp(1.3j) * u
        assert unitary_cache_key(u, global_phase=True) == unitary_cache_key(
            v, global_phase=True
        )

    def test_global_phase_distinguishes_when_disabled(self, rng):
        u = random_unitary(4, rng)
        v = np.exp(1.3j) * u
        assert unitary_cache_key(u, global_phase=False) != unitary_cache_key(
            v, global_phase=False
        )

    def test_different_unitaries_different_keys(self, rng):
        assert unitary_cache_key(random_unitary(4, rng)) != unitary_cache_key(
            random_unitary(4, rng)
        )

    def test_negative_zero_normalized(self):
        a = np.array([[1.0, 0.0], [0.0, 1.0]], dtype=complex)
        b = np.array([[1.0, -0.0], [-0.0, 1.0]], dtype=complex)
        assert unitary_cache_key(a) == unitary_cache_key(b)

    def test_tiny_noise_same_key(self, rng):
        u = random_unitary(4, rng)
        noisy = u + 1e-9
        assert unitary_cache_key(u) == unitary_cache_key(noisy)


class TestPulseObject:
    def test_duration(self):
        p = Pulse((0,), np.zeros((2, 7)), dt=0.5, fidelity=1.0, unitary_distance=0.0)
        assert p.duration == pytest.approx(3.5)
        assert p.num_segments == 7

    def test_retarget(self):
        p = Pulse((0, 1), np.zeros((4, 5)), dt=1.0, fidelity=1.0, unitary_distance=0.0)
        q = p.on_qubits((2, 3))
        assert q.qubits == (2, 3)
        assert q.duration == p.duration

    def test_retarget_arity_checked(self):
        p = Pulse((0,), np.zeros((2, 5)), dt=1.0, fidelity=1.0, unitary_distance=0.0)
        with pytest.raises(QOCError):
            p.on_qubits((0, 1))

    def test_invalid_shape_rejected(self):
        with pytest.raises(QOCError):
            Pulse((0,), np.zeros(5), dt=1.0, fidelity=1.0, unitary_distance=0.0)

    def test_invalid_dt_rejected(self):
        with pytest.raises(QOCError):
            Pulse((0,), np.zeros((2, 5)), dt=0.0, fidelity=1.0, unitary_distance=0.0)


class TestPulseLibrary:
    def test_miss_then_hit(self, fast_qoc):
        lib = PulseLibrary(config=fast_qoc)
        lib.get_pulse(gate_matrix("x"), (0,))
        lib.get_pulse(gate_matrix("x"), (0,))
        assert lib.misses == 1
        assert lib.hits == 1
        assert len(lib) == 1

    def test_global_phase_hit(self, fast_qoc):
        lib = PulseLibrary(config=fast_qoc, match_global_phase=True)
        lib.get_pulse(gate_matrix("x"), (0,))
        lib.get_pulse(np.exp(0.9j) * gate_matrix("x"), (0,))
        assert lib.hits == 1

    def test_exact_mode_misses_phase_variant(self, fast_qoc):
        lib = PulseLibrary(config=fast_qoc, match_global_phase=False)
        lib.get_pulse(gate_matrix("x"), (0,))
        lib.get_pulse(np.exp(0.9j) * gate_matrix("x"), (0,))
        assert lib.misses == 2

    def test_retargeting_counts_as_hit(self, fast_qoc):
        lib = PulseLibrary(config=fast_qoc)
        lib.get_pulse(gate_matrix("x"), (0,))
        pulse = lib.get_pulse(gate_matrix("x"), (3,))
        assert lib.hits == 1
        assert pulse.qubits == (3,)

    def test_hit_rate(self, fast_qoc):
        lib = PulseLibrary(config=fast_qoc)
        assert lib.hit_rate == 0.0
        lib.get_pulse(gate_matrix("x"), (0,))
        lib.get_pulse(gate_matrix("x"), (0,))
        assert lib.hit_rate == pytest.approx(0.5)
        lib.clear_statistics()
        assert lib.hit_rate == 0.0

    def test_hardware_models_cached(self, fast_qoc):
        lib = PulseLibrary(config=fast_qoc)
        assert lib.hardware_for(2) is lib.hardware_for(2)

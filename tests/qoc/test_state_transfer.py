"""Tests for state-transfer GRAPE."""

import numpy as np
import pytest

from repro.exceptions import QOCError
from repro.qoc import TransmonChain
from repro.qoc.state_transfer import grape_state_transfer


def basis_state(dim, index):
    v = np.zeros(dim, dtype=complex)
    v[index] = 1.0
    return v


class TestStateTransfer:
    def test_bit_flip(self, fast_qoc):
        hw = TransmonChain(1)
        result = grape_state_transfer(
            basis_state(2, 0), basis_state(2, 1), hw, 10, fast_qoc
        )
        assert result.fidelity > 0.999
        assert np.abs(result.final_state[1]) ** 2 > 0.999

    def test_superposition_preparation(self, fast_qoc):
        hw = TransmonChain(1)
        plus = np.array([1.0, 1.0]) / np.sqrt(2.0)
        result = grape_state_transfer(basis_state(2, 0), plus, hw, 10, fast_qoc)
        assert result.fidelity > 0.999

    def test_entangling_transfer(self, fast_qoc):
        hw = TransmonChain(2)
        bell = np.zeros(4, dtype=complex)
        bell[0] = bell[3] = 1.0 / np.sqrt(2.0)
        result = grape_state_transfer(basis_state(4, 0), bell, hw, 45, fast_qoc)
        assert result.fidelity > 0.98

    def test_identity_transfer_trivial(self, fast_qoc):
        hw = TransmonChain(1)
        result = grape_state_transfer(
            basis_state(2, 0), basis_state(2, 0), hw, 4, fast_qoc
        )
        assert result.fidelity > 0.999

    def test_unnormalized_inputs_accepted(self, fast_qoc):
        hw = TransmonChain(1)
        result = grape_state_transfer(
            3.0 * basis_state(2, 0), -2.0 * basis_state(2, 1), hw, 10, fast_qoc
        )
        assert result.fidelity > 0.999

    def test_dimension_checked(self, fast_qoc):
        with pytest.raises(QOCError):
            grape_state_transfer(
                basis_state(4, 0), basis_state(4, 1), TransmonChain(1), 5, fast_qoc
            )

    def test_zero_state_rejected(self, fast_qoc):
        with pytest.raises(QOCError):
            grape_state_transfer(
                np.zeros(2), basis_state(2, 1), TransmonChain(1), 5, fast_qoc
            )

    def test_duration(self, fast_qoc):
        hw = TransmonChain(1)
        result = grape_state_transfer(
            basis_state(2, 0), basis_state(2, 1), hw, 8, fast_qoc
        )
        assert result.duration == pytest.approx(8 * fast_qoc.dt)

"""Tests for the QOC substrate: Hamiltonians, GRAPE, CRAB, latency search."""

import numpy as np
import pytest

from repro.config import HardwareConfig, QOCConfig
from repro.exceptions import QOCError
from repro.circuits.gates import gate_matrix
from repro.linalg import is_unitary, random_unitary
from repro.qoc import (
    TransmonChain,
    crab_optimize,
    estimate_initial_segments,
    grape_optimize,
    minimal_latency_pulse,
    propagate,
)
from repro.qoc.grape import _resample_controls


class TestTransmonChain:
    def test_drift_is_hermitian(self):
        for n in (1, 2, 3):
            h0 = TransmonChain(n).drift()
            assert np.allclose(h0, h0.conj().T)

    def test_single_qubit_drift_zero(self):
        assert np.allclose(TransmonChain(1).drift(), 0.0)

    def test_controls_count_and_hermiticity(self):
        hw = TransmonChain(2)
        mats, labels = hw.controls()
        assert len(mats) == 4
        assert labels == ["X0", "Y0", "X1", "Y1"]
        for m in mats:
            assert np.allclose(m, m.conj().T)

    def test_coupling_strength_appears(self):
        hw = TransmonChain(2, HardwareConfig(coupling=0.2))
        h0 = hw.drift()
        assert np.max(np.abs(h0)) == pytest.approx(0.2)

    def test_zz_crosstalk_term(self):
        hw = TransmonChain(2, HardwareConfig(zz_crosstalk=0.01))
        h0 = hw.drift()
        # ZZ contributes to the diagonal
        assert np.abs(h0[0, 0]) > 0

    def test_invalid_size(self):
        with pytest.raises(QOCError):
            TransmonChain(0)


class TestPropagate:
    def test_zero_controls_zero_drift_is_identity(self):
        hw = TransmonChain(1)
        u = propagate(hw.drift(), hw.controls()[0], np.zeros((2, 5)), dt=1.0)
        assert np.allclose(u, np.eye(2), atol=1e-12)

    def test_propagator_is_unitary(self, rng):
        hw = TransmonChain(2)
        u = propagate(
            hw.drift(), hw.controls()[0], rng.uniform(-1, 1, (4, 10)), dt=0.5
        )
        assert is_unitary(u)

    def test_constant_x_drive_rotates(self):
        # u * H_x with H_x = X/2: angle = u * dt * segments
        hw = TransmonChain(1)
        controls = np.zeros((2, 10))
        controls[0, :] = np.pi / 10.0  # total angle pi -> X gate
        u = propagate(hw.drift(), hw.controls()[0], controls, dt=1.0)
        from repro.linalg import equal_up_to_global_phase

        assert equal_up_to_global_phase(u, gate_matrix("x"), atol=1e-9)


class TestGrape:
    def test_x_gate_converges(self, fast_qoc):
        result = grape_optimize(gate_matrix("x"), TransmonChain(1), 10, fast_qoc)
        assert result.fidelity > 0.999

    def test_cx_converges_with_time(self, fast_qoc):
        result = grape_optimize(gate_matrix("cx"), TransmonChain(2), 45, fast_qoc)
        assert result.fidelity > 0.98

    def test_too_short_fails(self, fast_qoc):
        result = grape_optimize(gate_matrix("cx"), TransmonChain(2), 5, fast_qoc)
        assert result.fidelity < 0.99
        assert not result.converged

    def test_amplitude_bounds_respected(self, fast_qoc):
        result = grape_optimize(gate_matrix("x"), TransmonChain(1), 10, fast_qoc)
        assert np.all(np.abs(result.controls) <= fast_qoc.max_amplitude + 1e-12)

    def test_final_unitary_consistent(self, fast_qoc):
        hw = TransmonChain(1)
        result = grape_optimize(gate_matrix("h"), hw, 10, fast_qoc)
        rebuilt = propagate(hw.drift(), hw.controls()[0], result.controls, fast_qoc.dt)
        assert np.allclose(rebuilt, result.final_unitary, atol=1e-10)

    def test_dimension_mismatch_rejected(self, fast_qoc):
        with pytest.raises(QOCError):
            grape_optimize(gate_matrix("cx"), TransmonChain(1), 10, fast_qoc)

    def test_invalid_segments_rejected(self, fast_qoc):
        with pytest.raises(QOCError):
            grape_optimize(gate_matrix("x"), TransmonChain(1), 0, fast_qoc)

    def test_warm_start_resamples(self, fast_qoc):
        first = grape_optimize(gate_matrix("x"), TransmonChain(1), 10, fast_qoc)
        warm = grape_optimize(
            gate_matrix("x"),
            TransmonChain(1),
            14,
            fast_qoc,
            initial_controls=first.controls,
        )
        assert warm.fidelity > 0.999

    def test_duration_property(self, fast_qoc):
        result = grape_optimize(gate_matrix("x"), TransmonChain(1), 8, fast_qoc)
        assert result.duration == pytest.approx(8 * fast_qoc.dt)


class TestResample:
    def test_same_length_is_copy(self):
        c = np.random.default_rng(0).uniform(-1, 1, (2, 10))
        out = _resample_controls(c, 10)
        assert np.allclose(out, c)

    def test_stretch_preserves_endpoints(self):
        c = np.linspace(0, 1, 10).reshape(1, 10)
        out = _resample_controls(c, 20)
        assert out.shape == (1, 20)
        assert out[0, 0] == pytest.approx(0.0)
        assert out[0, -1] == pytest.approx(1.0)


class TestCrab:
    def test_x_gate(self, fast_qoc):
        result = crab_optimize(
            gate_matrix("x"), TransmonChain(1), 20, fast_qoc, num_harmonics=3
        )
        assert result.fidelity > 0.95

    def test_dimension_check(self, fast_qoc):
        with pytest.raises(QOCError):
            crab_optimize(gate_matrix("cx"), TransmonChain(1), 20, fast_qoc)

    def test_amplitude_clipped(self, fast_qoc):
        result = crab_optimize(gate_matrix("h"), TransmonChain(1), 20, fast_qoc)
        assert np.all(np.abs(result.controls) <= fast_qoc.max_amplitude + 1e-12)


class TestLatencySearch:
    def test_x_pulse_short(self, fast_qoc):
        pulse = minimal_latency_pulse(gate_matrix("x"), (0,), fast_qoc)
        assert pulse.duration <= 6.0
        assert pulse.fidelity >= fast_qoc.fidelity_threshold

    def test_cx_pulse_near_speed_limit(self, fast_qoc):
        pulse = minimal_latency_pulse(gate_matrix("cx"), (0, 1), fast_qoc)
        # pi/(2g) ~ 31 ns; binary search lands within ~30% above it
        assert 25.0 <= pulse.duration <= 60.0

    def test_qubit_mismatch_rejected(self, fast_qoc):
        with pytest.raises(QOCError):
            minimal_latency_pulse(gate_matrix("cx"), (0,), fast_qoc)

    def test_impossible_budget_raises(self):
        config = QOCConfig(dt=1.0, max_segments=4, fidelity_threshold=0.999)
        with pytest.raises(QOCError):
            minimal_latency_pulse(gate_matrix("cx"), (0, 1), config)

    def test_initial_estimate_scales_with_qubits(self, fast_qoc):
        hw1 = TransmonChain(1)
        hw3 = TransmonChain(3)
        e1 = estimate_initial_segments(gate_matrix("x"), hw1, fast_qoc)
        e3 = estimate_initial_segments(np.eye(8), hw3, fast_qoc)
        assert e3 > e1

"""Tests for randomized benchmarking of pulses."""

import numpy as np
import pytest

from repro.config import QOCConfig
from repro.linalg import is_unitary
from repro.qoc.benchmarking import (
    randomized_benchmarking,
    single_qubit_cliffords,
)


class TestCliffordGroup:
    def test_exactly_24_elements(self):
        assert len(single_qubit_cliffords()) == 24

    def test_all_unitary(self):
        for c in single_qubit_cliffords():
            assert is_unitary(c)

    def test_closed_under_multiplication(self):
        cliffords = single_qubit_cliffords()

        def canon(u):
            flat = u.ravel()
            pivot = flat[np.flatnonzero(np.abs(flat) > 1e-6)[0]]
            aligned = np.round(u * (abs(pivot) / pivot), 6)
            return ((aligned.real + 0.0) + 1j * (aligned.imag + 0.0)).tobytes()

        keys = {canon(c) for c in cliffords}
        product = cliffords[3] @ cliffords[17]
        assert canon(product) in keys

    def test_contains_identity_h_s(self):
        from repro.circuits.gates import gate_matrix

        def canon(u):
            flat = u.ravel()
            pivot = flat[np.flatnonzero(np.abs(flat) > 1e-6)[0]]
            aligned = np.round(u * (abs(pivot) / pivot), 6)
            return ((aligned.real + 0.0) + 1j * (aligned.imag + 0.0)).tobytes()

        keys = {canon(c) for c in single_qubit_cliffords()}
        for name in ("h", "s", "x", "z"):
            assert canon(gate_matrix(name)) in keys, name


class TestRB:
    def test_good_pulses_near_zero_error(self, fast_qoc):
        result = randomized_benchmarking(
            config=fast_qoc, sequence_lengths=(1, 2, 4), samples_per_length=4
        )
        assert result.error_per_clifford < 1e-3
        assert all(p > 0.97 for p in result.survival_probabilities)

    def test_sloppy_pulses_show_decay(self):
        config = QOCConfig(
            dt=1.0,
            fidelity_threshold=0.9,
            max_iterations=4,
            min_segments=2,
            max_segments=8,
            seed=3,
        )
        result = randomized_benchmarking(
            config=config,
            sequence_lengths=(1, 4, 16),
            samples_per_length=8,
        )
        assert result.error_per_clifford > 1e-4
        # survival at length 16 clearly below survival at length 1
        assert result.survival_probabilities[-1] < result.survival_probabilities[0]

    def test_result_fields(self, fast_qoc):
        result = randomized_benchmarking(
            config=fast_qoc, sequence_lengths=(1, 2), samples_per_length=2
        )
        assert result.sequence_lengths == (1, 2)
        assert len(result.survival_probabilities) == 2
        assert 0.0 <= result.decay_rate <= 1.0

"""Tests for pulse-library persistence and invalidation."""

import numpy as np
import pytest

from repro.exceptions import QOCError
from repro.circuits.gates import gate_matrix
from repro.qoc import PulseLibrary


@pytest.fixture
def warm_library(fast_qoc):
    library = PulseLibrary(config=fast_qoc)
    library.get_pulse(gate_matrix("x"), (0,))
    library.get_pulse(gate_matrix("h"), (0,))
    return library


class TestSaveLoad:
    def test_round_trip(self, warm_library, fast_qoc, tmp_path):
        path = str(tmp_path / "lib.json")
        warm_library.save(path)
        fresh = PulseLibrary(config=fast_qoc)
        assert fresh.load(path) == 2
        # loaded entries serve requests without recomputation
        fresh.get_pulse(gate_matrix("x"), (0,))
        assert fresh.misses == 0
        assert fresh.hits == 1

    def test_loaded_pulse_identical(self, warm_library, fast_qoc, tmp_path):
        path = str(tmp_path / "lib.json")
        original = warm_library.get_pulse(gate_matrix("x"), (0,))
        warm_library.save(path)
        fresh = PulseLibrary(config=fast_qoc)
        fresh.load(path)
        loaded = fresh.get_pulse(gate_matrix("x"), (0,))
        assert np.allclose(loaded.controls, original.controls)
        assert loaded.duration == pytest.approx(original.duration)

    def test_key_mode_mismatch_rejected(self, warm_library, fast_qoc, tmp_path):
        path = str(tmp_path / "lib.json")
        warm_library.save(path)
        exact = PulseLibrary(config=fast_qoc, match_global_phase=False)
        with pytest.raises(QOCError):
            exact.load(path)

    def test_replace_mode(self, warm_library, fast_qoc, tmp_path):
        path = str(tmp_path / "lib.json")
        warm_library.save(path)
        other = PulseLibrary(config=fast_qoc)
        other.get_pulse(gate_matrix("z"), (0,))
        other.load(path, replace=True)
        assert len(other) == 2  # the z entry was dropped


class TestInvalidate:
    def test_recalibration_clears_everything(self, warm_library):
        assert len(warm_library) == 2
        warm_library.invalidate()
        assert len(warm_library) == 0
        assert warm_library.hits == 0 and warm_library.misses == 0
        # next request regenerates
        warm_library.get_pulse(gate_matrix("x"), (0,))
        assert warm_library.misses == 1

"""Tests for pulse-library persistence and invalidation."""

import numpy as np
import pytest

from repro.exceptions import QOCError
from repro.circuits.gates import gate_matrix
from repro.qoc import PulseLibrary


@pytest.fixture
def warm_library(fast_qoc):
    library = PulseLibrary(config=fast_qoc)
    library.get_pulse(gate_matrix("x"), (0,))
    library.get_pulse(gate_matrix("h"), (0,))
    return library


class TestSaveLoad:
    def test_round_trip(self, warm_library, fast_qoc, tmp_path):
        path = str(tmp_path / "lib.json")
        warm_library.save(path)
        fresh = PulseLibrary(config=fast_qoc)
        assert fresh.load(path) == 2
        # loaded entries serve requests without recomputation
        fresh.get_pulse(gate_matrix("x"), (0,))
        assert fresh.misses == 0
        assert fresh.hits == 1

    def test_loaded_pulse_identical(self, warm_library, fast_qoc, tmp_path):
        path = str(tmp_path / "lib.json")
        original = warm_library.get_pulse(gate_matrix("x"), (0,))
        warm_library.save(path)
        fresh = PulseLibrary(config=fast_qoc)
        fresh.load(path)
        loaded = fresh.get_pulse(gate_matrix("x"), (0,))
        assert np.allclose(loaded.controls, original.controls)
        assert loaded.duration == pytest.approx(original.duration)

    def test_key_mode_mismatch_rejected(self, warm_library, fast_qoc, tmp_path):
        path = str(tmp_path / "lib.json")
        warm_library.save(path)
        exact = PulseLibrary(config=fast_qoc, match_global_phase=False)
        with pytest.raises(QOCError):
            exact.load(path)

    def test_replace_mode(self, warm_library, fast_qoc, tmp_path):
        path = str(tmp_path / "lib.json")
        warm_library.save(path)
        other = PulseLibrary(config=fast_qoc)
        other.get_pulse(gate_matrix("z"), (0,))
        other.load(path, replace=True)
        assert len(other) == 2  # the z entry was dropped


class TestAtomicSave:
    def test_crash_mid_dump_keeps_old_file(
        self, warm_library, fast_qoc, tmp_path, monkeypatch
    ):
        """A writer that dies mid-serialization must not corrupt the
        long-lived library file: save goes to a temp file and is renamed
        into place only on success."""
        import json

        path = str(tmp_path / "lib.json")
        warm_library.save(path)
        good_content = open(path).read()

        real_dump = json.dump

        def exploding_dump(payload, fh, **kwargs):
            # write some partial garbage before failing, like a crash
            # halfway through serialization would
            fh.write('{"entries": [{"key": "tru')
            raise RuntimeError("simulated crash mid-serialization")

        monkeypatch.setattr(json, "dump", exploding_dump)
        with pytest.raises(RuntimeError):
            warm_library.save(path)
        monkeypatch.setattr(json, "dump", real_dump)

        # the existing file is untouched and still loads
        assert open(path).read() == good_content
        fresh = PulseLibrary(config=fast_qoc)
        assert fresh.load(path) == 2
        # and the failed attempt left no temp litter behind
        assert [p.name for p in tmp_path.iterdir()] == ["lib.json"]

    def test_save_creates_no_temp_litter_on_success(
        self, warm_library, tmp_path
    ):
        path = str(tmp_path / "lib.json")
        warm_library.save(path)
        assert [p.name for p in tmp_path.iterdir()] == ["lib.json"]


class TestInvalidate:
    def test_recalibration_clears_everything(self, warm_library):
        assert len(warm_library) == 2
        warm_library.invalidate()
        assert len(warm_library) == 0
        assert warm_library.hits == 0 and warm_library.misses == 0
        # next request regenerates
        warm_library.get_pulse(gate_matrix("x"), (0,))
        assert warm_library.misses == 1

"""Tests for the library's memoized cache-key decoding.

The warm-start scan decodes every candidate key back into its canonical
unitary.  Keys are content-addressed — a key always decodes to the same
matrix — so repeated scans over the same entries must decode each key at
most once, not once per miss.
"""

import numpy as np
import pytest

from repro.qoc import Pulse, PulseLibrary
from repro.qoc import library as library_mod


def _install_entry(library: PulseLibrary, theta: float) -> bytes:
    matrix = np.diag([1.0, np.exp(1j * theta)]).astype(complex)
    key = library.key_for(matrix, 1)
    library._entries[key] = Pulse(
        (0,), np.full((2, 8), 0.25), 1.0, fidelity=1.0, unitary_distance=0.0
    )
    return key


@pytest.fixture
def counting_decode(monkeypatch):
    calls = {}
    real = library_mod.decode_library_key

    def counted(key):
        calls[key] = calls.get(key, 0) + 1
        return real(key)

    monkeypatch.setattr(library_mod, "decode_library_key", counted)
    return calls


class TestDecodeMemo:
    def test_repeated_scans_decode_each_key_once(self, counting_decode):
        library = PulseLibrary()
        keys = [_install_entry(library, theta) for theta in (0.3, 1.1, 2.4)]
        snapshot = library.warm_snapshot()
        probe = np.diag([1.0, np.exp(1j * 0.31)]).astype(complex)
        other = np.diag([1.0, np.exp(1j * 2.39)]).astype(complex)
        # two misses scanning the same snapshot
        assert library.nearest(probe, 1, entries=snapshot) is not None
        assert library.nearest(other, 1, entries=snapshot) is not None
        for key in keys:
            assert counting_decode.get(key, 0) == 1

    def test_memo_ignores_width_mismatches(self, counting_decode):
        library = PulseLibrary()
        _install_entry(library, 0.5)
        probe = np.eye(4, dtype=complex)
        # a 2-qubit probe never decodes the 1-qubit entry at all
        library.nearest(probe, 2)
        assert counting_decode == {}

    def test_invalidate_clears_memo(self, counting_decode):
        library = PulseLibrary()
        key = _install_entry(library, 0.7)
        probe = np.diag([1.0, np.exp(1j * 0.71)]).astype(complex)
        library.nearest(probe, 1)
        assert counting_decode[key] == 1
        library.invalidate()
        _install_entry(library, 0.7)
        library.nearest(probe, 1)
        # dropped cache means the key decodes again, exactly once more
        assert counting_decode[key] == 2

    def test_undecodable_key_memoized_as_none(self, counting_decode):
        library = PulseLibrary()
        bogus = bytes([1]) + b"\x00" * 7  # wrong payload size for 1 qubit
        library._entries[bogus] = Pulse(
            (0,), np.full((2, 8), 0.25), 1.0, fidelity=1.0, unitary_distance=0.0
        )
        probe = np.diag([1.0, np.exp(1j * 0.2)]).astype(complex)
        library.nearest(probe, 1)
        library.nearest(probe, 1)
        assert counting_decode[bogus] == 1

"""Nearest-neighbor warm starts: selection, determinism, and bracket bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.linalg import expm
from scipy.stats import unitary_group

from repro import telemetry
from repro.config import QOCConfig
from repro.linalg.unitary import hs_distance
from repro.parallel import ParallelExecutor
from repro.qoc.grape import GrapeResult
from repro.qoc.hamiltonian import TransmonChain
from repro.qoc.library import PulseLibrary, decode_library_key
from repro.qoc.pulse import Pulse

FAST = QOCConfig(
    dt=1.0,
    fidelity_threshold=0.98,
    max_iterations=60,
    min_segments=2,
    max_segments=120,
)
COLD = QOCConfig(
    dt=1.0,
    fidelity_threshold=0.98,
    max_iterations=60,
    min_segments=2,
    max_segments=120,
    warm_start=False,
)


def _nearby(matrix, scale=0.02, seed=0):
    """A unitary a small (but nonzero) distance from ``matrix``."""
    rng = np.random.default_rng(seed)
    h = rng.normal(size=matrix.shape) + 1j * rng.normal(size=matrix.shape)
    h = (h + h.conj().T) / 2
    return expm(1j * scale * h) @ matrix


def _preloaded(matrix, num_qubits, num_segments, config=FAST):
    """A library holding one synthetic entry for ``matrix``."""
    library = PulseLibrary(config=config)
    key = library.key_for(matrix, num_qubits)
    library._entries[key] = Pulse(
        qubits=tuple(range(num_qubits)),
        controls=np.zeros((2 * num_qubits, num_segments)),
        dt=config.dt,
        fidelity=0.999,
        unitary_distance=0.01,
    )
    return library


class TestNearest:
    def test_finds_close_neighbor(self):
        base = unitary_group.rvs(4, random_state=1)
        library = _preloaded(base, 2, 10)
        neighbor = library.nearest(_nearby(base), 2)
        assert neighbor is not None
        assert neighbor.distance <= FAST.warm_start_max_distance
        assert neighbor.pulse.num_segments == 10

    def test_rejects_cross_width_entries(self):
        base = unitary_group.rvs(2, random_state=2)
        library = _preloaded(base, 1, 8)
        # a 2-qubit request must never seed from a 1-qubit entry
        assert library.nearest(unitary_group.rvs(4, random_state=3), 2) is None

    def test_rejects_over_distance_entries(self):
        base = unitary_group.rvs(4, random_state=4)
        library = _preloaded(base, 2, 10)
        far = unitary_group.rvs(4, random_state=5)
        assert hs_distance(base, far) > FAST.warm_start_max_distance
        assert library.nearest(far, 2) is None

    def test_excludes_exact_request_key(self):
        base = unitary_group.rvs(4, random_state=6)
        library = _preloaded(base, 2, 10)
        # the only entry is the request itself: no *neighbor* exists
        assert library.nearest(base, 2) is None

    def test_picks_closest_of_several(self):
        base = unitary_group.rvs(4, random_state=7)
        library = _preloaded(base, 2, 10)
        closer = _nearby(base, scale=0.005, seed=1)
        key = library.key_for(closer, 2)
        library._entries[key] = Pulse(
            qubits=(0, 1),
            controls=np.zeros((4, 17)),
            dt=FAST.dt,
            fidelity=0.999,
            unitary_distance=0.01,
        )
        neighbor = library.nearest(_nearby(closer, scale=0.001, seed=2), 2)
        assert neighbor is not None
        assert neighbor.pulse.num_segments == 17

    def test_accounting(self):
        base = unitary_group.rvs(4, random_state=8)
        library = _preloaded(base, 2, 10)
        library.nearest(_nearby(base), 2)
        library.nearest(unitary_group.rvs(4, random_state=9), 2)
        assert library.near_hits == 1
        assert library.near_misses == 1
        library.clear_statistics()
        assert library.near_hits == 0
        assert library.near_misses == 0


class TestKeyDecode:
    def test_roundtrip(self):
        library = PulseLibrary(config=FAST)
        base = unitary_group.rvs(4, random_state=10)
        key = library.key_for(base, 2)
        decoded = decode_library_key(key)
        assert decoded is not None
        num_qubits, matrix = decoded
        assert num_qubits == 2
        # the decoded canonical form is phase/rounding-equivalent
        assert hs_distance(base, matrix) < 1e-5

    def test_rejects_malformed_keys(self):
        assert decode_library_key(b"") is None
        assert decode_library_key(b"\x02shortpayload") is None


class TestWarmStartDeterminism:
    def test_hit_miss_stream_unchanged_vs_cold(self):
        base = unitary_group.rvs(2, random_state=11)
        requests = [
            (base, (0,)),
            (_nearby(base, seed=3), (0,)),
            (base, (0,)),
            (_nearby(base, seed=4), (0,)),
        ]
        streams = {}
        for label, config in (("warm", FAST), ("cold", COLD)):
            with telemetry.telemetry_session():
                library = PulseLibrary(config=config)
                library.get_pulses(requests)
                streams[label] = (
                    library.hits,
                    library.misses,
                    sorted(library._entries),
                )
        # warm starts change the *seed* of each search, never which
        # searches run or which keys the cache ends up holding
        assert streams["warm"] == streams["cold"]

    def test_serial_matches_parallel_bitwise(self):
        base = unitary_group.rvs(2, random_state=12)
        mats = [_nearby(base, seed=5), _nearby(base, seed=6)]
        results = {}
        for mode in ("serial", "parallel"):
            with telemetry.telemetry_session():
                library = PulseLibrary(config=FAST)
                library.get_pulse(base, (0,))  # preload one real entry
                snapshot = library.warm_snapshot()
                if mode == "serial":
                    pulses = [
                        library.get_pulse(m, (0,), warm_entries=snapshot)
                        for m in mats
                    ]
                else:
                    with ParallelExecutor(workers=2) as executor:
                        pulses = library.get_pulses(
                            [(m, (0,)) for m in mats],
                            executor=executor,
                            warm_entries=snapshot,
                        )
                results[mode] = (pulses, library.near_hits)
        for serial_pulse, parallel_pulse in zip(
            results["serial"][0], results["parallel"][0]
        ):
            assert np.array_equal(
                serial_pulse.controls, parallel_pulse.controls
            )
        assert results["serial"][1] == results["parallel"][1]

    def test_warm_started_metric_fires(self):
        base = unitary_group.rvs(2, random_state=13)
        with telemetry.telemetry_session() as (_, registry):
            library = PulseLibrary(config=FAST)
            library.get_pulse(base, (0,))
            library.get_pulse(_nearby(base, seed=7), (0,))
            counters = registry.state()["counters"]
        assert counters.get("grape.warm_started") == 1.0
        assert counters.get("library.near_hits") == 1.0


class TestWarmBracket:
    @given(neighbor_segments=st.integers(min_value=2, max_value=120))
    @settings(max_examples=15, deadline=None)
    def test_never_longer_than_neighbor_bracket(self, neighbor_segments):
        """A warm-started search whose first probe converges ends at (or
        below) the neighbor's recorded duration — the bracket is seeded
        from the neighbor, and refinement only shrinks it."""

        def always_converges(
            target,
            hardware,
            num_segments,
            config=None,
            initial_controls=None,
            **kwargs,
        ):
            return GrapeResult(
                controls=np.zeros((2 * hardware.num_qubits, num_segments)),
                fidelity=0.9995,
                final_unitary=np.eye(target.shape[0], dtype=complex),
                iterations=1,
                converged=True,
                dt=config.dt,
            )

        base = unitary_group.rvs(4, random_state=14)
        with pytest.MonkeyPatch.context() as patcher:
            patcher.setattr(
                "repro.qoc.latency.grape_optimize", always_converges
            )
            library = _preloaded(base, 2, neighbor_segments)
            pulse = library.get_pulse(_nearby(base, seed=8), (0, 1))
        assert pulse.num_segments <= neighbor_segments

"""Tests for the metrics registry: counters, gauges, histograms, export."""

import json

import pytest

from repro.telemetry import Histogram, MetricsRegistry
from repro.telemetry.metrics import NULL_METRICS


class TestCounters:
    def test_inc_defaults_and_values(self):
        registry = MetricsRegistry()
        registry.inc("hits")
        registry.inc("hits", 4)
        assert registry.counter("hits") == 5.0

    def test_missing_counter_reads_zero(self):
        assert MetricsRegistry().counter("nope") == 0.0


class TestGauges:
    def test_gauge_keeps_latest(self):
        registry = MetricsRegistry()
        registry.gauge("size", 3)
        registry.gauge("size", 7)
        assert registry.gauge_value("size") == 7.0


class TestHistogram:
    def test_bucket_boundaries_inclusive(self):
        histogram = Histogram(buckets=(1, 10, 100))
        for value in (1, 10, 100, 101):
            histogram.observe(value)
        # upper bounds are inclusive; 101 overflows to +inf
        assert histogram.bucket_counts == [1, 1, 1, 1]

    def test_running_stats(self):
        histogram = Histogram(buckets=(10,))
        for value in (2, 4, 6):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(4.0)
        assert histogram.min == 2
        assert histogram.max == 6

    def test_to_dict_shape(self):
        histogram = Histogram(buckets=(1, 2))
        histogram.observe(1.5)
        data = histogram.to_dict()
        assert data["count"] == 1
        assert data["buckets"] == {"le_1": 0, "le_2": 1, "le_inf": 0}

    def test_registry_buckets_fixed_on_first_use(self):
        registry = MetricsRegistry()
        registry.observe("x", 5, buckets=(10, 20))
        registry.observe("x", 15, buckets=(1,))  # ignored
        assert registry.histogram("x").bounds == (10.0, 20.0)


class TestExportAndFlat:
    def test_flat_collapses_histograms(self):
        registry = MetricsRegistry()
        registry.inc("c", 2)
        registry.gauge("g", 9)
        registry.observe("h", 3)
        registry.observe("h", 5)
        flat = registry.flat()
        assert flat["c"] == 2.0
        assert flat["g"] == 9.0
        assert flat["h.count"] == 2.0
        assert flat["h.mean"] == pytest.approx(4.0)
        assert flat["h.max"] == 5.0

    def test_export_round_trips(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("hits")
        registry.observe("iters", 42)
        path = tmp_path / "metrics.json"
        registry.export(str(path))
        payload = json.loads(path.read_text())
        assert payload["counters"]["hits"] == 1.0
        assert payload["histograms"]["iters"]["count"] == 1

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.gauge("g", 1)
        registry.observe("h", 1)
        registry.reset()
        assert registry.to_dict() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestDisabledRegistry:
    def test_all_writes_are_noops(self):
        NULL_METRICS.inc("c")
        NULL_METRICS.gauge("g", 1)
        NULL_METRICS.observe("h", 1)
        assert NULL_METRICS.to_dict() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestEmptyHistogramExtrema:
    def test_empty_min_max_are_null(self):
        from repro.telemetry.metrics import Histogram

        rendered = Histogram().to_dict()
        assert rendered["min"] is None
        assert rendered["max"] is None
        assert rendered["count"] == 0

    def test_observed_zero_is_distinguishable(self):
        from repro.telemetry.metrics import Histogram

        histogram = Histogram()
        histogram.observe(0.0)
        rendered = histogram.to_dict()
        assert rendered["min"] == 0.0
        assert rendered["max"] == 0.0


class TestPrometheusExposition:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.inc("library.hits", 3)
        registry.gauge("library.size", 7)
        registry.observe("grape.iters", 3, buckets=(1, 5, 10))
        registry.observe("grape.iters", 7, buckets=(1, 5, 10))
        text = registry.to_prometheus()
        lines = text.splitlines()
        assert "# TYPE repro_library_hits_total counter" in lines
        assert "repro_library_hits_total 3" in lines
        assert "repro_library_size 7" in lines
        # buckets are cumulative and close with +Inf == count
        assert 'repro_grape_iters_bucket{le="1"} 0' in lines
        assert 'repro_grape_iters_bucket{le="5"} 1' in lines
        assert 'repro_grape_iters_bucket{le="10"} 2' in lines
        assert 'repro_grape_iters_bucket{le="+Inf"} 2' in lines
        assert "repro_grape_iters_sum 10" in lines
        assert "repro_grape_iters_count 2" in lines
        assert text.endswith("\n")

    def test_name_sanitization_and_prefix(self):
        registry = MetricsRegistry()
        registry.inc("zx.rewrites-applied", 1)
        assert "repro_zx_rewrites_applied_total 1" in registry.to_prometheus()
        assert "zx_rewrites_applied_total 1" in registry.to_prometheus(prefix="")

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().to_prometheus() == "\n"

"""End-to-end telemetry tests: CLI export, pipeline spans, no-op overhead.

These are the acceptance tests of the observability subsystem: a compile
with ``--trace``/``--metrics`` must produce a parseable Chrome
trace-event file with nested spans for every pipeline stage plus a
metrics JSON with cache, GRAPE-iteration and stage-duration entries, and
the disabled (default) recorders must cost a negligible fraction of even
a small compile.
"""

import json
import time

import pytest

from repro import telemetry
from repro.circuits import QuantumCircuit
from repro.cli import main
from repro.config import EPOCConfig
from repro.core import EPOCPipeline
from repro.workloads import ghz_state


@pytest.fixture
def fresh_globals():
    """Guarantee the default no-op recorders around a test."""
    previous_tracer = telemetry.set_tracer(None)
    previous_metrics = telemetry.set_metrics(None)
    yield
    telemetry.set_tracer(previous_tracer)
    telemetry.set_metrics(previous_metrics)


#: stages every EPOC compile trace must contain (the acceptance list)
EXPECTED_SPANS = {
    "compile",
    "zx",
    "partition",
    "synthesis",
    "synthesize_block",
    "regroup",
    "pulse_generation",
    "pulse",
    "qoc.pulse_search",
    "grape",
}


class TestCLIExport:
    def test_compile_writes_trace_and_metrics(self, tmp_path, fresh_globals, capsys):
        qasm = tmp_path / "ghz5.qasm"
        qasm.write_text(ghz_state(5).to_qasm())
        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.json"
        code = main(
            [
                "compile",
                str(qasm),
                "--qubit-limit",
                "2",
                "--fidelity",
                "0.98",
                "--trace",
                str(trace_path),
                "--metrics",
                str(metrics_path),
            ]
        )
        assert code == 0

        trace = json.loads(trace_path.read_text())
        events = trace["traceEvents"]
        names = {event["name"] for event in events}
        assert EXPECTED_SPANS <= names
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0.0

        metrics = json.loads(metrics_path.read_text())
        counters = metrics["counters"]
        histograms = metrics["histograms"]
        # cache entries
        assert counters["library.misses"] >= 1
        assert "library.hits" in counters or counters["library.misses"] > 0
        # GRAPE-iteration entries
        assert histograms["grape.iterations"]["count"] >= 1
        assert counters["grape.runs"] >= 1
        # stage-duration entries (fed by the tracer->metrics bridge)
        for stage in ("compile", "zx", "partition", "pulse_generation"):
            assert histograms[f"span.{stage}.seconds"]["count"] >= 1

        # the default recorders were restored after the session
        assert not telemetry.get_tracer().enabled
        assert not telemetry.get_metrics().enabled

    def test_compile_without_flags_writes_nothing(self, tmp_path, capsys):
        qasm = tmp_path / "bell.qasm"
        qasm.write_text(QuantumCircuit(2).h(0).cx(0, 1).to_qasm())
        code = main(
            ["compile", str(qasm), "--qubit-limit", "2", "--fidelity", "0.98"]
        )
        assert code == 0
        assert list(tmp_path.glob("*.json")) == []


class TestPipelineTelemetry:
    def test_stats_populated_from_registry(self, fast_epoc, fresh_globals):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        with telemetry.telemetry_session() as (tracer, registry):
            report = EPOCPipeline(fast_epoc).compile(circuit)
        assert report.stats["grape.runs"] >= 1.0
        assert report.stats["grape.iterations.count"] >= 1.0
        assert report.stats["library.misses"] == report.stats["cache_misses"]
        # span tree: compile is the root and owns every stage
        roots = [span.name for span in tracer.roots]
        assert roots == ["compile"]
        assert set(tracer.span_names()) >= {"partition", "pulse_generation"}
        assert registry.counter("pipeline.compiles") == 1.0

    def test_session_restores_previous_recorders(self, fresh_globals):
        with telemetry.telemetry_session() as (tracer, registry):
            assert telemetry.get_tracer() is tracer
            assert telemetry.get_metrics() is registry
        assert not telemetry.get_tracer().enabled
        assert not telemetry.get_metrics().enabled


class TestNoOpOverhead:
    def test_disabled_recorders_add_under_five_percent(self, fast_epoc):
        """A disabled span/metric call must be negligible next to a compile.

        A small compile performs on the order of a few hundred telemetry
        calls; we time 20x that and require it to stay under 5% of the
        compile itself.
        """
        tracer = telemetry.get_tracer()
        metrics = telemetry.get_metrics()
        assert not tracer.enabled and not metrics.enabled

        circuit = QuantumCircuit(2).h(0).cx(0, 1).t(1).cx(0, 1)
        start = time.perf_counter()
        EPOCPipeline(fast_epoc).compile(circuit)
        compile_seconds = time.perf_counter() - start

        operations = 5_000
        start = time.perf_counter()
        for index in range(operations):
            with tracer.span("stage", index=index):
                pass
            metrics.inc("counter")
            metrics.observe("histogram", index)
        noop_seconds = time.perf_counter() - start

        assert noop_seconds < 0.05 * compile_seconds, (
            f"{operations} disabled telemetry ops took {noop_seconds:.4f}s, "
            f">5% of a {compile_seconds:.3f}s compile"
        )


def test_save_results_attaches_metrics(tmp_path, monkeypatch, fresh_globals):
    import importlib.util
    import os

    spec = importlib.util.spec_from_file_location(
        "bench_common",
        os.path.join(os.path.dirname(__file__), "..", "..", "benchmarks",
                     "_bench_common.py"),
    )
    bench_common = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(bench_common)
    monkeypatch.setattr(bench_common, "RESULTS_DIR", str(tmp_path))

    with telemetry.telemetry_session():
        telemetry.get_metrics().inc("bench.counter", 3)
        bench_common.save_results("demo", {"series": [1, 2]})
    payload = json.loads((tmp_path / "demo.json").read_text())
    assert payload["series"] == [1, 2]
    assert payload["_metrics"]["counters"]["bench.counter"] == 3.0

    # without a session, no metrics key is attached
    bench_common.save_results("plain", {"series": []})
    assert "_metrics" not in json.loads((tmp_path / "plain.json").read_text())

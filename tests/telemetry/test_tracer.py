"""Tests for the span tracer and its Chrome trace-event export."""

import json

import pytest

from repro.telemetry import MetricsRegistry, Tracer
from repro.telemetry.tracer import NULL_TRACER, _NULL_SPAN


class TestSpanNesting:
    def test_root_and_children(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner_a"):
                pass
            with tracer.span("inner_b"):
                with tracer.span("leaf"):
                    pass
        assert len(tracer.roots) == 1
        outer = tracer.roots[0]
        assert [c.name for c in outer.children] == ["inner_a", "inner_b"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]

    def test_sequential_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [r.name for r in tracer.roots] == ["first", "second"]

    def test_duration_positive_and_ordered(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer, inner = tracer.roots[0], tracer.roots[0].children[0]
        assert inner.duration >= 0.0
        assert outer.duration >= inner.duration

    def test_attributes_at_open_and_set(self):
        tracer = Tracer()
        with tracer.span("s", block=3) as span:
            span.set(cnots=5)
        assert tracer.roots[0].attributes == {"block": 3, "cnots": 5}

    def test_walk_and_find(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("b"):
                pass
        assert tracer.span_names() == ["a", "b"]
        assert len(tracer.roots[0].find("b")) == 2

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        assert tracer.roots[0].end > 0.0
        # the stack unwound: the next span is a root, not a child of boom
        with tracer.span("after"):
            pass
        assert [r.name for r in tracer.roots] == ["boom", "after"]


class TestDisabledTracer:
    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("anything", attr=1) as span:
            span.set(more=2)
        assert NULL_TRACER.roots == []

    def test_null_span_is_shared(self):
        assert NULL_TRACER.span("a") is _NULL_SPAN
        assert NULL_TRACER.span("b") is _NULL_SPAN


class TestChromeExport:
    def test_event_shape(self, tmp_path):
        tracer = Tracer()
        with tracer.span("compile", circuit="demo", qubits=3):
            with tracer.span("zx"):
                pass
        path = tmp_path / "trace.json"
        tracer.export(str(path))
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert [e["name"] for e in events] == ["compile", "zx"]
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
        assert events[0]["args"] == {"circuit": "demo", "qubits": 3}
        # the child nests inside the parent's [ts, ts+dur) window
        parent, child = events
        assert parent["ts"] <= child["ts"]
        assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"] + 1.0

    def test_non_json_attributes_coerced(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s", qubits=(0, 1), obj=object()):
            pass
        trace = tracer.to_chrome_trace()
        args = trace["traceEvents"][0]["args"]
        assert args["qubits"] == [0, 1]
        assert isinstance(args["obj"], str)
        json.dumps(trace)  # must be serializable end to end


class TestMetricsBridge:
    def test_span_durations_feed_histograms(self):
        registry = MetricsRegistry()
        tracer = Tracer(metrics=registry)
        with tracer.span("stage"):
            pass
        histogram = registry.histogram("span.stage.seconds")
        assert histogram is not None
        assert histogram.count == 1

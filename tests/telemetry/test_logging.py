"""Tests for the repro.* logging hierarchy and JSON formatter."""

import io
import json
import logging

from repro.telemetry import configure_logging, get_logger
from repro.telemetry.logs import ENV_LOG_JSON, ENV_LOG_LEVEL, ROOT_LOGGER


def teardown_function(_function):
    # leave the global logging state clean for the rest of the suite
    root = logging.getLogger(ROOT_LOGGER)
    root.handlers = [h for h in root.handlers if h.get_name() != "repro-telemetry"]
    root.setLevel(logging.NOTSET)


class TestHierarchy:
    def test_suffix_is_parented_under_repro(self):
        assert get_logger("qoc.grape").name == "repro.qoc.grape"
        assert get_logger().name == "repro"

    def test_full_name_not_doubled(self):
        assert get_logger("repro.zx").name == "repro.zx"


class TestConfigureLogging:
    def test_level_and_text_output(self):
        stream = io.StringIO()
        configure_logging(level="INFO", json_output=False, stream=stream)
        get_logger("test").info("hello %s", "world")
        get_logger("test").debug("invisible")
        output = stream.getvalue()
        assert "hello world" in output
        assert "repro.test" in output
        assert "invisible" not in output

    def test_json_output_parses(self):
        stream = io.StringIO()
        configure_logging(level="DEBUG", json_output=True, stream=stream)
        get_logger("qoc").debug("grape done", extra={"iterations": 42})
        record = json.loads(stream.getvalue().strip())
        assert record["level"] == "DEBUG"
        assert record["logger"] == "repro.qoc"
        assert record["message"] == "grape done"
        assert record["iterations"] == 42
        assert isinstance(record["ts"], float)

    def test_reconfiguration_replaces_handler(self):
        stream = io.StringIO()
        configure_logging(level="INFO", stream=stream)
        configure_logging(level="INFO", stream=stream)
        get_logger("x").info("once")
        assert stream.getvalue().count("once") == 1

    def test_env_fallbacks(self, monkeypatch):
        monkeypatch.setenv(ENV_LOG_LEVEL, "DEBUG")
        monkeypatch.setenv(ENV_LOG_JSON, "1")
        stream = io.StringIO()
        configure_logging(stream=stream)
        get_logger("env").debug("from env")
        record = json.loads(stream.getvalue().strip())
        assert record["message"] == "from env"

    def test_explicit_args_beat_env(self, monkeypatch):
        monkeypatch.setenv(ENV_LOG_LEVEL, "DEBUG")
        stream = io.StringIO()
        configure_logging(level="ERROR", stream=stream)
        get_logger("env").warning("suppressed")
        assert stream.getvalue() == ""

"""Tests for equivalence-class pulse lookup.

Every transform in :data:`repro.db.equivalence.EQUIV_CLASSES` claims an
*exact* identity on the transmon chain: applying the control transform
to a pulse's waveform implements the transformed unitary with no new
error.  These tests check each identity numerically against the real
propagator, then pin the library-level behaviour: hit accounting,
snapshot-only sources, simulation gating of tensor candidates, source
eligibility, and the off-switch.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro import telemetry
from repro.telemetry.metrics import MetricsRegistry
from repro.circuits.gates import gate_matrix
from repro.config import HardwareConfig, QOCConfig
from repro.db import equivalence as equiv
from repro.qoc import Pulse, PulseLibrary
from repro.qoc.grape import pulse_propagator
from repro.qoc.hamiltonian import TransmonChain
from repro.linalg.unitary import process_fidelity

T_GATE = np.diag([1.0, np.exp(1j * np.pi / 4)]).astype(complex)


def _random_pulse(num_qubits: int, rng, segments: int = 6) -> Pulse:
    controls = rng.uniform(-0.4, 0.4, size=(2 * num_qubits, segments))
    return Pulse(
        tuple(range(num_qubits)),
        controls,
        1.0,
        fidelity=1.0,
        unitary_distance=0.0,
    )


#: the *forward* transform f_name of each class: if a pulse implements W,
#: derived_controls(name, ...) must implement f_name(W).  Base probes are
#: involutions, so each doubles as its own forward map; composites apply
#: base first, then reverse — the order matters on even widths, where the
#: reversal permutation R and the parity operator S do not commute.
_FORWARD = {
    "transpose": equiv._probe_transpose,
    "conjugate": equiv._probe_conjugate,
    "dagger": equiv._probe_dagger,
    "reverse": equiv._probe_reverse,
    "reverse-transpose": lambda m: equiv._probe_reverse(
        equiv._probe_transpose(m)
    ),
    "reverse-conjugate": lambda m: equiv._probe_reverse(
        equiv._probe_conjugate(m)
    ),
    "reverse-dagger": lambda m: equiv._probe_reverse(equiv._probe_dagger(m)),
}


class TestTransformIdentities:
    @pytest.mark.parametrize("num_qubits", [1, 2, 3])
    def test_every_class_is_exact(self, num_qubits, rng):
        """derived_controls(name, C) implements f_name(propagator(C))."""
        hardware = TransmonChain(num_qubits)
        pulse = _random_pulse(num_qubits, rng)
        w = pulse_propagator(pulse, hardware)
        names = []
        for name, _ in equiv.equivalence_probes(w, num_qubits, hardware):
            names.append(name)
            target = _FORWARD[name](w)
            derived = replace(
                pulse,
                controls=equiv.derived_controls(
                    name, pulse.controls, num_qubits
                ),
            )
            achieved = pulse_propagator(derived, hardware)
            fidelity = process_fidelity(target, achieved)
            assert fidelity > 1.0 - 1e-10, f"{name} not exact: {fidelity}"
        expected = set(equiv.EQUIV_CLASSES)
        if num_qubits < 2:
            expected -= {
                "reverse",
                "reverse-transpose",
                "reverse-conjugate",
                "reverse-dagger",
            }
        assert set(names) == expected

    @pytest.mark.parametrize("num_qubits", [1, 2, 3])
    def test_probe_of_target_recovers_source_key(self, num_qubits, rng):
        """Probing the target f_name(W) returns W's key bitwise.

        This is what makes the lookup work: the probe of the *target* must
        hash to exactly the key under which the *source* was cached.
        The composites are not involutions on even widths (R and S do not
        commute), so this checks probe = f^{-1}, not probe = f.
        """
        library = PulseLibrary()
        hardware = TransmonChain(num_qubits)
        w = pulse_propagator(_random_pulse(num_qubits, rng), hardware)
        w_key = library.key_for(w, num_qubits)
        for name, _ in equiv.equivalence_probes(w, num_qubits, hardware):
            target = _FORWARD[name](w)
            back = dict(
                equiv.equivalence_probes(target, num_qubits, hardware)
            )[name]
            assert library.key_for(back, num_qubits) == w_key, name

    def test_zz_crosstalk_gates_conjugation_classes(self, rng):
        """With ZZ != 0 the S-conjugation identity breaks; those classes
        must not be probed at all."""
        hardware = TransmonChain(2, HardwareConfig(zz_crosstalk=0.02))
        w = pulse_propagator(_random_pulse(2, rng), hardware)
        names = {name for name, _ in equiv.equivalence_probes(w, 2, hardware)}
        assert names == {"transpose", "reverse", "reverse-transpose"}

    def test_tensor_factorization_recovers_kron(self):
        x, h = gate_matrix("x"), gate_matrix("h")
        target = np.kron(x, h)
        factors = equiv.tensor_factorizations(target, 2)
        assert len(factors) == 1
        cut, top, bottom = factors[0]
        assert cut == 1
        # factors carry a phase ambiguity; compare as process channels
        assert process_fidelity(x, top) > 1.0 - 1e-10
        assert process_fidelity(h, bottom) > 1.0 - 1e-10

    def test_entangling_unitary_does_not_factor(self):
        assert equiv.tensor_factorizations(gate_matrix("cx"), 2) == []


class TestLibraryLookup:
    def test_dagger_family_hit_serial(self, fast_qoc):
        library = PulseLibrary(config=fast_qoc)
        library.get_pulse(T_GATE, (0,))
        assert library.misses == 1
        solved = library.get_pulse(T_GATE.conj().T, (0,))
        assert library.misses == 1  # no second GRAPE search
        assert library.hits == 1
        assert library.equiv_hits == 1
        assert solved.source.startswith("equiv-")
        assert solved.fidelity >= fast_qoc.fidelity_threshold
        assert len(library) == 2  # derived pulse cached under its own key
        # third request is a plain cache hit, not another derivation
        library.get_pulse(T_GATE.conj().T, (0,))
        assert library.equiv_hits == 1
        assert library.hits == 2

    def test_tensor_hit_serial(self, fast_qoc):
        library = PulseLibrary(config=fast_qoc)
        library.get_pulse(gate_matrix("x"), (0,))
        library.get_pulse(gate_matrix("h"), (0,))
        assert library.misses == 2
        pulse = library.get_pulse(np.kron(gate_matrix("x"), gate_matrix("h")), (0, 1))
        assert library.misses == 2
        assert library.equiv_hits == 1
        assert pulse.source == "equiv-tensor"
        # acceptance was simulation-verified at the configured threshold
        assert pulse.fidelity >= fast_qoc.fidelity_threshold

    def test_tensor_candidate_rejected_below_threshold(self, rng):
        """The coupled chain makes tensor composition inexact; a strict
        threshold must reject it (counted), not serve it."""
        strict = QOCConfig(fidelity_threshold=1.0 - 1e-12)
        library = PulseLibrary(config=strict)
        snapshot = {}
        propagators = []
        for _ in range(2):
            pulse = _random_pulse(1, rng)
            w = pulse_propagator(pulse, TransmonChain(1))
            snapshot[library.key_for(w, 1)] = pulse
            propagators.append(w)
        target = np.kron(propagators[0], propagators[1])
        registry = MetricsRegistry()
        previous = telemetry.set_metrics(registry)
        try:
            assert library._equivalent_pulse(target, 2, snapshot) is None
        finally:
            telemetry.set_metrics(previous)
        assert registry.counter("library.equiv_rejects") == 1
        assert library.equiv_hits == 0

    def test_source_eligibility(self, rng):
        """Derived-from and degraded pulses must not seed derivations."""
        library = PulseLibrary()
        hardware = TransmonChain(1)
        pulse = _random_pulse(1, rng)
        w = pulse_propagator(pulse, hardware)
        target = w.T.copy()
        key = library.key_for(w, 1)
        # healthy GRAPE source: derivation succeeds
        assert library._equivalent_pulse(target, 1, {key: pulse}) is not None
        # second-generation source: banned
        derived_src = replace(pulse, source="equiv-transpose")
        assert library._equivalent_pulse(target, 1, {key: derived_src}) is None
        # degraded source below threshold: banned
        degraded = replace(pulse, fidelity=0.5)
        assert library._equivalent_pulse(target, 1, {key: degraded}) is None

    def test_equivalence_lookup_off_switch(self, fast_qoc):
        config = replace(fast_qoc, equivalence_lookup=False)
        library = PulseLibrary(config=config)
        library.get_pulse(T_GATE, (0,))
        library.get_pulse(T_GATE.conj().T, (0,))
        assert library.misses == 2
        assert library.equiv_hits == 0


class TestBatchSemantics:
    def test_within_batch_misses_do_not_derive(self, fast_qoc):
        """Snapshot-only sources: a unitary solved earlier in the *same*
        batch is not a derivation source — that keeps serial, parallel,
        and resumed runs byte-identical."""
        library = PulseLibrary(config=fast_qoc)
        library.get_pulses([(T_GATE, (0,)), (T_GATE.conj().T, (0,))])
        assert library.equiv_hits == 0
        assert library.misses == 2

    def test_cross_batch_derivation_fires_checkpoint(self, fast_qoc):
        library = PulseLibrary(config=fast_qoc)
        library.get_pulses([(T_GATE, (0,))])
        flushed = []
        pulses = library.get_pulses(
            [(T_GATE.conj().T, (0,))],
            on_pulse=lambda key, pulse: flushed.append(key),
        )
        assert library.equiv_hits == 1
        assert pulses[0].source.startswith("equiv-")
        # the derived entry reached the checkpoint callback like any solve
        assert flushed == [library.key_for(T_GATE.conj().T, 1)]

    def test_serial_and_batch_paths_agree_bitwise(self, fast_qoc):
        serial = PulseLibrary(config=fast_qoc)
        serial.get_pulse(T_GATE, (0,))
        serial.get_pulse(T_GATE.conj().T, (0,))
        batch = PulseLibrary(config=fast_qoc)
        batch.get_pulses([(T_GATE, (0,))])
        batch.get_pulses([(T_GATE.conj().T, (0,))])
        assert set(serial.entries()) == set(batch.entries())
        for key, pulse in serial.entries().items():
            other = batch.entries()[key]
            np.testing.assert_array_equal(pulse.controls, other.controls)
            assert pulse.source == other.source
            assert pulse.fidelity == other.fidelity
        assert serial.equiv_hits == batch.equiv_hits == 1

"""Tests for the embedded SQLite pulse-library store.

The SQLite backend exists to fix a scaling bug: the JSON store rewrites
the entire library on every sync, so checkpointing N entries costs
O(N) per flush.  The transactional store publishes only new rows.
These tests pin the merge semantics, the integrity/quarantine path,
schema/mode guards, and survival under real concurrent processes.
"""

import json
import multiprocessing
import os
import sqlite3

import numpy as np
import pytest

from repro.circuits.gates import gate_matrix
from repro.db import (
    DB_SCHEMA_VERSION,
    SqliteLibraryStore,
    is_sqlite_path,
    open_store,
)
from repro.batch import SharedLibraryStore
from repro.exceptions import QOCError
from repro.qoc import Pulse, PulseLibrary
from repro.verify.artifacts import library_entry_keys


def _synthetic_entry(library: PulseLibrary, theta: float, qubits: int = 1) -> bytes:
    """Install a fake solved pulse for ``diag(1, e^{i theta}) ⊗ I``."""
    matrix = np.diag([1.0, np.exp(1j * theta)]).astype(complex)
    for _ in range(qubits - 1):
        matrix = np.kron(matrix, np.eye(2, dtype=complex))
    key = library.key_for(matrix, qubits)
    library._entries[key] = Pulse(
        tuple(range(qubits)),
        np.full((2 * qubits, 8), 0.25),
        1.0,
        fidelity=1.0,
        unitary_distance=0.0,
    )
    return key


def _hammer_worker(path: str, worker_id: int, entries_per_worker: int) -> None:
    library = PulseLibrary()
    store = SqliteLibraryStore(path, timeout_seconds=30.0)
    for j in range(entries_per_worker):
        _synthetic_entry(library, 0.3 + worker_id + 0.01 * j)
        store.sync(library)


class TestSyncSemantics:
    def test_first_sync_publishes(self, fast_qoc, tmp_path):
        path = str(tmp_path / "lib.db")
        library = PulseLibrary(config=fast_qoc)
        library.get_pulse(gate_matrix("x"), (0,))
        result = SqliteLibraryStore(path).sync(library)
        assert result.loaded_entries == 0
        assert result.new_entries == 0
        assert result.total_entries == 1
        assert os.path.exists(path)
        assert len(library_entry_keys(path)) == 1

    def test_sync_merges_disk_entries_back(self, fast_qoc, tmp_path):
        path = str(tmp_path / "lib.db")
        store = SqliteLibraryStore(path)
        lib_a = PulseLibrary(config=fast_qoc)
        lib_a.get_pulse(gate_matrix("x"), (0,))
        store.sync(lib_a)
        lib_b = PulseLibrary(config=fast_qoc)
        lib_b.get_pulse(gate_matrix("h"), (0,))
        result = store.sync(lib_b)
        assert result.loaded_entries == 1
        assert result.new_entries == 1
        assert result.total_entries == 2
        assert len(lib_b) == 2

    def test_sync_twice_equals_once(self, fast_qoc, tmp_path):
        """Idempotence: a second sync publishes nothing and changes nothing."""
        path = str(tmp_path / "lib.db")
        store = SqliteLibraryStore(path)
        library = PulseLibrary(config=fast_qoc)
        _synthetic_entry(library, 0.4)
        _synthetic_entry(library, 1.1)
        store.sync(library)
        keys_before = library_entry_keys(path)
        result = store.sync(library)
        assert result.new_entries == 0
        assert result.total_entries == 2
        assert library_entry_keys(path) == keys_before
        assert store.entry_count() == 2

    def test_pull_does_not_write(self, fast_qoc, tmp_path):
        path = str(tmp_path / "lib.db")
        store = SqliteLibraryStore(path)
        lib_a = PulseLibrary(config=fast_qoc)
        _synthetic_entry(lib_a, 0.7)
        store.sync(lib_a)
        lib_b = PulseLibrary(config=fast_qoc)
        _synthetic_entry(lib_b, 2.2)
        assert store.pull(lib_b) == 1
        assert len(lib_b) == 2
        # WAL sidecars make mtime comparisons meaningless; assert on the
        # row set instead: lib_b's local entry must not have been published
        assert store.entry_count() == 1
        assert len(library_entry_keys(path)) == 1

    def test_pull_missing_file_is_empty(self, fast_qoc, tmp_path):
        store = SqliteLibraryStore(str(tmp_path / "absent.db"))
        library = PulseLibrary(config=fast_qoc)
        assert store.pull(library) == 0
        assert len(library) == 0
        assert not os.path.exists(str(tmp_path / "absent.db"))

    def test_width_index(self, fast_qoc, tmp_path):
        path = str(tmp_path / "lib.db")
        store = SqliteLibraryStore(path)
        library = PulseLibrary(config=fast_qoc)
        one_q = _synthetic_entry(library, 0.5, qubits=1)
        two_q = _synthetic_entry(library, 1.5, qubits=2)
        store.sync(library)
        assert store.width_counts() == {1: 1, 2: 1}
        assert store.keys_for_width(1) == [one_q]
        assert store.keys_for_width(2) == [two_q]
        # pull restricted to one width only merges that width
        narrow = PulseLibrary(config=fast_qoc)
        assert store.pull(narrow, num_qubits=2) == 1
        assert set(narrow.entries()) == {two_q}


class TestIntegrity:
    def test_corrupted_payload_quarantined(self, fast_qoc, tmp_path):
        path = str(tmp_path / "lib.db")
        store = SqliteLibraryStore(path)
        library = PulseLibrary(config=fast_qoc)
        good = _synthetic_entry(library, 0.4)
        bad = _synthetic_entry(library, 1.9)
        store.sync(library)
        conn = sqlite3.connect(path)
        try:
            conn.execute(
                "UPDATE pulses SET payload = ? WHERE key = ?",
                (json.dumps({"mangled": True}), bad),
            )
            conn.commit()
        finally:
            conn.close()
        fresh = PulseLibrary(config=fast_qoc)
        merged = store.pull(fresh)
        assert merged == 1
        assert set(fresh.entries()) == {good}
        assert fresh.quarantined == 1
        # the audit helper agrees: the mangled row fails the envelope check
        assert library_entry_keys(path) == {good.hex()}

    def test_future_schema_refused(self, fast_qoc, tmp_path):
        path = str(tmp_path / "lib.db")
        store = SqliteLibraryStore(path)
        library = PulseLibrary(config=fast_qoc)
        _synthetic_entry(library, 0.4)
        store.sync(library)
        conn = sqlite3.connect(path)
        try:
            conn.execute(
                "UPDATE meta SET value = '99' WHERE key = 'schema_version'"
            )
            conn.commit()
        finally:
            conn.close()
        with pytest.raises(QOCError, match="schema"):
            SqliteLibraryStore(path).pull(PulseLibrary(config=fast_qoc))

    def test_phase_mode_mismatch_refused(self, tmp_path):
        path = str(tmp_path / "lib.db")
        strict = PulseLibrary(match_global_phase=False)
        _synthetic_entry(strict, 0.4)
        SqliteLibraryStore(path).sync(strict)
        relaxed = PulseLibrary(match_global_phase=True)
        with pytest.raises(QOCError, match="cache-key mode"):
            SqliteLibraryStore(path).sync(relaxed)

    def test_meta_records_versions(self, fast_qoc, tmp_path):
        path = str(tmp_path / "lib.db")
        store = SqliteLibraryStore(path)
        library = PulseLibrary(config=fast_qoc)
        _synthetic_entry(library, 0.4)
        store.sync(library)
        meta = store.meta()
        assert meta["schema_version"] == str(DB_SCHEMA_VERSION)
        assert meta["match_global_phase"] == "1"


class TestDispatch:
    def test_extension_dispatch(self, tmp_path):
        assert is_sqlite_path(str(tmp_path / "missing.db"))
        assert is_sqlite_path(str(tmp_path / "missing.sqlite3"))
        assert not is_sqlite_path(str(tmp_path / "missing.json"))
        assert isinstance(
            open_store(str(tmp_path / "a.db")), SqliteLibraryStore
        )
        assert isinstance(
            open_store(str(tmp_path / "a.json")), SharedLibraryStore
        )

    def test_header_beats_extension(self, fast_qoc, tmp_path):
        """An existing file is sniffed by content, whatever its name."""
        path = str(tmp_path / "lib.json")  # misleading extension
        library = PulseLibrary(config=fast_qoc)
        _synthetic_entry(library, 0.4)
        SqliteLibraryStore(path).sync(library)
        assert is_sqlite_path(path)
        assert isinstance(open_store(path), SqliteLibraryStore)
        assert len(library_entry_keys(path)) == 1


class TestConcurrentProcesses:
    def test_no_entry_loss_under_contention(self, tmp_path):
        """Real processes interleaving syncs must preserve the union."""
        path = str(tmp_path / "lib.db")
        workers, per_worker = 4, 3
        processes = [
            multiprocessing.Process(
                target=_hammer_worker, args=(path, wid, per_worker)
            )
            for wid in range(workers)
        ]
        for proc in processes:
            proc.start()
        for proc in processes:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        reference = PulseLibrary()
        expected = {
            reference.key_for(
                np.diag([1.0, np.exp(1j * (0.3 + wid + 0.01 * j))]), 1
            ).hex()
            for wid in range(workers)
            for j in range(per_worker)
        }
        on_disk = library_entry_keys(path)
        assert expected <= on_disk
        assert len(on_disk) == len(expected)

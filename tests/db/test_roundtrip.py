"""Round-trip and key-decoding robustness tests.

Canonical JSON is the interchange format for the pulse library; the
SQLite store must neither add nor lose a byte of it.  And
``decode_library_key`` sits on the merge path for *foreign* files, so it
must be total: any byte string returns a decoded matrix or ``None``,
never an exception.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.gates import gate_matrix
from repro.cli import main
from repro.qoc import PulseLibrary
from repro.qoc.library import decode_library_key


class TestDecodeLibraryKey:
    @given(st.binary(min_size=0, max_size=600))
    @settings(max_examples=300, deadline=None)
    def test_total_on_arbitrary_bytes(self, blob):
        decoded = decode_library_key(blob)
        if decoded is not None:
            num_qubits, matrix = decoded
            assert num_qubits == blob[0]
            assert matrix.shape == (2**num_qubits, 2**num_qubits)

    @given(st.integers(min_value=1, max_value=2), st.data())
    @settings(max_examples=50, deadline=None)
    def test_truncations_never_decode(self, num_qubits, data):
        library = PulseLibrary()
        dim = 2**num_qubits
        matrix = np.eye(dim, dtype=complex)
        key = library.key_for(matrix, num_qubits)
        cut = data.draw(st.integers(min_value=0, max_value=len(key) - 1))
        assert decode_library_key(key[:cut]) is None

    def test_valid_key_roundtrips(self):
        library = PulseLibrary()
        for name, width in (("x", 1), ("h", 1), ("cx", 2)):
            key = library.key_for(gate_matrix(name), width)
            num_qubits, matrix = decode_library_key(key)
            assert num_qubits == width
            # the decoded canonical matrix re-keys to the same key
            assert library.key_for(matrix, width) == key

    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_foreign_blobs_reject_cleanly(self, blob):
        # sizes that are not 1 + 16*4**n for n = blob[0] must return None
        expected_len = 1 + 16 * (4 ** blob[0]) if blob else 0
        if len(blob) != expected_len:
            assert decode_library_key(blob) is None


@pytest.fixture
def compiled_json_library(fast_qoc, tmp_path):
    library = PulseLibrary(config=fast_qoc)
    library.get_pulse(gate_matrix("x"), (0,))
    library.get_pulse(gate_matrix("h"), (0,))
    library.get_pulse(gate_matrix("t"), (0,))
    path = str(tmp_path / "lib.json")
    library.save(path)
    return path


class TestBitwiseRoundTrip:
    def test_json_sqlite_json_is_identity(self, compiled_json_library, tmp_path):
        db_path = str(tmp_path / "lib.db")
        back_path = str(tmp_path / "back.json")
        assert main(["library", "export", compiled_json_library, db_path]) == 0
        assert main(["library", "export", db_path, back_path]) == 0
        with open(compiled_json_library, "rb") as fh:
            original = fh.read()
        with open(back_path, "rb") as fh:
            returned = fh.read()
        assert original == returned

    def test_import_merges_into_existing_db(
        self, compiled_json_library, fast_qoc, tmp_path
    ):
        from repro.db import SqliteLibraryStore

        db_path = str(tmp_path / "lib.db")
        other = PulseLibrary(config=fast_qoc)
        other.get_pulse(gate_matrix("s"), (0,))
        SqliteLibraryStore(db_path).sync(other)
        assert main(["library", "import", compiled_json_library, db_path]) == 0
        assert SqliteLibraryStore(db_path).entry_count() == 4

    def test_info_reports_both_formats(
        self, compiled_json_library, tmp_path, capsys
    ):
        assert main(["library", "info", compiled_json_library]) == 0
        out = capsys.readouterr().out
        assert "format : json" in out
        assert "entries: 3" in out
        db_path = str(tmp_path / "lib.db")
        main(["library", "export", compiled_json_library, db_path])
        assert main(["library", "info", db_path]) == 0
        out = capsys.readouterr().out
        assert "format : sqlite" in out
        assert "1-qubit: 3" in out

"""SQLite store busy-timeout diagnostics (`StoreBusyError` + holder pid)."""

import os
import sqlite3

import pytest

from repro.db import SqliteLibraryStore, open_store
from repro.exceptions import StoreBusyError
from repro.qoc.library import PulseLibrary


@pytest.fixture
def store(tmp_path):
    path = str(tmp_path / "lib.db")
    store = SqliteLibraryStore(path, timeout_seconds=0.2)
    store.sync(PulseLibrary())  # create the schema
    return store


class TestBusyTranslation:
    def test_timeout_configuration(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_TIMEOUT", "4.5")
        assert SqliteLibraryStore(str(tmp_path / "a.db")).timeout_seconds == 4.5
        assert (
            SqliteLibraryStore(
                str(tmp_path / "b.db"), timeout_seconds=1.0
            ).timeout_seconds
            == 1.0
        )

    def test_open_store_forwards_timeout(self, tmp_path):
        opened = open_store(str(tmp_path / "lib.db"), timeout_seconds=2.5)
        assert isinstance(opened, SqliteLibraryStore)
        assert opened.timeout_seconds == 2.5

    def test_locked_database_raises_typed_error(self, store):
        blocker = sqlite3.connect(store.path)
        blocker.isolation_level = None
        blocker.execute("BEGIN IMMEDIATE")
        # the writer publishes its pid while holding the transaction
        with open(store.holder_path, "w") as fh:
            fh.write("31337")
        try:
            with pytest.raises(StoreBusyError) as err:
                store.sync(PulseLibrary())
        finally:
            blocker.execute("ROLLBACK")
            blocker.close()
        assert err.value.path == store.path
        assert err.value.holder_pid == 31337
        assert err.value.timeout_seconds == 0.2
        assert "pid 31337" in str(err.value)

    def test_holder_marker_lifecycle(self, store):
        """The pid sidecar exists only while a write transaction runs."""
        assert not os.path.exists(store.holder_path)
        store.sync(PulseLibrary())
        assert not os.path.exists(store.holder_path)

    def test_unrelated_operational_errors_pass_through(self, store):
        with store._busy_guard():
            pass  # no error: nothing raised, nothing translated
        with pytest.raises(sqlite3.OperationalError):
            with store._busy_guard():
                raise sqlite3.OperationalError("no such table: nope")

    def test_contention_resolves_after_release(self, store):
        blocker = sqlite3.connect(store.path)
        blocker.isolation_level = None
        blocker.execute("BEGIN IMMEDIATE")
        blocker.execute("ROLLBACK")
        blocker.close()
        result = store.sync(PulseLibrary())
        assert result.new_entries == 0

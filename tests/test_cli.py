"""Tests for the command-line interface and the ASCII renderers."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.cli import build_parser, main
from repro.pulse import PulseSchedule
from repro.pulse.render import render_circuit, render_schedule
from repro.qoc import Pulse
from repro.workloads import ghz_state


@pytest.fixture
def qasm_file(tmp_path):
    path = tmp_path / "ghz.qasm"
    path.write_text(ghz_state(3).to_qasm())
    return str(path)


class TestParser:
    def test_compile_defaults(self):
        args = build_parser().parse_args(["compile", "x.qasm"])
        assert args.flow == "epoc"
        assert args.qubit_limit == 3

    def test_unknown_flow_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compile", "x.qasm", "--flow", "magic"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_resilience_flags(self):
        args = build_parser().parse_args(
            [
                "compile",
                "x.qasm",
                "--checkpoint",
                "cp.json",
                "--resume",
                "--checkpoint-every",
                "3",
                "--stage-timeout",
                "12.5",
                "--max-retries",
                "2",
                "--strict-qoc",
            ]
        )
        from repro.cli import _config

        config = _config(args)
        resilience = config.resilience
        assert resilience.checkpoint_path == "cp.json"
        assert resilience.resume is True
        assert resilience.checkpoint_every == 3
        assert resilience.qoc_timeout_seconds == 12.5
        assert resilience.synthesis_timeout_seconds == 12.5
        assert resilience.max_retries == 2
        assert resilience.degrade_on_qoc_failure is False

    def test_resume_without_checkpoint_rejected(self):
        args = build_parser().parse_args(["compile", "x.qasm", "--resume"])
        from repro.cli import _config

        with pytest.raises(ValueError, match="checkpoint_path"):
            _config(args)


class TestCommands:
    def test_info(self, qasm_file, capsys):
        assert main(["info", qasm_file]) == 0
        out = capsys.readouterr().out
        assert "qubits : 3" in out
        assert "depth  : 3" in out

    def test_optimize(self, qasm_file, capsys):
        assert main(["optimize", qasm_file, "--emit"]) == 0
        out = capsys.readouterr().out
        assert "depth" in out
        assert "OPENQASM" in out

    def test_compile_gate_based(self, qasm_file, capsys):
        assert main(["compile", qasm_file, "--flow", "gate-based", "--render"]) == 0
        out = capsys.readouterr().out
        assert "gate-based" in out
        assert "ns" in out

    def test_compile_epoc(self, qasm_file, capsys):
        code = main(
            [
                "compile",
                qasm_file,
                "--qubit-limit",
                "2",
                "--dt",
                "1.0",
                "--fidelity",
                "0.98",
            ]
        )
        assert code == 0
        assert "epoc" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["info", "/nonexistent/file.qasm"]) == 2
        assert "error" in capsys.readouterr().err

    @pytest.mark.parametrize("flow", ["accqoc", "paqoc", "epoc-nogroup"])
    def test_compile_other_flows(self, flow, tmp_path, capsys):
        from repro.circuits import QuantumCircuit

        path = tmp_path / "bell.qasm"
        path.write_text(QuantumCircuit(2).h(0).cx(0, 1).to_qasm())
        code = main(
            [
                "compile",
                str(path),
                "--flow",
                flow,
                "--qubit-limit",
                "2",
                "--fidelity",
                "0.98",
            ]
        )
        assert code == 0
        assert flow.split("-")[0] in capsys.readouterr().out


class TestRenderers:
    def test_render_circuit(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1)
        text = render_circuit(qc)
        assert "q0" in text and "q1" in text
        assert "*" in text and "+" in text

    def test_render_empty_circuit(self):
        assert "(empty circuit)" in render_circuit(QuantumCircuit(2))

    def test_render_truncates_long_circuits(self):
        qc = QuantumCircuit(1)
        for _ in range(60):
            qc.h(0)
        assert "..." in render_circuit(qc, max_columns=10)

    def test_render_schedule(self):
        schedule = PulseSchedule(2)
        schedule.add_pulse(
            Pulse((0,), np.zeros((2, 10)), 1.0, fidelity=1.0, unitary_distance=0.0)
        )
        schedule.add_pulse(
            Pulse((0, 1), np.zeros((4, 5)), 1.0, fidelity=1.0, unitary_distance=0.0)
        )
        text = render_schedule(schedule, width=40)
        assert "q0" in text and "q1" in text
        assert "ns" in text

    def test_render_empty_schedule(self):
        assert "(empty schedule)" in render_schedule(PulseSchedule(1))

"""Miscellaneous edge-case coverage across modules."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.circuits.gates import Gate
from repro.pulse.schedule import ScheduledPulse
from repro.zx.optimize import ZXOptimizationResult


class TestGateEdges:
    def test_label_preserved_through_retarget(self):
        gate = Gate("unitary", (0,), matrix_override=np.eye(2), label="blk3")
        assert gate.with_qubits((4,)).label == "blk3"

    def test_params_coerced_to_float(self):
        gate = Gate("rx", (0,), (1,))
        assert isinstance(gate.params[0], float)

    def test_qubits_coerced_to_int(self):
        gate = Gate("h", (np.int64(1),))
        assert isinstance(gate.qubits[0], int)


class TestScheduledPulse:
    def test_end_property(self):
        item = ScheduledPulse(start=5.0, duration=3.0, qubits=(0,))
        assert item.end == pytest.approx(8.0)


class TestZXResult:
    def _result(self, before, after):
        return ZXOptimizationResult(
            circuit=QuantumCircuit(1),
            depth_before=before,
            depth_after=after,
            rewrites=0,
            used_zx_pipeline=False,
        )

    def test_reduction_ratio(self):
        assert self._result(10, 5).depth_reduction == pytest.approx(2.0)

    def test_zero_after_depth(self):
        assert self._result(7, 0).depth_reduction == pytest.approx(7.0)

    def test_empty_circuit(self):
        assert self._result(0, 0).depth_reduction == pytest.approx(1.0)


class TestCircuitEdges:
    def test_zero_qubit_circuit(self):
        qc = QuantumCircuit(0)
        assert qc.depth() == 0
        assert qc.unitary().shape == (1, 1)

    def test_repr_empty(self):
        assert "gates=0" in repr(QuantumCircuit(2))

    def test_layers_ignore_measures(self):
        qc = QuantumCircuit(1).h(0)
        qc.measure_all()
        # measure occupies a layer slot like a gate on its qubit
        assert qc.depth() >= 1

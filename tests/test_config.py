"""Tests for configuration objects and the exception hierarchy."""

import dataclasses

import pytest

from repro import EPOCConfig, __version__
from repro.config import (
    FAST_TEST_CONFIG,
    HardwareConfig,
    QOCConfig,
    ResilienceConfig,
    TelemetryConfig,
)
from repro.exceptions import (
    CircuitError,
    PartitionError,
    QasmError,
    QOCError,
    ReproError,
    ResilienceError,
    ScheduleError,
    SynthesisError,
    ZXError,
)


class TestConfigs:
    def test_defaults_are_consistent(self):
        config = EPOCConfig()
        assert config.partition_qubit_limit >= config.regroup_qubit_limit - 1
        assert config.qoc.min_segments <= config.qoc.max_segments
        assert config.hardware.one_qubit_gate_ns < config.hardware.two_qubit_gate_ns

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            EPOCConfig().use_zx = False

    def test_with_updates(self):
        base = EPOCConfig()
        updated = base.with_updates(use_zx=False, partition_qubit_limit=5)
        assert updated.use_zx is False
        assert updated.partition_qubit_limit == 5
        assert base.use_zx is True  # original untouched

    def test_telemetry_defaults_leave_logging_alone(self):
        config = EPOCConfig()
        assert config.telemetry.log_level is None
        assert config.telemetry.log_json is False
        updated = config.with_updates(
            telemetry=TelemetryConfig(log_level="INFO", log_json=True)
        )
        assert updated.telemetry.log_level == "INFO"

    def test_nested_config_replacement(self):
        config = EPOCConfig().with_updates(qoc=QOCConfig(dt=2.0))
        assert config.qoc.dt == 2.0

    def test_fast_test_config_is_loose(self):
        assert FAST_TEST_CONFIG.qoc.fidelity_threshold < 0.999
        assert FAST_TEST_CONFIG.qoc.max_iterations <= 100

    def test_hardware_error_rates_ordered(self):
        hw = HardwareConfig()
        assert (
            hw.one_qubit_gate_error
            < hw.two_qubit_gate_error
            < hw.three_qubit_gate_error
        )

    def test_version_string(self):
        assert __version__.count(".") == 2


class TestQOCConfigValidation:
    def test_inverted_segment_bracket_rejected(self):
        """Regression: min > max used to be clamped silently, which made
        the duration search start at the cap and skip doubling."""
        with pytest.raises(ValueError, match="non-empty segment bracket"):
            QOCConfig(min_segments=50, max_segments=10)

    def test_zero_min_segments_rejected(self):
        with pytest.raises(ValueError, match="min_segments"):
            QOCConfig(min_segments=0)

    def test_nonpositive_dt_rejected(self):
        with pytest.raises(ValueError, match="dt"):
            QOCConfig(dt=0.0)

    def test_valid_bracket_accepted(self):
        config = QOCConfig(min_segments=2, max_segments=2)
        assert config.min_segments == config.max_segments == 2


class TestResilienceConfig:
    def test_defaults(self):
        resilience = ResilienceConfig()
        assert resilience.max_retries == 1
        assert resilience.degrade_on_qoc_failure is True
        assert resilience.checkpoint_path is None
        assert resilience.resume is False

    def test_resume_requires_checkpoint(self):
        with pytest.raises(ValueError, match="checkpoint_path"):
            ResilienceConfig(resume=True)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            ResilienceConfig(max_retries=-1)

    def test_epoc_config_carries_resilience(self):
        config = EPOCConfig()
        assert isinstance(config.resilience, ResilienceConfig)
        updated = config.with_updates(
            resilience=ResilienceConfig(max_retries=3)
        )
        assert updated.resilience.max_retries == 3


class TestExceptions:
    @pytest.mark.parametrize(
        "exc",
        [
            CircuitError,
            QasmError,
            ZXError,
            PartitionError,
            SynthesisError,
            QOCError,
            ResilienceError,
            ScheduleError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_repro_error_not_caught_by_sibling(self):
        with pytest.raises(ZXError):
            try:
                raise ZXError("zx")
            except QasmError:  # pragma: no cover - must not trigger
                pytest.fail("wrong handler caught the error")


class TestRacingConfig:
    def test_defaults(self):
        from repro.config import RacingConfig

        racing = RacingConfig()
        assert racing.enabled is None
        assert racing.mode == "deterministic"
        assert racing.hedge_delay_seconds == 0.25
        assert racing.qoc_restarts == 2

    def test_validation(self):
        from repro.config import RacingConfig

        with pytest.raises(ValueError):
            RacingConfig(mode="fastest")
        with pytest.raises(ValueError):
            RacingConfig(hedge_delay_seconds=-1.0)
        with pytest.raises(ValueError):
            RacingConfig(strategy_timeout_seconds=0.0)
        with pytest.raises(ValueError):
            RacingConfig(qoc_restarts=-1)
        with pytest.raises(ValueError):
            RacingConfig(breaker_failures=-1)

    def test_env_resolution(self, monkeypatch):
        from repro.config import ENV_RACE, RacingConfig

        monkeypatch.delenv(ENV_RACE, raising=False)
        assert not RacingConfig().active
        monkeypatch.setenv(ENV_RACE, "1")
        assert RacingConfig().active
        for falsy in ("0", "false", "no", "off", ""):
            monkeypatch.setenv(ENV_RACE, falsy)
            assert not RacingConfig().active
        # explicit beats the environment in both directions
        monkeypatch.setenv(ENV_RACE, "1")
        assert not RacingConfig(enabled=False).active
        monkeypatch.setenv(ENV_RACE, "0")
        assert RacingConfig(enabled=True).active

    def test_epoc_config_carries_racing(self):
        from repro.config import EPOCConfig, RacingConfig

        config = EPOCConfig(racing=RacingConfig(enabled=True, mode="latency"))
        assert config.racing.active
        assert config.racing.mode == "latency"

"""Tests for configuration objects and the exception hierarchy."""

import dataclasses

import pytest

from repro import EPOCConfig, __version__
from repro.config import FAST_TEST_CONFIG, HardwareConfig, QOCConfig, TelemetryConfig
from repro.exceptions import (
    CircuitError,
    PartitionError,
    QasmError,
    QOCError,
    ReproError,
    ScheduleError,
    SynthesisError,
    ZXError,
)


class TestConfigs:
    def test_defaults_are_consistent(self):
        config = EPOCConfig()
        assert config.partition_qubit_limit >= config.regroup_qubit_limit - 1
        assert config.qoc.min_segments <= config.qoc.max_segments
        assert config.hardware.one_qubit_gate_ns < config.hardware.two_qubit_gate_ns

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            EPOCConfig().use_zx = False

    def test_with_updates(self):
        base = EPOCConfig()
        updated = base.with_updates(use_zx=False, partition_qubit_limit=5)
        assert updated.use_zx is False
        assert updated.partition_qubit_limit == 5
        assert base.use_zx is True  # original untouched

    def test_telemetry_defaults_leave_logging_alone(self):
        config = EPOCConfig()
        assert config.telemetry.log_level is None
        assert config.telemetry.log_json is False
        updated = config.with_updates(
            telemetry=TelemetryConfig(log_level="INFO", log_json=True)
        )
        assert updated.telemetry.log_level == "INFO"

    def test_nested_config_replacement(self):
        config = EPOCConfig().with_updates(qoc=QOCConfig(dt=2.0))
        assert config.qoc.dt == 2.0

    def test_fast_test_config_is_loose(self):
        assert FAST_TEST_CONFIG.qoc.fidelity_threshold < 0.999
        assert FAST_TEST_CONFIG.qoc.max_iterations <= 100

    def test_hardware_error_rates_ordered(self):
        hw = HardwareConfig()
        assert (
            hw.one_qubit_gate_error
            < hw.two_qubit_gate_error
            < hw.three_qubit_gate_error
        )

    def test_version_string(self):
        assert __version__.count(".") == 2


class TestExceptions:
    @pytest.mark.parametrize(
        "exc",
        [
            CircuitError,
            QasmError,
            ZXError,
            PartitionError,
            SynthesisError,
            QOCError,
            ScheduleError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_repro_error_not_caught_by_sibling(self):
        with pytest.raises(ZXError):
            try:
                raise ZXError("zx")
            except QasmError:  # pragma: no cover - must not trigger
                pytest.fail("wrong handler caught the error")

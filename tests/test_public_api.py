"""Public-API surface tests: imports resolve and __all__ is honest."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.linalg",
    "repro.circuits",
    "repro.zx",
    "repro.partition",
    "repro.synthesis",
    "repro.qoc",
    "repro.pulse",
    "repro.baselines",
    "repro.core",
    "repro.workloads",
    "repro.resilience",
    "repro.racing",
    "repro.cli",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", PACKAGES)
def test_all_entries_exist(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


def test_headline_api():
    """The README quickstart's imports must keep working."""
    from repro.circuits import QuantumCircuit  # noqa: F401
    from repro.config import EPOCConfig, QOCConfig  # noqa: F401
    from repro.core import EPOCPipeline  # noqa: F401
    from repro.baselines import AccQOCFlow, GateBasedFlow, PAQOCFlow  # noqa: F401
    from repro.zx import optimize_circuit  # noqa: F401
    from repro.synthesis import synthesize_unitary  # noqa: F401
    from repro.qoc import PulseLibrary, minimal_latency_pulse  # noqa: F401
    from repro.workloads import benchmark_suite, table1_suite  # noqa: F401
    from repro.config import ResilienceConfig  # noqa: F401
    from repro.resilience import (  # noqa: F401
        CompilationJournal,
        FaultPlan,
        FidelityLedger,
        RetryPolicy,
    )


def test_every_public_module_has_docstring():
    import pathlib

    root = pathlib.Path(importlib.import_module("repro").__file__).parent
    for path in root.rglob("*.py"):
        text = path.read_text()
        stripped = text.lstrip()
        assert stripped.startswith('"""') or stripped.startswith("'''"), (
            f"{path} lacks a module docstring"
        )

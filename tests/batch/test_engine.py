"""Tests for the batch compilation engine."""

import pytest

from repro.batch import (
    BATCH_FLOWS,
    BatchCompiler,
    CircuitOutcome,
    SharedLibraryStore,
)
from repro.exceptions import ReproError
from repro.resilience.journal import JournalError
from repro.workloads import benchmark_suite


@pytest.fixture
def small_suite():
    return benchmark_suite(["bell", "ghz", "cat"])


class TestBatchCompiler:
    def test_shared_library_dedups_across_circuits(
        self, fast_epoc, small_suite
    ):
        report = BatchCompiler(config=fast_epoc).compile_suite(small_suite)
        assert report.circuits == 3
        assert report.resumed_circuits == 0
        # the suite shares unitaries across circuits, so the batch must do
        # strictly fewer GRAPE searches than per-circuit compiles would
        solo = sum(o.unique_qoc_items for o in report.outcomes)
        assert report.grape_searches < solo
        assert report.dedup_savings == solo - report.grape_searches
        assert report.dedup_savings > 0
        # the library holds exactly the searches we paid for
        assert report.library_entries == report.grape_searches
        for outcome in report.outcomes:
            # schedule fidelity is a product over pulses; with the fast
            # test QOC settings it lands well below 1 but must be sane
            assert 0.0 < outcome.fidelity <= 1.0
            assert outcome.pulse_count > 0

    def test_per_circuit_cache_counts_are_deltas(self, fast_epoc, small_suite):
        compiler = BatchCompiler(config=fast_epoc)
        report = compiler.compile_suite(small_suite)
        # deltas must sum to the shared library's cumulative counters
        assert sum(o.cache_hits for o in report.outcomes) == compiler.library.hits
        assert (
            sum(o.cache_misses for o in report.outcomes)
            == compiler.library.misses
        )

    def test_warm_store_makes_second_batch_free(
        self, fast_epoc, small_suite, tmp_path
    ):
        path = str(tmp_path / "lib.json")
        first = BatchCompiler(
            config=fast_epoc, store=SharedLibraryStore(path)
        ).compile_suite(small_suite)
        assert first.store_loaded == 0
        assert first.grape_searches > 0
        second = BatchCompiler(
            config=fast_epoc, store=SharedLibraryStore(path)
        ).compile_suite(small_suite)
        assert second.store_loaded == first.library_entries
        assert second.grape_searches == 0
        assert second.aggregate_hit_rate == 1.0

    def test_journal_resume_skips_completed(
        self, fast_epoc, small_suite, tmp_path
    ):
        journal = str(tmp_path / "suite.journal")
        first = BatchCompiler(
            config=fast_epoc, journal_path=journal
        ).compile_suite(small_suite)
        assert first.resumed_circuits == 0
        resumed = BatchCompiler(
            config=fast_epoc, journal_path=journal, resume=True
        ).compile_suite(small_suite)
        assert resumed.resumed_circuits == 3
        assert resumed.grape_searches == 0
        assert resumed.dedup_savings == 0  # nothing was recompiled
        rows = {o.name: o for o in resumed.outcomes}
        for name, outcome in rows.items():
            assert outcome.resumed
            # journaled stats survive the round trip
            assert outcome.fidelity == pytest.approx(
                {o.name: o.fidelity for o in first.outcomes}[name]
            )
        assert "resumed" in resumed.summary_table()

    def test_resume_refuses_changed_configuration(
        self, fast_epoc, small_suite, tmp_path
    ):
        journal = str(tmp_path / "suite.journal")
        BatchCompiler(config=fast_epoc, journal_path=journal).compile_suite(
            small_suite
        )
        other = BatchCompiler(
            config=fast_epoc,
            flow="epoc-nogroup",
            journal_path=journal,
            resume=True,
        )
        with pytest.raises(JournalError):
            other.compile_suite(small_suite)

    def test_summary_table_reports_savings(self, fast_epoc, small_suite):
        report = BatchCompiler(config=fast_epoc).compile_suite(small_suite)
        table = report.summary_table()
        assert "dedup_savings=" in table
        assert "searches=" in table
        for name in small_suite:
            assert name in table

    def test_gate_based_flow(self, fast_epoc):
        report = BatchCompiler(config=fast_epoc, flow="gate-based").compile_suite(
            benchmark_suite(["bell"])
        )
        assert report.circuits == 1
        assert report.grape_searches == 0

    def test_all_flows_are_constructible(self, fast_epoc):
        for flow in BATCH_FLOWS:
            compiler = BatchCompiler(config=fast_epoc, flow=flow)
            assert compiler._make_flow(None)[0] is not None


class TestValidation:
    def test_unknown_flow_rejected(self, fast_epoc):
        with pytest.raises(ReproError):
            BatchCompiler(config=fast_epoc, flow="magic")

    def test_resume_requires_journal(self, fast_epoc):
        with pytest.raises(ReproError):
            BatchCompiler(config=fast_epoc, resume=True)

    def test_empty_suite_rejected(self, fast_epoc):
        with pytest.raises(ReproError):
            BatchCompiler(config=fast_epoc).compile_suite({})


class TestCircuitOutcome:
    def test_journal_round_trip(self):
        outcome = CircuitOutcome(
            name="bell",
            method="epoc",
            latency_ns=120.0,
            fidelity=0.99,
            compile_seconds=0.5,
            pulse_count=3,
            cache_hits=2,
            cache_misses=1,
            qoc_items=3,
            unique_qoc_items=2,
        )
        record = {"name": "bell", "method": "epoc", "stats": outcome.stats_dict()}
        restored = CircuitOutcome.from_journal(record)
        assert restored.resumed
        assert restored.fidelity == outcome.fidelity
        assert restored.cache_hits == outcome.cache_hits
        assert restored.unique_qoc_items == outcome.unique_qoc_items
        assert "resumed" in restored.summary_row()

    def test_hit_rate_none_when_no_traffic(self):
        outcome = CircuitOutcome(
            name="empty",
            method="epoc",
            latency_ns=0.0,
            fidelity=1.0,
            compile_seconds=0.0,
            pulse_count=0,
            cache_hits=0,
            cache_misses=0,
            qoc_items=0,
            unique_qoc_items=0,
        )
        assert outcome.hit_rate is None
        assert "--" in outcome.summary_row()

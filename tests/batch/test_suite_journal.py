"""Tests for the suite-level journal (checkpoint/resume of a batch)."""

import json

import pytest

from repro.batch import SuiteJournal
from repro.resilience.journal import JournalError, journal_records


def _events(path):
    records, _ = journal_records(str(path))
    return [record.get("event") for record in records]


class TestFreshJournal:
    def test_open_returns_nothing_completed(self, tmp_path):
        journal = SuiteJournal(str(tmp_path / "suite.journal"))
        assert journal.open(["bell", "ghz"], "fp-1") == {}
        journal.close()
        assert _events(tmp_path / "suite.journal") == ["begin", "done"]

    def test_circuit_records_carry_stats(self, tmp_path):
        path = tmp_path / "suite.journal"
        with SuiteJournal(str(path)) as journal:
            journal.open(["bell"], "fp-1")
            journal.record_circuit("bell", "epoc", {"fidelity": 0.99})
        records, _ = journal_records(str(path))
        circuit = [r for r in records if r["event"] == "circuit"][0]
        assert circuit["name"] == "bell"
        assert circuit["method"] == "epoc"
        assert circuit["stats"]["fidelity"] == 0.99
        assert records[-1] == {"event": "done", "circuits": 1}

    def test_abort_marker_on_exception(self, tmp_path):
        path = tmp_path / "suite.journal"
        with pytest.raises(RuntimeError):
            with SuiteJournal(str(path)) as journal:
                journal.open(["bell"], "fp-1")
                raise RuntimeError("killed")
        assert _events(path) == ["begin", "abort"]

    def test_close_idempotent(self, tmp_path):
        journal = SuiteJournal(str(tmp_path / "suite.journal"))
        journal.open(["bell"], "fp-1")
        journal.close()
        journal.close()
        assert _events(tmp_path / "suite.journal") == ["begin", "done"]


class TestResume:
    def _interrupted(self, path, fingerprint="fp-1"):
        journal = SuiteJournal(str(path))
        journal.open(["bell", "ghz", "cat"], fingerprint)
        journal.record_circuit("bell", "epoc", {"fidelity": 0.99})
        journal.record_circuit("ghz", "epoc", {"fidelity": 0.98})
        journal.close(complete=False)

    def test_resume_returns_completed_circuits(self, tmp_path):
        path = tmp_path / "suite.journal"
        self._interrupted(path)
        journal = SuiteJournal(str(path))
        completed = journal.open(["bell", "ghz", "cat"], "fp-1", resume=True)
        journal.close()
        assert sorted(completed) == ["bell", "ghz"]
        assert completed["bell"]["stats"]["fidelity"] == 0.99

    def test_resume_appends_instead_of_truncating(self, tmp_path):
        path = tmp_path / "suite.journal"
        self._interrupted(path)
        journal = SuiteJournal(str(path))
        journal.open(["bell", "ghz", "cat"], "fp-1", resume=True)
        journal.record_circuit("cat", "epoc", {"fidelity": 0.97})
        journal.close()
        records, _ = journal_records(str(path))
        names = [r["name"] for r in records if r["event"] == "circuit"]
        assert names == ["bell", "ghz", "cat"]
        # the final done counts resumed + new circuits
        assert records[-1] == {"event": "done", "circuits": 3}

    def test_fingerprint_mismatch_refused(self, tmp_path):
        path = tmp_path / "suite.journal"
        self._interrupted(path, fingerprint="fp-old")
        journal = SuiteJournal(str(path))
        with pytest.raises(JournalError):
            journal.open(["bell", "ghz", "cat"], "fp-new", resume=True)

    def test_fresh_open_overwrites_old_journal(self, tmp_path):
        path = tmp_path / "suite.journal"
        self._interrupted(path)
        journal = SuiteJournal(str(path))
        assert journal.open(["bell", "ghz", "cat"], "fp-1") == {}
        journal.close()
        records, _ = journal_records(str(path))
        assert [r["event"] for r in records] == ["begin", "done"]

    def test_truncated_tail_salvaged(self, tmp_path):
        path = tmp_path / "suite.journal"
        self._interrupted(path)
        with open(path, "a") as fh:
            fh.write('{"event": "circuit", "name": "ca')  # crash mid-write
        journal = SuiteJournal(str(path))
        completed = journal.open(["bell", "ghz", "cat"], "fp-1", resume=True)
        journal.close()
        assert sorted(completed) == ["bell", "ghz"]

    def test_resume_missing_file_starts_fresh(self, tmp_path):
        journal = SuiteJournal(str(tmp_path / "none.journal"))
        assert journal.open(["bell"], "fp-1", resume=True) == {}
        journal.close()

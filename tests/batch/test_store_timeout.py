"""Configurable store timeouts and busy diagnostics (JSON/flock backend)."""

import os

import pytest

from repro.batch.store import (
    DEFAULT_STORE_TIMEOUT,
    ENV_STORE_TIMEOUT,
    SharedLibraryStore,
    StoreLockTimeout,
    resolve_store_timeout,
)
from repro.exceptions import ReproError, StoreBusyError
from repro.qoc.library import PulseLibrary

fcntl = pytest.importorskip("fcntl")


class TestTimeoutResolution:
    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_STORE_TIMEOUT, "5")
        assert resolve_store_timeout(1.5) == 1.5

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv(ENV_STORE_TIMEOUT, "7.25")
        assert resolve_store_timeout(None) == 7.25

    def test_default(self, monkeypatch):
        monkeypatch.delenv(ENV_STORE_TIMEOUT, raising=False)
        assert resolve_store_timeout(None) == DEFAULT_STORE_TIMEOUT

    def test_garbage_env_falls_back(self, monkeypatch):
        monkeypatch.setenv(ENV_STORE_TIMEOUT, "soon")
        assert resolve_store_timeout(None) == DEFAULT_STORE_TIMEOUT

    def test_store_resolves_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_STORE_TIMEOUT, "3.5")
        store = SharedLibraryStore(str(tmp_path / "lib.json"))
        assert store.timeout_seconds == 3.5

    def test_open_store_forwards_timeout(self, tmp_path):
        from repro.db import open_store

        store = open_store(str(tmp_path / "lib.json"), timeout_seconds=2.0)
        assert store.timeout_seconds == 2.0


class TestBusyDiagnostics:
    def _hold_lock(self, store, pid=4242):
        """Take the store's flock from a second fd, posing as ``pid``."""
        fd = os.open(store.lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        os.ftruncate(fd, 0)
        os.pwrite(fd, str(pid).encode(), 0)
        return fd

    def test_contended_sync_raises_typed_error_with_holder(self, tmp_path):
        store = SharedLibraryStore(
            str(tmp_path / "lib.json"), timeout_seconds=0.2
        )
        fd = self._hold_lock(store, pid=4242)
        try:
            with pytest.raises(StoreLockTimeout) as err:
                store.sync(PulseLibrary())
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)
        assert err.value.path == store.path
        assert err.value.holder_pid == 4242
        assert err.value.timeout_seconds == 0.2
        assert "pid 4242" in str(err.value)

    def test_lock_timeout_is_a_store_busy_error(self, tmp_path):
        """Back-compat: existing `except StoreLockTimeout` sites keep
        working, new code can catch the broader StoreBusyError."""
        assert issubclass(StoreLockTimeout, StoreBusyError)
        assert issubclass(StoreBusyError, ReproError)

    def test_holder_pid_recorded_while_locked(self, tmp_path):
        store = SharedLibraryStore(str(tmp_path / "lib.json"))
        library = PulseLibrary()
        store.sync(library)
        # after a successful sync our own pid is the last recorded holder
        assert store.holder_pid() == os.getpid()

    def test_uncontended_sync_unaffected_by_short_timeout(self, tmp_path):
        store = SharedLibraryStore(
            str(tmp_path / "lib.json"), timeout_seconds=0.05
        )
        result = store.sync(PulseLibrary())
        assert result.total_entries == 0

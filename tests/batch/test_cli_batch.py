"""Tests for the ``compile-batch`` CLI command."""

import pytest

from repro.cli import build_parser, main
from repro.verify.artifacts import library_entry_keys
from repro.workloads import benchmark_suite


@pytest.fixture
def suite_dir(tmp_path):
    suite = tmp_path / "suite"
    suite.mkdir()
    for name, circuit in benchmark_suite(["bell", "ghz"]).items():
        (suite / f"{name}.qasm").write_text(circuit.to_qasm())
    return str(suite)


def _fast_args(*extra):
    return [
        "--fidelity",
        "0.98",
        "--qubit-limit",
        "2",
        *extra,
    ]


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["compile-batch", "dir"])
        assert args.flow == "epoc"
        assert args.library is None
        assert args.journal is None
        assert args.resume is False

    def test_suite_only_invocation_parses(self):
        args = build_parser().parse_args(["compile-batch", "--suite", "table1"])
        assert args.inputs == []
        assert args.suite == "table1"


class TestCompileBatch:
    def test_directory_suite(self, suite_dir, capsys):
        assert main(["compile-batch", suite_dir, *_fast_args()]) == 0
        out = capsys.readouterr().out
        assert "bell" in out and "ghz" in out
        assert "dedup_savings=" in out

    def test_named_suite(self, capsys):
        assert (
            main(["compile-batch", "--suite", "bell,ghz", *_fast_args()]) == 0
        )
        out = capsys.readouterr().out
        assert "suite: 2 circuits" in out

    def test_shared_library_across_invocations(
        self, suite_dir, tmp_path, capsys
    ):
        library = str(tmp_path / "lib.json")
        assert (
            main(
                ["compile-batch", suite_dir, "--library", library, *_fast_args()]
            )
            == 0
        )
        first_entries = library_entry_keys(library)
        assert first_entries
        capsys.readouterr()
        # the second invocation compiles entirely from the warm store
        assert (
            main(
                ["compile-batch", suite_dir, "--library", library, *_fast_args()]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "searches=0" in out
        assert "cache=100.0%" in out
        assert library_entry_keys(library) == first_entries

    def test_journal_resume(self, suite_dir, tmp_path, capsys):
        journal = str(tmp_path / "suite.journal")
        assert (
            main(
                ["compile-batch", suite_dir, "--journal", journal, *_fast_args()]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "compile-batch",
                    suite_dir,
                    "--journal",
                    journal,
                    "--resume",
                    *_fast_args(),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "2 resumed" in out

    def test_empty_directory_rejected(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["compile-batch", str(empty)]) == 1
        assert "no .qasm files" in capsys.readouterr().err

    def test_no_circuits_rejected(self, capsys):
        assert main(["compile-batch"]) == 1
        assert "at least one circuit" in capsys.readouterr().err

    def test_checkpoint_every_requires_library(self, suite_dir, capsys):
        assert (
            main(["compile-batch", suite_dir, "--checkpoint-every", "1"]) == 1
        )
        assert "--checkpoint-every requires --library" in capsys.readouterr().err

    def test_unknown_suite_rejected(self, capsys):
        assert main(["compile-batch", "--suite", "nope"]) == 1

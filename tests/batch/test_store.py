"""Tests for the lock-protected shared library store.

The store exists to fix one bug: two processes doing naive
load-at-start / save-at-end against the same library file silently drop
each other's entries.  These tests pin the merge semantics
deterministically and then hammer the file from real concurrent
processes to prove the union survives.
"""

import multiprocessing
import os

import numpy as np
import pytest

from repro.batch import SharedLibraryStore, StoreLockTimeout
from repro.circuits.gates import gate_matrix
from repro.qoc import Pulse, PulseLibrary
from repro.verify.artifacts import library_entry_keys


def _synthetic_entry(library: PulseLibrary, theta: float) -> bytes:
    """Install a fake solved pulse for the rotation ``diag(1, e^{i theta})``."""
    matrix = np.diag([1.0, np.exp(1j * theta)]).astype(complex)
    key = library.key_for(matrix, 1)
    library._entries[key] = Pulse(
        (0,), np.full((2, 8), 0.25), 1.0, fidelity=1.0, unitary_distance=0.0
    )
    return key


def _hammer_worker(path: str, worker_id: int, entries_per_worker: int) -> None:
    """One competing process: solve entries one at a time, sync after each."""
    library = PulseLibrary()
    store = SharedLibraryStore(path, timeout_seconds=30.0, poll_seconds=0.002)
    for j in range(entries_per_worker):
        _synthetic_entry(library, 0.3 + worker_id + 0.01 * j)
        store.sync(library)


class TestSyncSemantics:
    def test_first_sync_publishes(self, fast_qoc, tmp_path):
        path = str(tmp_path / "lib.json")
        library = PulseLibrary(config=fast_qoc)
        library.get_pulse(gate_matrix("x"), (0,))
        result = SharedLibraryStore(path).sync(library)
        assert result.loaded_entries == 0
        assert result.new_entries == 0
        assert result.total_entries == 1
        assert os.path.exists(path)
        assert len(library_entry_keys(path)) == 1

    def test_sync_merges_disk_entries_back(self, fast_qoc, tmp_path):
        path = str(tmp_path / "lib.json")
        store = SharedLibraryStore(path)
        lib_a = PulseLibrary(config=fast_qoc)
        lib_a.get_pulse(gate_matrix("x"), (0,))
        store.sync(lib_a)
        lib_b = PulseLibrary(config=fast_qoc)
        lib_b.get_pulse(gate_matrix("h"), (0,))
        result = store.sync(lib_b)
        # b picked up a's entry while publishing its own
        assert result.loaded_entries == 1
        assert result.new_entries == 1
        assert result.total_entries == 2
        assert len(lib_b) == 2

    def test_lost_update_race_fixed(self, fast_qoc, tmp_path):
        """The exact interleaving that loses entries under naive save."""
        path = str(tmp_path / "lib.json")
        store = SharedLibraryStore(path)
        lib_a = PulseLibrary(config=fast_qoc)
        lib_b = PulseLibrary(config=fast_qoc)
        # both start from an empty file (the racy common prefix)
        store.pull(lib_a)
        store.pull(lib_b)
        key_a = _synthetic_entry(lib_a, 0.4)
        store.sync(lib_a)
        key_b = _synthetic_entry(lib_b, 1.9)
        store.sync(lib_b)  # naive save would overwrite key_a here
        on_disk = library_entry_keys(path)
        assert {key_a.hex(), key_b.hex()} <= on_disk

    def test_pull_does_not_write(self, fast_qoc, tmp_path):
        path = str(tmp_path / "lib.json")
        store = SharedLibraryStore(path)
        lib_a = PulseLibrary(config=fast_qoc)
        _synthetic_entry(lib_a, 0.7)
        store.sync(lib_a)
        stamp = os.stat(path).st_mtime_ns
        lib_b = PulseLibrary(config=fast_qoc)
        _synthetic_entry(lib_b, 2.2)
        assert store.pull(lib_b) == 1
        assert len(lib_b) == 2
        assert os.stat(path).st_mtime_ns == stamp
        assert len(library_entry_keys(path)) == 1

    def test_pull_missing_file_is_empty(self, fast_qoc, tmp_path):
        store = SharedLibraryStore(str(tmp_path / "absent.json"))
        library = PulseLibrary(config=fast_qoc)
        assert store.pull(library) == 0
        assert len(library) == 0


class TestLocking:
    def test_lock_is_exclusive(self, tmp_path):
        path = str(tmp_path / "lib.json")
        holder = SharedLibraryStore(path)
        contender = SharedLibraryStore(
            path, timeout_seconds=0.15, poll_seconds=0.01
        )
        with holder.locked():
            with pytest.raises(StoreLockTimeout):
                with contender.locked():
                    pass  # pragma: no cover - must not be reached

    def test_lock_released_after_block(self, tmp_path):
        path = str(tmp_path / "lib.json")
        store = SharedLibraryStore(path, timeout_seconds=0.5)
        with store.locked():
            pass
        other = SharedLibraryStore(path, timeout_seconds=0.5)
        with other.locked():
            pass  # acquiring again proves the first release worked

    def test_lock_released_on_error(self, tmp_path):
        path = str(tmp_path / "lib.json")
        store = SharedLibraryStore(path, timeout_seconds=0.5)
        with pytest.raises(RuntimeError):
            with store.locked():
                raise RuntimeError("boom")
        with SharedLibraryStore(path, timeout_seconds=0.5).locked():
            pass


class TestLockErrorHandling:
    """Non-contention flock failures must surface immediately, and
    release must never leak the lock fd."""

    def test_non_contention_error_raises_immediately(self, tmp_path, monkeypatch):
        import errno
        import time

        from repro.batch import store as store_mod

        seen = {"fd": None, "calls": 0}

        def broken_flock(fd, op):
            seen["fd"] = fd
            seen["calls"] += 1
            raise OSError(errno.EBADF, "bad file descriptor")

        monkeypatch.setattr(store_mod.fcntl, "flock", broken_flock)
        store = SharedLibraryStore(str(tmp_path / "lib.json"), timeout_seconds=30.0)
        start = time.monotonic()
        with pytest.raises(OSError) as excinfo:
            store._acquire()
        # the old behaviour spun for the full 30 s deadline and raised a
        # misleading StoreLockTimeout; the real errno must come straight out
        assert excinfo.value.errno == errno.EBADF
        assert not isinstance(excinfo.value, StoreLockTimeout)
        assert time.monotonic() - start < 5.0
        assert seen["calls"] == 1
        assert store._lock_fd is None
        with pytest.raises(OSError):
            os.fstat(seen["fd"])  # the fd was closed, not leaked

    def test_contention_errno_still_retries(self, tmp_path, monkeypatch):
        import errno

        from repro.batch import store as store_mod

        attempts = {"n": 0}
        real_flock = store_mod.fcntl.flock

        def contended_flock(fd, op):
            if op & store_mod.fcntl.LOCK_UN:
                return real_flock(fd, op)
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise OSError(errno.EWOULDBLOCK, "resource temporarily unavailable")
            return real_flock(fd, op)

        monkeypatch.setattr(store_mod.fcntl, "flock", contended_flock)
        store = SharedLibraryStore(
            str(tmp_path / "lib.json"), timeout_seconds=10.0, poll_seconds=0.001
        )
        with store.locked():
            assert attempts["n"] == 3

    def test_contention_timeout_still_raises_lock_timeout(self, tmp_path, monkeypatch):
        import errno

        from repro.batch import store as store_mod

        def always_contended(fd, op):
            if op & store_mod.fcntl.LOCK_UN:
                return None
            raise OSError(errno.EAGAIN, "resource temporarily unavailable")

        monkeypatch.setattr(store_mod.fcntl, "flock", always_contended)
        store = SharedLibraryStore(
            str(tmp_path / "lib.json"), timeout_seconds=0.05, poll_seconds=0.005
        )
        with pytest.raises(StoreLockTimeout):
            store._acquire()
        assert store._lock_fd is None

    def test_release_closes_fd_even_when_unlock_raises(self, tmp_path, monkeypatch):
        import errno

        from repro.batch import store as store_mod

        store = SharedLibraryStore(str(tmp_path / "lib.json"), timeout_seconds=5.0)
        store._acquire()
        fd = store._lock_fd
        assert fd is not None

        real_flock = store_mod.fcntl.flock

        def broken_unlock(target_fd, op):
            if op & store_mod.fcntl.LOCK_UN:
                raise OSError(errno.EIO, "i/o error")
            return real_flock(target_fd, op)

        monkeypatch.setattr(store_mod.fcntl, "flock", broken_unlock)
        with pytest.raises(OSError):
            store._release()
        monkeypatch.undo()
        # the fd is closed and the field cleared despite the failed unlock
        assert store._lock_fd is None
        with pytest.raises(OSError):
            os.fstat(fd)
        # closing the fd dropped the flock: a fresh store can acquire
        with SharedLibraryStore(
            str(tmp_path / "lib.json"), timeout_seconds=0.5
        ).locked():
            pass


class TestConcurrentProcesses:
    def test_no_entry_loss_under_contention(self, tmp_path):
        """Real processes interleaving syncs must preserve the union."""
        path = str(tmp_path / "lib.json")
        workers, per_worker = 4, 3
        processes = [
            multiprocessing.Process(
                target=_hammer_worker, args=(path, wid, per_worker)
            )
            for wid in range(workers)
        ]
        for proc in processes:
            proc.start()
        for proc in processes:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        # recompute every key the workers published and demand all of them
        reference = PulseLibrary()
        expected = {
            reference.key_for(
                np.diag([1.0, np.exp(1j * (0.3 + wid + 0.01 * j))]), 1
            ).hex()
            for wid in range(workers)
            for j in range(per_worker)
        }
        on_disk = library_entry_keys(path)
        assert expected <= on_disk
        assert len(on_disk) == len(expected)

"""Checkpoint journal: incremental flushes, fingerprints, resume safety."""

import json

import numpy as np
import pytest

from repro.config import QOCConfig
from repro.qoc.library import PulseLibrary
from repro.qoc.pulse import Pulse
from repro.resilience import CompilationJournal, JournalError
from repro.resilience.journal import config_fingerprint, journal_records


def _pulse(segments=4):
    return Pulse(
        qubits=(0,),
        controls=np.zeros((2, segments)),
        dt=1.0,
        fidelity=0.999,
        unitary_distance=1e-3,
    )


def _events(journal_path):
    with open(journal_path) as fh:
        return [json.loads(line)["event"] for line in fh if line.strip()]


class TestFingerprint:
    def test_stable_for_equal_inputs(self):
        a = config_fingerprint(QOCConfig(), True)
        b = config_fingerprint(QOCConfig(), True)
        assert a == b
        assert len(a) == 16

    def test_differs_across_configs(self):
        assert config_fingerprint(QOCConfig(), True) != config_fingerprint(
            QOCConfig(dt=2.0), True
        )


class TestJournal:
    def test_flush_interval_and_events(self, tmp_path):
        library = PulseLibrary()
        checkpoint = tmp_path / "cp.json"
        journal = CompilationJournal(str(checkpoint), library, checkpoint_every=2)
        journal.open("circ", "fp")
        library._entries[b"\x01k1"] = _pulse()
        journal.record_block(0, b"\x01k1")
        assert not checkpoint.exists()  # interval of 2 not reached yet
        library._entries[b"\x01k2"] = _pulse()
        journal.record_block(1, b"\x01k2")
        assert checkpoint.exists()
        journal.close(complete=True)
        events = _events(journal.journal_path)
        assert events[0] == "begin"
        assert events.count("block") == 2
        assert "flush" in events
        assert events[-1] == "done"

    def test_abort_marker_on_incomplete_close(self, tmp_path):
        journal = CompilationJournal(str(tmp_path / "cp.json"), PulseLibrary())
        journal.open("circ", "fp")
        journal.close(complete=False)
        assert _events(journal.journal_path)[-1] == "abort"

    def test_resume_loads_checkpoint(self, tmp_path):
        checkpoint = tmp_path / "cp.json"
        library = PulseLibrary()
        library._entries[b"\x01k1"] = _pulse()
        with CompilationJournal(str(checkpoint), library) as journal:
            journal.open("circ", "fp")
            journal.record_block(0, b"\x01k1")

        fresh = PulseLibrary()
        journal2 = CompilationJournal(str(checkpoint), fresh)
        resumed = journal2.open("circ", "fp", resume=True)
        journal2.close()
        assert resumed == 1
        assert len(fresh) == 1

    def test_resume_refuses_fingerprint_mismatch(self, tmp_path):
        checkpoint = tmp_path / "cp.json"
        library = PulseLibrary()
        with CompilationJournal(str(checkpoint), library) as journal:
            journal.open("circ", "fp-one")
            library._entries[b"\x01k1"] = _pulse()
            journal.record_block(0, b"\x01k1")

        journal2 = CompilationJournal(str(checkpoint), PulseLibrary())
        with pytest.raises(JournalError, match="different configuration"):
            journal2.open("circ", "fp-two", resume=True)

    def test_resume_without_checkpoint_is_fresh_start(self, tmp_path):
        journal = CompilationJournal(str(tmp_path / "never.json"), PulseLibrary())
        assert journal.open("circ", "fp", resume=True) == 0
        journal.close()

    def test_close_is_idempotent(self, tmp_path):
        journal = CompilationJournal(str(tmp_path / "cp.json"), PulseLibrary())
        journal.open("circ", "fp")
        journal.close()
        journal.close()  # second close is a no-op
        assert _events(journal.journal_path).count("done") == 1


class TestCanonicalSave:
    def test_save_order_is_insertion_independent(self, tmp_path):
        """Resume produces a different insertion order than an
        uninterrupted run; the saved bytes must not notice."""
        a, b = PulseLibrary(), PulseLibrary()
        p1, p2 = _pulse(4), _pulse(6)
        a._entries[b"\x01k1"] = p1
        a._entries[b"\x01k2"] = p2
        b._entries[b"\x01k2"] = p2
        b._entries[b"\x01k1"] = p1
        path_a, path_b = tmp_path / "a.json", tmp_path / "b.json"
        a.save(str(path_a))
        b.save(str(path_b))
        assert path_a.read_bytes() == path_b.read_bytes()


class TestTruncatedTailSalvage:
    """A crash mid-write leaves a partial final JSONL line; resume must
    salvage every complete record instead of corrupting the journal."""

    def _crashed_journal(self, tmp_path, tail):
        checkpoint = tmp_path / "cp.json"
        library = PulseLibrary()
        journal = CompilationJournal(str(checkpoint), library)
        journal.open("circ", "fp")
        library._entries[b"\x01k1"] = _pulse()
        journal.record_block(0, b"\x01k1")
        journal._fh.close()  # simulate a crash: no done/abort record
        journal._fh = None
        with open(journal.journal_path, "a") as fh:
            fh.write(tail)  # the partially flushed final record
        return checkpoint, journal.journal_path

    def test_journal_records_flags_partial_tail(self, tmp_path):
        checkpoint, journal_path = self._crashed_journal(
            tmp_path, '{"event": "block", "ind'
        )
        records, truncated = journal_records(str(journal_path))
        assert truncated
        assert [r["event"] for r in records] == ["begin", "block", "flush"]

    def test_journal_records_clean_file(self, tmp_path):
        checkpoint, journal_path = self._crashed_journal(tmp_path, "")
        # the file happens to end on a newline, so nothing was truncated
        records, truncated = journal_records(str(journal_path))
        assert not truncated
        assert [r["event"] for r in records] == ["begin", "block", "flush"]

    def test_journal_records_unterminated_but_parseable_tail(self, tmp_path):
        checkpoint, journal_path = self._crashed_journal(
            tmp_path, '{"event": "block", "index": 1, "key": "00"}'
        )
        records, truncated = journal_records(str(journal_path))
        # the record is complete JSON, so it is kept — but the missing
        # newline still marks the tail for repair before any append
        assert truncated
        assert records[-1]["index"] == 1

    def test_resume_salvages_and_continues(self, tmp_path):
        checkpoint, journal_path = self._crashed_journal(
            tmp_path, '{"event": "block", "ind'
        )
        fresh = PulseLibrary()
        journal = CompilationJournal(str(checkpoint), fresh)
        resumed = journal.open("circ", "fp", resume=True)
        journal.close()
        assert resumed == 1  # the checkpointed pulse came back
        # every line in the repaired journal parses; the partial record
        # is gone and the new run's records follow the salvaged ones
        with open(journal_path) as fh:
            events = [json.loads(line)["event"] for line in fh]
        assert events == ["begin", "block", "flush", "begin", "flush", "done"]

    def test_resume_reads_fingerprint_past_partial_tail(self, tmp_path):
        checkpoint, journal_path = self._crashed_journal(
            tmp_path, '{"event": "begin", "fingerprint": "other'
        )
        journal = CompilationJournal(str(checkpoint), PulseLibrary())
        # the partial line must not shadow the stored fingerprint
        with pytest.raises(JournalError, match="different configuration"):
            journal.open("circ", "fp-two", resume=True)

"""Worker-crash recovery, task quarantine and fast failure observation."""

import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

import pytest

from repro.parallel import ParallelExecutor
from repro.resilience import FaultPlan, set_fault_plan


# tasks must be module-level so worker processes can unpickle them
@dataclass(frozen=True)
class AddTask:
    value: int

    def run(self):
        return self.value + 1


@dataclass(frozen=True)
class FailTask:
    message: str = "poisoned"

    def run(self):
        raise ValueError(self.message)


@dataclass(frozen=True)
class SleepTask:
    seconds: float

    def run(self):
        time.sleep(self.seconds)
        return self.seconds


class TestCrashRecovery:
    def test_worker_crash_recovers_and_preserves_order(self):
        # the plan is installed before the pool forks, so workers inherit it
        set_fault_plan(FaultPlan.parse("worker.crash@chunk=1"))
        with ParallelExecutor(workers=2, chunk_size=1, min_tasks=2) as executor:
            results = executor.map([AddTask(i) for i in range(4)])
            assert results == [1, 2, 3, 4]
            # the executor must stay usable after the rebuild
            assert executor.map([AddTask(10), AddTask(11)]) == [11, 12]

    def test_crash_budget_zero_fails_fast(self):
        set_fault_plan(FaultPlan.parse("worker.crash@chunk=0"))
        executor = ParallelExecutor(
            workers=2, chunk_size=1, min_tasks=2, crash_retries=0
        )
        with executor:
            with pytest.raises(BrokenProcessPool):
                executor.map([AddTask(i) for i in range(4)])
        assert executor._pool is None

    def test_crash_in_serial_retry_does_not_kill_parent(self):
        """The injected crash site is a no-op outside worker processes, so
        the in-parent serial retry of a crashed chunk completes."""
        set_fault_plan(FaultPlan.parse("worker.crash@chunk=0*-1"))
        with ParallelExecutor(workers=2, chunk_size=2, min_tasks=2) as executor:
            assert executor.map([AddTask(i) for i in range(4)]) == [1, 2, 3, 4]


class TestQuarantine:
    def test_handler_substitutes_failed_task_parallel(self):
        tasks = [AddTask(0), FailTask(), AddTask(2)]
        with ParallelExecutor(workers=2, chunk_size=2, min_tasks=2) as executor:
            results = executor.map(
                tasks, on_task_error=lambda task, exc: "substitute"
            )
        assert results == [1, "substitute", 3]

    def test_handler_substitutes_failed_task_serial(self):
        tasks = [AddTask(0), FailTask(), AddTask(2)]
        executor = ParallelExecutor(workers=0)
        results = executor.map(tasks, on_task_error=lambda task, exc: None)
        assert results == [1, None, 3]

    def test_no_handler_still_aborts(self):
        with ParallelExecutor(workers=2, chunk_size=1, min_tasks=2) as executor:
            with pytest.raises(ValueError, match="poisoned"):
                executor.map([AddTask(0), FailTask(), AddTask(2)])
        assert executor._pool is None


class TestFastFailure:
    def test_completion_waits_use_first_exception(self, monkeypatch):
        """Regression: completion must be observed with
        ``wait(..., FIRST_EXCEPTION)`` so a fast-failing late chunk is
        seen (and recovery started) before earlier chunks finish."""
        from concurrent.futures import FIRST_EXCEPTION

        import repro.parallel.executor as executor_mod

        modes = []
        real_wait = executor_mod.wait

        def spy(futures, timeout=None, return_when="ALL_COMPLETED"):
            modes.append(return_when)
            return real_wait(futures, timeout=timeout, return_when=return_when)

        monkeypatch.setattr(executor_mod, "wait", spy)
        with ParallelExecutor(workers=2, chunk_size=1, min_tasks=2) as executor:
            assert executor.map([AddTask(i) for i in range(4)]) == [1, 2, 3, 4]
        assert modes, "the parallel path never polled futures"
        assert all(mode == FIRST_EXCEPTION for mode in modes)

    def test_fast_failure_aborts_slow_batch(self):
        """A fast-failing chunk aborts the batch even while slower chunks
        are still in flight (the pool eats the in-flight sleeps during
        shutdown, but the error is never masked by them)."""
        tasks = [SleepTask(0.3), FailTask(), SleepTask(0.3), SleepTask(0.3)]
        with ParallelExecutor(workers=2, chunk_size=1, min_tasks=2) as executor:
            with pytest.raises(ValueError, match="poisoned"):
                executor.map(tasks)
        assert executor._pool is None

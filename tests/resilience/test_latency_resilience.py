"""Duration-search resilience: bracket seeding, probe dedup, degradation."""

import numpy as np
import pytest

from repro.config import QOCConfig, ResilienceConfig
from repro.exceptions import QOCError
from repro.qoc.grape import GrapeResult
from repro.qoc.hamiltonian import TransmonChain
from repro.qoc.latency import estimate_initial_segments, minimal_latency_pulse


def _stub_grape(record, converge_at):
    """A GRAPE double: converges iff segments >= converge_at, and reports
    a fidelity that grows with the segment count."""

    def stub(
        target, hardware, num_segments, config=None,
        initial_controls=None, **kwargs,
    ):
        record.append(num_segments)
        converged = num_segments >= converge_at
        return GrapeResult(
            controls=np.zeros((2 * hardware.num_qubits, num_segments)),
            fidelity=0.999 if converged else 0.5 + 1e-4 * num_segments,
            final_unitary=np.eye(target.shape[0], dtype=complex),
            iterations=1,
            converged=converged,
            dt=config.dt,
        )

    return stub


class TestBracketSeeding:
    """Regression for the empty phase-2 bracket: when the very first probe
    converges, the binary search used to bracket [0, initial] and burn
    probes on physically implausible durations."""

    def test_first_probe_converging_probes_exactly_once(self, monkeypatch):
        record = []
        monkeypatch.setattr(
            "repro.qoc.latency.grape_optimize", _stub_grape(record, converge_at=0)
        )
        config = QOCConfig(dt=1.0, min_segments=2, max_segments=120)
        hardware = TransmonChain(2)
        target = np.eye(4, dtype=complex)
        initial = estimate_initial_segments(target, hardware, config)
        minimal_latency_pulse(target, (0, 1), config=config, hardware=hardware)
        assert record == [initial]

    def test_binary_search_never_goes_below_estimate(self, monkeypatch):
        record = []
        monkeypatch.setattr(
            "repro.qoc.latency.grape_optimize", _stub_grape(record, converge_at=0)
        )
        config = QOCConfig(dt=1.0, min_segments=2, max_segments=400)
        hardware = TransmonChain(3)
        target = np.eye(8, dtype=complex)
        initial = estimate_initial_segments(target, hardware, config)
        assert initial > config.min_segments  # the regression needs headroom
        minimal_latency_pulse(target, (0, 1, 2), config=config, hardware=hardware)
        assert min(record) >= initial

    def test_no_segment_count_probed_twice(self, monkeypatch):
        record = []
        monkeypatch.setattr(
            "repro.qoc.latency.grape_optimize", _stub_grape(record, converge_at=20)
        )
        config = QOCConfig(dt=1.0, min_segments=2, max_segments=400)
        hardware = TransmonChain(2)
        target = np.eye(4, dtype=complex)
        pulse = minimal_latency_pulse(
            target, (0, 1), config=config, hardware=hardware
        )
        assert len(record) == len(set(record)), f"duplicate probes: {record}"
        # the refined answer still honours the stub's convergence boundary
        assert pulse.controls.shape[1] >= 20


class TestDegradation:
    def test_injected_non_convergence_degrades(self, fast_qoc, arm_faults):
        arm_faults("qoc.no_converge@qubits=1")
        target = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2)
        pulse = minimal_latency_pulse(
            target, (0,), config=fast_qoc, resilience=ResilienceConfig()
        )
        assert pulse.source == "grape-degraded"
        assert pulse.fidelity < fast_qoc.fidelity_threshold

    def test_strict_mode_still_raises(self, fast_qoc, arm_faults):
        arm_faults("qoc.no_converge@qubits=1")
        target = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2)
        with pytest.raises(QOCError):
            minimal_latency_pulse(target, (0,), config=fast_qoc, resilience=None)

    def test_degrade_can_be_disabled(self, fast_qoc, arm_faults):
        arm_faults("qoc.no_converge@qubits=1")
        target = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2)
        with pytest.raises(QOCError):
            minimal_latency_pulse(
                target,
                (0,),
                config=fast_qoc,
                resilience=ResilienceConfig(degrade_on_qoc_failure=False),
            )

    def test_expired_deadline_returns_best_effort(self, monkeypatch):
        record = []
        monkeypatch.setattr(
            "repro.qoc.latency.grape_optimize",
            _stub_grape(record, converge_at=10**9),  # never converges
        )
        config = QOCConfig(dt=1.0, min_segments=2, max_segments=400)
        pulse = minimal_latency_pulse(
            np.eye(4, dtype=complex),
            (0, 1),
            config=config,
            resilience=ResilienceConfig(qoc_timeout_seconds=0.0),
        )
        assert pulse.source == "grape-degraded"
        assert len(record) == 1  # the budget expired after the first probe

    def test_reseeded_retry_recovers(self, monkeypatch):
        """A failure that a fresh random seed fixes should not degrade."""
        seeds = []

        def seed_sensitive(
            target, hardware, num_segments, config=None,
            initial_controls=None, **kwargs,
        ):
            seeds.append(config.seed)
            converged = config.seed != 7  # the default seed always fails
            return GrapeResult(
                controls=np.zeros((2 * hardware.num_qubits, num_segments)),
                fidelity=0.999 if converged else 0.3,
                final_unitary=np.eye(target.shape[0], dtype=complex),
                iterations=1,
                converged=converged,
                dt=config.dt,
            )

        monkeypatch.setattr("repro.qoc.latency.grape_optimize", seed_sensitive)
        config = QOCConfig(dt=1.0, min_segments=2, max_segments=16, seed=7)
        pulse = minimal_latency_pulse(
            np.eye(4, dtype=complex),
            (0, 1),
            config=config,
            resilience=ResilienceConfig(max_retries=1),
        )
        assert pulse.source == "grape"
        assert 8 in seeds  # the retry ran with seed + 1

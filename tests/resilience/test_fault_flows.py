"""End-to-end fault tolerance: degraded compiles, fallback chains, resume."""

import numpy as np
import pytest

from repro import telemetry
from repro.circuits import QuantumCircuit
from repro.config import ParallelConfig, ResilienceConfig
from repro.core import EPOCPipeline
from repro.linalg import random_unitary
from repro.resilience import FaultPlan, set_fault_plan
from repro.synthesis import synthesize_unitary


def _bell_pair():
    qc = QuantumCircuit(2)
    qc.h(0)
    qc.cx(0, 1)
    return qc


def _two_blocks():
    qc = QuantumCircuit(3)
    qc.h(0)
    qc.cx(0, 1)
    qc.x(2)
    qc.cx(1, 2)
    return qc


class TestDegradedCompilation:
    def test_flow_completes_with_ledger_entry(self, fast_epoc, arm_faults):
        """Acceptance: under an injected GRAPE non-convergence the EPOC
        flow finishes end-to-end and the report names the degraded block
        with its fidelity deficit."""
        arm_faults("qoc.no_converge*1")
        report = EPOCPipeline(fast_epoc).compile(_bell_pair(), name="bell")
        assert not report.fully_converged
        assert len(report.degraded_blocks) >= 1
        entry = report.degraded_blocks[0]
        assert entry.target_fidelity == fast_epoc.qoc.fidelity_threshold
        assert entry.achieved_fidelity < entry.target_fidelity
        assert entry.deficit > 0.0
        assert report.fidelity_deficit >= entry.deficit
        assert report.stats["degraded_blocks"] >= 1.0
        assert report.schedule.latency > 0.0
        assert "degraded=" in report.summary_row()

    def test_clean_run_has_empty_ledger(self, fast_epoc):
        report = EPOCPipeline(fast_epoc).compile(_bell_pair(), name="bell")
        assert report.fully_converged
        assert report.degraded_blocks == []
        assert report.fidelity_deficit == 0.0


class TestSynthesisFallback:
    def test_qsearch_failure_falls_back_to_leap(self, arm_faults):
        arm_faults("synthesis.qsearch*-1")
        cnot = np.eye(4, dtype=complex)[[0, 1, 3, 2]]
        result = synthesize_unitary(cnot, resilience=ResilienceConfig())
        assert result.method == "leap"
        assert result.distance < 1e-5

    def test_full_chain_lands_on_kak_for_two_qubits(self, rng, arm_faults):
        arm_faults("synthesis.qsearch*-1;synthesis.leap*-1")
        target = random_unitary(4, rng)
        with telemetry.telemetry_session() as (tracer, registry):
            result = synthesize_unitary(target, resilience=ResilienceConfig())
        assert result.method == "kak"
        assert result.distance < 1e-6
        counters = registry.flat()
        assert counters.get("resilience.fallbacks", 0) == 2.0

    def test_full_chain_lands_on_qsd_beyond_two_qubits(self, rng, arm_faults):
        arm_faults("synthesis.qsearch*-1;synthesis.leap*-1")
        target = random_unitary(8, rng)
        result = synthesize_unitary(target, resilience=ResilienceConfig())
        assert result.method == "qsd"
        assert result.distance < 1e-6


class TestKillAndResume:
    def test_resumed_library_is_bitwise_identical(self, fast_epoc, tmp_path):
        """Acceptance: kill mid pulse-generation, resume from the
        checkpoint, and end with the same library file byte for byte as
        an uninterrupted run."""
        serial = fast_epoc.with_updates(parallel=ParallelConfig(workers=0))
        circuit = _two_blocks()
        checkpoint = tmp_path / "cp.json"

        set_fault_plan(FaultPlan.parse("pipeline.kill@item=1"))
        killed = serial.with_updates(
            resilience=ResilienceConfig(checkpoint_path=str(checkpoint))
        )
        with pytest.raises(RuntimeError, match="injected pipeline kill"):
            EPOCPipeline(killed).compile(circuit, name="job")
        assert checkpoint.exists()  # item 0 was flushed before the kill

        set_fault_plan(FaultPlan())
        resumed_config = serial.with_updates(
            resilience=ResilienceConfig(
                checkpoint_path=str(checkpoint), resume=True
            )
        )
        report = EPOCPipeline(resumed_config).compile(circuit, name="job")
        assert report.stats["resumed_entries"] >= 1.0
        resumed_bytes = checkpoint.read_bytes()

        reference = tmp_path / "reference.json"
        clean_config = serial.with_updates(
            resilience=ResilienceConfig(checkpoint_path=str(reference))
        )
        clean_report = EPOCPipeline(clean_config).compile(circuit, name="job")
        assert reference.read_bytes() == resumed_bytes
        assert report.latency_ns == clean_report.latency_ns
        assert report.fidelity == clean_report.fidelity

    def test_resume_under_changed_config_is_refused(self, fast_epoc, tmp_path):
        import dataclasses

        from repro.resilience import JournalError

        serial = fast_epoc.with_updates(parallel=ParallelConfig(workers=0))
        checkpoint = tmp_path / "cp.json"
        first = serial.with_updates(
            resilience=ResilienceConfig(checkpoint_path=str(checkpoint))
        )
        EPOCPipeline(first).compile(_bell_pair(), name="job")

        changed = serial.with_updates(
            qoc=dataclasses.replace(serial.qoc, dt=serial.qoc.dt * 2),
            resilience=ResilienceConfig(
                checkpoint_path=str(checkpoint), resume=True
            ),
        )
        with pytest.raises(JournalError):
            EPOCPipeline(changed).compile(_bell_pair(), name="job")

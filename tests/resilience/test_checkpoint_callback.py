"""A failing checkpoint callback must not abort the pulse batch.

``PulseLibrary.get_pulses(on_pulse=...)`` is how the compilation journal
flushes incremental checkpoints.  Checkpointing is an optimization — a
full disk or an unwritable path must degrade to "no checkpoint", not
discard the GRAPE work that just finished.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.circuits.gates import gate_matrix
from repro.qoc import PulseLibrary


@pytest.fixture
def requests():
    return [
        (gate_matrix("x"), (0,)),
        (gate_matrix("h"), (0,)),
        (gate_matrix("x"), (1,)),  # cache hit via retarget, no callback
    ]


class TestCheckpointCallbackFailure:
    def test_callback_error_is_non_fatal(self, fast_qoc, requests):
        library = PulseLibrary(config=fast_qoc)

        def exploding(key, pulse):
            raise OSError("disk full")

        pulses = library.get_pulses(requests, on_pulse=exploding)
        # every pulse was still produced and cached
        assert len(pulses) == 3
        assert len(library) == 2
        assert library.misses == 2
        assert library.hits == 1

    def test_callback_error_counted(self, fast_qoc, requests):
        library = PulseLibrary(config=fast_qoc)

        def exploding(key, pulse):
            raise OSError("disk full")

        with telemetry.telemetry_session() as (_, registry):
            library.get_pulses(requests, on_pulse=exploding)
        # one failure per freshly solved pulse (hits never fire on_pulse)
        assert registry.counter("library.checkpoint_errors") == 2

    def test_partial_callback_failure(self, fast_qoc, requests):
        """Only one key's checkpoint fails; the others still fire."""
        library = PulseLibrary(config=fast_qoc)
        seen = []

        def flaky(key, pulse):
            seen.append(key)
            if len(seen) == 1:
                raise ValueError("first write rejected")

        pulses = library.get_pulses(requests, on_pulse=flaky)
        assert len(pulses) == 3
        assert len(seen) == 2  # callback invoked for both solved pulses

    def test_solved_pulses_reusable_after_failure(self, fast_qoc, requests):
        library = PulseLibrary(config=fast_qoc)

        def exploding(key, pulse):
            raise OSError("disk full")

        library.get_pulses(requests, on_pulse=exploding)
        # the cache survived: a re-run needs no new searches
        again = library.get_pulses([(gate_matrix("x"), (0,))])
        assert library.misses == 2
        assert np.allclose(again[0].controls.shape, (2, again[0].num_segments))

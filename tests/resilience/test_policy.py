"""Unit tests for RetryPolicy, Deadline and retry_call."""

import pytest

from repro.config import ResilienceConfig
from repro.resilience import Deadline, RetryPolicy, retry_call


class TestRetryPolicy:
    def test_delays_are_geometric_and_capped(self):
        policy = RetryPolicy(
            max_attempts=5,
            backoff_seconds=1.0,
            backoff_factor=3.0,
            max_backoff_seconds=5.0,
        )
        assert list(policy.delays()) == [1.0, 3.0, 5.0, 5.0]

    def test_single_attempt_has_no_delays(self):
        assert list(RetryPolicy(max_attempts=1).delays()) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_seconds=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)

    def test_from_config(self):
        policy = RetryPolicy.from_config(
            ResilienceConfig(max_retries=3, retry_backoff_seconds=0.25)
        )
        assert policy.max_attempts == 4
        assert policy.backoff_seconds == 0.25

    def test_from_none_means_one_attempt(self):
        assert RetryPolicy.from_config(None).max_attempts == 1


class TestDeadline:
    def test_unlimited_never_expires(self):
        deadline = Deadline.unlimited()
        assert not deadline.expired
        assert deadline.remaining() is None

    def test_zero_budget_expires_immediately(self):
        deadline = Deadline(0.0)
        assert deadline.expired
        assert deadline.remaining() == 0.0

    def test_generous_budget_not_expired(self):
        assert not Deadline(3600.0).expired

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(-1.0)


class TestRetryCall:
    def test_succeeds_after_failures(self):
        attempts = []

        def flaky(attempt):
            attempts.append(attempt)
            if attempt < 2:
                raise ValueError("not yet")
            return "ok"

        policy = RetryPolicy(max_attempts=3)
        assert retry_call(flaky, policy, retry_on=(ValueError,)) == "ok"
        assert attempts == [0, 1, 2]

    def test_exhaustion_raises_last_error(self):
        def always(attempt):
            raise ValueError(f"attempt {attempt}")

        with pytest.raises(ValueError, match="attempt 1"):
            retry_call(always, RetryPolicy(max_attempts=2), retry_on=(ValueError,))

    def test_unmatched_exception_propagates_immediately(self):
        calls = []

        def boom(attempt):
            calls.append(attempt)
            raise KeyError("boom")

        with pytest.raises(KeyError):
            retry_call(boom, RetryPolicy(max_attempts=4), retry_on=(ValueError,))
        assert calls == [0]

    def test_sleep_is_injectable(self):
        sleeps = []

        def failing(attempt):
            if attempt == 0:
                raise ValueError("x")
            return attempt

        policy = RetryPolicy(max_attempts=2, backoff_seconds=7.5)
        result = retry_call(
            failing, policy, retry_on=(ValueError,), sleep=sleeps.append
        )
        assert result == 1
        assert sleeps == [7.5]

    def test_expired_deadline_stops_retries(self):
        calls = []

        def failing(attempt):
            calls.append(attempt)
            raise ValueError("x")

        with pytest.raises(ValueError):
            retry_call(
                failing,
                RetryPolicy(max_attempts=5),
                retry_on=(ValueError,),
                deadline=Deadline(0.0),
            )
        assert calls == [0]

    def test_backoff_clamped_to_deadline_remaining(self):
        # regression: a 30s backoff used to sleep straight through a 5s
        # deadline; the sleep must be clamped to what remains
        clock_now = [0.0]
        sleeps = []

        def failing(attempt):
            raise ValueError("x")

        deadline = Deadline(5.0, clock=lambda: clock_now[0])
        with pytest.raises(ValueError):
            retry_call(
                failing,
                RetryPolicy(max_attempts=3, backoff_seconds=30.0),
                retry_on=(ValueError,),
                deadline=deadline,
                sleep=sleeps.append,
            )
        assert sleeps == [5.0, 5.0]

    def test_deadline_expiring_mid_run_skips_the_sleep(self):
        clock_now = [0.0]
        sleeps = []
        calls = []

        def failing(attempt):
            calls.append(attempt)
            # the first attempt burns the whole budget
            clock_now[0] = 10.0
            raise ValueError("x")

        deadline = Deadline(5.0, clock=lambda: clock_now[0])
        with pytest.raises(ValueError):
            retry_call(
                failing,
                RetryPolicy(max_attempts=5, backoff_seconds=30.0),
                retry_on=(ValueError,),
                deadline=deadline,
                sleep=sleeps.append,
            )
        assert calls == [0]
        assert sleeps == []

    def test_deadline_clock_is_injectable(self):
        clock_now = [0.0]
        deadline = Deadline(5.0, clock=lambda: clock_now[0])
        assert not deadline.expired
        assert deadline.remaining() == 5.0
        clock_now[0] = 4.0
        assert deadline.remaining() == pytest.approx(1.0)
        clock_now[0] = 6.0
        assert deadline.expired
        assert deadline.remaining() == 0.0

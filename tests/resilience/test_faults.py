"""Unit tests for the fault-injection grammar and plan plumbing."""

import pytest

from repro.resilience import (
    ENV_FAULTS,
    FaultPlan,
    FaultSpec,
    fault_fires,
    get_fault_plan,
    set_fault_plan,
)


class TestParsing:
    def test_bare_site_is_one_shot(self):
        spec = FaultSpec.parse("qoc.no_converge")
        assert spec.site == "qoc.no_converge"
        assert spec.match == {}
        assert spec.remaining == 1

    def test_match_and_count(self):
        spec = FaultSpec.parse("worker.crash@chunk=2,stage=qoc*3")
        assert spec.site == "worker.crash"
        assert spec.match == {"chunk": "2", "stage": "qoc"}
        assert spec.remaining == 3

    def test_unlimited_count(self):
        assert FaultSpec.parse("synthesis.qsearch*-1").remaining == -1

    def test_multiple_specs(self):
        plan = FaultPlan.parse("a; b@k=v ;c*2")
        assert [spec.site for spec in plan.specs] == ["a", "b", "c"]

    def test_empty_text_is_inactive(self):
        assert not FaultPlan.parse(None).active
        assert not FaultPlan.parse("  ").active

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec.parse("site*lots")
        with pytest.raises(ValueError):
            FaultSpec.parse("@k=v")
        with pytest.raises(ValueError):
            FaultSpec.parse("site@novalue")


class TestFiring:
    def test_one_shot_consumes(self):
        plan = FaultPlan.parse("qoc.no_converge")
        assert plan.fire("qoc.no_converge")
        assert not plan.fire("qoc.no_converge")

    def test_context_matching(self):
        plan = FaultPlan.parse("worker.crash@chunk=1*-1")
        assert not plan.fire("worker.crash", chunk=0)
        assert plan.fire("worker.crash", chunk=1)
        assert plan.fire("worker.crash", chunk=1)  # unlimited
        # a spec key absent from the context never matches
        assert not plan.fire("worker.crash")

    def test_wrong_site_never_fires(self):
        plan = FaultPlan.parse("a")
        assert not plan.fire("b")
        assert plan.specs[0].remaining == 1


class TestGlobalPlan:
    def test_set_and_fire(self):
        set_fault_plan(FaultPlan.parse("pipeline.kill@item=3"))
        assert not fault_fires("pipeline.kill", item=0)
        assert fault_fires("pipeline.kill", item=3)
        assert not fault_fires("pipeline.kill", item=3)

    def test_env_is_parsed_lazily(self, monkeypatch):
        monkeypatch.setenv(ENV_FAULTS, "qoc.no_converge@qubits=2")
        set_fault_plan(None)  # re-arm lazy env parsing
        plan = get_fault_plan()
        assert plan.active
        assert fault_fires("qoc.no_converge", qubits=2)

    def test_inactive_plan_is_cheap_noop(self):
        set_fault_plan(FaultPlan())
        assert not fault_fires("anything", key=1)


class TestThreadSafety:
    def test_one_shot_fires_exactly_once_under_contention(self):
        import threading

        for _ in range(10):  # repeat to give a lost race a chance to show
            plan = FaultPlan.parse("synthesis.stall*1")
            workers = 16
            barrier = threading.Barrier(workers)
            fired = []
            lock = threading.Lock()

            def hammer():
                barrier.wait()
                result = plan.fire("synthesis.stall")
                with lock:
                    fired.append(result)

            threads = [
                threading.Thread(target=hammer) for _ in range(workers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert sum(fired) == 1
            assert plan.specs[0].remaining == 0


class TestFireParams:
    def test_params_extracted_not_matched(self):
        plan = FaultPlan.parse("synthesis.stall@seconds=5,strategy=qsearch")
        params = plan.fire_params(
            "synthesis.stall", ("seconds",), strategy="qsearch"
        )
        assert params == {"seconds": "5"}

    def test_context_keys_still_filter(self):
        plan = FaultPlan.parse("synthesis.stall@seconds=5,strategy=qsearch")
        assert (
            plan.fire_params(
                "synthesis.stall", ("seconds",), strategy="leap"
            )
            is None
        )

    def test_consumes_a_shot(self):
        plan = FaultPlan.parse("qoc.stall@seconds=1*1")
        assert plan.fire_params("qoc.stall", ("seconds",)) == {"seconds": "1"}
        assert plan.fire_params("qoc.stall", ("seconds",)) is None

    def test_missing_param_yields_empty_dict(self):
        plan = FaultPlan.parse("qoc.stall")
        assert plan.fire_params("qoc.stall", ("seconds",)) == {}

    def test_global_helper(self):
        from repro.resilience import fault_params

        set_fault_plan(FaultPlan.parse("qoc.stall@seconds=2,qubits=2*-1"))
        assert fault_params("qoc.stall", ("seconds",), qubits=2) == {
            "seconds": "2"
        }
        assert fault_params("qoc.stall", ("seconds",), qubits=3) is None

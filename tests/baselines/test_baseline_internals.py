"""Structure-level tests for the baseline flows (no GRAPE needed)."""

import math

import numpy as np
import pytest

from repro.baselines.accqoc import AccQOCFlow
from repro.baselines.paqoc import PAQOCFlow
from repro.circuits import QuantumCircuit, circuit_to_dag
from repro.circuits.transpile import decompose_to_cx_u3
from repro.partition import greedy_partition, regroup_circuit
from repro.pulse import GateLatencyModel


class TestAccQOCInternals:
    def test_mst_order_is_permutation(self):
        from repro.workloads import qft_circuit

        native = decompose_to_cx_u3(qft_circuit(4))
        items = regroup_circuit(native, qubit_limit=2, gate_limit=6)
        order = AccQOCFlow._mst_order(items)
        assert sorted(order) == list(range(len(items)))

    def test_mst_order_handles_duplicates(self):
        qc = QuantumCircuit(2)
        for _ in range(5):
            qc.cx(0, 1)  # identical unitaries
        items = regroup_circuit(qc, qubit_limit=2, gate_limit=1)
        order = AccQOCFlow._mst_order(items)
        assert sorted(order) == list(range(len(items)))

    def test_mst_order_tiny_input(self):
        qc = QuantumCircuit(2).cx(0, 1)
        items = regroup_circuit(qc, qubit_limit=2, gate_limit=1)
        assert AccQOCFlow._mst_order(items) == [0]

    def test_mixed_dimension_items(self):
        qc = QuantumCircuit(3).h(0).cx(1, 2)
        items = regroup_circuit(qc, qubit_limit=2, gate_limit=1)
        order = AccQOCFlow._mst_order(items)
        assert sorted(order) == list(range(len(items)))


class TestPAQOCInternals:
    def test_block_key_identifies_repeats(self):
        qc = QuantumCircuit(2)
        for _ in range(3):
            qc.h(0)
            qc.cx(0, 1)
        native = decompose_to_cx_u3(qc)
        blocks = greedy_partition(native, qubit_limit=2, gate_limit=2)
        keys = [PAQOCFlow._block_key(b) for b in blocks]
        assert len(set(keys)) < len(keys)  # repeats collapse

    def test_block_key_distinguishes_angles(self):
        qc1 = QuantumCircuit(1).rz(0.3, 0)
        qc2 = QuantumCircuit(1).rz(0.4, 0)
        b1 = greedy_partition(qc1, 1, 4)[0]
        b2 = greedy_partition(qc2, 1, 4)[0]
        assert PAQOCFlow._block_key(b1) != PAQOCFlow._block_key(b2)

    def test_criticality_matches_dag(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 1)
        qc.cx(0, 1)
        qc.h(2)  # off the critical path
        blocks = greedy_partition(qc, qubit_limit=2, gate_limit=2)
        dag = circuit_to_dag(qc)
        weights = dag.critical_path_weights(GateLatencyModel().duration)
        crit = PAQOCFlow._block_criticality(qc, blocks, weights)
        chain_block = next(b for b in blocks if 0 in b.qubits)
        lone_block = next(b for b in blocks if b.qubits == (2,))
        assert crit[chain_block.index] > crit[lone_block.index]


class TestGateLatencyConsistency:
    def test_cx_dominates_gate_based_ghz(self):
        from repro.workloads import ghz_state

        native = decompose_to_cx_u3(ghz_state(5))
        model = GateLatencyModel()
        total = sum(model.duration(g) for g in native.gates)
        cx_total = sum(
            model.duration(g) for g in native.gates if g.name == "cx"
        )
        assert cx_total / total > 0.5

"""The pulse library and EPOC's global-phase cache trick (Section 3.4).

Generates pulses for a family of unitaries that differ only by global
phase and by target qubit lines, and shows how the EPOC-style library
(global-phase-invariant keys) turns almost all of them into cache hits,
while the AccQOC/PAQOC-style exact-match library recomputes.

Run:  python examples/pulse_library_demo.py
"""

import numpy as np

from repro.circuits.gates import gate_matrix
from repro.config import QOCConfig
from repro.qoc import PulseLibrary


def main() -> None:
    config = QOCConfig(dt=1.0, fidelity_threshold=0.995, max_iterations=100)
    cx = gate_matrix("cx")
    requests = [
        (cx, (0, 1)),
        (np.exp(0.31j) * cx, (0, 1)),  # same gate, global phase attached
        (np.exp(-1.2j) * cx, (2, 3)),  # phase + different qubit lines
        (cx, (5, 6)),
        (gate_matrix("swap"), (0, 1)),
        (np.exp(2.2j) * gate_matrix("swap"), (1, 2)),
    ]

    for label, match_phase in (("EPOC (global-phase keys)", True),
                               ("AccQOC/PAQOC (exact keys)", False)):
        library = PulseLibrary(config=config, match_global_phase=match_phase)
        print(f"\n{label}")
        for matrix, qubits in requests:
            pulse = library.get_pulse(matrix, qubits)
            print(
                f"  pulse on {str(qubits):<7} duration {pulse.duration:>6.1f} ns  "
                f"(library: {library.hits} hits / {library.misses} misses)"
            )
        print(
            f"  -> hit rate {library.hit_rate:.0%}, "
            f"{len(library)} stored entries"
        )


if __name__ == "__main__":
    main()

"""ZX-calculus walkthrough on the paper's Figure 2 example (GHZ state).

Shows the stages of the graph-based depth optimization (Section 3.1):
circuit -> ZX diagram -> full_reduce -> extracted circuit, with diagram
statistics at each step, then sweeps the deep warm-started VQE family
(Figure 5's extreme case).

Run:  python examples/ghz_zx_demo.py
"""

from repro.linalg import equal_up_to_global_phase
from repro.workloads import clifford_vqe_ansatz, ghz_state
from repro.zx import circuit_to_zx, extract_circuit, full_reduce, optimize_circuit


def main() -> None:
    # --- the Figure 2 walkthrough: GHZ preparation ----------------------
    ghz = ghz_state(3)
    print("GHZ circuit:", ghz.count_ops(), "depth", ghz.depth())

    graph = circuit_to_zx(ghz)
    print("as ZX diagram:", graph)

    rewrites = full_reduce(graph)
    print(f"after full_reduce ({rewrites} rewrites):", graph)
    print("  spiders left:", len(graph.spiders()), "(the GHZ 'compact form')")

    extracted = extract_circuit(graph)
    same = equal_up_to_global_phase(ghz.unitary(), extracted.unitary())
    print("extracted circuit:", extracted.count_ops(), "equivalent:", same)

    # --- the Figure 5 extreme case: a deep warm-started VQE -------------
    print("\ndeep Clifford-point VQE ansatz (Figure 5 extreme case):")
    for layers in (25, 50, 100):
        deep = clifford_vqe_ansatz(6, layers=layers, seed=1)
        result = optimize_circuit(deep)
        print(
            f"  layers={layers:>4}  depth {result.depth_before:>4} -> "
            f"{result.depth_after:<4} ({result.depth_reduction:.1f}x reduction)"
        )


if __name__ == "__main__":
    main()

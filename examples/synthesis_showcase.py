"""Circuit synthesis showcase: QSearch, LEAP and QSD on the same targets.

Synthesizes three kinds of unitary — an easy structured block, a
Haar-random two-qubit gate, and a three-qubit target — with each engine
and compares CNOT counts, distances and which engine the production
dispatcher picks (Algorithm 2 + fallbacks).

Run:  python examples/synthesis_showcase.py
"""

import numpy as np

from repro.circuits import QuantumCircuit
from repro.linalg import random_unitary
from repro.synthesis import qsd_synthesize, qsearch_synthesize, synthesize_unitary


def main() -> None:
    rng = np.random.default_rng(42)

    structured = QuantumCircuit(3)
    structured.h(0)
    structured.cx(0, 1)
    structured.t(1)
    structured.cx(1, 2)
    targets = [
        ("structured 3q block", structured.unitary()),
        ("Haar-random 2q", random_unitary(4, rng)),
        ("Haar-random 3q", random_unitary(8, rng)),
    ]

    for name, target in targets:
        print(f"\n=== {name} ===")
        # modest budgets keep the demo snappy: Haar-random 3-qubit targets
        # need ~14 CNOTs, which the QSD fallback provides analytically
        # (raise max_cnots to ~20 to watch LEAP find the optimum instead)
        result = synthesize_unitary(target, qsearch_max_nodes=10, max_cnots=6)
        print(
            f"dispatcher -> {result.method:<8} cnots={result.cnot_count:<3} "
            f"distance={result.distance:.2e}"
        )
        qsd = qsd_synthesize(target)
        print(
            f"qsd         -> cnots={qsd.count_ops().get('cx', 0):<3} "
            f"gates={len(qsd)} (analytic upper bound)"
        )
        if target.shape[0] == 4:
            astar = qsearch_synthesize(target, max_cnots=4)
            print(
                f"qsearch A*  -> cnots={astar.cnot_count:<3} "
                f"nodes expanded={astar.nodes_expanded} (optimal for SU(4): 3)"
            )


if __name__ == "__main__":
    main()

"""Leakage study: why single-qubit pulses cannot be arbitrarily fast.

The two-level GRAPE backend happily produces a 2 ns X pulse; a real
transmon is a three-level system where that pulse would leak into level
|2>.  This example sweeps pulse durations on the qutrit model and prints
the fidelity/leakage trade-off curve — the physics behind calibrated
single-qubit gate durations.

Run:  python examples/leakage_study.py
"""

from repro.circuits.gates import gate_matrix
from repro.config import QOCConfig
from repro.qoc import ThreeLevelTransmon, grape_three_level


def main() -> None:
    config = QOCConfig(dt=1.0, fidelity_threshold=0.999, max_iterations=150)
    hardware = ThreeLevelTransmon(1)
    print(
        f"transmon anharmonicity: {hardware.anharmonicity} rad/ns; "
        f"max drive: {config.max_amplitude} rad/ns\n"
    )
    print(f"{'duration (ns)':>14}{'fidelity':>12}{'leakage':>12}")
    for segments in (2, 3, 4, 6, 8, 12, 16):
        result = grape_three_level(
            gate_matrix("x"), hardware, segments, config
        )
        print(
            f"{result.duration:>14.0f}{result.fidelity:>12.5f}"
            f"{result.leakage:>12.2e}"
        )
    print(
        "\nFast pulses drive population into |2>; past the anharmonicity "
        "speed limit the optimizer finds leakage-free DRAG-like envelopes."
    )


if __name__ == "__main__":
    main()

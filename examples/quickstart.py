"""Quickstart: compile a circuit to pulses with EPOC.

Builds a small GHZ-like circuit, runs the full EPOC pipeline (ZX
optimization -> greedy partition -> VUG synthesis -> regrouping -> GRAPE
pulse generation), and compares the result with the traditional
gate-based flow.

Run:  python examples/quickstart.py
"""

from repro.baselines import GateBasedFlow
from repro.circuits import QuantumCircuit
from repro.config import EPOCConfig, QOCConfig
from repro.core import EPOCPipeline


def main() -> None:
    # 1. Build a circuit with the fluent IR.
    circuit = QuantumCircuit(3)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.t(1)
    circuit.cx(1, 2)
    circuit.h(2)
    print("input circuit:", circuit)
    print(circuit.to_qasm())

    # 2. Configure the pipeline.  The QOC settings below favour speed;
    #    see repro.config.EPOCConfig for every knob.
    config = EPOCConfig(
        partition_qubit_limit=3,
        regroup_qubit_limit=2,
        qoc=QOCConfig(dt=1.0, fidelity_threshold=0.995, max_iterations=100),
    )

    # 3. Compile with EPOC and with the gate-based baseline.
    epoc = EPOCPipeline(config).compile(circuit, name="quickstart")
    gate_based = GateBasedFlow(config).compile(circuit, name="quickstart")

    # 4. Inspect the results.
    print("\n--- results ---")
    print(gate_based.summary_row())
    print(epoc.summary_row())
    saving = 100.0 * (1.0 - epoc.latency_ns / gate_based.latency_ns)
    print(f"\nEPOC latency saving vs gate-based: {saving:.1f}%")
    print(f"pulses played: {epoc.pulse_count} (gate-based: {gate_based.pulse_count})")
    print(f"qubit-line utilization: "
          f"{[round(u, 2) for u in epoc.schedule.line_utilization()]}")


if __name__ == "__main__":
    main()

OPENQASM 2.0;
include "qelib1.inc";
// coherent teleportation core (no mid-circuit measurement):
// entangle q1-q2, Bell-rotate q0-q1, classically-controlled fixups
// replaced by their coherent controlled versions
qreg q[3];
gate bellpair a, b { h a; cx a, b; }
bellpair q[1], q[2];
u3(pi/5, 0.3, -0.2) q[0];   // the state to teleport
cx q[0], q[1];
h q[0];
cx q[1], q[2];
cz q[0], q[2];

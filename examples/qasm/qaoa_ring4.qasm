OPENQASM 2.0;
include "qelib1.inc";
// one QAOA MaxCut round on a 4-node ring (gamma=0.7, beta=0.4)
qreg q[4];
h q;
rzz(0.7) q[0], q[1];
rzz(0.7) q[1], q[2];
rzz(0.7) q[2], q[3];
rzz(0.7) q[3], q[0];
rx(2*0.4) q;

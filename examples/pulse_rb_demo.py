"""Randomized benchmarking of GRAPE pulses.

Runs single-qubit RB twice: once over carefully optimized pulses (the
production QOC settings) and once over deliberately under-optimized
pulses, showing the survival-probability decay and the fitted error per
Clifford — the pulse-quality methodology of the paper's companion
fidelity-estimation work.

Run:  python examples/pulse_rb_demo.py
"""

from repro.config import QOCConfig
from repro.qoc import randomized_benchmarking


def main() -> None:
    settings = {
        "optimized pulses": QOCConfig(
            dt=1.0, fidelity_threshold=0.9999, max_iterations=150
        ),
        "sloppy pulses": QOCConfig(
            dt=1.0,
            fidelity_threshold=0.9,
            max_iterations=4,
            min_segments=2,
            max_segments=8,
        ),
    }
    lengths = (1, 2, 4, 8, 16, 32)
    for label, config in settings.items():
        result = randomized_benchmarking(
            config=config, sequence_lengths=lengths, samples_per_length=12
        )
        print(f"\n{label}:")
        for m, p in zip(result.sequence_lengths, result.survival_probabilities):
            bar = "#" * int(p * 40)
            print(f"  m={m:<3} survival={p:.4f} {bar}")
        print(
            f"  decay alpha = {result.decay_rate:.5f}  ->  "
            f"error/Clifford = {result.error_per_clifford:.2e}"
        )


if __name__ == "__main__":
    main()

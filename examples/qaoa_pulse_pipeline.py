"""Domain example: QAOA MaxCut compiled four ways.

Compiles a QAOA circuit with the gate-based flow, the AccQOC-like and
PAQOC-like baselines and the full EPOC pipeline, all against the same
hardware model, then reports the latency/fidelity table — a miniature of
the paper's Table 1 on a single workload.

Run:  python examples/qaoa_pulse_pipeline.py
"""

from repro.baselines import AccQOCFlow, GateBasedFlow, PAQOCFlow
from repro.config import EPOCConfig, QOCConfig
from repro.core import EPOCPipeline
from repro.workloads import qaoa_maxcut


def main() -> None:
    circuit = qaoa_maxcut(num_qubits=4, layers=1)
    print("QAOA circuit:", circuit.count_ops(), "depth", circuit.depth())

    config = EPOCConfig(
        partition_qubit_limit=3,
        regroup_qubit_limit=3,
        qoc=QOCConfig(dt=1.0, fidelity_threshold=0.995, max_iterations=100),
    )

    flows = [
        GateBasedFlow(config),
        AccQOCFlow(config),
        PAQOCFlow(config),
        EPOCPipeline(config),
    ]
    print("\ncompiling with four flows (GRAPE runs take a minute)...\n")
    reports = [flow.compile(circuit, "qaoa") for flow in flows]

    print(f"{'flow':<12}{'latency (ns)':>14}{'fidelity':>10}{'pulses':>8}")
    for report in reports:
        print(
            f"{report.method:<12}{report.latency_ns:>14.1f}"
            f"{report.fidelity:>10.4f}{report.pulse_count:>8}"
        )

    gate, epoc = reports[0], reports[-1]
    print(
        f"\nEPOC saves {100 * (1 - epoc.latency_ns / gate.latency_ns):.1f}% "
        f"latency vs the gate-based flow on this workload."
    )


if __name__ == "__main__":
    main()

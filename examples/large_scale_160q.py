"""Scalability validation: a 160-qubit program through the full pipeline.

The paper: "We validated our framework by testing it with a large and
deep 160-qubit quantum program, obtaining meaningful results."  The
pipeline never builds a global unitary — every exponential-cost object is
a <= 3-qubit block — so register width only enters through graph- and
list-sized passes.  This example compiles a 160-qubit Trotterized Ising
evolution and a 160-qubit GHZ ladder and reports schedule statistics.

Run:  python examples/large_scale_160q.py   (takes a few minutes)
"""

import time

from repro.circuits import QuantumCircuit
from repro.config import EPOCConfig, QOCConfig
from repro.core import EPOCPipeline
from repro.qoc import PulseLibrary
from repro.workloads import ghz_state, ising_trotter


def main() -> None:
    num_qubits = 160
    config = EPOCConfig(
        partition_qubit_limit=3,
        regroup_qubit_limit=3,
        qoc=QOCConfig(dt=1.0, fidelity_threshold=0.995, max_iterations=100),
    )
    library = PulseLibrary(config=config.qoc, match_global_phase=True)
    pipeline = EPOCPipeline(config, library=library)

    programs = {
        "ghz-160": ghz_state(num_qubits),
        "ising-160": ising_trotter(num_qubits, steps=2),
    }
    for name, circuit in programs.items():
        print(f"\n=== {name}: {len(circuit)} gates, depth {circuit.depth()} ===")
        start = time.perf_counter()
        report = pipeline.compile(circuit, name)
        elapsed = time.perf_counter() - start
        print(report.summary_row())
        print(
            f"  QOC items: {report.stats['qoc_items']:.0f}  "
            f"cache: {library.hits} hits / {library.misses} misses  "
            f"wall: {elapsed:.1f}s"
        )
        utilization = report.schedule.line_utilization()
        print(
            f"  mean line utilization: "
            f"{sum(utilization) / len(utilization):.2f}"
        )


if __name__ == "__main__":
    main()

"""Why latency matters: the four flows under NISQ decoherence.

Compiles one workload with every flow and scores each schedule with the
coherence-aware ESP: pulse-level fidelity (Eq. 3) times T1/T2 decay over
the schedule.  On short-coherence hardware the latency savings of EPOC
translate directly into higher end-to-end fidelity — the paper's core
motivation, quantified.

Run:  python examples/decoherence_comparison.py
"""

from repro.baselines import GateBasedFlow, PAQOCFlow
from repro.config import EPOCConfig, QOCConfig
from repro.core import CoherenceModel, EPOCPipeline, esp_with_decoherence
from repro.workloads import qaoa_maxcut


def main() -> None:
    circuit = qaoa_maxcut(4, layers=1)
    config = EPOCConfig(
        partition_qubit_limit=3,
        regroup_qubit_limit=3,
        qoc=QOCConfig(dt=1.0, fidelity_threshold=0.995, max_iterations=100),
    )
    flows = [GateBasedFlow(config), PAQOCFlow(config), EPOCPipeline(config)]
    print("compiling (GRAPE runs take a minute)...\n")
    reports = [flow.compile(circuit, "qaoa") for flow in flows]

    # sweep hardware quality: generous to harsh coherence windows
    models = {
        "T1=100us": CoherenceModel(t1_ns=100_000.0, t2_ns=80_000.0),
        "T1=20us": CoherenceModel(t1_ns=20_000.0, t2_ns=15_000.0),
        "T1=5us": CoherenceModel(t1_ns=5_000.0, t2_ns=4_000.0),
    }
    header = f"{'flow':<12}{'latency':>9}{'pulse ESP':>11}" + "".join(
        f"{name:>12}" for name in models
    )
    print(header)
    for report in reports:
        cells = "".join(
            f"{esp_with_decoherence(report.fidelity, report.schedule, m):>12.4f}"
            for m in models.values()
        )
        print(
            f"{report.method:<12}{report.latency_ns:>9.1f}"
            f"{report.fidelity:>11.4f}{cells}"
        )
    print(
        "\nThe harsher the coherence window, the more EPOC's latency "
        "reduction dominates end-to-end fidelity."
    )


if __name__ == "__main__":
    main()

"""Single-qubit Euler-angle decompositions.

These are used by the synthesis subsystem (to express optimized variable
unitary gates back as native ``u3`` rotations) and by tests as an oracle.
"""

from __future__ import annotations

import cmath
import math
from typing import Tuple

import numpy as np

from repro.exceptions import SynthesisError

__all__ = ["su2_params", "zyz_angles", "euler_decompose_u3"]


def su2_params(matrix: np.ndarray) -> Tuple[np.ndarray, float]:
    """Project a 2x2 unitary onto SU(2).

    Returns ``(special, phase)`` with ``matrix = exp(i * phase) * special``
    and ``det(special) == 1``.
    """
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (2, 2):
        raise SynthesisError(f"expected a 2x2 matrix, got shape {matrix.shape}")
    det = matrix[0, 0] * matrix[1, 1] - matrix[0, 1] * matrix[1, 0]
    if abs(det) < 1e-12:
        raise SynthesisError("matrix is singular; not a unitary")
    phase = cmath.phase(det) / 2.0
    special = matrix * cmath.exp(-1j * phase)
    return special, phase


def zyz_angles(matrix: np.ndarray) -> Tuple[float, float, float, float]:
    """ZYZ Euler decomposition of a 2x2 unitary.

    Returns ``(theta, phi, lam, phase)`` such that

        matrix = exp(i * phase) * Rz(phi) @ Ry(theta) @ Rz(lam)

    with ``Rz(a) = diag(e^{-ia/2}, e^{ia/2})`` and
    ``Ry(t) = [[cos(t/2), -sin(t/2)], [sin(t/2), cos(t/2)]]``.
    """
    special, phase = su2_params(matrix)
    # In SU(2): special = [[cos(t/2) e^{-i(phi+lam)/2}, -sin(t/2) e^{-i(phi-lam)/2}],
    #                      [sin(t/2) e^{ i(phi-lam)/2},  cos(t/2) e^{ i(phi+lam)/2}]]
    theta = 2.0 * math.atan2(abs(special[1, 0]), abs(special[0, 0]))
    if abs(special[0, 0]) > 1e-12 and abs(special[1, 0]) > 1e-12:
        phi_plus_lam = 2.0 * cmath.phase(special[1, 1])
        phi_minus_lam = 2.0 * cmath.phase(special[1, 0])
        phi = (phi_plus_lam + phi_minus_lam) / 2.0
        lam = (phi_plus_lam - phi_minus_lam) / 2.0
    elif abs(special[1, 0]) <= 1e-12:
        # theta ~ 0: only phi + lam is determined; put it all in phi.
        phi = 2.0 * cmath.phase(special[1, 1])
        lam = 0.0
    else:
        # theta ~ pi: only phi - lam is determined; put it all in phi.
        phi = 2.0 * cmath.phase(special[1, 0])
        lam = 0.0
    return theta, phi, lam, phase


def euler_decompose_u3(matrix: np.ndarray) -> Tuple[float, float, float, float]:
    """Decompose a 2x2 unitary as ``exp(i*gamma) * U3(theta, phi, lam)``.

    ``U3`` follows the OpenQASM convention:

        U3(t, p, l) = [[cos(t/2),            -e^{il} sin(t/2)],
                       [e^{ip} sin(t/2),  e^{i(p+l)} cos(t/2)]]

    which relates to ZYZ by ``U3 = e^{i(p+l)/2} Rz(p) Ry(t) Rz(l)``.
    """
    theta, phi, lam, phase = zyz_angles(matrix)
    gamma = phase - (phi + lam) / 2.0
    return theta, phi, lam, gamma

"""Unitary-matrix metrics and constructors.

All comparison helpers treat matrices that differ only by a global phase as
equivalent, because a global phase is unobservable and EPOC's pulse library
explicitly keys unitaries *up to* global phase (Section 3.4 of the paper).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "is_unitary",
    "global_phase_align",
    "hilbert_schmidt_overlap",
    "hs_distance",
    "unitary_distance",
    "average_gate_fidelity",
    "process_fidelity",
    "equal_up_to_global_phase",
    "random_unitary",
    "random_hermitian",
    "closest_unitary",
]


def is_unitary(matrix: np.ndarray, atol: float = 1e-9) -> bool:
    """Return ``True`` when ``matrix`` is square and satisfies U†U = I."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    identity = np.eye(matrix.shape[0])
    return np.allclose(matrix.conj().T @ matrix, identity, atol=atol)


def hilbert_schmidt_overlap(u: np.ndarray, v: np.ndarray) -> complex:
    """Return ``tr(U† V)``, the (unnormalized) Hilbert-Schmidt inner product."""
    return complex(np.trace(np.asarray(u).conj().T @ np.asarray(v)))


def hs_distance(u: np.ndarray, v: np.ndarray) -> float:
    """Global-phase-invariant Hilbert-Schmidt distance in ``[0, 1]``.

    Defined as ``1 - |tr(U†V)| / d`` where ``d`` is the dimension.  This is
    the cost function used by QSearch-style synthesis (Algorithm 2) and by
    the GRAPE fidelity objective.
    """
    d = np.asarray(u).shape[0]
    return 1.0 - abs(hilbert_schmidt_overlap(u, v)) / d


def unitary_distance(u: np.ndarray, v: np.ndarray) -> float:
    """Global-phase-aligned operator (spectral-norm) distance.

    This is the ``|U_i - H_i(t)|`` appearing in the paper's ESP fidelity
    definition (Eq. 3); we align the global phase first so that equivalent
    unitaries have distance 0.
    """
    aligned = global_phase_align(u, v)
    return float(np.linalg.norm(np.asarray(u) - aligned, ord=2))


def global_phase_align(reference: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Return ``matrix`` multiplied by the phase that best matches ``reference``.

    The optimal phase maximizes ``Re(e^{-iφ} tr(ref† matrix))`` and equals the
    phase of the trace overlap.
    """
    overlap = hilbert_schmidt_overlap(reference, matrix)
    if abs(overlap) < 1e-14:
        return np.asarray(matrix)
    phase = overlap / abs(overlap)
    return np.asarray(matrix) / phase


def average_gate_fidelity(u: np.ndarray, v: np.ndarray) -> float:
    """Average gate fidelity between two unitaries of dimension ``d``.

    ``F_avg = (d * F_pro + 1) / (d + 1)`` with process fidelity
    ``F_pro = |tr(U†V)|² / d²``.
    """
    d = np.asarray(u).shape[0]
    f_pro = process_fidelity(u, v)
    return (d * f_pro + 1.0) / (d + 1.0)


def process_fidelity(u: np.ndarray, v: np.ndarray) -> float:
    """Process fidelity ``|tr(U†V)|² / d²`` (global-phase invariant)."""
    d = np.asarray(u).shape[0]
    return abs(hilbert_schmidt_overlap(u, v)) ** 2 / d**2


def equal_up_to_global_phase(
    u: np.ndarray, v: np.ndarray, atol: float = 1e-7
) -> bool:
    """Return ``True`` when U = e^{iφ} V for some real φ."""
    u = np.asarray(u)
    v = np.asarray(v)
    if u.shape != v.shape:
        return False
    return np.allclose(u, global_phase_align(u, v), atol=atol)


def random_unitary(dim: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """Sample a Haar-random unitary of dimension ``dim``.

    Uses the QR decomposition of a complex Ginibre matrix with the standard
    phase correction (Mezzadri 2007) so the distribution is exactly Haar.
    """
    rng = np.random.default_rng() if rng is None else rng
    ginibre = rng.standard_normal((dim, dim)) + 1j * rng.standard_normal((dim, dim))
    q, r = np.linalg.qr(ginibre)
    diag = np.diagonal(r)
    q = q * (diag / np.abs(diag))
    return q


def random_hermitian(dim: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """Sample a random Hermitian matrix with Gaussian entries."""
    rng = np.random.default_rng() if rng is None else rng
    a = rng.standard_normal((dim, dim)) + 1j * rng.standard_normal((dim, dim))
    return (a + a.conj().T) / 2.0


def closest_unitary(matrix: np.ndarray) -> np.ndarray:
    """Project ``matrix`` onto the unitary group via polar decomposition."""
    u, _, vh = np.linalg.svd(np.asarray(matrix))
    return u @ vh

"""Linear-algebra substrate shared by every subsystem.

The helpers here are deliberately dependency-light (numpy/scipy only) and
cover the three recurring needs of the EPOC pipeline:

* unitary comparison metrics that are invariant under global phase
  (:mod:`repro.linalg.unitary`),
* embedding of small operators into larger qubit registers
  (:mod:`repro.linalg.tensor`),
* classic decompositions used by the synthesis subsystem and by tests
  (:mod:`repro.linalg.decompose`), and
* GF(2) linear algebra used by ZX circuit extraction
  (:mod:`repro.linalg.gf2`).
"""

from repro.linalg.unitary import (
    is_unitary,
    global_phase_align,
    hilbert_schmidt_overlap,
    hs_distance,
    average_gate_fidelity,
    process_fidelity,
    unitary_distance,
    equal_up_to_global_phase,
    random_unitary,
    random_hermitian,
    closest_unitary,
)
from repro.linalg.tensor import (
    kron_all,
    embed_operator,
    permute_qubits,
    apply_gate_to_state,
)
from repro.linalg.decompose import (
    zyz_angles,
    su2_params,
    euler_decompose_u3,
)
from repro.linalg.gf2 import GF2Matrix

__all__ = [
    "is_unitary",
    "global_phase_align",
    "hilbert_schmidt_overlap",
    "hs_distance",
    "average_gate_fidelity",
    "process_fidelity",
    "unitary_distance",
    "equal_up_to_global_phase",
    "random_unitary",
    "random_hermitian",
    "closest_unitary",
    "kron_all",
    "embed_operator",
    "permute_qubits",
    "apply_gate_to_state",
    "zyz_angles",
    "su2_params",
    "euler_decompose_u3",
    "GF2Matrix",
]

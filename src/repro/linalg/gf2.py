"""Dense linear algebra over GF(2).

The ZX circuit-extraction algorithm reduces the biadjacency matrix between
the extraction frontier and its neighbours with Gaussian elimination over
GF(2); every row operation corresponds to a CNOT in the extracted circuit.
The ``row_op_callback`` hook exposes exactly that correspondence.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

__all__ = ["GF2Matrix"]

RowOpCallback = Callable[[int, int], None]


class GF2Matrix:
    """A mutable matrix over GF(2) backed by a uint8 numpy array."""

    def __init__(self, data: Sequence[Sequence[int]] | np.ndarray):
        array = np.array(data, dtype=np.uint8) % 2
        if array.ndim != 2:
            raise ValueError("GF2Matrix requires a 2-D array")
        self.data = array

    # -- constructors ------------------------------------------------------

    @classmethod
    def identity(cls, n: int) -> "GF2Matrix":
        """The n x n identity matrix."""
        return cls(np.eye(n, dtype=np.uint8))

    @classmethod
    def zeros(cls, rows: int, cols: int) -> "GF2Matrix":
        """The all-zero rows x cols matrix."""
        return cls(np.zeros((rows, cols), dtype=np.uint8))

    # -- basic protocol ----------------------------------------------------

    @property
    def shape(self) -> tuple:
        return self.data.shape

    def copy(self) -> "GF2Matrix":
        return GF2Matrix(self.data.copy())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GF2Matrix) and np.array_equal(self.data, other.data)

    def __hash__(self):  # pragma: no cover - mutable, not hashable
        raise TypeError("GF2Matrix is mutable and unhashable")

    def __repr__(self) -> str:
        return f"GF2Matrix({self.data.tolist()!r})"

    def __matmul__(self, other: "GF2Matrix") -> "GF2Matrix":
        return GF2Matrix((self.data.astype(np.uint32) @ other.data) % 2)

    # -- row operations ----------------------------------------------------

    def add_row(self, src: int, dst: int) -> None:
        """Add (XOR) row ``src`` into row ``dst``."""
        self.data[dst] ^= self.data[src]

    def swap_rows(self, i: int, j: int) -> None:
        self.data[[i, j]] = self.data[[j, i]]

    # -- elimination -------------------------------------------------------

    def gauss(
        self,
        full_reduce: bool = False,
        row_op_callback: Optional[RowOpCallback] = None,
        pivot_cols: Optional[List[int]] = None,
        blocksize: int = 0,
    ) -> int:
        """In-place Gaussian elimination; returns the rank.

        ``row_op_callback(src, dst)`` is invoked for every row addition so a
        caller can mirror the operations (e.g. as CNOT gates).  Row *swaps*
        are performed as three additions so the callback sees a complete,
        CNOT-only account of the elimination.  When ``pivot_cols`` is given
        it is filled with the pivot column of each pivot row.

        ``blocksize > 0`` enables the Patel-Markov-Hayes style chunking used
        by PyZX: within each column chunk, duplicate row patterns are
        eliminated first, which reduces the total number of row operations
        (and hence extracted CNOTs) on larger matrices.
        """
        rows, cols = self.data.shape

        def add(src: int, dst: int) -> None:
            self.add_row(src, dst)
            if row_op_callback is not None:
                row_op_callback(src, dst)

        pivot_row = 0
        if pivot_cols is not None:
            pivot_cols.clear()

        col_chunks: List[tuple]
        if blocksize and cols > blocksize:
            col_chunks = [
                (start, min(start + blocksize, cols))
                for start in range(0, cols, blocksize)
            ]
        else:
            col_chunks = [(0, cols)]

        for chunk_start, chunk_end in col_chunks:
            if blocksize and chunk_end - chunk_start > 1:
                # Remove duplicate sub-rows within this chunk first.
                seen: dict = {}
                for r in range(pivot_row, rows):
                    pattern = self.data[r, chunk_start:chunk_end].tobytes()
                    if int(np.any(self.data[r, chunk_start:chunk_end])) == 0:
                        continue
                    if pattern in seen:
                        add(seen[pattern], r)
                    else:
                        seen[pattern] = r
            for col in range(chunk_start, chunk_end):
                if pivot_row >= rows:
                    break
                pivot = -1
                for r in range(pivot_row, rows):
                    if self.data[r, col]:
                        pivot = r
                        break
                if pivot == -1:
                    continue
                if pivot != pivot_row:
                    # Swap via three additions so the callback sees CNOTs only.
                    add(pivot, pivot_row)
                    add(pivot_row, pivot)
                    add(pivot, pivot_row)
                for r in range(pivot_row + 1, rows):
                    if self.data[r, col]:
                        add(pivot_row, r)
                if pivot_cols is not None:
                    pivot_cols.append(col)
                pivot_row += 1

        rank = pivot_row
        if full_reduce:
            for p in range(rank - 1, -1, -1):
                row = self.data[p]
                nonzero = np.nonzero(row)[0]
                if len(nonzero) == 0:  # pragma: no cover - defensive
                    continue
                col = int(nonzero[0])
                for r in range(p):
                    if self.data[r, col]:
                        add(p, r)
        return rank

    def rank(self) -> int:
        """Rank over GF(2) (does not modify the matrix)."""
        return self.copy().gauss()

    def inverse(self) -> "GF2Matrix":
        """Inverse over GF(2); raises ``ValueError`` when singular."""
        rows, cols = self.data.shape
        if rows != cols:
            raise ValueError("only square matrices can be inverted")
        work = self.copy()
        result = GF2Matrix.identity(rows)

        def mirror(src: int, dst: int) -> None:
            result.add_row(src, dst)

        rank = work.gauss(full_reduce=True, row_op_callback=mirror)
        if rank != rows:
            raise ValueError("matrix is singular over GF(2)")
        return result

    def nullspace(self) -> List[np.ndarray]:
        """A basis of the right null space as a list of 0/1 vectors."""
        rows, cols = self.data.shape
        work = self.copy()
        pivot_cols: List[int] = []
        work.gauss(full_reduce=True, pivot_cols=pivot_cols)
        free_cols = [c for c in range(cols) if c not in pivot_cols]
        basis = []
        for free in free_cols:
            vec = np.zeros(cols, dtype=np.uint8)
            vec[free] = 1
            for row_idx, pivot_col in enumerate(pivot_cols):
                if work.data[row_idx, free]:
                    vec[pivot_col] = 1
            basis.append(vec)
        return basis

    def solve(self, rhs: np.ndarray) -> Optional[np.ndarray]:
        """Solve ``self @ x = rhs`` over GF(2); ``None`` when inconsistent."""
        rows, cols = self.data.shape
        rhs = np.asarray(rhs, dtype=np.uint8) % 2
        augmented = GF2Matrix(np.column_stack([self.data, rhs]))
        pivot_cols: List[int] = []
        augmented.gauss(full_reduce=True, pivot_cols=pivot_cols)
        x = np.zeros(cols, dtype=np.uint8)
        for row_idx, pivot_col in enumerate(pivot_cols):
            if pivot_col == cols:
                return None  # pivot in the RHS column: inconsistent system
            x[pivot_col] = augmented.data[row_idx, cols]
        return x

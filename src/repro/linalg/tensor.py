"""Tensor-product helpers for embedding small operators into registers.

Convention used across the whole library: **big-endian** qubit ordering.
Qubit 0 is the most-significant bit of a basis-state index, so a register
state reshaped to ``(2,) * n`` has qubit ``q`` on axis ``q``.  The unitary
of a circuit is therefore ``kron(U_on_q0, U_on_q1, ...)`` for a layer of
single-qubit gates.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import CircuitError

__all__ = [
    "kron_all",
    "permute_qubits",
    "embed_operator",
    "apply_gate_to_state",
]


def kron_all(matrices: Iterable[np.ndarray]) -> np.ndarray:
    """Kronecker product of ``matrices`` in order (left factor = qubit 0)."""
    result = np.eye(1, dtype=complex)
    for matrix in matrices:
        result = np.kron(result, np.asarray(matrix, dtype=complex))
    return result


def permute_qubits(matrix: np.ndarray, qubit_map: Sequence[int]) -> np.ndarray:
    """Relabel the qubits an ``n``-qubit operator acts on.

    ``qubit_map[i]`` gives the new label of the qubit that ``matrix``
    currently treats as qubit ``i``.  The returned operator acts identically
    on the relabeled register.
    """
    matrix = np.asarray(matrix, dtype=complex)
    n = _num_qubits_of(matrix.shape[0])
    if sorted(qubit_map) != list(range(n)):
        raise CircuitError(f"qubit_map {qubit_map!r} is not a permutation of 0..{n - 1}")
    inverse = [0] * n
    for old, new in enumerate(qubit_map):
        inverse[new] = old
    tensor = matrix.reshape((2,) * (2 * n))
    axes = inverse + [n + axis for axis in inverse]
    return tensor.transpose(axes).reshape(matrix.shape)


def embed_operator(
    operator: np.ndarray, targets: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Embed a ``k``-qubit operator acting on ``targets`` into ``num_qubits``.

    ``targets`` lists, in order, which register qubit each operator qubit
    acts on, so ``embed_operator(CX, (2, 0), 3)`` puts the control on qubit 2
    and the target on qubit 0.
    """
    operator = np.asarray(operator, dtype=complex)
    k = _num_qubits_of(operator.shape[0])
    if len(set(targets)) != len(targets):
        raise CircuitError(f"duplicate target qubits: {targets!r}")
    if len(targets) != k:
        raise CircuitError(
            f"operator acts on {k} qubits but {len(targets)} targets given"
        )
    if any(q < 0 or q >= num_qubits for q in targets):
        raise CircuitError(f"targets {targets!r} out of range for {num_qubits} qubits")
    rest = [q for q in range(num_qubits) if q not in targets]
    full = np.kron(operator, np.eye(2 ** len(rest), dtype=complex))
    return permute_qubits(full, list(targets) + rest)


def apply_gate_to_state(
    gate: np.ndarray,
    state: np.ndarray,
    targets: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply a ``k``-qubit gate to a state vector or a batch of columns.

    ``state`` may have shape ``(2**n,)`` or ``(2**n, batch)``; the latter is
    used to build full circuit unitaries column-by-column without forming
    embedded ``2**n x 2**n`` gate matrices.
    """
    gate = np.asarray(gate, dtype=complex)
    state = np.asarray(state, dtype=complex)
    k = len(targets)
    if gate.shape != (2**k, 2**k):
        raise CircuitError(
            f"gate shape {gate.shape} does not match {k} target qubits"
        )
    batch_shape = state.shape[1:]
    tensor = state.reshape((2,) * num_qubits + batch_shape)
    moved = np.moveaxis(tensor, list(targets), list(range(k)))
    flat = moved.reshape(2**k, -1)
    out = (gate @ flat).reshape((2,) * k + moved.shape[k:])
    restored = np.moveaxis(out, list(range(k)), list(targets))
    return np.ascontiguousarray(restored.reshape(state.shape))


def _num_qubits_of(dim: int) -> int:
    """Return ``log2(dim)``, raising when ``dim`` is not a power of two."""
    n = int(dim).bit_length() - 1
    if 2**n != dim:
        raise CircuitError(f"dimension {dim} is not a power of two")
    return n

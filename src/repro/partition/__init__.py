"""Circuit partitioning: greedy blocks (Algorithm 1) and VUG regrouping."""

from repro.partition.block import CircuitBlock, blocks_to_circuit
from repro.partition.greedy import greedy_partition
from repro.partition.regroup import (
    RegroupedUnitary,
    regroup_circuit,
    blocks_as_unitaries,
)

__all__ = [
    "CircuitBlock",
    "blocks_to_circuit",
    "greedy_partition",
    "RegroupedUnitary",
    "regroup_circuit",
    "blocks_as_unitaries",
]

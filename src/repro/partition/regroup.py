"""Regrouping of synthesized VUGs into larger unitaries (Section 3.3).

Synthesis leaves a circuit of fine-grained variable unitary gates (VUGs)
and CNOTs.  Feeding those to QOC one at a time wastes the optimizer (the
matrices are tiny) and hurts both latency and fidelity; EPOC therefore
*regroups* them into unitaries of a few qubits before pulse generation.
Mechanically this is the same greedy partition with its own limits,
followed by computing each group's unitary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.partition.block import CircuitBlock
from repro.partition.greedy import greedy_partition

__all__ = ["RegroupedUnitary", "regroup_circuit", "blocks_as_unitaries"]


@dataclass(frozen=True)
class RegroupedUnitary:
    """One QOC work item: a unitary on a (global) qubit subset."""

    qubits: Tuple[int, ...]
    matrix: np.ndarray
    #: how many primitive gates were aggregated (for reporting)
    source_gates: int

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    @property
    def dim(self) -> int:
        return self.matrix.shape[0]


def regroup_circuit(
    circuit: QuantumCircuit,
    qubit_limit: int = 3,
    gate_limit: int = 16,
) -> List[RegroupedUnitary]:
    """Aggregate a (possibly VUG-bearing) circuit into unitary work items.

    The returned list is ordered: applying the unitaries in sequence on
    their qubits reproduces the input circuit's unitary.
    """
    blocks = greedy_partition(circuit, qubit_limit=qubit_limit, gate_limit=gate_limit)
    return blocks_as_unitaries(blocks)


def blocks_as_unitaries(blocks: Sequence[CircuitBlock]) -> List[RegroupedUnitary]:
    """Compute the unitary of each block."""
    return [
        RegroupedUnitary(
            qubits=block.qubits,
            matrix=block.unitary(),
            source_gates=block.num_gates,
        )
        for block in blocks
    ]

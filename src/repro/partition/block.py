"""Circuit blocks: contiguous gate groups on a qubit subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import PartitionError
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate

__all__ = ["CircuitBlock", "blocks_to_circuit"]


@dataclass
class CircuitBlock:
    """A group of gates acting on ``qubits`` of a larger register.

    ``circuit`` is expressed on *local* wire indices ``0..len(qubits)-1``;
    ``qubits[i]`` is the global qubit that local wire ``i`` lives on.
    """

    qubits: Tuple[int, ...]
    circuit: QuantumCircuit
    #: position of the block in the partition order (for debugging/plots)
    index: int = 0
    #: indices of the member gates in the source circuit's unitary-gate
    #: list (used by criticality analysis); empty when unknown
    source_indices: Tuple[int, ...] = ()

    def __post_init__(self):
        if len(self.qubits) != self.circuit.num_qubits:
            raise PartitionError(
                f"block qubits {self.qubits} do not match a "
                f"{self.circuit.num_qubits}-wire circuit"
            )
        if list(self.qubits) != sorted(set(self.qubits)):
            raise PartitionError(f"block qubits must be sorted and unique: {self.qubits}")

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    @property
    def num_gates(self) -> int:
        return len(self.circuit)

    def unitary(self) -> np.ndarray:
        """The block's local unitary (dimension ``2**len(qubits)``)."""
        return self.circuit.unitary()

    def to_global_gate(self) -> Gate:
        """The block as a raw-unitary gate on its global qubits."""
        return Gate("unitary", self.qubits, matrix_override=self.unitary())

    def __repr__(self) -> str:
        return (
            f"CircuitBlock(qubits={self.qubits}, gates={self.num_gates}, "
            f"index={self.index})"
        )


def blocks_to_circuit(
    blocks: Sequence[CircuitBlock], num_qubits: int
) -> QuantumCircuit:
    """Recompose a block list into a flat circuit (for equivalence tests)."""
    out = QuantumCircuit(num_qubits)
    for block in blocks:
        for gate in block.circuit.gates:
            out.append(
                gate.with_qubits(tuple(block.qubits[q] for q in gate.qubits))
            )
    return out

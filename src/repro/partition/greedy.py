"""Greedy circuit partitioning (Algorithm 1 of the paper).

The partitioner works in two phases per block, exactly as the paper
describes: *horizontal cutting* picks a qubit group (a seed qubit plus the
qubits it interacts with next, capped at the qubit limit), then *vertical
cutting* fills the block with as many schedulable gates on that group as
possible, up to the gate limit.

Scheduling correctness: a gate joins the current block only when every
earlier gate sharing one of its qubits has already been consumed, so
concatenating the blocks in emission order always reproduces the original
circuit (property-tested in ``tests/partition``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.exceptions import PartitionError
from repro.circuits.circuit import QuantumCircuit
from repro.partition.block import CircuitBlock

__all__ = ["greedy_partition"]


def greedy_partition(
    circuit: QuantumCircuit,
    qubit_limit: int = 3,
    gate_limit: int = 24,
) -> List[CircuitBlock]:
    """Partition ``circuit`` into blocks of <= ``qubit_limit`` qubits and
    <= ``gate_limit`` gates.

    Pseudo-ops (barrier/measure/reset) are dropped; gates wider than
    ``qubit_limit`` raise :class:`PartitionError` (synthesize or decompose
    them first).
    """
    if qubit_limit < 1:
        raise PartitionError("qubit_limit must be >= 1")
    if gate_limit < 1:
        raise PartitionError("gate_limit must be >= 1")
    gates = circuit.unitary_gates()
    for gate in gates:
        if gate.num_qubits > qubit_limit:
            raise PartitionError(
                f"gate {gate.name!r} on {gate.num_qubits} qubits exceeds the "
                f"partition qubit limit {qubit_limit}"
            )

    consumed = [False] * len(gates)
    remaining = len(gates)
    cursor = 0  # first unconsumed gate
    blocks: List[CircuitBlock] = []

    while remaining:
        while consumed[cursor]:
            cursor += 1
        group = _grow_group(gates, consumed, cursor, qubit_limit)
        members = _fill_block(gates, consumed, cursor, group, gate_limit)
        if not members:  # pragma: no cover - _grow_group seeds from cursor
            raise PartitionError("partitioner failed to make progress")
        for index in members:
            consumed[index] = True
        remaining -= len(members)
        blocks.append(_make_block(gates, members, group, len(blocks)))
    return blocks


def _grow_group(
    gates, consumed: List[bool], cursor: int, qubit_limit: int
) -> Tuple[int, ...]:
    """Horizontal cut: seed from the front gate, extend with the qubits the
    group interacts with next (Algorithm 1's GroupQubits)."""
    group: Set[int] = set(gates[cursor].qubits)
    if len(group) > qubit_limit:  # pragma: no cover - validated upstream
        raise PartitionError("front gate wider than the qubit limit")
    blocked: Set[int] = set()
    for index in range(cursor, len(gates)):
        if len(group) >= qubit_limit:
            break
        if consumed[index]:
            continue
        qubits = set(gates[index].qubits)
        if qubits & blocked:
            blocked |= qubits
            continue
        if qubits & group and len(group | qubits) <= qubit_limit:
            group |= qubits
        elif qubits & group:
            # interacts but does not fit: its qubits become unavailable
            blocked |= qubits
    return tuple(sorted(group))


def _fill_block(
    gates,
    consumed: List[bool],
    cursor: int,
    group: Tuple[int, ...],
    gate_limit: int,
) -> List[int]:
    """Vertical cut: absorb schedulable gates on ``group`` in program order.

    A qubit becomes *blocked* as soon as we skip a gate touching it, which
    keeps dependencies intact.
    """
    group_set = set(group)
    blocked: Set[int] = set()
    members: List[int] = []
    for index in range(cursor, len(gates)):
        if len(members) >= gate_limit:
            break
        if consumed[index]:
            continue
        qubits = set(gates[index].qubits)
        if qubits <= group_set and not (qubits & blocked):
            members.append(index)
        else:
            blocked |= qubits
            if group_set <= blocked:
                break
    return members


def _make_block(gates, members, group, block_index) -> CircuitBlock:
    local_index = {q: i for i, q in enumerate(group)}
    local = QuantumCircuit(len(group))
    for index in members:
        gate = gates[index]
        local.append(gate.with_qubits(tuple(local_index[q] for q in gate.qubits)))
    return CircuitBlock(
        qubits=tuple(group),
        circuit=local,
        index=block_index,
        source_indices=tuple(members),
    )

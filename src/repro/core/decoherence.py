"""Decoherence-aware fidelity estimation for pulse schedules.

The paper's premise is that shorter schedules survive NISQ coherence
windows better ("the coherence time determines the duration and depth of
quantum circuits that can be successfully executed").  This module makes
that premise measurable: given per-qubit T1/T2 times, every qubit line
decays for the *whole* schedule duration (amplitude damping while busy or
idle, extra pure dephasing while idle), and the decay factors multiply
into the pulse-level ESP of Eq. 3.

The model is the standard coarse-grained one used by compiler papers:

    F_line(q) = exp(-L / T1(q)) * exp(-idle(q) / T_phi(q))

with ``L`` the total schedule latency, ``idle(q)`` the line's idle time
and ``1/T_phi = 1/T2 - 1/(2 T1)`` the pure-dephasing rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.exceptions import ScheduleError
from repro.pulse.schedule import PulseSchedule

__all__ = ["CoherenceModel", "decoherence_factor", "esp_with_decoherence"]


@dataclass(frozen=True)
class CoherenceModel:
    """Per-device coherence times in nanoseconds (uniform across qubits).

    Defaults are NISQ-typical: T1 = 100 us, T2 = 80 us.
    """

    t1_ns: float = 100_000.0
    t2_ns: float = 80_000.0

    def __post_init__(self):
        if self.t1_ns <= 0 or self.t2_ns <= 0:
            raise ScheduleError("coherence times must be positive")
        if self.t2_ns > 2.0 * self.t1_ns:
            raise ScheduleError("T2 cannot exceed 2*T1")

    @property
    def pure_dephasing_rate(self) -> float:
        """1/T_phi in 1/ns (0 when T2 saturates the 2*T1 bound)."""
        rate = 1.0 / self.t2_ns - 1.0 / (2.0 * self.t1_ns)
        return max(rate, 0.0)


def decoherence_factor(
    schedule: PulseSchedule, model: Optional[CoherenceModel] = None
) -> float:
    """The multiplicative fidelity factor lost to decoherence.

    Every line relaxes for the whole schedule; idle stretches additionally
    dephase at the pure-dephasing rate.
    """
    model = model or CoherenceModel()
    latency = schedule.latency
    if latency <= 0.0:
        return 1.0
    factor = 1.0
    busy = [0.0] * schedule.num_qubits
    for item in schedule.items:
        for q in item.qubits:
            busy[q] += item.duration
    for q in range(schedule.num_qubits):
        idle = max(latency - busy[q], 0.0)
        factor *= math.exp(-latency / model.t1_ns)
        factor *= math.exp(-idle * model.pure_dephasing_rate)
    return factor


def esp_with_decoherence(
    pulse_esp: float,
    schedule: PulseSchedule,
    model: Optional[CoherenceModel] = None,
) -> float:
    """Combine pulse-level ESP (Eq. 3) with the coherence decay factor."""
    if not 0.0 <= pulse_esp <= 1.0:
        raise ScheduleError("pulse ESP must lie in [0, 1]")
    return pulse_esp * decoherence_factor(schedule, model)

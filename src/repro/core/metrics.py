"""Evaluation metrics: latency, ESP fidelity (Eq. 3), compile statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.pulse.schedule import PulseSchedule
from repro.resilience.ledger import DegradedBlock
from repro.verify.verifier import VerificationSummary

__all__ = ["esp_fidelity", "CompilationReport"]


def esp_fidelity(distances: Iterable[float]) -> float:
    """Estimated success probability per the paper's Eq. 3:

        ESP = prod_i (1 - |U_i - H_i(t)|)

    where each term uses the (global-phase-aligned) operator distance
    between the target unitary and the unitary the optimized pulse
    achieves.
    """
    esp = 1.0
    for distance in distances:
        esp *= max(0.0, 1.0 - distance)
    return esp


@dataclass
class CompilationReport:
    """Everything a pulse-generation flow reports back."""

    method: str
    circuit_name: str
    num_qubits: int
    schedule: PulseSchedule
    latency_ns: float
    fidelity: float
    compile_seconds: float
    #: number of pulses played (QOC work items or calibrated gates)
    pulse_count: int
    #: free-form per-flow statistics (cache hits, zx depth, block counts...)
    stats: Dict[str, float] = field(default_factory=dict)
    #: fidelity-budget ledger: work items whose best-effort pulse missed
    #: the per-pulse fidelity target (empty for a fully converged run)
    degraded_blocks: List[DegradedBlock] = field(default_factory=list)
    #: stage-boundary verification summary; ``None`` when verification
    #: was off for this compilation
    verification: Optional[VerificationSummary] = None

    @property
    def fully_converged(self) -> bool:
        """Whether every pulse met its fidelity budget."""
        return not self.degraded_blocks

    @property
    def fidelity_deficit(self) -> float:
        """Total shortfall across the degraded blocks (0.0 when none)."""
        return sum(entry.deficit for entry in self.degraded_blocks)

    @property
    def cache_hit_rate(self) -> Optional[float]:
        """Pulse-library hit rate in [0, 1], or ``None`` for flows without
        a cache (e.g. gate-based) or when no lookups happened."""
        hits = self.stats.get("cache_hits")
        misses = self.stats.get("cache_misses")
        if hits is None or misses is None or hits + misses == 0:
            return None
        return hits / (hits + misses)

    def summary_row(self) -> str:
        """One formatted row for benchmark tables."""
        rate = self.cache_hit_rate
        cache = f"{100.0 * rate:5.1f}%" if rate is not None else "   --"
        unique = self.stats.get("unique_qoc_items")
        if unique is not None:
            # unique/total QOC problems this compile posed — the gap is
            # the work singleflight dedup saved
            total = self.stats.get("qoc_items", float(self.pulse_count))
            qoc = f"{int(unique)}/{int(total)}"
        else:
            qoc = "--"
        degraded = (
            f"  degraded={len(self.degraded_blocks)}"
            if self.degraded_blocks
            else ""
        )
        verified = (
            f"  verified={self.verification.status}"
            if self.verification is not None
            else ""
        )
        return (
            f"{self.circuit_name:<12} {self.method:<12} "
            f"{self.latency_ns:>10.1f} ns  fidelity={self.fidelity:.4f}  "
            f"compile={self.compile_seconds:.2f}s  pulses={self.pulse_count}  "
            f"cache={cache}  qoc={qoc}{degraded}{verified}"
        )

"""The EPOC pipeline (paper Section 3, Figure 3 right-hand path).

Stages:

1. **Graph-based depth optimization** — ZX-calculus ``full_reduce`` +
   extraction + commutation cleanup (Section 3.1).
2. **Greedy circuit partition** — Algorithm 1 (Section 3.2).
3. **VUG-based synthesis** — QSearch/LEAP per block (Section 3.3).
4. **Regrouping** — aggregate the fine-grained VUGs/CNOTs into unitaries
   of a few qubits (Section 3.3's second grouping step).
5. **Pulse generation** — GRAPE with binary-searched minimal latency,
   backed by the global-phase-aware pulse library (Section 3.4).

``use_regrouping=False`` reproduces the paper's "no grouping" ablation
(Figures 8-10): QOC runs directly on each synthesized VUG/CNOT.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import List, Optional

from repro import obs, telemetry
from repro.config import EPOCConfig
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.transpile import decompose_to_cx_u3
from repro.core.metrics import CompilationReport, esp_fidelity
from repro.parallel import ParallelExecutor, SynthesisTask
from repro.partition.block import CircuitBlock
from repro.partition.greedy import greedy_partition
from repro.partition.regroup import RegroupedUnitary, regroup_circuit
from repro.pulse.schedule import PulseSchedule
from repro.qoc.library import PulseLibrary
from repro.resilience import CompilationJournal, FidelityLedger
from repro.resilience.faults import fault_fires
from repro.resilience.journal import config_fingerprint
from repro.resilience.policy import Deadline
from repro.synthesis import synthesize_block
from repro.verify import StageVerifier
from repro.verify.checks import items_as_circuit
from repro.zx.optimize import optimize_circuit

__all__ = ["EPOCPipeline"]

logger = telemetry.get_logger("core.pipeline")


class EPOCPipeline:
    """End-to-end EPOC compiler: circuit in, pulse schedule out."""

    def __init__(
        self,
        config: Optional[EPOCConfig] = None,
        library: Optional[PulseLibrary] = None,
        use_regrouping: bool = True,
    ):
        self.config = config or EPOCConfig()
        # NB: ``library or ...`` would discard an *empty* caller-supplied
        # library (PulseLibrary defines __len__, so empty is falsy)
        if library is None:
            library = PulseLibrary(
                config=self.config.qoc,
                match_global_phase=self.config.cache_global_phase,
                resilience=self.config.resilience,
                racing=self.config.racing,
            )
        self.library = library
        self.use_regrouping = use_regrouping
        if self.config.telemetry.log_level is not None:
            telemetry.configure_logging(
                level=self.config.telemetry.log_level,
                json_output=self.config.telemetry.log_json,
            )

    def compile(
        self,
        circuit: QuantumCircuit,
        name: str = "circuit",
        executor: Optional[ParallelExecutor] = None,
        checkpoint_store=None,
    ) -> CompilationReport:
        """Run the full pipeline and return the schedule + metrics.

        ``executor`` lends an external worker pool (the batch engine
        shares one across a whole suite so circuits x blocks amortize
        pool setup); when ``None`` the pipeline creates and owns its own.
        ``checkpoint_store`` routes checkpoint flushes through a
        :class:`~repro.batch.SharedLibraryStore`'s locked merge so
        concurrent processes checkpointing into one shared file cannot
        drop each other's entries.
        """
        start = time.perf_counter()
        config = self.config
        tracer = telemetry.get_tracer()
        metrics = telemetry.get_metrics()
        stats = {}
        resilience = config.resilience
        verifier = StageVerifier(
            config.verify,
            target_fidelity=config.qoc.fidelity_threshold,
            synthesis_threshold=config.synthesis_threshold,
        )

        if executor is None:
            executor = ParallelExecutor.from_config(config.parallel, resilience)
            executor_scope = executor  # owned: shut the pool down on exit
        else:
            executor_scope = nullcontext(executor)  # borrowed: caller owns it
        fingerprint = config_fingerprint(config.qoc, config.cache_global_phase)
        observer = obs.observe_run(
            config.obs,
            circuit=name,
            method="epoc" if self.use_regrouping else "epoc-nogroup",
            fingerprint=fingerprint,
        )
        with executor_scope, observer, tracer.span(
            "compile", circuit=name, qubits=circuit.num_qubits, method="epoc"
        ):
            metrics.inc("pipeline.compiles")
            work = circuit.without_pseudo_ops()
            depth_input = work.depth()

            if config.use_zx:
                zx_input = work if verifier.enabled else None
                with observer.stage("zx"), tracer.span("zx") as span:
                    zx_result = optimize_circuit(work)
                    span.set(
                        depth_before=zx_result.depth_before,
                        depth_after=zx_result.depth_after,
                        rewrites=zx_result.rewrites,
                    )
                work = zx_result.circuit
                if zx_input is not None:
                    # check (a): ZX rewrite + extraction preserved the
                    # unitary up to global phase
                    verifier.check_circuit_stage(
                        "zx", zx_input, work, detail="zx extraction"
                    )
                stats["zx_depth_before"] = float(zx_result.depth_before)
                stats["zx_depth_after"] = float(zx_result.depth_after)
                stats["zx_rewrites"] = float(zx_result.rewrites)
                logger.info(
                    "zx: depth %d -> %d (%d rewrites)",
                    zx_result.depth_before,
                    zx_result.depth_after,
                    zx_result.rewrites,
                )

            if config.route_to_chain:
                from repro.circuits.routing import route_to_line

                with observer.stage("route"), tracer.span("route") as span:
                    routed = route_to_line(decompose_to_cx_u3(work))
                    span.set(swaps=routed.swap_count)
                work = routed.circuit
                stats["routing_swaps"] = float(routed.swap_count)

            # gates wider than a partition block must be decomposed to basis
            # gates first (the paper's flow partitions basis-gate circuits)
            if any(g.num_qubits > config.partition_qubit_limit for g in work.gates):
                work = decompose_to_cx_u3(work)

            with observer.stage("partition"), tracer.span("partition") as span:
                blocks = greedy_partition(
                    work,
                    qubit_limit=config.partition_qubit_limit,
                    gate_limit=config.partition_gate_limit,
                )
                span.set(blocks=len(blocks))
            stats["partition_blocks"] = float(len(blocks))
            for block in blocks:
                metrics.observe("partition.block_gates", block.num_gates)
                metrics.observe("partition.block_qubits", len(block.qubits))
            logger.info("partition: %d blocks from %d gates", len(blocks), len(work))

            if verifier.enabled:
                # check (b): the blocks, replayed in order on the global
                # register, must reproduce the partition stage's input
                verifier.check_circuit_stage(
                    "partition",
                    work,
                    _flatten_blocks(blocks, circuit.num_qubits),
                    detail="partition reassembly",
                )

            # check (c) needs each block's pre-synthesis unitary as the
            # target the synthesized circuit is measured against
            originals = (
                {block.index: block.unitary() for block in blocks}
                if verifier.enabled and config.use_synthesis
                else {}
            )

            if config.use_synthesis:
                with observer.stage("synthesis"), tracer.span(
                    "synthesis", blocks=len(blocks), workers=executor.workers
                ):
                    if executor.is_parallel:
                        blocks = executor.map(
                            [
                                SynthesisTask(
                                    block=block,
                                    threshold=config.synthesis_threshold,
                                    max_cnots=config.synthesis_max_layers,
                                    resilience=resilience,
                                    racing=config.racing,
                                )
                                for block in blocks
                            ],
                            on_chunk=observer.chunk_progress(
                                "synthesis", len(blocks)
                            ),
                        )
                    else:
                        stage_deadline = Deadline(
                            resilience.synthesis_timeout_seconds
                        )
                        synthesized = []
                        for block in blocks:
                            if stage_deadline.expired:
                                # stage budget exhausted: the basis-gate
                                # form is always a valid (if longer)
                                # synthesis result, so degrade to it
                                metrics.inc("resilience.timeouts")
                                logger.warning(
                                    "synthesis budget expired; keeping the "
                                    "basis form of block %d",
                                    block.index,
                                )
                                synthesized.append(
                                    CircuitBlock(
                                        qubits=block.qubits,
                                        circuit=decompose_to_cx_u3(block.circuit),
                                        index=block.index,
                                    )
                                )
                                observer.block_progress(
                                    "synthesis",
                                    block.index,
                                    len(synthesized),
                                    len(blocks),
                                )
                                continue
                            with tracer.span(
                                "synthesize_block",
                                block=block.index,
                                qubits=list(block.qubits),
                            ):
                                synthesized.append(
                                    synthesize_block(
                                        block,
                                        threshold=config.synthesis_threshold,
                                        max_cnots=config.synthesis_max_layers,
                                        resilience=resilience,
                                        racing=config.racing,
                                    )
                                )
                            observer.block_progress(
                                "synthesis",
                                block.index,
                                len(synthesized),
                                len(blocks),
                            )
                        blocks = synthesized
                for block in blocks:
                    if block.index in originals:
                        verifier.check_synthesis(
                            block.index,
                            block.qubits,
                            originals[block.index],
                            block.unitary(),
                        )

            flat = _flatten_blocks(blocks, circuit.num_qubits)
            stats["post_synthesis_gates"] = float(len(flat))
            stats["post_synthesis_depth"] = float(flat.depth())

            # synthesis yields u3+cx only, but with use_synthesis=False a wide
            # named gate (e.g. ccx) can reach this point; widen the limit so
            # regrouping can still absorb it as its own unitary.
            widest = max((g.num_qubits for g in flat.gates), default=1)
            with observer.stage("regroup"), tracer.span("regroup") as span:
                if self.use_regrouping:
                    items = regroup_circuit(
                        flat,
                        qubit_limit=max(config.regroup_qubit_limit, widest),
                        gate_limit=config.regroup_gate_limit,
                    )
                else:
                    # ablation: one QOC problem per fine-grained gate
                    items = regroup_circuit(flat, qubit_limit=widest, gate_limit=1)
                span.set(items=len(items))
            stats["qoc_items"] = float(len(items))
            item_keys = [
                self.library.key_for(item.matrix, item.num_qubits)
                for item in items
            ]
            stats["unique_qoc_items"] = float(len(set(item_keys)))
            for item in items:
                metrics.observe("regroup.unitary_qubits", item.num_qubits)

            if verifier.enabled:
                # check (b): regrouped unitaries replayed in order must
                # reproduce the flattened circuit — verified *before* any
                # GRAPE time is spent, so a unitary-bookkeeping bug is
                # isolated from control error
                verifier.check_circuit_stage(
                    "regroup",
                    flat,
                    items_as_circuit(items, circuit.num_qubits),
                    detail="regroup reassembly",
                )

            # warm-start candidates are frozen *before* the journal opens:
            # journal.open preloads checkpointed pulses into the library,
            # and scanning those would make a killed-and-resumed run seed
            # its remaining searches differently from an uninterrupted one
            warm_entries = self.library.warm_snapshot()

            journal: Optional[CompilationJournal] = None
            if resilience.checkpoint_path is not None:
                journal = CompilationJournal(
                    resilience.checkpoint_path,
                    self.library,
                    checkpoint_every=resilience.checkpoint_every,
                    store=checkpoint_store,
                )
                resumed = journal.open(
                    name, fingerprint, resume=resilience.resume
                )
                stats["resumed_entries"] = float(resumed)

            # maps each library key to the first work item that needs it, so
            # the journal can attribute parallel completions to an item index
            first_item = {}
            for index, key in enumerate(item_keys):
                first_item.setdefault(key, index)

            schedule = PulseSchedule(circuit.num_qubits)
            distances: List[float] = []
            try:
                with observer.stage("pulse_generation"), tracer.span(
                    "pulse_generation", items=len(items), workers=executor.workers
                ):
                    if executor.is_parallel:
                        on_pulse = None
                        if journal is not None:
                            on_pulse = lambda key, pulse: journal.record_block(
                                first_item[key], key
                            )
                        pulses = self.library.get_pulses(
                            [(item.matrix, item.qubits) for item in items],
                            executor=executor,
                            on_pulse=on_pulse,
                            warm_entries=warm_entries,
                        )
                    else:
                        pulses = []
                        for index, item in enumerate(items):
                            if fault_fires("pipeline.kill", item=index):
                                raise RuntimeError(
                                    f"injected pipeline kill at item {index}"
                                )
                            with tracer.span(
                                "pulse", item=index, qubits=list(item.qubits)
                            ) as span:
                                pulse = self.library.get_pulse(
                                    item.matrix,
                                    item.qubits,
                                    warm_entries=warm_entries,
                                )
                                span.set(duration_ns=pulse.duration)
                            pulses.append(pulse)
                            observer.block_progress(
                                "pulse_generation", index, index + 1, len(items)
                            )
                            if journal is not None:
                                journal.record_block(index, item_keys[index])
                    for item, pulse in zip(items, pulses):
                        schedule.add_pulse(pulse, label=f"u{item.num_qubits}")
                        distances.append(pulse.unitary_distance)
            except BaseException:
                if journal is not None:
                    journal.close(complete=False)
                raise
            else:
                if journal is not None:
                    journal.close(complete=True)

            ledger = FidelityLedger(target_fidelity=config.qoc.fidelity_threshold)
            for index, (item, pulse) in enumerate(zip(items, pulses)):
                ledger.observe(index, item.qubits, pulse)
                # check (d): the pulse's recomputed propagator vs. its
                # target unitary (memoized per library key)
                verifier.check_pulse(
                    index,
                    item.qubits,
                    item.matrix,
                    pulse,
                    self.library.hardware_for(item.num_qubits),
                    key=item_keys[index],
                )
            verification = verifier.finalize()
            stats["degraded_blocks"] = float(len(ledger.entries))
            stats["cache_hits"] = float(self.library.hits)
            stats["cache_misses"] = float(self.library.misses)
            stats["depth_input"] = float(depth_input)
            if verification is not None:
                stats["verify_checks"] = float(verification.checks)
                stats["verify_failed"] = float(verification.failed)
                stats["verify_skipped"] = float(verification.skipped)
                stats["verify_infidelity"] = verification.total_infidelity
            logger.info(
                "pulse generation: %d items, cache hit rate %.0f%%",
                len(items),
                100.0 * self.library.hit_rate,
            )

        # fold the telemetry registry into the report so benchmark scripts
        # see GRAPE/search statistics without holding the registry
        if metrics.enabled:
            stats.update(metrics.flat())

        elapsed = time.perf_counter() - start
        report = CompilationReport(
            method="epoc" if self.use_regrouping else "epoc-nogroup",
            circuit_name=name,
            num_qubits=circuit.num_qubits,
            schedule=schedule,
            latency_ns=schedule.latency,
            fidelity=esp_fidelity(distances),
            compile_seconds=elapsed,
            pulse_count=len(items),
            stats=stats,
            degraded_blocks=ledger.entries,
            verification=verification,
        )
        observer.record(report)
        return report


def _flatten_blocks(blocks: List[CircuitBlock], num_qubits: int) -> QuantumCircuit:
    """Concatenate block circuits back onto the global register."""
    out = QuantumCircuit(num_qubits)
    for block in blocks:
        for gate in block.circuit.gates:
            out.append(gate.with_qubits(tuple(block.qubits[q] for q in gate.qubits)))
    return out

"""EPOC core: the end-to-end pipeline and its evaluation metrics."""

from repro.core.pipeline import EPOCPipeline
from repro.core.metrics import CompilationReport, esp_fidelity
from repro.core.decoherence import (
    CoherenceModel,
    decoherence_factor,
    esp_with_decoherence,
)

__all__ = [
    "EPOCPipeline",
    "CompilationReport",
    "esp_fidelity",
    "CoherenceModel",
    "decoherence_factor",
    "esp_with_decoherence",
]

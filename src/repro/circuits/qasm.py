"""OpenQASM 2.0 parser and writer.

Covers the subset used by QASMBench-style programs: register declarations,
the qelib1 gate vocabulary, custom ``gate`` definitions (expanded inline),
register broadcasting, ``barrier``/``measure``/``reset``, and constant
arithmetic expressions (``pi``, ``+ - * / ^``, parentheses and the common
unary functions) in gate parameters.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import QasmError
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import GATE_SPECS, NON_UNITARY_OPS
from repro.linalg.decompose import euler_decompose_u3

__all__ = ["parse_qasm", "circuit_to_qasm"]

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>//[^\n]*)
  | (?P<NUMBER>(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?)
  | (?P<ID>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<ARROW>->)
  | (?P<EQ>==)
  | (?P<SYM>[\[\]{}();,+\-*/^])
  | (?P<STRING>"[^"]*")
    """,
    re.VERBOSE,
)

_FUNCTIONS = {
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "exp": math.exp,
    "ln": math.log,
    "sqrt": math.sqrt,
}


@dataclass
class _Token:
    kind: str
    text: str
    pos: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise QasmError(f"unexpected character {text[pos]!r} at offset {pos}")
        kind = match.lastgroup or ""
        if kind == "NUMBER":
            tokens.append(_Token("NUMBER", match.group("NUMBER"), pos))
        elif kind not in ("WS", "COMMENT"):
            tokens.append(_Token(kind, match.group(0), pos))
        pos = match.end()
    tokens.append(_Token("EOF", "", pos))
    return tokens


@dataclass
class _GateDef:
    """A user-defined ``gate`` macro: parameter names, qubit names, body."""

    name: str
    params: List[str]
    qubits: List[str]
    body: List[Tuple[str, List["_Expr"], List[str]]] = field(default_factory=list)


# Parameter expressions in gate bodies may reference the macro's formal
# parameters, so expressions are kept as small ASTs and evaluated at
# expansion time with an environment.
class _Expr:
    def eval(self, env: Dict[str, float]) -> float:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass
class _Num(_Expr):
    value: float

    def eval(self, env):
        return self.value


@dataclass
class _Var(_Expr):
    name: str

    def eval(self, env):
        if self.name == "pi":
            return math.pi
        if self.name not in env:
            raise QasmError(f"unknown identifier {self.name!r} in expression")
        return env[self.name]


@dataclass
class _Unary(_Expr):
    op: str
    operand: _Expr

    def eval(self, env):
        value = self.operand.eval(env)
        if self.op == "-":
            return -value
        if self.op in _FUNCTIONS:
            return _FUNCTIONS[self.op](value)
        raise QasmError(f"unknown unary operator {self.op!r}")


@dataclass
class _Binary(_Expr):
    op: str
    left: _Expr
    right: _Expr

    def eval(self, env):
        a = self.left.eval(env)
        b = self.right.eval(env)
        if self.op == "+":
            return a + b
        if self.op == "-":
            return a - b
        if self.op == "*":
            return a * b
        if self.op == "/":
            return a / b
        if self.op == "^":
            return a**b
        raise QasmError(f"unknown operator {self.op!r}")


class _Parser:
    """Recursive-descent parser producing a :class:`QuantumCircuit`."""

    def __init__(self, text: str):
        self.tokens = _tokenize(text)
        self.index = 0
        self.qregs: Dict[str, Tuple[int, int]] = {}  # name -> (offset, size)
        self.cregs: Dict[str, int] = {}
        self.gate_defs: Dict[str, _GateDef] = {}
        self.num_qubits = 0
        self.circuit: Optional[QuantumCircuit] = None
        self.pending_ops: List[Tuple[str, List[float], List[int]]] = []

    # -- token helpers -----------------------------------------------------

    def peek(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, text: str) -> _Token:
        token = self.advance()
        if token.text != text:
            raise QasmError(f"expected {text!r}, got {token.text!r} at {token.pos}")
        return token

    def expect_kind(self, kind: str) -> _Token:
        token = self.advance()
        if token.kind != kind:
            raise QasmError(f"expected {kind}, got {token.text!r} at {token.pos}")
        return token

    # -- grammar -----------------------------------------------------------

    def parse(self) -> QuantumCircuit:
        if self.peek().text == "OPENQASM":
            self.advance()
            self.expect_kind("NUMBER")
            self.expect(";")
        while self.peek().kind != "EOF":
            self.statement()
        self.circuit = QuantumCircuit(self.num_qubits)
        for name, params, qubits in self.pending_ops:
            if name in NON_UNITARY_OPS:
                self.circuit.add(name, qubits)
            else:
                self.circuit.add(name, qubits, params)
        return self.circuit

    def statement(self) -> None:
        token = self.peek()
        if token.text == "include":
            self.advance()
            self.expect_kind("STRING")
            self.expect(";")
        elif token.text == "qreg":
            self.advance()
            name = self.expect_kind("ID").text
            self.expect("[")
            size = int(self.expect_kind("NUMBER").text)
            self.expect("]")
            self.expect(";")
            self.qregs[name] = (self.num_qubits, size)
            self.num_qubits += size
        elif token.text == "creg":
            self.advance()
            name = self.expect_kind("ID").text
            self.expect("[")
            size = int(self.expect_kind("NUMBER").text)
            self.expect("]")
            self.expect(";")
            self.cregs[name] = size
        elif token.text == "gate":
            self.gate_definition()
        elif token.text == "opaque":
            # opaque declarations have no body; skip to the semicolon.
            while self.advance().text != ";":
                pass
        elif token.text == "if":
            raise QasmError("classically-controlled operations are not supported")
        elif token.text == "measure":
            self.advance()
            qubits = self.qubit_operands_single()
            self.expect("->")
            self.creg_operand()
            self.expect(";")
            for q in qubits:
                self.pending_ops.append(("measure", [], [q]))
        elif token.text == "reset":
            self.advance()
            qubits = self.qubit_operands_single()
            self.expect(";")
            for q in qubits:
                self.pending_ops.append(("reset", [], [q]))
        elif token.text == "barrier":
            self.advance()
            operands = self.qubit_operand_list()
            self.expect(";")
            flat = [q for group in operands for q in group]
            self.pending_ops.append(("barrier", [], flat))
        elif token.kind == "ID":
            self.gate_call()
        else:
            raise QasmError(f"unexpected token {token.text!r} at {token.pos}")

    def gate_definition(self) -> None:
        self.expect("gate")
        name = self.expect_kind("ID").text
        params: List[str] = []
        if self.peek().text == "(":
            self.advance()
            if self.peek().text != ")":
                params.append(self.expect_kind("ID").text)
                while self.peek().text == ",":
                    self.advance()
                    params.append(self.expect_kind("ID").text)
            self.expect(")")
        qubits = [self.expect_kind("ID").text]
        while self.peek().text == ",":
            self.advance()
            qubits.append(self.expect_kind("ID").text)
        definition = _GateDef(name, params, qubits)
        self.expect("{")
        while self.peek().text != "}":
            if self.peek().text == "barrier":
                # barriers inside macro bodies are dropped on expansion
                while self.advance().text != ";":
                    pass
                continue
            op_name = self.expect_kind("ID").text
            op_params: List[_Expr] = []
            if self.peek().text == "(":
                self.advance()
                if self.peek().text != ")":
                    op_params.append(self.expression())
                    while self.peek().text == ",":
                        self.advance()
                        op_params.append(self.expression())
                self.expect(")")
            op_qubits = [self.expect_kind("ID").text]
            while self.peek().text == ",":
                self.advance()
                op_qubits.append(self.expect_kind("ID").text)
            self.expect(";")
            definition.body.append((op_name, op_params, op_qubits))
        self.expect("}")
        self.gate_defs[name] = definition

    def gate_call(self) -> None:
        name = self.expect_kind("ID").text
        params: List[float] = []
        if self.peek().text == "(":
            self.advance()
            if self.peek().text != ")":
                params.append(self.expression().eval({}))
                while self.peek().text == ",":
                    self.advance()
                    params.append(self.expression().eval({}))
            self.expect(")")
        operands = self.qubit_operand_list()
        self.expect(";")
        self.emit_broadcast(name, params, operands)

    def emit_broadcast(
        self, name: str, params: List[float], operands: List[List[int]]
    ) -> None:
        """Expand register broadcasting, then emit (or expand a macro)."""
        lengths = {len(group) for group in operands if len(group) > 1}
        if len(lengths) > 1:
            raise QasmError(f"mismatched register sizes in {name!r} call")
        repeat = lengths.pop() if lengths else 1
        for i in range(repeat):
            qubits = [group[i] if len(group) > 1 else group[0] for group in operands]
            self.emit_gate(name, params, qubits)

    def emit_gate(self, name: str, params: List[float], qubits: List[int]) -> None:
        if name in self.gate_defs:
            definition = self.gate_defs[name]
            if len(params) != len(definition.params):
                raise QasmError(
                    f"gate {name!r} takes {len(definition.params)} parameters"
                )
            if len(qubits) != len(definition.qubits):
                raise QasmError(f"gate {name!r} takes {len(definition.qubits)} qubits")
            env = dict(zip(definition.params, params))
            qubit_env = dict(zip(definition.qubits, qubits))
            for op_name, op_params, op_qubits in definition.body:
                values = [expr.eval(env) for expr in op_params]
                targets = []
                for qname in op_qubits:
                    if qname not in qubit_env:
                        raise QasmError(
                            f"gate {name!r} body references unknown qubit {qname!r}"
                        )
                    targets.append(qubit_env[qname])
                self.emit_gate(op_name, values, targets)
        elif name in GATE_SPECS:
            self.pending_ops.append((name, params, qubits))
        elif name == "CX":
            self.pending_ops.append(("cx", params, qubits))
        elif name == "U":
            self.pending_ops.append(("u3", params, qubits))
        else:
            raise QasmError(f"unknown gate {name!r}")

    # -- operands ------------------------------------------------------------

    def qubit_operand_list(self) -> List[List[int]]:
        operands = [self.qubit_operand()]
        while self.peek().text == ",":
            self.advance()
            operands.append(self.qubit_operand())
        return operands

    def qubit_operand(self) -> List[int]:
        """One operand: ``name`` (whole register) or ``name[i]``."""
        name = self.expect_kind("ID").text
        if name not in self.qregs:
            raise QasmError(f"unknown quantum register {name!r}")
        offset, size = self.qregs[name]
        if self.peek().text == "[":
            self.advance()
            index = int(self.expect_kind("NUMBER").text)
            self.expect("]")
            if index >= size:
                raise QasmError(f"index {index} out of range for {name}[{size}]")
            return [offset + index]
        return [offset + i for i in range(size)]

    def qubit_operands_single(self) -> List[int]:
        return self.qubit_operand()

    def creg_operand(self) -> None:
        name = self.expect_kind("ID").text
        if name not in self.cregs:
            raise QasmError(f"unknown classical register {name!r}")
        if self.peek().text == "[":
            self.advance()
            self.expect_kind("NUMBER")
            self.expect("]")

    # -- expressions -----------------------------------------------------------

    def expression(self) -> _Expr:
        return self.additive()

    def additive(self) -> _Expr:
        node = self.multiplicative()
        while self.peek().text in ("+", "-"):
            op = self.advance().text
            node = _Binary(op, node, self.multiplicative())
        return node

    def multiplicative(self) -> _Expr:
        node = self.power()
        while self.peek().text in ("*", "/"):
            op = self.advance().text
            node = _Binary(op, node, self.power())
        return node

    def power(self) -> _Expr:
        node = self.unary()
        if self.peek().text == "^":
            self.advance()
            return _Binary("^", node, self.power())
        return node

    def unary(self) -> _Expr:
        token = self.peek()
        if token.text == "-":
            self.advance()
            return _Unary("-", self.unary())
        if token.text == "+":
            self.advance()
            return self.unary()
        if token.kind == "NUMBER":
            self.advance()
            return _Num(float(token.text))
        if token.kind == "ID":
            self.advance()
            if token.text in _FUNCTIONS:
                self.expect("(")
                inner = self.expression()
                self.expect(")")
                return _Unary(token.text, inner)
            return _Var(token.text)
        if token.text == "(":
            self.advance()
            inner = self.expression()
            self.expect(")")
            return inner
        raise QasmError(f"unexpected token {token.text!r} in expression")


def parse_qasm(text: str) -> QuantumCircuit:
    """Parse an OpenQASM 2.0 program into a :class:`QuantumCircuit`."""
    return _Parser(text).parse()


def circuit_to_qasm(circuit: QuantumCircuit) -> str:
    """Serialize a circuit to OpenQASM 2.0.

    Raw-unitary gates are representable only on a single qubit (emitted as
    ``u3`` via Euler decomposition); larger explicit unitaries must be
    synthesized to named gates first.
    """
    lines = ["OPENQASM 2.0;", 'include "qelib1.inc";', f"qreg q[{circuit.num_qubits}];"]
    if any(g.name == "measure" for g in circuit.gates):
        lines.append(f"creg c[{circuit.num_qubits}];")
    for gate in circuit.gates:
        operands = ", ".join(f"q[{q}]" for q in gate.qubits)
        if gate.name == "measure":
            q = gate.qubits[0]
            lines.append(f"measure q[{q}] -> c[{q}];")
        elif gate.name == "barrier":
            lines.append(f"barrier {operands};")
        elif gate.name == "reset":
            lines.append(f"reset {operands};")
        elif gate.name == "unitary":
            if gate.num_qubits != 1:
                raise QasmError(
                    "cannot serialize a multi-qubit raw unitary to QASM; "
                    "synthesize it to named gates first"
                )
            theta, phi, lam, _ = euler_decompose_u3(gate.matrix())
            lines.append(f"u3({theta!r},{phi!r},{lam!r}) {operands};")
        elif gate.params:
            params = ",".join(repr(p) for p in gate.params)
            lines.append(f"{gate.name}({params}) {operands};")
        else:
            lines.append(f"{gate.name} {operands};")
    return "\n".join(lines) + "\n"

"""The circuit intermediate representation used throughout the library."""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import CircuitError
from repro.circuits.gates import Gate, GATE_SPECS, NON_UNITARY_OPS
from repro.linalg.tensor import apply_gate_to_state

__all__ = ["QuantumCircuit"]


class QuantumCircuit:
    """An ordered list of gates on ``num_qubits`` qubits.

    Qubit ordering is big-endian (qubit 0 is the most-significant bit of a
    basis index) — see :mod:`repro.linalg.tensor`.  The class is a plain IR:
    it stores gates in program order and offers structural queries (depth,
    layers, counts), unitary/statevector simulation for moderate qubit
    counts, and composition utilities.
    """

    def __init__(self, num_qubits: int, gates: Optional[Iterable[Gate]] = None):
        if num_qubits < 0:
            raise CircuitError("num_qubits must be non-negative")
        self.num_qubits = int(num_qubits)
        self.gates: List[Gate] = []
        for gate in gates or ():
            self.append(gate)

    # -- mutation ------------------------------------------------------------

    def append(self, gate: Gate) -> "QuantumCircuit":
        """Append a :class:`Gate`, validating its qubit indices."""
        if any(q < 0 or q >= self.num_qubits for q in gate.qubits):
            raise CircuitError(
                f"gate {gate.name!r} on {gate.qubits} is out of range for "
                f"{self.num_qubits} qubits"
            )
        self.gates.append(gate)
        return self

    def add(
        self,
        name: str,
        qubits: Sequence[int],
        params: Sequence[float] = (),
        matrix: Optional[np.ndarray] = None,
    ) -> "QuantumCircuit":
        """Append a gate by name; ``matrix`` only for ``name='unitary'``."""
        return self.append(
            Gate(name, tuple(qubits), tuple(params), matrix_override=matrix)
        )

    # Convenience constructors for the common gates keep example and
    # workload code readable: ``qc.h(0); qc.cx(0, 1)``.

    def x(self, q: int):
        return self.add("x", [q])

    def y(self, q: int):
        return self.add("y", [q])

    def z(self, q: int):
        return self.add("z", [q])

    def h(self, q: int):
        return self.add("h", [q])

    def s(self, q: int):
        return self.add("s", [q])

    def sdg(self, q: int):
        return self.add("sdg", [q])

    def t(self, q: int):
        return self.add("t", [q])

    def tdg(self, q: int):
        return self.add("tdg", [q])

    def sx(self, q: int):
        return self.add("sx", [q])

    def rx(self, theta: float, q: int):
        return self.add("rx", [q], [theta])

    def ry(self, theta: float, q: int):
        return self.add("ry", [q], [theta])

    def rz(self, theta: float, q: int):
        return self.add("rz", [q], [theta])

    def p(self, lam: float, q: int):
        return self.add("p", [q], [lam])

    def u3(self, theta: float, phi: float, lam: float, q: int):
        return self.add("u3", [q], [theta, phi, lam])

    def cx(self, control: int, target: int):
        return self.add("cx", [control, target])

    def cy(self, control: int, target: int):
        return self.add("cy", [control, target])

    def cz(self, control: int, target: int):
        return self.add("cz", [control, target])

    def ch(self, control: int, target: int):
        return self.add("ch", [control, target])

    def swap(self, a: int, b: int):
        return self.add("swap", [a, b])

    def crz(self, theta: float, control: int, target: int):
        return self.add("crz", [control, target], [theta])

    def cp(self, lam: float, control: int, target: int):
        return self.add("cp", [control, target], [lam])

    def rzz(self, theta: float, a: int, b: int):
        return self.add("rzz", [a, b], [theta])

    def rxx(self, theta: float, a: int, b: int):
        return self.add("rxx", [a, b], [theta])

    def ccx(self, c1: int, c2: int, target: int):
        return self.add("ccx", [c1, c2, target])

    def cswap(self, control: int, a: int, b: int):
        return self.add("cswap", [control, a, b])

    def barrier(self, *qubits: int):
        qs = tuple(qubits) if qubits else tuple(range(self.num_qubits))
        return self.add("barrier", qs)

    def measure_all(self):
        for q in range(self.num_qubits):
            self.add("measure", [q])
        return self

    def unitary_gate(self, matrix: np.ndarray, qubits: Sequence[int], label=None):
        """Append an explicit-matrix gate."""
        return self.append(
            Gate("unitary", tuple(qubits), matrix_override=np.asarray(matrix, complex), label=label)
        )

    # -- protocol ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates)

    def __repr__(self) -> str:
        counts = ", ".join(f"{n}:{c}" for n, c in sorted(self.count_ops().items()))
        return (
            f"QuantumCircuit(num_qubits={self.num_qubits}, "
            f"gates={len(self.gates)} [{counts}])"
        )

    def copy(self) -> "QuantumCircuit":
        return QuantumCircuit(self.num_qubits, list(self.gates))

    # -- structure -----------------------------------------------------------

    def count_ops(self) -> Dict[str, int]:
        """Histogram of gate names."""
        return dict(Counter(g.name for g in self.gates))

    @property
    def two_qubit_count(self) -> int:
        """Number of unitary gates touching >= 2 qubits."""
        return sum(1 for g in self.gates if g.is_unitary_op and g.num_qubits >= 2)

    def unitary_gates(self) -> List[Gate]:
        """Gates that carry a unitary (drops barrier/measure/reset)."""
        return [g for g in self.gates if g.is_unitary_op]

    def layers(self) -> List[List[Gate]]:
        """ASAP layering: each gate goes in the earliest layer where all of
        its qubits are free.  Barriers synchronize their qubits but occupy
        no layer themselves."""
        frontier = [0] * self.num_qubits
        layers: List[List[Gate]] = []
        for gate in self.gates:
            if gate.name == "barrier":
                level = max((frontier[q] for q in gate.qubits), default=0)
                for q in gate.qubits:
                    frontier[q] = level
                continue
            if not gate.qubits:
                continue
            level = max(frontier[q] for q in gate.qubits)
            while len(layers) <= level:
                layers.append([])
            layers[level].append(gate)
            for q in gate.qubits:
                frontier[q] = level + 1
        return layers

    def depth(self) -> int:
        """Circuit depth (number of ASAP layers of unitary gates)."""
        return len(self.layers())

    # -- semantics -----------------------------------------------------------

    def unitary(self, max_qubits: int = 12) -> np.ndarray:
        """The full ``2**n x 2**n`` unitary of the circuit.

        Guarded by ``max_qubits`` because memory grows as ``4**n``.
        """
        if self.num_qubits > max_qubits:
            raise CircuitError(
                f"refusing to build a {self.num_qubits}-qubit unitary "
                f"(limit {max_qubits}); raise max_qubits explicitly if intended"
            )
        dim = 2**self.num_qubits
        state = np.eye(dim, dtype=complex)
        for gate in self.gates:
            if not gate.is_unitary_op:
                continue
            state = apply_gate_to_state(
                gate.matrix(), state, gate.qubits, self.num_qubits
            )
        return state

    def statevector(self, initial: Optional[np.ndarray] = None) -> np.ndarray:
        """Simulate the circuit on ``initial`` (default ``|0...0>``)."""
        dim = 2**self.num_qubits
        if initial is None:
            state = np.zeros(dim, dtype=complex)
            state[0] = 1.0
        else:
            state = np.asarray(initial, dtype=complex).copy()
            if state.shape != (dim,):
                raise CircuitError(f"initial state must have shape ({dim},)")
        for gate in self.gates:
            if not gate.is_unitary_op:
                continue
            state = apply_gate_to_state(
                gate.matrix(), state, gate.qubits, self.num_qubits
            )
        return state

    # -- composition -----------------------------------------------------------

    def inverse(self) -> "QuantumCircuit":
        """The adjoint circuit (reversed gate order, inverted gates)."""
        inv = QuantumCircuit(self.num_qubits)
        for gate in reversed(self.unitary_gates()):
            inv.append(gate.inverse())
        return inv

    def compose(
        self, other: "QuantumCircuit", qubits: Optional[Sequence[int]] = None
    ) -> "QuantumCircuit":
        """Return ``self`` followed by ``other`` (mapped onto ``qubits``)."""
        if qubits is None:
            qubits = list(range(other.num_qubits))
        if len(qubits) != other.num_qubits:
            raise CircuitError(
                f"qubit map has {len(qubits)} entries for a "
                f"{other.num_qubits}-qubit circuit"
            )
        out = self.copy()
        for gate in other.gates:
            out.append(gate.with_qubits(tuple(qubits[q] for q in gate.qubits)))
        return out

    def remapped(self, qubit_map: Sequence[int], num_qubits: int) -> "QuantumCircuit":
        """Rebuild the circuit on a larger register via ``qubit_map``."""
        out = QuantumCircuit(num_qubits)
        for gate in self.gates:
            out.append(gate.with_qubits(tuple(qubit_map[q] for q in gate.qubits)))
        return out

    def without_pseudo_ops(self) -> "QuantumCircuit":
        """Copy with barriers/measures/resets removed."""
        return QuantumCircuit(self.num_qubits, self.unitary_gates())

    def active_qubits(self) -> List[int]:
        """Qubits touched by at least one gate, sorted."""
        used = set()
        for gate in self.gates:
            used.update(gate.qubits)
        return sorted(used)

    # -- io --------------------------------------------------------------------

    def to_qasm(self) -> str:
        """Serialize to OpenQASM 2.0 (see :mod:`repro.circuits.qasm`)."""
        from repro.circuits.qasm import circuit_to_qasm

        return circuit_to_qasm(self)

    @classmethod
    def from_qasm(cls, text: str) -> "QuantumCircuit":
        """Parse an OpenQASM 2.0 program (see :mod:`repro.circuits.qasm`)."""
        from repro.circuits.qasm import parse_qasm

        return parse_qasm(text)

"""Random-circuit generators used by the Figure 5 experiment and by tests."""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.exceptions import CircuitError

__all__ = [
    "random_circuit",
    "random_clifford_t_circuit",
    "random_layered_ansatz",
]

#: Default mixed gate set mirroring the paper's "rotation + SX + CNOT" basis.
DEFAULT_ONE_QUBIT = ("rx", "ry", "rz", "h", "sx", "t", "s", "x")
DEFAULT_TWO_QUBIT = ("cx", "cz")


def random_circuit(
    num_qubits: int,
    num_gates: int,
    two_qubit_fraction: float = 0.3,
    one_qubit_gates: Sequence[str] = DEFAULT_ONE_QUBIT,
    two_qubit_gates: Sequence[str] = DEFAULT_TWO_QUBIT,
    seed: Optional[int] = None,
) -> QuantumCircuit:
    """Sample a random circuit with a given two-qubit gate fraction.

    Rotation gates get uniformly random angles in ``[0, 2*pi)``.
    """
    if num_qubits < 1:
        raise CircuitError("random_circuit needs at least one qubit")
    if num_qubits < 2:
        two_qubit_fraction = 0.0
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits)
    for _ in range(num_gates):
        if rng.random() < two_qubit_fraction:
            name = str(rng.choice(list(two_qubit_gates)))
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circuit.add(name, [int(a), int(b)])
        else:
            name = str(rng.choice(list(one_qubit_gates)))
            q = int(rng.integers(num_qubits))
            if name in ("rx", "ry", "rz", "p"):
                circuit.add(name, [q], [float(rng.uniform(0.0, 2.0 * math.pi))])
            else:
                circuit.add(name, [q])
    return circuit


def random_clifford_t_circuit(
    num_qubits: int, num_gates: int, seed: Optional[int] = None
) -> QuantumCircuit:
    """Random Clifford+T circuit — the natural habitat of ZX optimization."""
    return random_circuit(
        num_qubits,
        num_gates,
        two_qubit_fraction=0.35,
        one_qubit_gates=("h", "s", "sdg", "t", "tdg", "x", "z"),
        two_qubit_gates=("cx", "cz"),
        seed=seed,
    )


def random_layered_ansatz(
    num_qubits: int,
    num_layers: int,
    seed: Optional[int] = None,
    entangler: str = "cx",
) -> QuantumCircuit:
    """Hardware-efficient VQE-style ansatz: RY/RZ layers + linear entangling.

    Deep instances of this family are what the paper's Figure 5 text calls
    the extreme case (VQE depth 7656 -> 1110 after ZX optimization).
    """
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits)
    for _ in range(num_layers):
        for q in range(num_qubits):
            circuit.ry(float(rng.uniform(0, 2 * math.pi)), q)
            circuit.rz(float(rng.uniform(0, 2 * math.pi)), q)
        for q in range(num_qubits - 1):
            circuit.add(entangler, [q, q + 1])
    return circuit

"""Dependency DAG over circuit gates.

Used by the partitioner (to pull the next schedulable gate), by PAQOC's
criticality analysis (critical-path weights) and by the pulse scheduler.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import networkx as nx

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate

__all__ = ["CircuitDAG", "circuit_to_dag"]


class CircuitDAG:
    """A networkx DiGraph whose nodes are gate indices into the circuit.

    An edge ``i -> j`` means gate ``j`` shares a qubit with gate ``i`` and
    appears later in program order with no intervening gate on that qubit.
    """

    def __init__(self, circuit: QuantumCircuit):
        self.circuit = circuit
        self.graph = nx.DiGraph()
        last_on_qubit: Dict[int, int] = {}
        for index, gate in enumerate(circuit.gates):
            self.graph.add_node(index, gate=gate)
            for q in gate.qubits:
                if q in last_on_qubit:
                    self.graph.add_edge(last_on_qubit[q], index)
                last_on_qubit[q] = index

    def gate(self, index: int) -> Gate:
        return self.circuit.gates[index]

    def predecessors(self, index: int) -> List[int]:
        return list(self.graph.predecessors(index))

    def successors(self, index: int) -> List[int]:
        return list(self.graph.successors(index))

    def topological_order(self) -> List[int]:
        return list(nx.topological_sort(self.graph))

    def front_layer(self) -> List[int]:
        """Gates with no unfinished predecessors (in-degree zero)."""
        return [n for n in self.graph.nodes if self.graph.in_degree(n) == 0]

    def layers(self) -> List[List[int]]:
        """Topological generations: the DAG analogue of ASAP layers."""
        return [sorted(gen) for gen in nx.topological_generations(self.graph)]

    def critical_path_weights(
        self, weight_fn: Optional[Callable[[Gate], float]] = None
    ) -> Dict[int, float]:
        """Per-gate criticality: length of the longest weighted path through
        each gate, divided by the overall critical-path length.

        ``weight_fn`` maps a gate to a duration (default: 1 per gate).  A
        gate with criticality 1.0 lies on the circuit's critical path; PAQOC
        prioritizes pulse optimization for such gates.
        """
        weight_fn = weight_fn or (lambda gate: 1.0)
        order = self.topological_order()
        longest_to: Dict[int, float] = {}
        for node in order:
            w = weight_fn(self.gate(node))
            preds = self.predecessors(node)
            longest_to[node] = w + max(
                (longest_to[p] for p in preds), default=0.0
            )
        longest_from: Dict[int, float] = {}
        for node in reversed(order):
            w = weight_fn(self.gate(node))
            succs = self.successors(node)
            longest_from[node] = w + max(
                (longest_from[s] for s in succs), default=0.0
            )
        if not order:
            return {}
        total = max(longest_to.values())
        return {
            node: (longest_to[node] + longest_from[node] - weight_fn(self.gate(node)))
            / total
            for node in order
        }


def circuit_to_dag(circuit: QuantumCircuit) -> CircuitDAG:
    """Build the dependency DAG of ``circuit``."""
    return CircuitDAG(circuit)

"""Circuit intermediate representation: gates, circuits, DAGs, QASM I/O."""

from repro.circuits.gates import Gate, GateSpec, GATE_SPECS, gate_matrix
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import CircuitDAG, circuit_to_dag
from repro.circuits.qasm import parse_qasm, circuit_to_qasm
from repro.circuits.routing import RoutingResult, line_coupling_map, route_to_line
from repro.circuits.random_circuits import (
    random_circuit,
    random_clifford_t_circuit,
    random_layered_ansatz,
)

__all__ = [
    "Gate",
    "GateSpec",
    "GATE_SPECS",
    "gate_matrix",
    "QuantumCircuit",
    "CircuitDAG",
    "circuit_to_dag",
    "parse_qasm",
    "circuit_to_qasm",
    "random_circuit",
    "random_clifford_t_circuit",
    "random_layered_ansatz",
    "RoutingResult",
    "line_coupling_map",
    "route_to_line",
]

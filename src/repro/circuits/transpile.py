"""Basis-gate decomposition passes.

Two target bases are supported:

* ``"zx"`` — {rz, rx, h, cx, cz}: the vocabulary the ZX converter consumes.
* ``"cx_u3"`` — {u3, cx}: the calibrated native set of the gate-based
  pulse baseline.

Both passes are purely local rewrites; unitary equivalence (up to global
phase) is property-tested.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List

import numpy as np

from repro.exceptions import CircuitError
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.linalg.decompose import zyz_angles

__all__ = ["decompose_to_zx_basis", "decompose_to_cx_u3", "decompose_gate_zx"]


def _is_identity_angles(
    theta: float, phi: float, lam: float, tol: float = 1e-10
) -> bool:
    """True when u3(theta, phi, lam) is the identity up to global phase."""
    if abs(theta) > tol:
        return False
    total = (phi + lam) % (2.0 * math.pi)
    return total < tol or 2.0 * math.pi - total < tol

_ZX_BASIS = {"rz", "rx", "h", "cx", "cz"}


def decompose_to_zx_basis(circuit: QuantumCircuit) -> QuantumCircuit:
    """Rewrite every gate into the {rz, rx, h, cx, cz} basis.

    Pseudo-ops (barrier/measure/reset) are dropped: ZX optimization works
    on the unitary part of the circuit.
    """
    out = QuantumCircuit(circuit.num_qubits)
    for gate in circuit.unitary_gates():
        for name, qubits, params in decompose_gate_zx(gate):
            out.add(name, qubits, params)
    return out


def decompose_gate_zx(gate: Gate):
    """Yield (name, qubits, params) triples in the ZX basis for ``gate``."""
    name = gate.name
    qs = gate.qubits
    ps = gate.params
    if name in _ZX_BASIS:
        yield name, list(qs), list(ps)
        return
    handler = _ZX_HANDLERS.get(name)
    if handler is not None:
        yield from handler(qs, ps)
        return
    if name == "unitary":
        if gate.num_qubits == 1:
            yield from _one_qubit_unitary(gate.matrix(), qs[0])
            return
        raise CircuitError(
            "multi-qubit raw unitaries must be synthesized before basis "
            "decomposition"
        )
    raise CircuitError(f"no ZX-basis decomposition for gate {name!r}")


def _one_qubit_unitary(matrix: np.ndarray, q: int):
    theta, phi, lam, _ = zyz_angles(matrix)
    yield from _u3(q, theta, phi, lam)


def _u3(q: int, theta: float, phi: float, lam: float):
    # U3 = (phase) Rz(phi) Ry(theta) Rz(lam); circuits apply left-to-right.
    yield "rz", [q], [lam]
    yield from _ry(q, theta)
    yield "rz", [q], [phi]


def _ry(q: int, theta: float):
    # Ry(t) = S Rx(t) Sdg  (as matrices), i.e. apply rz(-pi/2), rx, rz(pi/2).
    yield "rz", [q], [-math.pi / 2.0]
    yield "rx", [q], [theta]
    yield "rz", [q], [math.pi / 2.0]


def _controlled_u(control: int, target: int, matrix: np.ndarray):
    """ABC decomposition of a controlled single-qubit unitary."""
    theta, phi, lam, phase = zyz_angles(matrix)
    # U = e^{i*phase} Rz(phi) Ry(theta) Rz(lam)
    # C = Rz((lam - phi)/2); B = Ry(-theta/2) Rz(-(phi + lam)/2);
    # A = Rz(phi) Ry(theta/2); then CU = (P(phase) on c) . A X B X C.
    yield "rz", [target], [(lam - phi) / 2.0]
    yield "cx", [control, target], []
    yield "rz", [target], [-(phi + lam) / 2.0]
    yield from _ry(target, -theta / 2.0)
    yield "cx", [control, target], []
    yield from _ry(target, theta / 2.0)
    yield "rz", [target], [phi]
    # P(phase) on the control: rz is enough because we work up to a global
    # phase and the relative |0>/|1> phase is what matters.
    yield "rz", [control], [phase]


def _make_simple(sequence):
    def handler(qs, ps):
        for name, rel_qubits, params in sequence(qs, ps):
            yield name, rel_qubits, params

    return handler


def _handler_table() -> Dict[str, Callable]:
    from repro.circuits.gates import gate_matrix

    table: Dict[str, Callable] = {}

    table["id"] = lambda qs, ps: iter(())
    table["x"] = lambda qs, ps: iter([("rx", [qs[0]], [math.pi])])
    table["z"] = lambda qs, ps: iter([("rz", [qs[0]], [math.pi])])
    table["y"] = lambda qs, ps: iter(
        [("rz", [qs[0]], [math.pi]), ("rx", [qs[0]], [math.pi])]
    )
    table["s"] = lambda qs, ps: iter([("rz", [qs[0]], [math.pi / 2])])
    table["sdg"] = lambda qs, ps: iter([("rz", [qs[0]], [-math.pi / 2])])
    table["t"] = lambda qs, ps: iter([("rz", [qs[0]], [math.pi / 4])])
    table["tdg"] = lambda qs, ps: iter([("rz", [qs[0]], [-math.pi / 4])])
    table["sx"] = lambda qs, ps: iter([("rx", [qs[0]], [math.pi / 2])])
    table["sxdg"] = lambda qs, ps: iter([("rx", [qs[0]], [-math.pi / 2])])
    table["p"] = lambda qs, ps: iter([("rz", [qs[0]], [ps[0]])])
    table["u1"] = table["p"]
    table["ry"] = lambda qs, ps: _ry(qs[0], ps[0])
    table["u2"] = lambda qs, ps: _u3(qs[0], math.pi / 2, ps[0], ps[1])
    table["u3"] = lambda qs, ps: _u3(qs[0], *ps)
    table["u"] = table["u3"]

    def swap(qs, ps):
        a, b = qs
        yield "cx", [a, b], []
        yield "cx", [b, a], []
        yield "cx", [a, b], []

    table["swap"] = swap

    def iswap(qs, ps):
        a, b = qs
        yield "rz", [a], [math.pi / 2]
        yield "rz", [b], [math.pi / 2]
        yield "h", [a], []
        yield "cx", [a, b], []
        yield "cx", [b, a], []
        yield "h", [b], []

    table["iswap"] = iswap

    def crz(qs, ps):
        c, t = qs
        yield "rz", [t], [ps[0] / 2]
        yield "cx", [c, t], []
        yield "rz", [t], [-ps[0] / 2]
        yield "cx", [c, t], []

    table["crz"] = crz

    def cp(qs, ps):
        c, t = qs
        yield "rz", [c], [ps[0] / 2]
        yield "rz", [t], [ps[0] / 2]
        yield "cx", [c, t], []
        yield "rz", [t], [-ps[0] / 2]
        yield "cx", [c, t], []

    table["cp"] = cp
    table["cu1"] = cp

    def rzz(qs, ps):
        a, b = qs
        yield "cx", [a, b], []
        yield "rz", [b], [ps[0]]
        yield "cx", [a, b], []

    table["rzz"] = rzz

    def rxx(qs, ps):
        a, b = qs
        yield "h", [a], []
        yield "h", [b], []
        yield from rzz(qs, ps)
        yield "h", [a], []
        yield "h", [b], []

    table["rxx"] = rxx

    def ryy(qs, ps):
        a, b = qs
        yield "rx", [a], [math.pi / 2]
        yield "rx", [b], [math.pi / 2]
        yield from rzz(qs, ps)
        yield "rx", [a], [-math.pi / 2]
        yield "rx", [b], [-math.pi / 2]

    table["ryy"] = ryy

    def controlled(name):
        def handler(qs, ps):
            matrix = gate_matrix(name, tuple(ps)) if ps else gate_matrix(name)
            yield from _controlled_u(qs[0], qs[1], matrix)

        return handler

    table["cy"] = controlled("y")
    table["ch"] = controlled("h")
    table["crx"] = lambda qs, ps: _controlled_u(qs[0], qs[1], gate_matrix("rx", ps))
    table["cry"] = lambda qs, ps: _controlled_u(qs[0], qs[1], gate_matrix("ry", ps))
    table["cu3"] = lambda qs, ps: _controlled_u(qs[0], qs[1], gate_matrix("u3", ps))

    def ccx(qs, ps):
        c1, c2, t = qs
        yield "h", [t], []
        yield "cx", [c2, t], []
        yield "rz", [t], [-math.pi / 4]
        yield "cx", [c1, t], []
        yield "rz", [t], [math.pi / 4]
        yield "cx", [c2, t], []
        yield "rz", [t], [-math.pi / 4]
        yield "cx", [c1, t], []
        yield "rz", [c2], [math.pi / 4]
        yield "rz", [t], [math.pi / 4]
        yield "h", [t], []
        yield "cx", [c1, c2], []
        yield "rz", [c1], [math.pi / 4]
        yield "rz", [c2], [-math.pi / 4]
        yield "cx", [c1, c2], []

    table["ccx"] = ccx

    def ccz(qs, ps):
        c1, c2, t = qs
        yield "h", [t], []
        yield from ccx(qs, ps)
        yield "h", [t], []

    table["ccz"] = ccz

    def cswap(qs, ps):
        c, a, b = qs
        yield "cx", [b, a], []
        yield from ccx([c, a, b], [])
        yield "cx", [b, a], []

    table["cswap"] = cswap

    return table


_ZX_HANDLERS = _handler_table()


def decompose_to_cx_u3(circuit: QuantumCircuit) -> QuantumCircuit:
    """Rewrite into the {u3, cx} native basis of the gate-based baseline.

    Strategy: first go to the ZX basis (which handles every named gate),
    then map rz/rx/h onto u3 and cz onto H-conjugated cx.
    """
    zx_basis = decompose_to_zx_basis(circuit)
    out = QuantumCircuit(circuit.num_qubits)
    for gate in zx_basis.gates:
        if gate.name == "cx":
            out.add("cx", list(gate.qubits))
        elif gate.name == "cz":
            c, t = gate.qubits
            out.add("u3", [t], [math.pi / 2, 0.0, math.pi])  # H
            out.add("cx", [c, t])
            out.add("u3", [t], [math.pi / 2, 0.0, math.pi])
        elif gate.name == "h":
            out.add("u3", list(gate.qubits), [math.pi / 2, 0.0, math.pi])
        elif gate.name == "rz":
            out.add("u3", list(gate.qubits), [0.0, 0.0, gate.params[0]])
        elif gate.name == "rx":
            out.add(
                "u3",
                list(gate.qubits),
                [gate.params[0], -math.pi / 2, math.pi / 2],
            )
        else:  # pragma: no cover - the zx pass only emits the above
            raise CircuitError(f"unexpected gate {gate.name!r} after ZX pass")
    return _merge_adjacent_u3(out)


def _merge_adjacent_u3(circuit: QuantumCircuit) -> QuantumCircuit:
    """Fuse runs of u3 gates on the same qubit into a single u3."""
    out = QuantumCircuit(circuit.num_qubits)
    pending: Dict[int, np.ndarray] = {}

    def flush(q: int) -> None:
        matrix = pending.pop(q, None)
        if matrix is None:
            return
        theta, phi, lam, _ = zyz_angles(matrix)
        if not _is_identity_angles(theta, phi, lam):
            out.add("u3", [q], [theta, phi, lam])

    for gate in circuit.gates:
        if gate.name == "u3":
            q = gate.qubits[0]
            current = pending.get(q, np.eye(2, dtype=complex))
            pending[q] = gate.matrix() @ current
        else:
            for q in gate.qubits:
                flush(q)
            out.append(gate)
    for q in list(pending):
        flush(q)
    return out

"""Qubit mapping and routing for linear-chain topologies.

The compilation workflow in the paper's Figure 1/3 includes a mapping
pass ("mapped according to the target quantum computer's architecture");
our QOC substrate is a nearest-neighbour transmon chain, so this module
provides the matching router: a greedy SWAP-insertion pass that makes
every two-qubit gate act on adjacent physical qubits.

The router returns the final layout so callers can undo the permutation
(or simply relabel measurement results, as hardware stacks do).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.exceptions import CircuitError
from repro.circuits.circuit import QuantumCircuit

__all__ = ["RoutingResult", "line_coupling_map", "route_to_line"]


def line_coupling_map(num_qubits: int) -> List[Tuple[int, int]]:
    """Nearest-neighbour couplings of a chain."""
    return [(q, q + 1) for q in range(num_qubits - 1)]


@dataclass(frozen=True)
class RoutingResult:
    """A routed circuit plus its qubit bookkeeping."""

    circuit: QuantumCircuit
    #: physical wire currently holding each logical qubit
    final_layout: Tuple[int, ...]
    swap_count: int

    def layout_correction(self) -> QuantumCircuit:
        """SWAP circuit mapping the routed output back to logical order.

        Appending this to ``circuit`` yields a circuit equivalent to the
        original on identically-ordered wires (used by the tests; real
        stacks relabel classical results instead).
        """
        n = self.circuit.num_qubits
        correction = QuantumCircuit(n)
        logical_at = [0] * n
        for logical, phys in enumerate(self.final_layout):
            logical_at[phys] = logical
        for wire in range(n):
            while logical_at[wire] != wire:
                target = logical_at[wire]
                correction.swap(wire, target)
                logical_at[wire], logical_at[target] = (
                    logical_at[target],
                    logical_at[wire],
                )
        return correction


def route_to_line(circuit: QuantumCircuit) -> RoutingResult:
    """Insert SWAPs so every 2-qubit gate is nearest-neighbour.

    Greedy strategy: for each two-qubit gate, walk the farther operand
    toward the other one SWAP at a time.  Gates wider than two qubits must
    be decomposed first (:func:`repro.circuits.transpile.decompose_to_cx_u3`).
    """
    n = circuit.num_qubits
    routed = QuantumCircuit(n)
    phys_of_logical = list(range(n))
    swap_count = 0

    def do_swap(p: int, q: int) -> None:
        nonlocal swap_count
        routed.swap(p, q)
        swap_count += 1
        a = phys_of_logical.index(p)
        b = phys_of_logical.index(q)
        phys_of_logical[a], phys_of_logical[b] = (
            phys_of_logical[b],
            phys_of_logical[a],
        )

    for gate in circuit.gates:
        if not gate.is_unitary_op:
            routed.append(
                gate.with_qubits(
                    tuple(phys_of_logical[q] for q in gate.qubits)
                )
            )
            continue
        if gate.num_qubits == 1:
            routed.append(gate.with_qubits((phys_of_logical[gate.qubits[0]],)))
        elif gate.num_qubits == 2:
            pa = phys_of_logical[gate.qubits[0]]
            pb = phys_of_logical[gate.qubits[1]]
            while abs(pa - pb) > 1:
                step = 1 if pb > pa else -1
                do_swap(pb, pb - step)
                pa = phys_of_logical[gate.qubits[0]]
                pb = phys_of_logical[gate.qubits[1]]
            routed.append(gate.with_qubits((pa, pb)))
        else:
            raise CircuitError(
                f"route_to_line handles gates up to 2 qubits; decompose "
                f"{gate.name!r} first"
            )
    return RoutingResult(
        circuit=routed,
        final_layout=tuple(phys_of_logical),
        swap_count=swap_count,
    )

"""Gate definitions: matrices, arities and inverse rules.

The registry in :data:`GATE_SPECS` names every gate the OpenQASM parser and
the circuit IR understand.  Matrices follow the OpenQASM 2.0 / qelib1
conventions; rotation gates are ``exp(-i * angle * P / 2)`` for Pauli ``P``.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.exceptions import CircuitError

__all__ = [
    "Gate",
    "GateSpec",
    "GATE_SPECS",
    "gate_matrix",
    "u3_matrix",
    "rx_matrix",
    "ry_matrix",
    "rz_matrix",
    "controlled",
]

_SQ2 = 1.0 / math.sqrt(2.0)

# -- matrix builders ---------------------------------------------------------


def u3_matrix(theta: float, phi: float, lam: float) -> np.ndarray:
    """OpenQASM ``u3`` gate matrix."""
    cos = math.cos(theta / 2.0)
    sin = math.sin(theta / 2.0)
    return np.array(
        [
            [cos, -cmath.exp(1j * lam) * sin],
            [cmath.exp(1j * phi) * sin, cmath.exp(1j * (phi + lam)) * cos],
        ],
        dtype=complex,
    )


def rx_matrix(theta: float) -> np.ndarray:
    """``exp(-i * theta * X / 2)``."""
    cos = math.cos(theta / 2.0)
    sin = math.sin(theta / 2.0)
    return np.array([[cos, -1j * sin], [-1j * sin, cos]], dtype=complex)


def ry_matrix(theta: float) -> np.ndarray:
    """``exp(-i * theta * Y / 2)``."""
    cos = math.cos(theta / 2.0)
    sin = math.sin(theta / 2.0)
    return np.array([[cos, -sin], [sin, cos]], dtype=complex)


def rz_matrix(theta: float) -> np.ndarray:
    """``exp(-i * theta * Z / 2)``."""
    phase = cmath.exp(1j * theta / 2.0)
    return np.array([[1.0 / phase, 0.0], [0.0, phase]], dtype=complex)


def _p_matrix(lam: float) -> np.ndarray:
    return np.array([[1.0, 0.0], [0.0, cmath.exp(1j * lam)]], dtype=complex)


def controlled(matrix: np.ndarray) -> np.ndarray:
    """Add one control qubit (most significant) to ``matrix``."""
    matrix = np.asarray(matrix, dtype=complex)
    dim = matrix.shape[0]
    out = np.eye(2 * dim, dtype=complex)
    out[dim:, dim:] = matrix
    return out


_I = np.eye(2, dtype=complex)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.array([[1, 0], [0, -1]], dtype=complex)
_H = np.array([[_SQ2, _SQ2], [_SQ2, -_SQ2]], dtype=complex)
_S = np.array([[1, 0], [0, 1j]], dtype=complex)
_SDG = _S.conj().T
_T = np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=complex)
_TDG = _T.conj().T
_SX = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)
_SXDG = _SX.conj().T
_SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)
_ISWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]], dtype=complex
)


def _rxx_matrix(theta: float) -> np.ndarray:
    cos = math.cos(theta / 2.0)
    isin = -1j * math.sin(theta / 2.0)
    out = np.eye(4, dtype=complex) * cos
    out[0, 3] = out[3, 0] = out[1, 2] = out[2, 1] = isin
    return out


def _ryy_matrix(theta: float) -> np.ndarray:
    cos = math.cos(theta / 2.0)
    isin = 1j * math.sin(theta / 2.0)
    out = np.eye(4, dtype=complex) * cos
    out[0, 3] = out[3, 0] = isin
    out[1, 2] = out[2, 1] = -isin
    return out


def _rzz_matrix(theta: float) -> np.ndarray:
    phase = cmath.exp(1j * theta / 2.0)
    return np.diag([1.0 / phase, phase, phase, 1.0 / phase]).astype(complex)


# -- registry ----------------------------------------------------------------


@dataclass(frozen=True)
class GateSpec:
    """Static description of a named gate type."""

    name: str
    num_qubits: int
    num_params: int
    matrix_fn: Callable[..., np.ndarray]
    #: inverse rule: ("self",), ("name", other) or ("negate",)
    inverse: Tuple = ("dagger",)

    def matrix(self, params: Tuple[float, ...]) -> np.ndarray:
        if len(params) != self.num_params:
            raise CircuitError(
                f"gate {self.name!r} takes {self.num_params} parameters, "
                f"got {len(params)}"
            )
        return self.matrix_fn(*params)


GATE_SPECS: Dict[str, GateSpec] = {}


def _register(spec: GateSpec) -> None:
    GATE_SPECS[spec.name] = spec


_register(GateSpec("id", 1, 0, lambda: _I, ("self",)))
_register(GateSpec("x", 1, 0, lambda: _X, ("self",)))
_register(GateSpec("y", 1, 0, lambda: _Y, ("self",)))
_register(GateSpec("z", 1, 0, lambda: _Z, ("self",)))
_register(GateSpec("h", 1, 0, lambda: _H, ("self",)))
_register(GateSpec("s", 1, 0, lambda: _S, ("name", "sdg")))
_register(GateSpec("sdg", 1, 0, lambda: _SDG, ("name", "s")))
_register(GateSpec("t", 1, 0, lambda: _T, ("name", "tdg")))
_register(GateSpec("tdg", 1, 0, lambda: _TDG, ("name", "t")))
_register(GateSpec("sx", 1, 0, lambda: _SX, ("name", "sxdg")))
_register(GateSpec("sxdg", 1, 0, lambda: _SXDG, ("name", "sx")))
_register(GateSpec("rx", 1, 1, rx_matrix, ("negate",)))
_register(GateSpec("ry", 1, 1, ry_matrix, ("negate",)))
_register(GateSpec("rz", 1, 1, rz_matrix, ("negate",)))
_register(GateSpec("p", 1, 1, _p_matrix, ("negate",)))
_register(GateSpec("u1", 1, 1, _p_matrix, ("negate",)))
_register(
    GateSpec(
        "u2",
        1,
        2,
        lambda phi, lam: u3_matrix(math.pi / 2.0, phi, lam),
    )
)
_register(GateSpec("u3", 1, 3, u3_matrix))
_register(GateSpec("u", 1, 3, u3_matrix))
_register(GateSpec("cx", 2, 0, lambda: controlled(_X), ("self",)))
_register(GateSpec("cy", 2, 0, lambda: controlled(_Y), ("self",)))
_register(GateSpec("cz", 2, 0, lambda: controlled(_Z), ("self",)))
_register(GateSpec("ch", 2, 0, lambda: controlled(_H), ("self",)))
_register(GateSpec("swap", 2, 0, lambda: _SWAP, ("self",)))
_register(GateSpec("iswap", 2, 0, lambda: _ISWAP))
_register(GateSpec("crx", 2, 1, lambda t: controlled(rx_matrix(t)), ("negate",)))
_register(GateSpec("cry", 2, 1, lambda t: controlled(ry_matrix(t)), ("negate",)))
_register(GateSpec("crz", 2, 1, lambda t: controlled(rz_matrix(t)), ("negate",)))
_register(GateSpec("cp", 2, 1, lambda t: controlled(_p_matrix(t)), ("negate",)))
_register(GateSpec("cu1", 2, 1, lambda t: controlled(_p_matrix(t)), ("negate",)))
_register(
    GateSpec(
        "cu3",
        2,
        3,
        lambda t, p, l: controlled(u3_matrix(t, p, l)),
    )
)
_register(GateSpec("rxx", 2, 1, _rxx_matrix, ("negate",)))
_register(GateSpec("ryy", 2, 1, _ryy_matrix, ("negate",)))
_register(GateSpec("rzz", 2, 1, _rzz_matrix, ("negate",)))
_register(GateSpec("ccx", 3, 0, lambda: controlled(controlled(_X)), ("self",)))
_register(GateSpec("ccz", 3, 0, lambda: controlled(controlled(_Z)), ("self",)))
_register(GateSpec("cswap", 3, 0, lambda: controlled(_SWAP), ("self",)))

#: Pseudo-operations the QASM parser accepts but that carry no unitary.
NON_UNITARY_OPS = frozenset({"barrier", "measure", "reset"})


def gate_matrix(name: str, params: Tuple[float, ...] = ()) -> np.ndarray:
    """Matrix of the named gate with the given parameters."""
    try:
        spec = GATE_SPECS[name]
    except KeyError:
        raise CircuitError(f"unknown gate {name!r}") from None
    return spec.matrix(tuple(params))


@dataclass(frozen=True)
class Gate:
    """One circuit instruction: a named gate or a raw-unitary gate.

    A ``Gate`` with ``name == "unitary"`` carries its matrix explicitly in
    ``matrix_override`` (used for partition blocks and VUGs); every other
    gate derives its matrix from :data:`GATE_SPECS`.
    """

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[float, ...] = ()
    matrix_override: Optional[np.ndarray] = field(default=None, compare=False)
    label: Optional[str] = None

    def __post_init__(self):
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        object.__setattr__(self, "params", tuple(float(p) for p in self.params))
        if len(set(self.qubits)) != len(self.qubits):
            raise CircuitError(f"gate {self.name!r} repeats qubits: {self.qubits}")
        if self.name == "unitary":
            if self.matrix_override is None:
                raise CircuitError("unitary gate requires an explicit matrix")
            dim = 2 ** len(self.qubits)
            if self.matrix_override.shape != (dim, dim):
                raise CircuitError(
                    f"unitary gate on {len(self.qubits)} qubits needs a "
                    f"{dim}x{dim} matrix, got {self.matrix_override.shape}"
                )
        elif self.name in NON_UNITARY_OPS:
            pass
        else:
            spec = GATE_SPECS.get(self.name)
            if spec is None:
                raise CircuitError(f"unknown gate {self.name!r}")
            if spec.num_qubits != len(self.qubits):
                raise CircuitError(
                    f"gate {self.name!r} acts on {spec.num_qubits} qubits, "
                    f"got {len(self.qubits)}"
                )
            if spec.num_params != len(self.params):
                raise CircuitError(
                    f"gate {self.name!r} takes {spec.num_params} parameters, "
                    f"got {len(self.params)}"
                )

    # -- properties --------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    @property
    def is_unitary_op(self) -> bool:
        """False only for barrier/measure/reset pseudo-ops."""
        return self.name not in NON_UNITARY_OPS

    def matrix(self) -> np.ndarray:
        """The gate's matrix in its own qubit ordering (qubits[0] = MSB)."""
        if self.name == "unitary":
            return self.matrix_override
        if not self.is_unitary_op:
            raise CircuitError(f"{self.name!r} has no matrix")
        return gate_matrix(self.name, self.params)

    def inverse(self) -> "Gate":
        """A gate implementing the inverse unitary."""
        if self.name == "unitary":
            return Gate(
                "unitary",
                self.qubits,
                matrix_override=self.matrix_override.conj().T,
                label=self.label,
            )
        if not self.is_unitary_op:
            raise CircuitError(f"{self.name!r} has no inverse")
        rule = GATE_SPECS[self.name].inverse
        if rule[0] == "self":
            return self
        if rule[0] == "name":
            return Gate(rule[1], self.qubits, self.params)
        if rule[0] == "negate":
            return Gate(self.name, self.qubits, tuple(-p for p in self.params))
        return Gate(
            "unitary", self.qubits, matrix_override=self.matrix().conj().T
        )

    def with_qubits(self, qubits: Tuple[int, ...]) -> "Gate":
        """The same gate applied to different qubits."""
        return Gate(
            self.name,
            tuple(qubits),
            self.params,
            matrix_override=self.matrix_override,
            label=self.label,
        )

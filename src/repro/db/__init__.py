"""Embedded pulse-library database.

``repro.db`` replaces the O(N)-rewrite-per-sync JSON store with an
embedded SQLite (WAL) store whose merge protocol writes O(new entries)
per sync, and widens cache reuse with *equivalence-class* lookup —
turning misses whose target is a known unitary's transpose, dagger,
mirror image, or tensor product into hits.

Public surface:

* :class:`SqliteLibraryStore` — transactional upsert-only persistence,
  drop-in for :class:`repro.batch.store.SharedLibraryStore`.
* :func:`open_store` — pick the backend from the file path/extension.
* :func:`is_sqlite_path` — the autodetection predicate.
* :mod:`repro.db.equivalence` — the exact pulse transforms and the
  tensor-product factorization used by
  :meth:`repro.qoc.library.PulseLibrary.get_pulse`.
"""

from repro.db.schema import (
    DB_SCHEMA_VERSION,
    SQLITE_MAGIC,
    SQLITE_SUFFIXES,
    is_sqlite_path,
)
from repro.db.store import SqliteLibraryStore, open_store

__all__ = [
    "DB_SCHEMA_VERSION",
    "SQLITE_MAGIC",
    "SQLITE_SUFFIXES",
    "SqliteLibraryStore",
    "is_sqlite_path",
    "open_store",
]

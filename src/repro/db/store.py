"""Transactional SQLite persistence for the pulse library.

Drop-in replacement for :class:`repro.batch.store.SharedLibraryStore`
(same ``pull``/``sync``/``exists`` surface, same :class:`StoreSync`
accounting) with a fundamentally different cost model: the JSON store's
locked **load-merge-save** round re-reads and re-writes every entry on
every sync — O(N) per save, O(N²) cumulative over a batch — while this
store's **upsert-only merge** runs one ``BEGIN IMMEDIATE`` transaction
that inserts only the locally-new rows and reads back only the
disk-new rows.  Entries are content-addressed (the canonical unitary
cache key is the primary key) and pulse searches are deterministic, so
two processes that solved the same key produced the same pulse and
``INSERT OR IGNORE`` is a complete conflict resolution policy.

Integrity semantics are inherited unchanged from the JSON artifact
layer: every row carries the same per-entry checksum
(:func:`repro.verify.artifacts.pulse_checksum` over the canonical JSON
payload), rows are validated with the same
:func:`~repro.verify.artifacts.validate_entry` /
:func:`repro.pulse.serialize.validate_pulse_payload` pair on the way
in, and corrupted rows are quarantined — counted, logged, skipped —
exactly as :meth:`PulseLibrary.load` quarantines JSON entries.
"""

from __future__ import annotations

import json
import os
import sqlite3
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from repro import telemetry
from repro.exceptions import QOCError, StoreBusyError
from repro.db.schema import (
    DB_SCHEMA_VERSION,
    connect,
    ensure_schema,
    is_sqlite_path,
    read_meta,
)

__all__ = ["SqliteLibraryStore", "open_store"]

logger = telemetry.get_logger("db.store")

_FETCH_CHUNK = 512


def open_store(path: str, timeout_seconds: Optional[float] = None):
    """The right store backend for ``path``.

    SQLite files (by header) and SQLite-suffixed new paths get
    :class:`SqliteLibraryStore`; everything else keeps the JSON
    :class:`repro.batch.store.SharedLibraryStore`.

    ``timeout_seconds`` bounds how long a sync waits for a contended
    store (the SQLite busy-timeout / the flock wait).  ``None`` defers
    to the ``REPRO_STORE_TIMEOUT`` environment variable and then to the
    60s default (see :func:`repro.batch.store.resolve_store_timeout`);
    the CLI exposes it as ``--store-timeout``.  An exhausted timeout
    raises :class:`repro.exceptions.StoreBusyError` carrying the
    best-effort pid of the lock holder.
    """
    if is_sqlite_path(path):
        return SqliteLibraryStore(path, timeout_seconds=timeout_seconds)
    from repro.batch.store import SharedLibraryStore

    return SharedLibraryStore(path, timeout_seconds=timeout_seconds)


#: OperationalError fragments that mean "another writer holds the lock".
_BUSY_MARKERS = ("database is locked", "database is busy")


class SqliteLibraryStore:
    """Content-addressed pulse-library persistence in one SQLite file."""

    kind = "sqlite"

    def __init__(self, path: str, timeout_seconds: Optional[float] = None):
        from repro.batch.store import resolve_store_timeout

        self.path = os.path.abspath(path)
        #: pid marker maintained by the current write-transaction holder
        #: so a StoreBusyError can name who is sitting on the lock.
        self.holder_path = self.path + ".holder"
        self.timeout_seconds = resolve_store_timeout(timeout_seconds)

    # -- connections -------------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        conn = connect(self.path, self.timeout_seconds)
        conn.isolation_level = None  # explicit BEGIN/COMMIT below
        return conn

    @contextmanager
    def _busy_guard(self) -> Iterator[None]:
        """Translate an exhausted busy-timeout into a typed error."""
        try:
            yield
        except sqlite3.OperationalError as exc:
            message = str(exc).lower()
            if not any(marker in message for marker in _BUSY_MARKERS):
                raise
            holder = self.holder_pid()
            held_by = f" (held by pid {holder})" if holder else ""
            raise StoreBusyError(
                f"library database {self.path} stayed locked past "
                f"{self.timeout_seconds:.1f}s{held_by}",
                path=self.path,
                holder_pid=holder,
                timeout_seconds=self.timeout_seconds,
            ) from exc

    def holder_pid(self) -> Optional[int]:
        """The pid recorded by the current write holder (best effort)."""
        try:
            with open(self.holder_path, "rb") as fh:
                return int(fh.read(32).strip() or 0) or None
        except (OSError, ValueError):
            return None

    def _mark_holder(self) -> None:
        try:
            with open(self.holder_path, "w") as fh:
                fh.write(str(os.getpid()))
        except OSError:  # pragma: no cover - diagnostics only
            pass

    def _clear_holder(self) -> None:
        try:
            os.unlink(self.holder_path)
        except OSError:
            pass

    def _check_meta(
        self, conn: sqlite3.Connection, library, create: bool
    ) -> None:
        """Validate (or, under a write transaction, initialize) ``meta``."""
        meta = read_meta(conn)
        if not meta:
            if not create:
                return
            conn.executemany(
                "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                [
                    ("schema_version", str(DB_SCHEMA_VERSION)),
                    ("library_schema", str(_library_schema_version())),
                    (
                        "match_global_phase",
                        "1" if library.match_global_phase else "0",
                    ),
                ],
            )
            meta = read_meta(conn)
        try:
            version = int(meta.get("schema_version", "1"))
        except ValueError:
            raise QOCError(
                f"library database {self.path} has a non-integer "
                f"schema_version {meta.get('schema_version')!r}"
            )
        if version < 1 or version > DB_SCHEMA_VERSION:
            raise QOCError(
                f"library database {self.path} uses unsupported schema "
                f"{version} (this build reads <= {DB_SCHEMA_VERSION})"
            )
        stored_mode = meta.get("match_global_phase") == "1"
        if stored_mode != library.match_global_phase:
            raise QOCError(
                "stored library uses a different cache-key mode; "
                "refusing to merge"
            )

    # -- store surface (SharedLibraryStore-compatible) ---------------------

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def pull(self, library, num_qubits: Optional[int] = None) -> int:
        """Merge on-disk entries into ``library``; returns the number
        that were new to it.  The database is not modified.

        ``num_qubits`` narrows the read to one register width via the
        ``pulses_by_width`` index — useful when only warm-start
        candidates of a known width are wanted from a huge fleet
        library.
        """
        if not self.exists():
            return 0
        conn = self._connect()
        try:
            with self._busy_guard():
                ensure_schema(conn)
                self._check_meta(conn, library, create=False)
                staged, quarantined = self._fetch_new(
                    conn, library, num_qubits=num_qubits
                )
        finally:
            conn.close()
        return library.merge_entries(staged, quarantined=quarantined)

    def sync(self, library) -> "StoreSync":
        """One transactional merge round, O(new entries) in writes.

        Under a single ``BEGIN IMMEDIATE`` transaction: publish the
        rows only this process has solved (``INSERT OR IGNORE``), read
        back only the rows only other processes have solved, and leave
        every already-shared row untouched.  Concurrent processes can
        interleave syncs freely — the write lock serializes the rounds
        and content-addressing makes re-inserts idempotent.
        """
        from repro.batch.store import StoreSync

        metrics = telemetry.get_metrics()
        conn = self._connect()
        try:
            with self._busy_guard():
                ensure_schema(conn)
                conn.execute("BEGIN IMMEDIATE")
            self._mark_holder()
            try:
                with self._busy_guard():
                    self._check_meta(conn, library, create=True)
                    disk_keys = {
                        row[0] for row in conn.execute("SELECT key FROM pulses")
                    }
                    inserted = self._publish_new(conn, library, disk_keys)
                    staged, quarantined = self._fetch_new(
                        conn, library, disk_keys=disk_keys
                    )
                    conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            finally:
                self._clear_holder()
        finally:
            conn.close()
        new = library.merge_entries(staged, quarantined=quarantined)
        metrics.inc("batch.store_syncs")
        metrics.inc("batch.store_merged_entries", new)
        metrics.inc("db.rows_inserted", inserted)
        logger.debug(
            "sqlite sync: %d rows on disk, %d inserted, %d new locally -> %s",
            len(disk_keys),
            inserted,
            new,
            self.path,
        )
        return StoreSync(
            loaded_entries=len(disk_keys),
            new_entries=new,
            total_entries=len(library),
        )

    # -- internals ---------------------------------------------------------

    def _publish_new(
        self, conn: sqlite3.Connection, library, disk_keys
    ) -> int:
        """INSERT the library entries the database does not have yet."""
        from repro.pulse.serialize import pulse_to_dict
        from repro.verify.artifacts import pulse_checksum

        rows = []
        entries = library.entries()
        for key in sorted(entries):
            if key in disk_keys:
                continue
            payload = pulse_to_dict(entries[key])
            text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
            rows.append((key, key[0], text, pulse_checksum(payload)))
        if rows:
            conn.executemany(
                "INSERT OR IGNORE INTO pulses "
                "(key, num_qubits, payload, checksum) VALUES (?, ?, ?, ?)",
                rows,
            )
        return len(rows)

    def _fetch_new(
        self,
        conn: sqlite3.Connection,
        library,
        disk_keys=None,
        num_qubits: Optional[int] = None,
    ) -> Tuple[Dict[bytes, object], int]:
        """Read + validate the rows the in-memory library lacks."""
        from repro.pulse.serialize import (
            pulse_from_dict,
            validate_pulse_payload,
        )
        from repro.verify.artifacts import validate_entry

        if disk_keys is None:
            if num_qubits is None:
                cursor = conn.execute("SELECT key FROM pulses")
            else:
                cursor = conn.execute(
                    "SELECT key FROM pulses WHERE num_qubits = ?",
                    (int(num_qubits),),
                )
            disk_keys = {row[0] for row in cursor}
        local = library.entries()
        wanted = sorted(key for key in disk_keys if key not in local)
        staged: Dict[bytes, object] = {}
        quarantined = 0
        metrics = telemetry.get_metrics()
        for start in range(0, len(wanted), _FETCH_CHUNK):
            chunk = wanted[start : start + _FETCH_CHUNK]
            marks = ",".join("?" * len(chunk))
            rows = conn.execute(
                f"SELECT key, payload, checksum FROM pulses "
                f"WHERE key IN ({marks})",
                chunk,
            ).fetchall()
            for key, payload_text, checksum in rows:
                problems, payload = _row_problems(key, payload_text, checksum)
                if not problems:
                    problems = validate_entry(
                        {"key": key.hex(), "pulse": payload, "checksum": checksum}
                    ) or validate_pulse_payload(payload)
                if problems:
                    quarantined += 1
                    metrics.inc("library.quarantined")
                    logger.warning(
                        "quarantined library row %s from %s: %s",
                        key.hex() if isinstance(key, bytes) else key,
                        self.path,
                        "; ".join(problems),
                    )
                    continue
                staged[bytes(key)] = pulse_from_dict(payload)
        return staged, quarantined

    # -- introspection -----------------------------------------------------

    def meta(self) -> Dict[str, str]:
        if not self.exists():
            return {}
        conn = self._connect()
        try:
            return read_meta(conn)
        finally:
            conn.close()

    def entry_count(self) -> int:
        if not self.exists():
            return 0
        conn = self._connect()
        try:
            try:
                row = conn.execute("SELECT COUNT(*) FROM pulses").fetchone()
            except sqlite3.OperationalError:
                return 0
            return int(row[0])
        finally:
            conn.close()

    def width_counts(self) -> Dict[int, int]:
        """Entries per register width, served by the width index."""
        if not self.exists():
            return {}
        conn = self._connect()
        try:
            try:
                rows = conn.execute(
                    "SELECT num_qubits, COUNT(*) FROM pulses "
                    "GROUP BY num_qubits ORDER BY num_qubits"
                ).fetchall()
            except sqlite3.OperationalError:
                return {}
            return {int(width): int(count) for width, count in rows}
        finally:
            conn.close()

    def keys_for_width(self, num_qubits: int) -> List[bytes]:
        """All cache keys of one register width (index-bounded scan)."""
        if not self.exists():
            return []
        conn = self._connect()
        try:
            try:
                rows = conn.execute(
                    "SELECT key FROM pulses WHERE num_qubits = ? ORDER BY key",
                    (int(num_qubits),),
                ).fetchall()
            except sqlite3.OperationalError:
                return []
            return [bytes(row[0]) for row in rows]
        finally:
            conn.close()


def _library_schema_version() -> int:
    from repro.verify.artifacts import LIBRARY_SCHEMA_VERSION

    return LIBRARY_SCHEMA_VERSION


def _row_problems(key, payload_text, checksum):
    """Parse-level problems with one raw row (before envelope checks)."""
    if not isinstance(key, bytes) or len(key) < 2:
        return ["key is not a valid cache-key blob"], None
    try:
        payload = json.loads(payload_text)
    except (TypeError, ValueError) as exc:
        return [f"payload is not valid JSON: {exc}"], None
    if not isinstance(payload, dict):
        return ["payload is not an object"], None
    if not isinstance(checksum, str) or not checksum:
        return ["missing row checksum"], None
    return [], payload

"""Schema and format detection for the SQLite pulse-library store.

The database holds the same logical content as the canonical JSON
library file (:meth:`repro.qoc.library.PulseLibrary.save`): one row per
pulse, content-addressed by the canonical unitary cache key, with the
entry payload stored as canonical JSON and protected by the same
per-entry checksum (:func:`repro.verify.artifacts.pulse_checksum`).
JSON stays the interchange format — ``repro library import/export``
round-trips between the two bitwise.

Layout::

    meta(key TEXT PRIMARY KEY, value TEXT)
        schema_version      -- DB_SCHEMA_VERSION, refuse newer
        library_schema      -- payload schema (artifacts.LIBRARY_SCHEMA_VERSION)
        match_global_phase  -- "1"/"0"; must agree with the library's mode

    pulses(key BLOB PRIMARY KEY, num_qubits INTEGER, payload TEXT,
           checksum TEXT)
        + index on num_qubits (bounds nearest-neighbor width scans)

Rows are immutable once written: keys are content addresses (two
processes that solved the same key produced the same deterministic
pulse), so the merge protocol is INSERT-only and a sync costs O(new
rows), never a full rewrite.
"""

from __future__ import annotations

import os
import sqlite3

__all__ = [
    "DB_SCHEMA_VERSION",
    "SQLITE_MAGIC",
    "SQLITE_SUFFIXES",
    "connect",
    "ensure_schema",
    "is_sqlite_path",
    "read_meta",
]

#: version of the *database* layout (tables/indexes), independent of the
#: payload schema carried in ``meta.library_schema``.
DB_SCHEMA_VERSION = 1

#: first 16 bytes of every SQLite 3 database file.
SQLITE_MAGIC = b"SQLite format 3\x00"

#: extensions that select the SQLite backend for a not-yet-existing path.
SQLITE_SUFFIXES = (".db", ".sqlite", ".sqlite3")

_TABLES = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS pulses (
    key        BLOB PRIMARY KEY,
    num_qubits INTEGER NOT NULL,
    payload    TEXT NOT NULL,
    checksum   TEXT NOT NULL
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS pulses_by_width ON pulses (num_qubits);
"""


def is_sqlite_path(path: str) -> bool:
    """True when ``path`` should be served by the SQLite backend.

    An existing file is sniffed by its 16-byte header (so a ``.json``
    name never shadows a real database and vice versa); a missing file
    is judged by extension.
    """
    if not path:
        return False
    try:
        with open(path, "rb") as fh:
            return fh.read(len(SQLITE_MAGIC)) == SQLITE_MAGIC
    except FileNotFoundError:
        pass
    except OSError:
        return False
    return os.path.splitext(path)[1].lower() in SQLITE_SUFFIXES


def connect(path: str, timeout_seconds: float = 60.0) -> sqlite3.Connection:
    """Open a short-lived connection with the store's pragmas applied.

    WAL keeps readers unblocked during a writer's transaction;
    ``synchronous=NORMAL`` is durable across process crashes (the WAL
    is synced at checkpoint), which matches the atomic-replace
    guarantee the JSON store gave.
    """
    conn = sqlite3.connect(path, timeout=timeout_seconds)
    conn.execute("PRAGMA journal_mode=WAL")
    conn.execute("PRAGMA synchronous=NORMAL")
    conn.execute(f"PRAGMA busy_timeout={int(timeout_seconds * 1000)}")
    return conn


def ensure_schema(conn: sqlite3.Connection) -> None:
    """Create tables/indexes if absent (idempotent, safe under WAL)."""
    conn.executescript(_TABLES)


def read_meta(conn: sqlite3.Connection) -> dict:
    """Return the ``meta`` table as a dict ({} before first write)."""
    try:
        rows = conn.execute("SELECT key, value FROM meta").fetchall()
    except sqlite3.OperationalError:
        return {}
    return {key: value for key, value in rows}

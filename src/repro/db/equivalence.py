"""Equivalence classes for pulse-library lookup.

EPOC's cache keys are canonical up to *global phase* only.  This module
widens reuse to whole equivalence classes of unitaries whose pulses are
cheap algebraic transforms of an already-solved pulse — every class
turns what is a GRAPE search today into a cache hit.

All transforms are stated for the library's hardware model
(:class:`repro.qoc.hamiltonian.TransmonChain`, big-endian qubit order):

    H(t) = H0 + sum_j cx_j(t) * 0.5*sigma_x_j + cy_j(t) * 0.5*sigma_y_j
    H0   = g * sum_j (sp_j sm_{j+1} + sm_j sp_{j+1})  [+ zz * ZZ terms]

and the propagator is the left-fold product U = P_{T-1} ... P_0 with
P_t = exp(-i dt H(t)).  The exact identities used (derivations in
DESIGN.md):

* **transpose** — H0^T = H0, X^T = X, Y^T = -Y, so reversing the
  segment order and negating every Y channel implements W^T.
* **conjugate** — with S = Z on every odd site, S H0_hop S = -H0_hop
  (each hop touches exactly one odd site), so negating X on even sites
  and Y on odd sites (same time order) implements S W* S.  Exact only
  when the ZZ crosstalk term is zero (ZZ commutes with S), hence the
  clean-drift gate.
* **dagger** = conjugate ∘ transpose — implements S W† S under the same
  gate.
* **reverse** — the chain Hamiltonian is mirror-symmetric, so swapping
  qubit j's channels with qubit (n-1-j)'s implements R W R† where R is
  the qubit-reversal permutation (R = R† = R^{-1}).
* compositions of reverse with each of the above.

Because the identities are exact (floating-point exact up to matrix-
exponential roundoff), a derived pulse implements its target as well as
the source pulse implemented its own; the library still re-simulates
every derived candidate (`pulse_propagator`) and accepts it only at the
configured fidelity threshold, so equivalence can never serve a worse
pulse than GRAPE would have been required to produce.

**Tensor factorization** is the one inexact class: if the target splits
as A ⊗ B (detected via the nearest-Kronecker-product SVD) and both
factors are cached, the factor pulses are laid side by side.  The inter-
factor coupling of H0 acts during the composite pulse, so this candidate
frequently *fails* its simulation check at realistic coupling strengths
— that is by design: the check is the arbiter, the factorization only
proposes.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.linalg.tensor import permute_qubits
from repro.linalg.unitary import is_unitary

__all__ = [
    "EQUIV_CLASSES",
    "compose_tensor_controls",
    "derived_controls",
    "equivalence_probes",
    "tensor_factorizations",
]

#: probe order — fixed so serial, parallel, and resumed runs derive from
#: the same source class deterministically.
EQUIV_CLASSES = (
    "transpose",
    "conjugate",
    "dagger",
    "reverse",
    "reverse-transpose",
    "reverse-conjugate",
    "reverse-dagger",
)

#: classes whose identity needs the hop-only drift (ZZ crosstalk == 0).
_CLEAN_DRIFT_CLASSES = frozenset(
    {"conjugate", "dagger", "reverse-conjugate", "reverse-dagger"}
)


def _odd_site_signs(num_qubits: int) -> np.ndarray:
    """Diagonal of S = ⊗_j (Z if j odd else I), big-endian qubit order."""
    signs = np.ones(1)
    for qubit in range(num_qubits):
        z = np.array([1.0, -1.0]) if qubit % 2 else np.array([1.0, 1.0])
        signs = np.kron(signs, z)
    return signs


def _conjugate_by_s(matrix: np.ndarray) -> np.ndarray:
    """S · matrix · S (S is diagonal and involutive)."""
    signs = _odd_site_signs(_width_of(matrix))
    return signs[:, None] * matrix * signs[None, :]


def _reverse_qubits(matrix: np.ndarray) -> np.ndarray:
    """R · matrix · R† for the qubit-reversal permutation R."""
    n = _width_of(matrix)
    return permute_qubits(matrix, list(range(n - 1, -1, -1)))


def _width_of(matrix: np.ndarray) -> int:
    return int(round(np.log2(matrix.shape[0])))


# -- probe directions ------------------------------------------------------
#
# A stored pulse for W serves a query U from class ``c`` when
# U ~ f_c(W), i.e. the library must contain the key of W = f_c^{-1}(U).
# The probe functions below compute f_c^{-1}(U); global phase is
# irrelevant because cache keys are phase-canonical.


def _probe_transpose(matrix: np.ndarray) -> np.ndarray:
    # f(W) = W^T is an involution: W = U^T.
    return matrix.T


def _probe_conjugate(matrix: np.ndarray) -> np.ndarray:
    # f(W) = S W* S  =>  W = S U* S (S real, S² = I).
    return _conjugate_by_s(np.conj(matrix))


def _probe_dagger(matrix: np.ndarray) -> np.ndarray:
    # f(W) = S W† S  =>  W = S U† S.
    return _conjugate_by_s(matrix.conj().T)


def _probe_reverse(matrix: np.ndarray) -> np.ndarray:
    # f(W) = R W R† is an involution: W = R U R†.
    return _reverse_qubits(matrix)


_PROBES = {
    "transpose": _probe_transpose,
    "conjugate": _probe_conjugate,
    "dagger": _probe_dagger,
    "reverse": _probe_reverse,
    # composition f = f_rev ∘ f_base  =>  f^{-1} = f_base^{-1} ∘ f_rev^{-1}
    "reverse-transpose": lambda m: _probe_transpose(_probe_reverse(m)),
    "reverse-conjugate": lambda m: _probe_conjugate(_probe_reverse(m)),
    "reverse-dagger": lambda m: _probe_dagger(_probe_reverse(m)),
}


def equivalence_probes(
    matrix: np.ndarray, num_qubits: int, hardware
) -> Iterator[Tuple[str, np.ndarray]]:
    """Yield ``(class_name, source_matrix)`` probes in canonical order.

    ``source_matrix`` is the unitary whose cached pulse — if present —
    can be transformed into a pulse for ``matrix``.  Classes whose
    identity does not hold on this hardware (ZZ crosstalk with the
    S-conjugation classes) and degenerate ones (reverse on one qubit)
    are skipped.
    """
    matrix = np.asarray(matrix, dtype=complex)
    clean_drift = float(getattr(hardware.config, "zz_crosstalk", 0.0)) == 0.0
    for name in EQUIV_CLASSES:
        if name in _CLEAN_DRIFT_CLASSES and not clean_drift:
            continue
        if "reverse" in name and num_qubits < 2:
            continue
        yield name, _PROBES[name](matrix)


# -- control transforms ----------------------------------------------------
#
# Channel layout (TransmonChain.controls): channel 2j = X_j, channel
# 2j+1 = Y_j.  sigma_j below is the parity sign S X_j S = sigma_j X_j:
# +1 on even sites, -1 on odd sites.


def _site_parity(num_qubits: int) -> np.ndarray:
    return np.array([1.0 if j % 2 == 0 else -1.0 for j in range(num_qubits)])


def _controls_transpose(controls: np.ndarray, num_qubits: int) -> np.ndarray:
    # reverse time; negate Y channels (odd channel indices)
    out = controls[:, ::-1].copy()
    out[1::2, :] *= -1.0
    return out


def _controls_conjugate(controls: np.ndarray, num_qubits: int) -> np.ndarray:
    # same time order; X_j -> -sigma_j X_j, Y_j -> +sigma_j Y_j
    parity = _site_parity(num_qubits)
    out = controls.copy()
    out[0::2, :] *= -parity[:, None]
    out[1::2, :] *= parity[:, None]
    return out


def _controls_dagger(controls: np.ndarray, num_qubits: int) -> np.ndarray:
    return _controls_conjugate(
        _controls_transpose(controls, num_qubits), num_qubits
    )


def _controls_reverse(controls: np.ndarray, num_qubits: int) -> np.ndarray:
    # qubit j's (X, Y) pair becomes qubit (n-1-j)'s
    out = np.empty_like(controls)
    for j in range(num_qubits):
        mirrored = num_qubits - 1 - j
        out[2 * j, :] = controls[2 * mirrored, :]
        out[2 * j + 1, :] = controls[2 * mirrored + 1, :]
    return out


# composition: the *derived pulse* for class f_rev ∘ f_base applies the
# base transform first (giving a pulse for f_base(W)), then the reverse
# transform (giving f_rev(f_base(W))) — matching the probe inverses.
_CONTROL_TRANSFORMS = {
    "transpose": _controls_transpose,
    "conjugate": _controls_conjugate,
    "dagger": _controls_dagger,
    "reverse": _controls_reverse,
    "reverse-transpose": lambda c, n: _controls_reverse(
        _controls_transpose(c, n), n
    ),
    "reverse-conjugate": lambda c, n: _controls_reverse(
        _controls_conjugate(c, n), n
    ),
    "reverse-dagger": lambda c, n: _controls_reverse(
        _controls_dagger(c, n), n
    ),
}


def derived_controls(
    name: str, controls: np.ndarray, num_qubits: int
) -> np.ndarray:
    """Transform a source pulse's control envelope into class ``name``.

    If the source pulse implements W, the returned envelope implements
    f_name(W) on the same hardware (exactly, for every class here).
    """
    controls = np.asarray(controls)
    return _CONTROL_TRANSFORMS[name](controls.astype(float, copy=False), num_qubits)


# -- tensor-product factorization ------------------------------------------


def tensor_factorizations(
    matrix: np.ndarray,
    num_qubits: int,
    tol: float = 1e-7,
) -> List[Tuple[int, np.ndarray, np.ndarray]]:
    """Kronecker splits ``matrix ≈ A ⊗ B`` across contiguous cuts.

    For each cut position ``k`` (qubits [0, k) vs [k, n)) the nearest-
    Kronecker-product rearrangement of ``matrix`` is tested for rank
    one (Van Loan–Pitsianis); exact products have a single nonzero
    singular value.  Returns ``(k, A, B)`` triples with both factors
    normalized to unitaries, in ascending-``k`` order (deterministic).
    """
    matrix = np.asarray(matrix, dtype=complex)
    splits: List[Tuple[int, np.ndarray, np.ndarray]] = []
    for k in range(1, num_qubits):
        da, db = 2**k, 2 ** (num_qubits - k)
        rearranged = (
            matrix.reshape(da, db, da, db)
            .transpose(0, 2, 1, 3)
            .reshape(da * da, db * db)
        )
        u, s, vh = np.linalg.svd(rearranged)
        if s[0] <= 0.0 or (len(s) > 1 and s[1] > tol * s[0]):
            continue
        a = np.sqrt(s[0]) * u[:, 0].reshape(da, da)
        b = np.sqrt(s[0]) * vh[0, :].reshape(db, db)
        a_norm = np.linalg.norm(a)
        b_norm = np.linalg.norm(b)
        if a_norm == 0.0 or b_norm == 0.0:
            continue
        a = a * (np.sqrt(da) / a_norm)
        b = b * (np.sqrt(db) / b_norm)
        if not (is_unitary(a, atol=1e-7) and is_unitary(b, atol=1e-7)):
            continue
        splits.append((k, a, b))
    return splits


def compose_tensor_controls(
    controls_a: np.ndarray, controls_b: np.ndarray
) -> np.ndarray:
    """Side-by-side composition of two factor pulses' envelopes.

    Factor A drives the top ``k`` qubits, factor B the remaining ones;
    the shorter envelope is zero-padded at the end (idling drives).
    The result is only a *candidate* — inter-factor drift coupling acts
    throughout, so callers must simulation-verify it.
    """
    controls_a = np.asarray(controls_a, dtype=float)
    controls_b = np.asarray(controls_b, dtype=float)
    segments = max(controls_a.shape[1], controls_b.shape[1])
    out = np.zeros(
        (controls_a.shape[0] + controls_b.shape[0], segments), dtype=float
    )
    out[: controls_a.shape[0], : controls_a.shape[1]] = controls_a
    out[controls_a.shape[0] :, : controls_b.shape[1]] = controls_b
    return out


def factor_widths(num_qubits: int) -> List[Tuple[int, int]]:
    """The (k, n-k) cut widths :func:`tensor_factorizations` can emit."""
    return [(k, num_qubits - k) for k in range(1, num_qubits)]

"""Pulse scheduling: qubit-line timelines and calibrated gate latencies."""

from repro.pulse.schedule import PulseSchedule, ScheduledPulse
from repro.pulse.hardware import GateLatencyModel
from repro.pulse.render import render_circuit, render_schedule
from repro.pulse.serialize import (
    pulse_from_dict,
    pulse_to_dict,
    schedule_to_dict,
)

__all__ = [
    "PulseSchedule",
    "ScheduledPulse",
    "GateLatencyModel",
    "render_circuit",
    "render_schedule",
    "pulse_from_dict",
    "pulse_to_dict",
    "schedule_to_dict",
]

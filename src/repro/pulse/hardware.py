"""Calibrated gate latencies for the gate-based baseline.

The traditional flow plays one pre-calibrated pulse per basis gate; its
circuit latency is therefore fixed by a per-gate duration table.  The
durations come from :class:`repro.config.HardwareConfig` and are chosen to
be consistent with the same transmon-chain model the QOC backend
optimizes on (a CNOT-class interaction costs ~pi/(2g) plus single-qubit
framing), so gate-based vs QOC comparisons are apples-to-apples.
"""

from __future__ import annotations

from typing import Dict

from repro.config import HardwareConfig
from repro.circuits.gates import Gate, NON_UNITARY_OPS
from repro.exceptions import ScheduleError

__all__ = ["GateLatencyModel"]


class GateLatencyModel:
    """Maps gates to calibrated pulse durations (nanoseconds)."""

    def __init__(self, config: HardwareConfig = HardwareConfig()):
        self.config = config

    def duration(self, gate: Gate) -> float:
        """Duration of the calibrated pulse for ``gate``.

        Raises for raw-unitary gates — the gate-based flow cannot play a
        pulse for an arbitrary matrix; decompose first.
        """
        if gate.name in NON_UNITARY_OPS:
            return 0.0
        if gate.name == "unitary":
            raise ScheduleError(
                "the gate-based latency model has no calibrated pulse for a "
                "raw unitary; decompose to basis gates first"
            )
        if gate.num_qubits == 1:
            return self.config.one_qubit_gate_ns
        if gate.num_qubits == 2:
            return self.config.two_qubit_gate_ns
        if gate.num_qubits == 3:
            return self.config.three_qubit_gate_ns
        raise ScheduleError(
            f"no calibrated latency for a {gate.num_qubits}-qubit gate"
        )

"""Per-qubit-line ASAP pulse scheduling and latency accounting.

A :class:`PulseSchedule` places timed items on qubit lines: each item
occupies all of its qubits for its duration, and ASAP placement starts it
at the max frontier of those lines.  Total circuit latency — the headline
metric of the paper's evaluation — is the max line frontier at the end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import ScheduleError
from repro.qoc.pulse import Pulse

__all__ = ["ScheduledPulse", "PulseSchedule"]


@dataclass(frozen=True)
class ScheduledPulse:
    """A pulse placed at an absolute start time."""

    start: float
    duration: float
    qubits: Tuple[int, ...]
    pulse: Optional[Pulse] = None
    label: str = ""

    @property
    def end(self) -> float:
        return self.start + self.duration


class PulseSchedule:
    """ASAP schedule of pulses on ``num_qubits`` lines."""

    def __init__(self, num_qubits: int):
        if num_qubits < 1:
            raise ScheduleError("schedule needs at least one qubit line")
        self.num_qubits = num_qubits
        self.items: List[ScheduledPulse] = []
        self._frontier = [0.0] * num_qubits

    def add_pulse(self, pulse: Pulse, label: str = "") -> ScheduledPulse:
        """Place ``pulse`` as early as possible on its qubit lines."""
        return self.add_interval(pulse.qubits, pulse.duration, pulse, label)

    def add_interval(
        self,
        qubits: Sequence[int],
        duration: float,
        pulse: Optional[Pulse] = None,
        label: str = "",
    ) -> ScheduledPulse:
        """Place an opaque timed interval (used by the gate-based flow)."""
        qubits = tuple(qubits)
        if not qubits:
            # a zero-qubit item would land in ``items`` (inflating len and
            # fidelity_product) while advancing no frontier, silently
            # under-counting latency
            raise ScheduleError("scheduled items need at least one qubit")
        if any(q < 0 or q >= self.num_qubits for q in qubits):
            raise ScheduleError(f"qubits {qubits} out of range")
        if duration < 0:
            raise ScheduleError("durations must be non-negative")
        start = max((self._frontier[q] for q in qubits), default=0.0)
        item = ScheduledPulse(
            start=start, duration=duration, qubits=qubits, pulse=pulse, label=label
        )
        self.items.append(item)
        for q in qubits:
            self._frontier[q] = item.end
        return item

    def add_barrier(self, qubits: Optional[Sequence[int]] = None) -> None:
        """Synchronize lines (all of them by default) without adding time."""
        qubits = tuple(qubits) if qubits is not None else tuple(range(self.num_qubits))
        level = max((self._frontier[q] for q in qubits), default=0.0)
        for q in qubits:
            self._frontier[q] = level

    @property
    def latency(self) -> float:
        """Total schedule length (ns): the busiest line's frontier."""
        return max(self._frontier) if self._frontier else 0.0

    def line_utilization(self) -> List[float]:
        """Busy-time fraction per qubit line (the paper's parallelism
        argument: finer granularity raises utilization)."""
        if self.latency == 0.0:
            return [0.0] * self.num_qubits
        busy = [0.0] * self.num_qubits
        for item in self.items:
            for q in item.qubits:
                busy[q] += item.duration
        return [b / self.latency for b in busy]

    def fidelity_product(self) -> float:
        """ESP-style product of the scheduled pulses' fidelities."""
        esp = 1.0
        for item in self.items:
            if item.pulse is not None:
                esp *= max(0.0, 1.0 - item.pulse.unitary_distance)
        return esp

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:
        return (
            f"PulseSchedule({self.num_qubits} lines, {len(self.items)} items, "
            f"latency={self.latency:.1f} ns)"
        )

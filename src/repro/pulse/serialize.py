"""JSON-friendly serialization of pulses and schedules.

Downstream waveform generators consume the envelope samples; these
helpers flatten :class:`Pulse` and :class:`PulseSchedule` into plain
dictionaries (and back, for pulses) without losing timing metadata.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.exceptions import ScheduleError
from repro.pulse.schedule import PulseSchedule, ScheduledPulse
from repro.qoc.pulse import Pulse

__all__ = [
    "pulse_to_dict",
    "pulse_from_dict",
    "validate_pulse_payload",
    "schedule_to_dict",
]


def pulse_to_dict(pulse: Pulse) -> Dict[str, Any]:
    """Flatten a pulse into JSON-serializable primitives."""
    return {
        "qubits": list(pulse.qubits),
        "dt": pulse.dt,
        "fidelity": pulse.fidelity,
        "unitary_distance": pulse.unitary_distance,
        "source": pulse.source,
        "controls_real": pulse.controls.real.tolist(),
        "controls_imag": pulse.controls.imag.tolist(),
    }


def validate_pulse_payload(payload: Any) -> list:
    """Content problems with a serialized pulse (empty list = valid).

    Checks everything :func:`pulse_from_dict` would need *before* any
    object is built: required fields, rectangular 2-D control arrays of
    matching shape, finite samples, positive ``dt``, finite fidelity and
    distance metadata.  Callers that must not crash mid-merge (the pulse
    library's quarantine path) consult this instead of catching raw
    ``ValueError``/``KeyError`` from the constructor.
    """
    problems = []
    if not isinstance(payload, dict):
        return [f"payload is {type(payload).__name__}, not an object"]
    for field in ("qubits", "dt", "fidelity", "unitary_distance",
                  "controls_real", "controls_imag"):
        if field not in payload:
            problems.append(f"missing field {field!r}")
    if problems:
        return problems
    qubits = payload["qubits"]
    if not isinstance(qubits, (list, tuple)) or not qubits or not all(
        isinstance(q, int) and q >= 0 for q in qubits
    ):
        problems.append(f"qubits must be non-negative integers, got {qubits!r}")
    shapes = []
    for field in ("controls_real", "controls_imag"):
        try:
            array = np.asarray(payload[field], dtype=float)
        except (TypeError, ValueError):
            problems.append(f"{field} is not numeric")
            continue
        if array.ndim != 2 or array.size == 0:
            problems.append(
                f"{field} must be a non-empty 2-D array, got shape {array.shape}"
            )
        elif not np.all(np.isfinite(array)):
            problems.append(f"{field} contains non-finite samples")
        shapes.append(array.shape)
    if len(shapes) == 2 and shapes[0] != shapes[1]:
        problems.append(
            f"control shapes disagree: {shapes[0]} vs {shapes[1]}"
        )
    for field in ("dt", "fidelity", "unitary_distance"):
        value = payload[field]
        if not isinstance(value, (int, float)) or not np.isfinite(value):
            problems.append(f"{field} must be a finite number, got {value!r}")
    dt = payload["dt"]
    if isinstance(dt, (int, float)) and np.isfinite(dt) and dt <= 0.0:
        problems.append(f"dt must be positive, got {dt!r}")
    return problems


def pulse_from_dict(payload: Dict[str, Any]) -> Pulse:
    """Rebuild a pulse from :func:`pulse_to_dict` output."""
    try:
        controls = np.array(payload["controls_real"], dtype=float) + 1j * np.array(
            payload["controls_imag"], dtype=float
        )
        if np.allclose(controls.imag, 0.0):
            controls = controls.real
        return Pulse(
            qubits=tuple(payload["qubits"]),
            controls=controls,
            dt=float(payload["dt"]),
            fidelity=float(payload["fidelity"]),
            unitary_distance=float(payload["unitary_distance"]),
            source=str(payload.get("source", "grape")),
        )
    except KeyError as exc:
        raise ScheduleError(f"pulse payload missing field {exc}") from None


def schedule_to_dict(schedule: PulseSchedule) -> Dict[str, Any]:
    """Flatten a schedule: timing per item plus embedded pulse payloads."""
    items = []
    for item in schedule.items:
        entry: Dict[str, Any] = {
            "start_ns": item.start,
            "duration_ns": item.duration,
            "qubits": list(item.qubits),
            "label": item.label,
        }
        if item.pulse is not None:
            entry["pulse"] = pulse_to_dict(item.pulse)
        items.append(entry)
    return {
        "num_qubits": schedule.num_qubits,
        "latency_ns": schedule.latency,
        "items": items,
    }

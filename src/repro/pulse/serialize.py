"""JSON-friendly serialization of pulses and schedules.

Downstream waveform generators consume the envelope samples; these
helpers flatten :class:`Pulse` and :class:`PulseSchedule` into plain
dictionaries (and back, for pulses) without losing timing metadata.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.exceptions import ScheduleError
from repro.pulse.schedule import PulseSchedule, ScheduledPulse
from repro.qoc.pulse import Pulse

__all__ = ["pulse_to_dict", "pulse_from_dict", "schedule_to_dict"]


def pulse_to_dict(pulse: Pulse) -> Dict[str, Any]:
    """Flatten a pulse into JSON-serializable primitives."""
    return {
        "qubits": list(pulse.qubits),
        "dt": pulse.dt,
        "fidelity": pulse.fidelity,
        "unitary_distance": pulse.unitary_distance,
        "source": pulse.source,
        "controls_real": pulse.controls.real.tolist(),
        "controls_imag": pulse.controls.imag.tolist(),
    }


def pulse_from_dict(payload: Dict[str, Any]) -> Pulse:
    """Rebuild a pulse from :func:`pulse_to_dict` output."""
    try:
        controls = np.array(payload["controls_real"], dtype=float) + 1j * np.array(
            payload["controls_imag"], dtype=float
        )
        if np.allclose(controls.imag, 0.0):
            controls = controls.real
        return Pulse(
            qubits=tuple(payload["qubits"]),
            controls=controls,
            dt=float(payload["dt"]),
            fidelity=float(payload["fidelity"]),
            unitary_distance=float(payload["unitary_distance"]),
            source=str(payload.get("source", "grape")),
        )
    except KeyError as exc:
        raise ScheduleError(f"pulse payload missing field {exc}") from None


def schedule_to_dict(schedule: PulseSchedule) -> Dict[str, Any]:
    """Flatten a schedule: timing per item plus embedded pulse payloads."""
    items = []
    for item in schedule.items:
        entry: Dict[str, Any] = {
            "start_ns": item.start,
            "duration_ns": item.duration,
            "qubits": list(item.qubits),
            "label": item.label,
        }
        if item.pulse is not None:
            entry["pulse"] = pulse_to_dict(item.pulse)
        items.append(entry)
    return {
        "num_qubits": schedule.num_qubits,
        "latency_ns": schedule.latency,
        "items": items,
    }

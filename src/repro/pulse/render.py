"""Text rendering of pulse schedules (Gantt-style) and circuits.

These renderers power the examples and the CLI; they have no plotting
dependencies and print plain ASCII, one row per qubit line.
"""

from __future__ import annotations

from typing import List

from repro.circuits.circuit import QuantumCircuit
from repro.pulse.schedule import PulseSchedule

__all__ = ["render_schedule", "render_circuit"]


def render_schedule(schedule: PulseSchedule, width: int = 72) -> str:
    """ASCII Gantt chart: one row per qubit line, '#' where a pulse plays.

    Multi-qubit pulses are labelled with their index so simultaneous
    blocks are distinguishable.
    """
    total = schedule.latency
    if total <= 0:
        return "(empty schedule)"
    scale = (width - 1) / total
    rows: List[List[str]] = [
        ["."] * width for _ in range(schedule.num_qubits)
    ]
    for index, item in enumerate(schedule.items):
        start = int(item.start * scale)
        end = max(start + 1, int(item.end * scale))
        mark = str(index % 10) if len(item.qubits) > 1 else "#"
        for q in item.qubits:
            for col in range(start, min(end, width)):
                rows[q][col] = mark
    lines = [
        f"q{q:<3}|" + "".join(row) + "|" for q, row in enumerate(rows)
    ]
    lines.append(f"     0 ns {'-' * (width - 18)} {total:.1f} ns")
    return "\n".join(lines)


def render_circuit(circuit: QuantumCircuit, max_columns: int = 24) -> str:
    """Compact ASCII circuit rendering by ASAP layers.

    Each column is one layer; cells show the gate name (control/target
    roles are marked with ``*``/``+`` for cx).
    """
    layers = circuit.layers()
    if not layers:
        return "(empty circuit)"
    shown = layers[:max_columns]
    grid = [["-" * 5 for _ in shown] for _ in range(circuit.num_qubits)]
    for col, layer in enumerate(shown):
        for gate in layer:
            if gate.name == "cx":
                grid[gate.qubits[0]][col] = "--*--"
                grid[gate.qubits[1]][col] = "--+--"
            else:
                label = gate.name[:5]
                for q in gate.qubits:
                    grid[q][col] = f"{label:-^5}"
    lines = []
    for q in range(circuit.num_qubits):
        suffix = " ..." if len(layers) > max_columns else ""
        lines.append(f"q{q:<2}: " + "".join(grid[q]) + suffix)
    return "\n".join(lines)

"""Pulse objects: the unit of EPOC's output.

A :class:`Pulse` is the optimized piecewise-constant control envelope for
one unitary on a specific set of qubit lines, plus the metadata the
scheduler and the fidelity model need (duration, achieved fidelity,
achieved unitary distance).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.exceptions import QOCError

__all__ = ["Pulse"]


@dataclass(frozen=True)
class Pulse:
    """An optimized control pulse implementing a unitary on ``qubits``."""

    #: global qubit lines the pulse drives
    qubits: Tuple[int, ...]
    #: control envelopes, shape (num_controls, num_segments)
    controls: np.ndarray
    #: segment length in nanoseconds
    dt: float
    #: process fidelity |tr(V^dag U)|^2 / d^2 achieved by the pulse
    fidelity: float
    #: spectral-norm distance |U_target - U_achieved| (Eq. 3's metric)
    unitary_distance: float
    #: how the pulse was produced ("grape", "grape-cache", "calibrated")
    source: str = "grape"

    def __post_init__(self):
        if self.controls.ndim != 2:
            raise QOCError("pulse controls must be a 2-D array")
        if self.dt <= 0:
            raise QOCError("pulse dt must be positive")

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    @property
    def num_segments(self) -> int:
        return self.controls.shape[1]

    @property
    def duration(self) -> float:
        """Pulse length in nanoseconds."""
        return self.num_segments * self.dt

    def on_qubits(self, qubits: Tuple[int, ...]) -> "Pulse":
        """The same envelope re-targeted at different qubit lines (cache
        hits reuse pulses across qubit subsets of the same shape)."""
        if len(qubits) != len(self.qubits):
            raise QOCError("qubit count mismatch when retargeting a pulse")
        return Pulse(
            qubits=tuple(qubits),
            controls=self.controls,
            dt=self.dt,
            fidelity=self.fidelity,
            unitary_distance=self.unitary_distance,
            source=self.source,
        )

"""Synthetic transmon-chain hardware model for quantum optimal control.

The model works in the rotating frame of each qubit's drive: qubit
self-energies vanish, leaving a nearest-neighbour exchange coupling as the
drift Hamiltonian (Eq. 1's ``H_0``) plus X and Y drive lines per qubit as
the control Hamiltonians ``H_j``.  Angular frequencies are in rad/ns, so
with the default coupling of 0.05 rad/ns a maximally-entangling two-qubit
interaction needs on the order of ``pi / (2 * 0.05) ~ 31 ns`` — the same
ballpark as real cross-resonance hardware, which keeps the latency numbers
of the benchmarks physically plausible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.config import HardwareConfig
from repro.exceptions import QOCError
from repro.linalg.tensor import embed_operator

__all__ = ["TransmonChain"]

_SX = np.array([[0.0, 1.0], [1.0, 0.0]], dtype=complex)
_SY = np.array([[0.0, -1.0j], [1.0j, 0.0]], dtype=complex)
_SZ = np.array([[1.0, 0.0], [0.0, -1.0]], dtype=complex)
_SP = np.array([[0.0, 1.0], [0.0, 0.0]], dtype=complex)  # sigma+
_SM = _SP.T.conj()


@dataclass(frozen=True)
class TransmonChain:
    """Drift + control Hamiltonians for an ``num_qubits`` transmon chain."""

    num_qubits: int
    config: HardwareConfig = HardwareConfig()

    def __post_init__(self):
        if self.num_qubits < 1:
            raise QOCError("hardware model needs at least one qubit")

    @property
    def dim(self) -> int:
        return 2**self.num_qubits

    def drift(self) -> np.ndarray:
        """``H_0``: exchange coupling between neighbours (+ optional ZZ)."""
        n = self.num_qubits
        h0 = np.zeros((self.dim, self.dim), dtype=complex)
        for j in range(n - 1):
            hop = np.kron(_SP, _SM) + np.kron(_SM, _SP)
            h0 += self.config.coupling * embed_operator(hop, (j, j + 1), n)
            if self.config.zz_crosstalk:
                zz = np.kron(_SZ, _SZ)
                h0 += self.config.zz_crosstalk * embed_operator(zz, (j, j + 1), n)
        return h0

    def controls(self) -> Tuple[List[np.ndarray], List[str]]:
        """Control Hamiltonians ``H_j`` (X and Y drive per qubit) + labels."""
        matrices: List[np.ndarray] = []
        labels: List[str] = []
        for j in range(self.num_qubits):
            matrices.append(0.5 * embed_operator(_SX, (j,), self.num_qubits))
            labels.append(f"X{j}")
            matrices.append(0.5 * embed_operator(_SY, (j,), self.num_qubits))
            labels.append(f"Y{j}")
        return matrices, labels

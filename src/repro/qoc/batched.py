"""Batched bracket-probe eigendecomposition for singleflight QOC batches.

Every pulse search opens with one GRAPE evaluation at a known point: the
starting controls of the duration search's first probe (the "bracket
probe").  When the pulse library dispatches a batch of pending problems
inline, those first evaluations are known *before* any optimizer runs —
so their slot Hamiltonians can be eigendecomposed together, one
``np.linalg.eigh`` call per ``(num_qubits, segment-count)`` group instead
of one per problem.

``eigh`` on a stacked ``(B*T, d, d)`` array applies LAPACK per matrix, so
each problem's eigensystem is bit-for-bit what its own ``eigh`` call
would have produced; the optimizer additionally refuses the precomputed
result unless its first evaluation point matches the pre-pass's exactly
(see ``_GrapeObjective._eigensystem``).  Batched-or-not therefore cannot
change any pulse, which is what keeps the serial/parallel/inline
equivalence guarantees of the compilation flows intact.

The pre-pass only covers ``kernel="fast"`` — the reference kernel
assembles its Hamiltonians through a different (bitwise-pinned) code path
that the pre-pass does not replicate.  Precomputed eigensystems are not
shipped to worker processes either: pickling ``(T, d, d)`` complex
arrays across the pool costs more than the ``eigh`` it would save.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.config import QOCConfig
from repro.qoc.hamiltonian import TransmonChain
from repro.qoc.latency import _initial_probe_controls, _search_start_segments

__all__ = ["batched_first_probe_eigs"]


def batched_first_probe_eigs(tasks: Sequence) -> List[Optional[Tuple]]:
    """Precompute each task's first bracket-probe eigendecomposition.

    ``tasks`` are :class:`~repro.parallel.worker.PulseTask`-shaped objects
    (``matrix``, ``num_qubits``, ``config``, ``warm_controls``).  Returns
    a list aligned with ``tasks`` holding ``(u0, props, lams, qs)``
    tuples — the ``first_eig`` argument of
    :func:`~repro.qoc.grape.grape_optimize` — or ``None`` for tasks that
    were not batched (singleton groups, non-fast kernels).
    """
    results: List[Optional[Tuple]] = [None] * len(tasks)
    groups: Dict[Tuple[int, int], List[int]] = {}
    hardware: Dict[int, TransmonChain] = {}
    for index, task in enumerate(tasks):
        config = task.config or QOCConfig()
        if config.kernel != "fast":
            continue
        num_qubits = int(task.num_qubits)
        if num_qubits not in hardware:
            hardware[num_qubits] = TransmonChain(num_qubits)
        warm = task.warm_controls
        start = _search_start_segments(
            np.asarray(task.matrix, dtype=complex),
            hardware[num_qubits],
            config,
            warm.shape[1] if warm is not None else None,
        )
        groups.setdefault((num_qubits, start), []).append(index)

    metrics = telemetry.get_metrics()
    for (num_qubits, start), members in groups.items():
        if len(members) < 2:
            continue  # nothing to batch; the optimizer pays its own eigh
        chain = hardware[num_qubits]
        drift = chain.drift()
        controls_h, _ = chain.controls()
        stack = np.stack([np.asarray(h, dtype=complex) for h in controls_h])
        d = drift.shape[0]
        flat_stack = stack.reshape(len(controls_h), d * d)
        dt = (tasks[members[0]].config or QOCConfig()).dt
        u0s = []
        hams = np.empty((len(members), start, d, d), dtype=complex)
        for position, index in enumerate(members):
            task = tasks[index]
            u0 = _initial_probe_controls(
                task.config or QOCConfig(),
                len(controls_h),
                start,
                task.warm_controls,
            )
            u0s.append(u0)
            # assemble exactly as _GrapeObjective's fast path does, per
            # problem — only the eigh itself is shared
            slot = (u0.T @ flat_stack).reshape(start, d, d)
            slot += drift
            hams[position] = slot
        lams, qs = np.linalg.eigh(hams.reshape(len(members) * start, d, d))
        lams = lams.reshape(len(members), start, d)
        qs = qs.reshape(len(members), start, d, d)
        for position, index in enumerate(members):
            phases = np.exp(-1j * dt * lams[position])
            props = (qs[position] * phases[:, None, :]) @ np.conj(
                np.swapaxes(qs[position], 1, 2)
            )
            results[index] = (u0s[position], props, lams[position], qs[position])
        metrics.inc("qoc.batched_probe_groups")
        metrics.inc("qoc.batched_probe_problems", len(members))
    return results

"""CRAB: chopped random-basis quantum optimization (Caneva et al., 2011).

The background section of the paper names CRAB alongside GRAPE as the
standard QOC algorithms, so the library ships both.  CRAB expands each
control in a small randomized Fourier basis

    u_k(t) = sum_m a_{k,m} cos(w_m t) + b_{k,m} sin(w_m t)

and optimizes the few coefficients gradient-free; it is slower to converge
than our exact-gradient GRAPE but much lower-dimensional, which is its
classic selling point on noisy objective landscapes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.optimize import minimize

from repro.config import QOCConfig
from repro.exceptions import QOCError
from repro.qoc.grape import GrapeResult, propagate
from repro.qoc.hamiltonian import TransmonChain

__all__ = ["crab_optimize"]


def crab_optimize(
    target: np.ndarray,
    hardware: TransmonChain,
    num_segments: int,
    config: Optional[QOCConfig] = None,
    num_harmonics: int = 4,
    max_function_evals: int = 4000,
) -> GrapeResult:
    """Optimize CRAB coefficients for ``target``; returns a GrapeResult
    (the sampled piecewise-constant envelope) for drop-in compatibility."""
    config = config or QOCConfig()
    target = np.asarray(target, dtype=complex)
    if target.shape[0] != hardware.dim:
        raise QOCError("target dimension does not match the hardware model")
    drift = hardware.drift()
    controls_h, _ = hardware.controls()
    num_controls = len(controls_h)
    dim = hardware.dim
    dt = config.dt
    duration = num_segments * dt
    times = (np.arange(num_segments) + 0.5) * dt

    rng = np.random.default_rng(config.seed)
    # randomized frequencies around the principal harmonics (the "chopped
    # random basis"): w_m = 2*pi*m*(1 + r)/T with r ~ U(-0.5, 0.5)
    harmonics = np.arange(1, num_harmonics + 1)
    frequencies = (
        2.0 * np.pi * harmonics * (1.0 + rng.uniform(-0.5, 0.5, num_harmonics))
    ) / duration
    cos_table = np.cos(np.outer(frequencies, times))
    sin_table = np.sin(np.outer(frequencies, times))

    def controls_from(x: np.ndarray) -> np.ndarray:
        coeffs = x.reshape(num_controls, 2, num_harmonics)
        u = coeffs[:, 0, :] @ cos_table + coeffs[:, 1, :] @ sin_table
        return np.clip(u, -config.max_amplitude, config.max_amplitude)

    target_dag = target.conj().T
    evals = [0]

    def objective(x: np.ndarray) -> float:
        evals[0] += 1
        u = controls_from(x)
        total = propagate(drift, controls_h, u, dt)
        overlap = np.trace(target_dag @ total)
        return 1.0 - abs(overlap) ** 2 / dim**2

    x0 = rng.uniform(-0.3, 0.3, size=num_controls * 2 * num_harmonics)
    result = minimize(
        objective,
        x0,
        method="Powell",
        options={"maxfev": max_function_evals, "xtol": 1e-8, "ftol": 1e-10},
    )
    u_final = controls_from(result.x)
    final_unitary = propagate(drift, controls_h, u_final, dt)
    overlap = np.trace(target_dag @ final_unitary)
    fidelity = float(abs(overlap) ** 2 / dim**2)
    return GrapeResult(
        controls=u_final,
        fidelity=fidelity,
        final_unitary=final_unitary,
        iterations=evals[0],
        converged=fidelity >= config.fidelity_threshold,
        dt=dt,
    )

"""Quantum optimal control: hardware models, GRAPE/CRAB, pulse library."""

from repro.qoc.hamiltonian import TransmonChain
from repro.qoc.grape import (
    GrapeResult,
    grape_optimize,
    propagate,
    pulse_propagator,
)
from repro.qoc.crab import crab_optimize
from repro.qoc.pulse import Pulse
from repro.qoc.latency import minimal_latency_pulse, estimate_initial_segments
from repro.qoc.library import (
    NearNeighbor,
    PulseLibrary,
    decode_library_key,
    unitary_cache_key,
)
from repro.qoc.benchmarking import RBResult, randomized_benchmarking, single_qubit_cliffords
from repro.qoc.state_transfer import StateTransferResult, grape_state_transfer
from repro.qoc.transmon3 import (
    ThreeLevelTransmon,
    LeakageResult,
    grape_three_level,
)

__all__ = [
    "RBResult",
    "randomized_benchmarking",
    "single_qubit_cliffords",
    "StateTransferResult",
    "grape_state_transfer",
    "ThreeLevelTransmon",
    "LeakageResult",
    "grape_three_level",
    "TransmonChain",
    "GrapeResult",
    "grape_optimize",
    "propagate",
    "pulse_propagator",
    "crab_optimize",
    "Pulse",
    "minimal_latency_pulse",
    "estimate_initial_segments",
    "NearNeighbor",
    "PulseLibrary",
    "decode_library_key",
    "unitary_cache_key",
]

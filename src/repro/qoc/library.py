"""The pulse library: a unitary-keyed cache of optimized pulses.

AccQOC and PAQOC keyed their libraries on exact unitary matrices; EPOC's
improvement (Section 3.4) is matching *up to global phase*, which raises
the hit rate ("similar to having a higher cache hit rate").  Both modes
are supported so the ablation benchmark can quantify the difference.

Keys are built by canonicalizing the matrix — optionally rotating out the
global phase — and rounding to a fixed grid before hashing the bytes, so
lookups are O(1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.config import QOCConfig, RacingConfig, ResilienceConfig
from repro.exceptions import QOCError
from repro.linalg.unitary import hs_distance
from repro.obs import events as obs_events
from repro.qoc.hamiltonian import TransmonChain
from repro.qoc.latency import minimal_latency_pulse
from repro.qoc.pulse import Pulse

__all__ = [
    "NearNeighbor",
    "PulseLibrary",
    "decode_library_key",
    "unitary_cache_key",
]

logger = telemetry.get_logger("qoc.library")


def unitary_cache_key(
    matrix: np.ndarray, global_phase: bool = True, decimals: int = 6
) -> bytes:
    """A hashable canonical form of ``matrix``.

    With ``global_phase=True`` the matrix is first rotated so its largest
    entry is real-positive, making e^{i*phi}U and U collide (EPOC mode);
    with ``False`` the raw matrix is hashed (AccQOC/PAQOC mode).
    """
    matrix = np.asarray(matrix, dtype=complex)
    if global_phase and matrix.size:
        # Pivot selection must be deterministic across phase-equivalent
        # matrices.  A bare argmax is not: multiplying by e^{i*phi}
        # perturbs entry magnitudes at machine precision, so two entries
        # whose magnitudes are numerically near-tied can swap order and
        # canonicalize on *different* pivots, missing the cache.  Break
        # ties by taking the first flat index whose magnitude is within a
        # relative tolerance of the maximum.
        magnitudes = np.abs(matrix).ravel()
        largest = float(magnitudes.max())
        if largest > 1e-12:
            near_max = np.flatnonzero(magnitudes >= largest * (1.0 - 1e-9))
            pivot = matrix.flat[int(near_max[0])]
            matrix = matrix * (abs(pivot) / pivot)
    rounded = np.round(matrix, decimals)
    # normalize signed zeros (adding +0.0 maps -0.0 to +0.0 componentwise)
    rounded = (rounded.real + 0.0) + 1j * (rounded.imag + 0.0)
    return rounded.tobytes()


def decode_library_key(key: bytes) -> Optional[Tuple[int, np.ndarray]]:
    """Recover ``(num_qubits, canonical_unitary)`` from a library key.

    Keys are ``bytes([num_qubits])`` followed by the canonicalized
    matrix's raw complex128 buffer (see :meth:`PulseLibrary.key_for`), so
    the stored unitary — rounded and phase-canonicalized, which is all a
    distance scan needs — reconstructs without any schema change.
    Returns ``None`` for keys that do not decode to a square matrix of
    the advertised width (e.g. foreign entries merged from a corrupted
    file).
    """
    if len(key) < 2:
        return None
    num_qubits = key[0]
    dim = 2**num_qubits
    if len(key) - 1 != dim * dim * np.dtype(complex).itemsize:
        return None
    matrix = np.frombuffer(key, dtype=complex, offset=1).reshape(dim, dim)
    return num_qubits, matrix


@dataclass(frozen=True)
class NearNeighbor:
    """A library entry close (but not equal) to a requested unitary."""

    key: bytes
    pulse: Pulse
    distance: float


@dataclass
class PulseLibrary:
    """Pulse cache + generator front-end used by every pipeline.

    The library owns per-size hardware models so that pulses for k-qubit
    unitaries are optimized on a k-qubit chain — the same "local
    entanglement" simplification the paper leans on for scalability.
    """

    config: QOCConfig = field(default_factory=QOCConfig)
    match_global_phase: bool = True
    #: fault-tolerance knobs threaded into every pulse search; ``None``
    #: keeps the strict behaviour (non-convergence raises
    #: :class:`~repro.exceptions.QOCError`).
    resilience: Optional[ResilienceConfig] = None
    #: hedged GRAPE-restart racing for cache misses (see
    #: :mod:`repro.racing`); ``None`` or an inactive config keeps the
    #: sequential duration search.
    racing: Optional[RacingConfig] = None
    _entries: Dict[bytes, Pulse] = field(default_factory=dict)
    _hardware: Dict[int, TransmonChain] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    #: misses that found a warm-start neighbor / misses that scanned and
    #: found none (misses with warm starts disabled count in neither).
    near_hits: int = 0
    near_misses: int = 0
    #: hits served by deriving a pulse from an equivalence-class source
    #: (transpose/dagger/reverse/tensor — see :mod:`repro.db.equivalence`)
    #: instead of running GRAPE.  Every equivalence hit also counts in
    #: :attr:`hits`, so ``hit_rate`` semantics are unchanged.
    equiv_hits: int = 0
    #: corrupted on-disk entries skipped by :meth:`load` (cumulative).
    quarantined: int = 0
    #: memo of :func:`decode_library_key` results.  Keys are content
    #: addresses — a key always decodes to the same matrix — so entries
    #: never go stale; the memo only resets when the cache is dropped.
    _decoded: Dict[bytes, Optional[Tuple[int, np.ndarray]]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def hardware_for(self, num_qubits: int) -> TransmonChain:
        if num_qubits not in self._hardware:
            self._hardware[num_qubits] = TransmonChain(num_qubits)
        return self._hardware[num_qubits]

    def key_for(self, matrix: np.ndarray, num_qubits: int) -> bytes:
        """The cache key of ``matrix`` as a ``num_qubits``-qubit target.

        The key includes the qubit count but not the concrete qubit
        lines: the synthetic chain is translation-invariant, so an entry
        generated for qubits (0,1) retargets to (3,4) for free.
        """
        return bytes([num_qubits]) + unitary_cache_key(
            matrix, global_phase=self.match_global_phase
        )

    def warm_snapshot(self) -> Dict[bytes, Pulse]:
        """A frozen copy of the current entries for warm-start scans.

        Pipelines capture this once at pulse-stage start and pass it to
        every :meth:`get_pulse` / :meth:`get_pulses` call in the stage.
        Scanning a fixed snapshot — never the live, mid-stage cache —
        keeps warm-start selection independent of solve order, so serial,
        parallel, and checkpoint-resumed runs seed every search
        identically.
        """
        return dict(self._entries)

    def entries(self) -> Dict[bytes, Pulse]:
        """The live key→pulse mapping (treat as read-only).

        Storage backends (:class:`repro.db.SqliteLibraryStore`) use this
        to diff local entries against disk rows without a copy; anything
        that needs a stable view should take :meth:`warm_snapshot`.
        """
        return self._entries

    def merge_entries(
        self, staged: Dict[bytes, Pulse], quarantined: int = 0
    ) -> int:
        """Merge pre-validated entries (from a storage backend) by key.

        Returns the number of entries that were new to the library.
        ``quarantined`` rows rejected by the backend's validation are
        added to the cumulative :attr:`quarantined` count, mirroring
        what :meth:`load` does for JSON entries.
        """
        before = len(self._entries)
        self._entries.update(staged)
        self.quarantined += quarantined
        if staged or quarantined:
            telemetry.get_metrics().gauge("library.size", len(self._entries))
        return len(self._entries) - before

    def _decode_cached(self, key: bytes) -> Optional[Tuple[int, np.ndarray]]:
        """Memoized :func:`decode_library_key` (keys are content-addressed,
        so a decode never goes stale and the memo survives snapshots)."""
        try:
            return self._decoded[key]
        except KeyError:
            decoded = decode_library_key(key)
            self._decoded[key] = decoded
            return decoded

    def nearest(
        self,
        matrix: np.ndarray,
        num_qubits: int,
        entries: Optional[Dict[bytes, Pulse]] = None,
        max_distance: Optional[float] = None,
    ) -> Optional[NearNeighbor]:
        """The closest same-width library entry within ``max_distance``.

        Distance is the global-phase-invariant Hilbert-Schmidt distance
        ``1 - |tr(U†V)|/d`` (the GRAPE infidelity's square root scale),
        computed against the canonical unitary decoded from each entry's
        cache key.  Entries of a different qubit count, undecodable keys,
        and the exact requested key are skipped.  Ties break toward the
        first entry in iteration order (strict ``<``), which is
        deterministic because dict order is insertion order and callers
        scan frozen snapshots.
        """
        if max_distance is None:
            max_distance = self.config.warm_start_max_distance
        if entries is None:
            entries = self._entries
        matrix = np.asarray(matrix, dtype=complex)
        request_key = self.key_for(matrix, num_qubits)
        best: Optional[NearNeighbor] = None
        for key, pulse in entries.items():
            if key == request_key or not key or key[0] != num_qubits:
                continue
            decoded = self._decode_cached(key)
            if decoded is None:
                continue
            distance = hs_distance(matrix, decoded[1])
            if distance > max_distance:
                continue
            if best is None or distance < best.distance:
                best = NearNeighbor(key=key, pulse=pulse, distance=distance)
        metrics = telemetry.get_metrics()
        if best is not None:
            self.near_hits += 1
            metrics.inc("library.near_hits")
        else:
            self.near_misses += 1
            metrics.inc("library.near_misses")
        return best

    def _warm_controls(
        self,
        matrix: np.ndarray,
        num_qubits: int,
        entries: Optional[Dict[bytes, Pulse]],
    ) -> Optional[np.ndarray]:
        """Neighbor controls for a cache miss, or ``None``."""
        if not self.config.warm_start:
            return None
        neighbor = self.nearest(matrix, num_qubits, entries=entries)
        if neighbor is None:
            return None
        logger.debug(
            "warm start: neighbor at distance %.3g with %d segments",
            neighbor.distance,
            neighbor.pulse.num_segments,
        )
        return neighbor.pulse.controls

    # -- equivalence-class lookup ----------------------------------------

    def _equiv_source_ok(self, pulse: Pulse) -> bool:
        """Whether a cached pulse may seed an equivalence derivation.

        Only first-generation, threshold-clean GRAPE solutions qualify:
        derived pulses deriving from derived pulses (or from degraded
        non-converged ones) would compound error and — because the
        transform set is not closed under composition — break the
        serial/parallel/resume determinism argument.
        """
        return (
            pulse.source == "grape"
            and pulse.fidelity >= self.config.fidelity_threshold
        )

    def _accept_derived(
        self,
        matrix: np.ndarray,
        num_qubits: int,
        controls: np.ndarray,
        dt: float,
        name: str,
    ) -> Optional[Pulse]:
        """Simulation-verify a derived candidate; None when it fails.

        The candidate's propagator is recomputed from the raw waveform
        (exactly what :mod:`repro.verify` will later re-check) and the
        pulse is accepted only at the configured fidelity threshold, so
        an equivalence hit can never serve a worse pulse than GRAPE
        would have been required to produce.
        """
        from dataclasses import replace

        from repro.linalg.unitary import process_fidelity, unitary_distance
        from repro.qoc.grape import pulse_propagator

        candidate = Pulse(
            qubits=tuple(range(num_qubits)),
            controls=controls,
            dt=dt,
            fidelity=0.0,
            unitary_distance=0.0,
            source=f"equiv-{name}",
        )
        achieved = pulse_propagator(candidate, self.hardware_for(num_qubits))
        fidelity = float(process_fidelity(matrix, achieved))
        if fidelity < self.config.fidelity_threshold:
            telemetry.get_metrics().inc("library.equiv_rejects")
            logger.debug(
                "equivalence candidate %s rejected at fidelity %.6f",
                name,
                fidelity,
            )
            return None
        return replace(
            candidate,
            fidelity=fidelity,
            unitary_distance=float(unitary_distance(matrix, achieved)),
        )

    def _equivalent_pulse(
        self,
        matrix: np.ndarray,
        num_qubits: int,
        sources: Optional[Dict[bytes, Pulse]],
    ) -> Optional[Tuple[str, Pulse]]:
        """Derive a pulse for ``matrix`` from an equivalence-class source.

        ``sources`` must be a *snapshot* (stage-start for pipelines):
        probing a fixed candidate set keeps derivation independent of
        solve order, the same determinism contract warm starts follow.
        Probes run in the fixed class order of
        :data:`repro.db.equivalence.EQUIV_CLASSES`, then tensor
        factorizations in ascending cut order; the first verified
        candidate wins.
        """
        if not self.config.equivalence_lookup or not sources:
            return None
        from repro.db import equivalence as equiv

        hardware = self.hardware_for(num_qubits)
        for name, source_matrix in equiv.equivalence_probes(
            matrix, num_qubits, hardware
        ):
            source = sources.get(self.key_for(source_matrix, num_qubits))
            if source is None or not self._equiv_source_ok(source):
                continue
            controls = equiv.derived_controls(
                name, source.controls, num_qubits
            )
            pulse = self._accept_derived(
                matrix, num_qubits, controls, source.dt, name
            )
            if pulse is not None:
                return name, pulse
        if num_qubits >= 2:
            for cut, top, bottom in equiv.tensor_factorizations(
                matrix, num_qubits
            ):
                top_pulse = sources.get(self.key_for(top, cut))
                bottom_pulse = sources.get(
                    self.key_for(bottom, num_qubits - cut)
                )
                if (
                    top_pulse is None
                    or bottom_pulse is None
                    or not self._equiv_source_ok(top_pulse)
                    or not self._equiv_source_ok(bottom_pulse)
                    or top_pulse.dt != bottom_pulse.dt
                ):
                    continue
                controls = equiv.compose_tensor_controls(
                    top_pulse.controls, bottom_pulse.controls
                )
                pulse = self._accept_derived(
                    matrix, num_qubits, controls, top_pulse.dt, "tensor"
                )
                if pulse is not None:
                    return "tensor", pulse
        return None

    def _record_equiv_hit(self, name: str) -> None:
        self.equiv_hits += 1
        metrics = telemetry.get_metrics()
        metrics.inc("library.equiv_hits")
        metrics.inc(f"library.equiv_hits.{name}")

    def get_pulse(
        self,
        matrix: np.ndarray,
        qubits: Tuple[int, ...],
        warm_entries: Optional[Dict[bytes, Pulse]] = None,
    ) -> Pulse:
        """Fetch (or generate and cache) the pulse for ``matrix``."""
        matrix = np.asarray(matrix, dtype=complex)
        num_qubits = len(qubits)
        key = self.key_for(matrix, num_qubits)
        metrics = telemetry.get_metrics()
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            metrics.inc("library.hits")
            logger.debug("cache hit for %d-qubit unitary on %s", num_qubits, qubits)
            return cached.on_qubits(qubits)
        derived = self._equivalent_pulse(
            matrix,
            num_qubits,
            warm_entries if warm_entries is not None else self._entries,
        )
        if derived is not None:
            name, pulse = derived
            self._entries[key] = pulse
            self.hits += 1
            metrics.inc("library.hits")
            self._record_equiv_hit(name)
            metrics.gauge("library.size", len(self._entries))
            logger.debug(
                "equivalence hit (%s) for %d-qubit unitary on %s",
                name,
                num_qubits,
                qubits,
            )
            return pulse.on_qubits(qubits)
        self.misses += 1
        metrics.inc("library.misses")
        pulse = self._solve_pulse(matrix, num_qubits, warm_entries)
        self._entries[key] = pulse
        metrics.gauge("library.size", len(self._entries))
        return pulse.on_qubits(qubits)

    def _solve_pulse(
        self,
        matrix: np.ndarray,
        num_qubits: int,
        warm_entries: Optional[Dict[bytes, Pulse]],
    ) -> Pulse:
        """Run one cache-miss QOC search, raced when racing is active."""
        warm_controls = self._warm_controls(matrix, num_qubits, warm_entries)
        if self.racing is not None and self.racing.active:
            from repro.racing.portfolios import raced_minimal_latency_pulse

            return raced_minimal_latency_pulse(
                matrix,
                tuple(range(num_qubits)),
                config=self.config,
                hardware=self.hardware_for(num_qubits),
                resilience=self.resilience,
                racing=self.racing,
                warm_controls=warm_controls,
            )
        return minimal_latency_pulse(
            matrix,
            tuple(range(num_qubits)),
            config=self.config,
            hardware=self.hardware_for(num_qubits),
            resilience=self.resilience,
            warm_controls=warm_controls,
        )

    def get_pulses(
        self,
        requests: Sequence[Tuple[np.ndarray, Tuple[int, ...]]],
        executor=None,
        on_pulse=None,
        warm_entries: Optional[Dict[bytes, Pulse]] = None,
    ) -> List[Pulse]:
        """Batch :meth:`get_pulse` with singleflight deduplication.

        Missing unitaries are grouped by cache key *before* any work is
        dispatched, so N occurrences of the same unitary cost exactly one
        GRAPE binary search instead of racing N workers on identical
        problems.  With ``executor`` (a
        :class:`~repro.parallel.ParallelExecutor`), the unique problems
        fan out across worker processes; without one they run inline.

        ``on_pulse(key, pulse)`` fires as each freshly solved pulse lands
        in the cache — before the batch finishes — which is how the
        compilation journal flushes incremental checkpoints even when a
        later chunk dies.

        Hit/miss accounting replays the requests in order against the
        pre-call cache state — the first occurrence of a new key is a
        miss, every later one a hit — so the counts match what the serial
        :meth:`get_pulse` loop would have recorded.
        """
        from repro.parallel.worker import PulseTask

        requests = [
            (np.asarray(matrix, dtype=complex), tuple(qubits))
            for matrix, qubits in requests
        ]
        keys = [self.key_for(matrix, len(qubits)) for matrix, qubits in requests]
        # unique missing keys, first-occurrence order
        pending: Dict[bytes, int] = {}
        for index, key in enumerate(keys):
            if key not in self._entries and key not in pending:
                pending[key] = index
        metrics = telemetry.get_metrics()
        unique_misses = len(pending)
        if pending:
            # warm-start and equivalence candidates come from a snapshot
            # — the caller's stage-start snapshot when provided,
            # otherwise one taken now, before any batch member solves —
            # so every miss in the batch scans the same candidate set a
            # serial loop would
            if warm_entries is None and (
                self.config.warm_start or self.config.equivalence_lookup
            ):
                warm_entries = self.warm_snapshot()
            # equivalence-class resolution: misses whose target is an
            # exact transform (or verified tensor product) of a snapshot
            # entry become derived cache entries here, never GRAPE tasks.
            # The replay loop below then counts them as hits — exactly
            # what the serial get_pulse path records.
            if self.config.equivalence_lookup and warm_entries:
                for key in list(pending):
                    index = pending[key]
                    matrix, qubits = requests[index]
                    derived = self._equivalent_pulse(
                        matrix, len(qubits), warm_entries
                    )
                    if derived is None:
                        continue
                    name, pulse = derived
                    del pending[key]
                    self._entries[key] = pulse
                    self._record_equiv_hit(name)
                    if on_pulse is not None:
                        try:
                            on_pulse(key, pulse)
                        except Exception:
                            metrics.inc("library.checkpoint_errors")
                            logger.warning(
                                "pulse checkpoint callback failed for "
                                "key %s; continuing the batch",
                                key.hex(),
                                exc_info=True,
                            )
        if pending:
            tasks = [
                PulseTask(
                    matrix=requests[index][0],
                    num_qubits=len(requests[index][1]),
                    config=self.config,
                    resilience=self.resilience,
                    warm_controls=self._warm_controls(
                        requests[index][0],
                        len(requests[index][1]),
                        warm_entries,
                    ),
                    racing=self.racing,
                )
                for index in pending.values()
            ]
            logger.info(
                "singleflight: %d unique QOC problems from %d requests",
                len(tasks),
                len(requests),
            )
            metrics.inc("library.singleflight_batches")
            metrics.inc(
                "library.singleflight_deduped", len(requests) - unique_misses
            )
            pending_keys = list(pending)
            bus = obs_events.get_bus()
            progress = {"completed": 0}

            def absorb(start: int, values: Sequence[Pulse]) -> None:
                # cache each solved pulse the moment its chunk lands, so
                # checkpoint flushes cover work completed before a crash
                for offset, pulse in enumerate(values):
                    progress["completed"] += 1
                    bus.emit(
                        "block_progress",
                        stage="pulse_generation",
                        block=start + offset,
                        completed=progress["completed"],
                        total=len(pending_keys),
                    )
                    key = pending_keys[start + offset]
                    if key not in self._entries:
                        self._entries[key] = pulse
                        if on_pulse is not None:
                            # the callback is a checkpoint hook; the pulse
                            # is already cached, so a callback failure must
                            # not abort the batch (it would leave the pulse
                            # cached but unjournaled, and a later resume
                            # would trust an incomplete checkpoint)
                            try:
                                on_pulse(key, pulse)
                            except Exception:
                                metrics.inc("library.checkpoint_errors")
                                logger.warning(
                                    "pulse checkpoint callback failed for "
                                    "key %s; continuing the batch",
                                    key.hex(),
                                    exc_info=True,
                                )

            if executor is not None:
                executor.map(tasks, on_chunk=absorb)
            else:
                # inline batch: share one eigh across each group of
                # same-shape first bracket probes (see qoc.batched)
                from repro.qoc.batched import batched_first_probe_eigs

                probe_eigs = batched_first_probe_eigs(tasks)
                for position, task in enumerate(tasks):
                    absorb(
                        position,
                        [task.run(first_probe_eig=probe_eigs[position])],
                    )
        # replay the request stream for serial-identical hit/miss counts
        fresh = set(pending)
        out: List[Pulse] = []
        for key, (matrix, qubits) in zip(keys, requests):
            if key in fresh:
                fresh.discard(key)
                self.misses += 1
                metrics.inc("library.misses")
            else:
                self.hits += 1
                metrics.inc("library.hits")
            out.append(self._entries[key].on_qubits(qubits))
        metrics.gauge("library.size", len(self._entries))
        return out

    def __len__(self) -> int:
        return len(self._entries)

    # -- persistence -----------------------------------------------------

    def save(self, path: str) -> None:
        """Serialize the library to a JSON file, atomically.

        The pulse library is a long-lived artifact in the AccQOC/PAQOC/
        EPOC workflow: it is built once per hardware calibration and
        reused across programs and sessions.  The payload is written to a
        temporary file in the destination directory and renamed into
        place, so a crash mid-serialization never corrupts (or truncates)
        an existing library file.

        Entries are serialized in canonical (sorted-key) order, so the
        file's bytes depend only on the library *contents* — a
        checkpointed-then-resumed compilation, whose insertion order
        differs from an uninterrupted run's, still produces an identical
        file.
        """
        import json
        import os
        import tempfile

        from repro.pulse.serialize import pulse_to_dict
        from repro.verify.artifacts import LIBRARY_SCHEMA_VERSION, pulse_checksum

        entries = []
        for key in sorted(self._entries):
            pulse_payload = pulse_to_dict(self._entries[key])
            entries.append(
                {
                    "key": key.hex(),
                    "pulse": pulse_payload,
                    # per-entry content checksum: load() quarantines
                    # entries whose payload no longer hashes to this
                    "checksum": pulse_checksum(pulse_payload),
                }
            )
        payload = {
            "schema": LIBRARY_SCHEMA_VERSION,
            "match_global_phase": self.match_global_phase,
            "entries": entries,
        }
        destination = os.path.abspath(path)
        fd, tmp_path = tempfile.mkstemp(
            dir=os.path.dirname(destination),
            prefix=os.path.basename(destination) + ".",
            suffix=".tmp",
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp_path, destination)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def load(self, path: str, replace: bool = False, strict: bool = False) -> int:
        """Merge (or replace) entries from a saved library; returns the
        number of entries loaded.

        Raises :class:`QOCError` when the payload is structurally
        unusable: not a JSON object, an unknown (newer) schema version,
        or a stored key mode that disagrees with this library's — mixing
        exact and global-phase keys would corrupt lookups.

        Individual corrupted entries — malformed key hex, checksum
        mismatches, non-finite waveform samples, bad shapes — are
        *quarantined*: skipped, counted on ``library.quarantined`` (and
        :attr:`quarantined`), and logged with the reason, while every
        healthy entry still loads.  With ``strict=True`` the first bad
        entry raises :class:`QOCError` instead.  Either way the library
        is never left half-loaded: all entries are validated and decoded
        before the first one is merged.
        """
        import json

        from repro.pulse.serialize import pulse_from_dict, validate_pulse_payload
        from repro.verify.artifacts import LIBRARY_SCHEMA_VERSION, validate_entry

        with open(path) as fh:
            try:
                payload = json.load(fh)
            except ValueError as exc:
                raise QOCError(f"library file {path} is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise QOCError(
                f"library file {path} holds {type(payload).__name__}, "
                "not a library payload"
            )
        schema = payload.get("schema", 1)
        if not isinstance(schema, int) or schema < 1 or \
                schema > LIBRARY_SCHEMA_VERSION:
            raise QOCError(
                f"library file {path} uses unsupported schema {schema!r} "
                f"(this build reads <= {LIBRARY_SCHEMA_VERSION})"
            )
        if bool(payload.get("match_global_phase")) != self.match_global_phase:
            raise QOCError(
                "stored library uses a different cache-key mode; refusing to merge"
            )
        entries = payload.get("entries", [])
        if not isinstance(entries, list):
            raise QOCError(
                f"library file {path} has a non-list 'entries' field"
            )

        metrics = telemetry.get_metrics()
        # stage every entry before merging any, so a bad payload can
        # never leave the library half-loaded
        staged: Dict[bytes, Pulse] = {}
        quarantined = 0
        for position, entry in enumerate(entries):
            problems = validate_entry(entry)
            if not problems:
                problems = validate_pulse_payload(entry["pulse"])
            if problems:
                if strict:
                    raise QOCError(
                        f"library entry {position} in {path} is invalid: "
                        + "; ".join(problems)
                    )
                quarantined += 1
                metrics.inc("library.quarantined")
                logger.warning(
                    "quarantined library entry %d from %s: %s",
                    position,
                    path,
                    "; ".join(problems),
                )
                continue
            staged[bytes.fromhex(entry["key"])] = pulse_from_dict(entry["pulse"])

        if replace:
            self._entries.clear()
            self._decoded.clear()
            # hit/miss counts described the discarded entries; hit_rate
            # must reflect only the library being loaded now
            self.clear_statistics()
        self._entries.update(staged)
        self.quarantined += quarantined
        if quarantined:
            logger.warning(
                "loaded %d entries from %s; quarantined %d corrupted",
                len(staged),
                path,
                quarantined,
            )
        return len(staged)

    def invalidate(self) -> None:
        """Drop every cached pulse (e.g. after hardware recalibration)."""
        self._entries.clear()
        self._decoded.clear()
        self.clear_statistics()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear_statistics(self) -> None:
        self.hits = 0
        self.misses = 0
        self.near_hits = 0
        self.near_misses = 0
        self.equiv_hits = 0
        self.quarantined = 0

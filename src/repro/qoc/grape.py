"""GRAPE: gradient-ascent pulse engineering (Khaneja et al., 2005).

Piecewise-constant controls ``u[k, t]`` over ``num_segments`` slots of
length ``dt`` evolve the system as a product of slot propagators
``exp(-i dt (H0 + sum_k u[k,t] H_k))``.  The objective is the
global-phase-invariant process fidelity ``|tr(V^dag U)|^2 / d^2``; exact
gradients come from the spectral formula for the derivative of the matrix
exponential, and the controls are optimized with bounded L-BFGS.

Two objective kernels are available (``QOCConfig.kernel``):

``"fast"`` (default)
    The forward/backward partial propagator products run as log-depth
    batched-matmul scans instead of Python loops, and the gradient
    contraction works in the *lab* frame — it rotates the per-slot
    gradient core back with two ``(T, d, d)`` matmuls and contracts it
    against the control stack directly, never materializing the
    ``(K, T, d, d)`` control-in-eigenbasis tensor the reference kernel
    builds.  Mathematically identical to the reference, but floating-point
    reassociation makes it differ at machine precision (~1e-14 relative).

``"reference"``
    The original loop-based objective, kept bitwise-identical to
    pre-fast-path builds and pinned by a regression test.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import minimize

from repro import telemetry
from repro.config import QOCConfig
from repro.exceptions import QOCError
from repro.obs import events as obs_events
from repro.qoc.hamiltonian import TransmonChain

__all__ = ["GrapeResult", "grape_optimize", "propagate", "pulse_propagator"]

logger = telemetry.get_logger("qoc.grape")


@dataclass(frozen=True)
class GrapeResult:
    """Outcome of a GRAPE run."""

    controls: np.ndarray  # (num_controls, num_segments)
    fidelity: float
    final_unitary: np.ndarray
    iterations: int
    converged: bool
    dt: float

    @property
    def duration(self) -> float:
        """Total pulse duration in nanoseconds."""
        return self.controls.shape[1] * self.dt


def control_stack_for(controls_h: Sequence[np.ndarray]) -> np.ndarray:
    """The ``(K, d, d)`` complex stack of control Hamiltonians."""
    return np.stack([np.asarray(h, dtype=complex) for h in controls_h])


def _slot_hamiltonians(
    drift: np.ndarray, control_stack: np.ndarray, u: np.ndarray
) -> np.ndarray:
    """The ``(T, d, d)`` per-slot Hamiltonians ``H0 + sum_k u[k,t] H_k``."""
    return drift[None, :, :] + np.einsum("kt,kij->tij", u, control_stack)


def _slot_propagators_and_eig(
    drift: np.ndarray,
    controls_h: Sequence[np.ndarray],
    u: np.ndarray,
    dt: float,
    control_stack: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-slot propagators and eigensystems, batched over time slots.

    Returns ``(props, lams, qs)`` with shapes ``(T, d, d)``, ``(T, d)``
    and ``(T, d, d)``.  ``control_stack`` is the prebuilt complex stack of
    ``controls_h``; passing it skips the per-call ``np.stack`` (the
    optimizer calls this every L-BFGS iteration).  Omitting it keeps the
    original build-per-call behaviour for standalone callers.
    """
    if control_stack is None:
        control_stack = control_stack_for(controls_h)
    hams = _slot_hamiltonians(drift, control_stack, u)
    lams, qs = np.linalg.eigh(hams)
    phases = np.exp(-1j * dt * lams)
    props = (qs * phases[:, None, :]) @ np.conj(np.swapaxes(qs, 1, 2))
    return props, lams, qs


def propagate(
    drift: np.ndarray,
    controls_h: Sequence[np.ndarray],
    u: np.ndarray,
    dt: float,
) -> np.ndarray:
    """Total propagator for piecewise-constant controls ``u``."""
    props, _, _ = _slot_propagators_and_eig(drift, controls_h, u, dt)
    # left-fold over the stacked propagators: P_{T-1} ... P_1 P_0
    return reduce(
        lambda total, prop: prop @ total,
        props,
        np.eye(drift.shape[0], dtype=complex),
    )


def pulse_propagator(pulse, hardware: TransmonChain) -> np.ndarray:
    """The unitary a stored pulse actually implements on ``hardware``.

    Re-derives the propagator from the raw control samples (the same
    slot-propagator product GRAPE optimized through), independent of the
    fidelity metadata the pulse carries — which is what lets the
    verification layer catch corrupted or stale pulse-library artifacts
    whose recorded fidelity no longer matches their waveform.
    """
    controls_h, _ = hardware.controls()
    controls = np.asarray(pulse.controls, dtype=float)
    if controls.shape[0] != len(controls_h):
        raise QOCError(
            f"pulse drives {controls.shape[0]} control lines but the "
            f"{hardware.num_qubits}-qubit hardware model has {len(controls_h)}"
        )
    return propagate(hardware.drift(), controls_h, controls, pulse.dt)


def _exp_derivative_factor(lams: np.ndarray, dt: float) -> np.ndarray:
    """Divided differences ``f(a,b)`` for d/du exp(-i dt H), batched.

    ``lams`` has shape ``(T, d)``; the result has shape ``(T, d, d)``.
    """
    lam_col = lams[:, :, None]
    lam_row = lams[:, None, :]
    diff = lam_col - lam_row
    exp_col = np.exp(-1j * dt * lam_col)
    exp_row = np.exp(-1j * dt * lam_row)
    with np.errstate(divide="ignore", invalid="ignore"):
        factor = (exp_col - exp_row) / diff
    degenerate = np.abs(diff) < 1e-12
    broadcast_col = np.broadcast_to(-1j * dt * exp_col, factor.shape)
    factor[degenerate] = broadcast_col[degenerate]
    return factor


def _factor_from_phases(
    lams: np.ndarray, phases: np.ndarray, dt: float
) -> np.ndarray:
    """:func:`_exp_derivative_factor` reusing the already-computed
    ``exp(-i dt lam)`` phases from the propagator construction (the fast
    kernel computes them once per evaluation anyway)."""
    diff = lams[:, :, None] - lams[:, None, :]
    exp_col = phases[:, :, None]
    with np.errstate(divide="ignore", invalid="ignore"):
        factor = (exp_col - phases[:, None, :]) / diff
    degenerate = np.abs(diff) < 1e-12
    broadcast_col = np.broadcast_to(-1j * dt * exp_col, factor.shape)
    factor[degenerate] = broadcast_col[degenerate]
    return factor


def _scan_products(props: np.ndarray) -> np.ndarray:
    """Inclusive prefix products ``out[t] = P_t @ ... @ P_0``, log depth.

    Hillis-Steele scan over the time axis: each pass doubles the span of
    every partial product with one batched matmul, so ``T`` slots need
    ``ceil(log2 T)`` passes instead of ``T`` Python-level matmuls.  The
    right-hand side of each assignment is evaluated into a fresh array
    before the slice assignment, so the in-place update never reads
    already-overwritten rows.
    """
    out = props.copy()
    offset = 1
    while offset < out.shape[0]:
        out[offset:] = out[offset:] @ out[:-offset]
        offset *= 2
    return out


def _cumulative_products(props: np.ndarray) -> np.ndarray:
    """Inclusive prefix products ``out[t] = P_t @ ... @ P_0``, blocked.

    Two-level scan: the time axis is cut into ~sqrt(T) chunks, every
    chunk computes its internal prefixes with batched matmuls (one per
    in-chunk position, all chunks at once), the chunk *totals* are
    scanned with the log-depth pass, and one final broadcast matmul
    applies each chunk's carry.  Total work stays O(T) small matmuls —
    the plain log-depth scan pays O(T log T) — while the Python-level
    loop shrinks from T iterations to ~2 sqrt(T).
    """
    num_t, d = props.shape[0], props.shape[1]
    if num_t <= 4:
        return _scan_products(props)
    chunk = max(4, int(round(np.sqrt(num_t))))
    num_chunks = -(-num_t // chunk)
    padded = np.empty((num_chunks * chunk, d, d), dtype=props.dtype)
    padded[:num_t] = props
    padded[num_t:] = np.eye(d)  # identity padding: products stay exact
    blocks = padded.reshape(num_chunks, chunk, d, d)
    for i in range(1, chunk):
        blocks[:, i] = blocks[:, i] @ blocks[:, i - 1]
    # exclusive scan of the chunk totals: carry[j] = totals of chunks < j
    carries = np.empty((num_chunks, d, d), dtype=props.dtype)
    carries[0] = np.eye(d)
    if num_chunks > 1:
        carries[1:] = _scan_products(blocks[:-1, chunk - 1])
    out = blocks @ carries[:, None]
    return out.reshape(num_chunks * chunk, d, d)[:num_t]


class _GrapeObjective:
    """The ``(infidelity, gradient)`` callable handed to L-BFGS-B.

    Owns everything hoisted out of the per-iteration hot loop: the
    prebuilt control stack, the einsum contraction paths (computed once
    from the fixed operand shapes), and — for the singleflight batch
    path — an optional precomputed eigendecomposition for the very first
    evaluation.  It also remembers the lowest-infidelity evaluation seen
    (``best``), which lets :func:`grape_optimize` reuse that evaluation's
    total propagator instead of re-propagating after ``minimize`` returns
    ``result.x`` equal to an already-evaluated point.
    """

    def __init__(
        self,
        target_dag: np.ndarray,
        drift: np.ndarray,
        control_stack: np.ndarray,
        num_segments: int,
        dt: float,
        kernel: str,
        first_eig: Optional[Tuple[np.ndarray, ...]] = None,
    ):
        self.target_dag = target_dag
        self.drift = drift
        self.control_stack = control_stack
        self.num_controls = control_stack.shape[0]
        self.num_segments = int(num_segments)
        self.dt = dt
        self.dim = drift.shape[0]
        self.kernel = kernel
        self.calls = 0
        #: ``(value, x, total, overlap)`` of the best evaluation so far.
        self.best: Optional[Tuple[float, np.ndarray, np.ndarray, complex]] = None
        #: ``(u0, props, lams, qs)`` for the first evaluation, if the
        #: caller already eigendecomposed it (batched bracket probes).
        self._first_eig = first_eig
        num_k, num_t, d = self.num_controls, self.num_segments, self.dim
        self._eye = np.eye(d, dtype=complex)
        if kernel == "fast":
            # H_t = H0 + sum_k u[k,t] H_k as one BLAS matmul over the
            # flattened control stack instead of a C-level einsum loop
            self._flat_stack = self.control_stack.reshape(num_k, d * d)
            self._dz_path = np.einsum_path(
                "kij,tij->kt",
                np.empty((num_k, d, d), dtype=complex),
                np.empty((num_t, d, d), dtype=complex),
                optimize=True,
            )[0]
        else:
            # the reference einsums used optimize=True, which resolves to
            # the same greedy path einsum_path computes here — passing the
            # precomputed path keeps the contraction order (and therefore
            # the bits) identical while skipping the per-call path search
            self._hk_path = np.einsum_path(
                "tai,kij,tjb->ktab",
                np.empty((num_t, d, d), dtype=complex),
                np.empty((num_k, d, d), dtype=complex),
                np.empty((num_t, d, d), dtype=complex),
                optimize=True,
            )[0]
            self._ref_dz_path = np.einsum_path(
                "tab,ktab->kt",
                np.empty((num_t, d, d), dtype=complex),
                np.empty((num_k, num_t, d, d), dtype=complex),
                optimize=True,
            )[0]

    def _eigensystem(
        self, u: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Optional[np.ndarray]]:
        first = self._first_eig
        if first is not None:
            # consumed exactly once, and only for the evaluation it was
            # actually computed for — a resample/seeding mismatch must
            # degrade to a local eigh, never to wrong gradients
            self._first_eig = None
            u0, props, lams, qs = first
            if np.array_equal(u, u0):
                return props, lams, qs, None
        if self.kernel == "fast":
            d = self.dim
            hams = (u.T @ self._flat_stack).reshape(self.num_segments, d, d)
            hams += self.drift
            lams, qs = np.linalg.eigh(hams)
            phases = np.exp(-1j * self.dt * lams)
            props = (qs * phases[:, None, :]) @ np.conj(np.swapaxes(qs, 1, 2))
            return props, lams, qs, phases
        props, lams, qs = _slot_propagators_and_eig(
            self.drift, (), u, self.dt, control_stack=self.control_stack
        )
        return props, lams, qs, None

    def __call__(self, x: np.ndarray) -> Tuple[float, np.ndarray]:
        self.calls += 1
        num_t, d = self.num_segments, self.dim
        u = x.reshape(self.num_controls, num_t)
        props, lams, qs, phases = self._eigensystem(u)
        if self.kernel == "fast":
            # forward partial products A_t = P_{t-1} ... P_0 (A_0 = I):
            # one inclusive prefix scan supplies every A_{t+1} at once
            scan = _cumulative_products(props)
            forward = np.empty((num_t + 1, d, d), dtype=complex)
            forward[0] = self._eye
            forward[1:] = scan
            total = forward[num_t]
            # backward products back_t = V^dag P_{T-1} ... P_{t+1}: the
            # slot propagators are unitary, so the suffix is the total
            # times the adjoint of the prefix — back_t = (V^dag U) A_{t+1}^dag
            # — and the whole backward sweep is one batched matmul against
            # the forward scan instead of a second scan
            back = np.empty((num_t, d, d), dtype=complex)
            back[num_t - 1] = self.target_dag
            if num_t > 1:
                overlap_matrix = self.target_dag @ total
                back[: num_t - 1] = overlap_matrix @ np.conj(
                    np.swapaxes(scan[: num_t - 1], 1, 2)
                )
        else:
            forward = np.empty((num_t + 1, d, d), dtype=complex)
            forward[0] = np.eye(d)
            for t in range(num_t):
                forward[t + 1] = props[t] @ forward[t]
            total = forward[num_t]
            back = np.empty((num_t, d, d), dtype=complex)
            back[num_t - 1] = self.target_dag
            for t in range(num_t - 1, 0, -1):
                back[t - 1] = back[t] @ props[t]
        overlap = np.trace(self.target_dag @ total)
        fidelity = abs(overlap) ** 2 / d**2
        # dz[k,t] = tr(back_t Q_t (factor_t . Hk_eig) Q_t^dag A_t)
        #         = sum_ab (factor_t . RL_t^T)_ab Hk_eig_ab
        qs_dag = np.conj(np.swapaxes(qs, 1, 2))
        if self.kernel == "fast":
            if phases is None:
                phases = np.exp(-1j * self.dt * lams)
            factor = _factor_from_phases(lams, phases, self.dt)
        else:
            factor = _exp_derivative_factor(lams, self.dt)
        left = back @ qs  # (T, d, d)
        right = qs_dag @ forward[:num_t]  # (T, d, d)
        core = factor * np.swapaxes(right @ left, 1, 2)  # (T, d, d)
        if self.kernel == "fast":
            # rotate the core back to the lab frame once per slot —
            # G_t = conj(Q_t) core_t Q_t^T — and contract the raw control
            # Hamiltonians against it: sum_ab core_ab (Q^dag Hk Q)_ab
            # = sum_ij Hk_ij G_ij, so the (K, T, d, d) Hk_eig tensor the
            # reference kernel materializes never exists here
            lab_core = np.conj(qs) @ core @ np.swapaxes(qs, 1, 2)
            dz = np.einsum(
                "kij,tij->kt",
                self.control_stack,
                lab_core,
                optimize=self._dz_path,
            )
        else:
            hk_eig = np.einsum(
                "tai,kij,tjb->ktab",
                qs_dag,
                self.control_stack,
                qs,
                optimize=self._hk_path,
            )
            dz = np.einsum(
                "tab,ktab->kt", core, hk_eig, optimize=self._ref_dz_path
            )
        grad = 2.0 * (np.conj(overlap) * dz).real / d**2
        value = 1.0 - fidelity
        if self.best is None or value < self.best[0]:
            self.best = (value, x.copy(), total.copy(), overlap)
        return value, -grad.ravel()


def grape_optimize(
    target: np.ndarray,
    hardware: TransmonChain,
    num_segments: int,
    config: Optional[QOCConfig] = None,
    initial_controls: Optional[np.ndarray] = None,
    first_eig: Optional[Tuple[np.ndarray, ...]] = None,
) -> GrapeResult:
    """Optimize piecewise-constant controls to realize ``target``.

    ``initial_controls`` warm-starts the optimization (used by the latency
    binary search to reuse solutions across candidate durations, and by
    the pulse library to seed from a near-neighbour entry).  ``first_eig``
    optionally supplies ``(u0, props, lams, qs)`` — the already-computed
    slot eigendecomposition of the starting controls — so batched bracket
    probes (:func:`repro.qoc.batched.batched_first_probe_eigs`) skip the
    first evaluation's ``eigh``; it is used only if the first evaluated
    point matches ``u0`` exactly.
    """
    config = config or QOCConfig()
    target = np.asarray(target, dtype=complex)
    dim = target.shape[0]
    if dim != hardware.dim:
        raise QOCError(
            f"target dimension {dim} does not match the "
            f"{hardware.num_qubits}-qubit hardware model (dim {hardware.dim})"
        )
    if num_segments < 1:
        raise QOCError("num_segments must be >= 1")
    drift = hardware.drift()
    controls_h, _ = hardware.controls()
    num_controls = len(controls_h)
    dt = config.dt
    target_dag = target.conj().T

    rng = np.random.default_rng(config.seed)
    if initial_controls is not None and initial_controls.shape == (
        num_controls,
        num_segments,
    ):
        u0 = initial_controls.copy()
    elif initial_controls is not None:
        u0 = _resample_controls(initial_controls, num_segments)
    else:
        u0 = rng.uniform(-0.1, 0.1, size=(num_controls, num_segments))

    objective = _GrapeObjective(
        target_dag,
        drift,
        control_stack_for(controls_h),
        num_segments,
        dt,
        config.kernel,
        first_eig=first_eig,
    )

    bounds = [(-config.max_amplitude, config.max_amplitude)] * (
        num_controls * num_segments
    )
    with telemetry.get_tracer().span(
        "grape", segments=num_segments, dim=dim
    ) as span:
        result = minimize(
            objective,
            u0.ravel(),
            jac=True,
            method="L-BFGS-B",
            bounds=bounds,
            options={"maxiter": config.max_iterations, "ftol": 1e-12, "gtol": 1e-10},
        )
        u_final = result.x.reshape(num_controls, num_segments)
        best = objective.best
        if best is not None and np.array_equal(result.x, best[1]):
            # L-BFGS-B returns the best evaluated point, whose total
            # propagator the objective already computed and kept — reuse
            # it instead of paying one more full eigh + propagation.
            # (For the reference kernel the kept product is the same
            # left-fold ``propagate`` runs, so this is bitwise-neutral.)
            final_unitary = best[2]
            overlap = best[3]
        else:
            final_unitary = propagate(drift, controls_h, u_final, dt)
            overlap = np.trace(target_dag @ final_unitary)
        fidelity = float(abs(overlap) ** 2 / dim**2)
        converged = fidelity >= config.fidelity_threshold
        span.set(
            iterations=objective.calls,
            fidelity=round(fidelity, 6),
            converged=converged,
        )
    metrics = telemetry.get_metrics()
    metrics.inc("grape.runs")
    metrics.inc("grape.converged" if converged else "grape.not_converged")
    metrics.observe("grape.iterations", objective.calls)
    # one event per GRAPE run (not per iteration) keeps the stream small;
    # in a worker this buffers locally and relays through the merge-back
    obs_events.get_bus().emit(
        "grape_iteration", iterations=objective.calls, converged=converged
    )
    logger.debug(
        "grape: %d segments, %d iterations, fidelity %.6f (%s)",
        num_segments,
        objective.calls,
        fidelity,
        "converged" if converged else "not converged",
    )
    return GrapeResult(
        controls=u_final,
        fidelity=fidelity,
        final_unitary=final_unitary,
        iterations=objective.calls,
        converged=converged,
        dt=dt,
    )


def _resample_controls(controls: np.ndarray, num_segments: int) -> np.ndarray:
    """Time-stretch a control array to a new segment count (warm start).

    One broadcast linear interpolation covers every control line at once
    (the old implementation ran ``np.interp`` per line inside an
    ``np.vstack`` list comprehension).  Both endpoints land exactly on
    the first and last input samples.
    """
    controls = np.asarray(controls, dtype=float)
    num_controls, old_segments = controls.shape
    if old_segments == num_segments:
        return controls.copy()
    if old_segments == 1:
        return np.repeat(controls, num_segments, axis=1)
    positions = np.linspace(0.0, 1.0, num_segments) * (old_segments - 1)
    low = np.clip(np.floor(positions).astype(int), 0, old_segments - 2)
    frac = positions - low
    return controls[:, low] * (1.0 - frac) + controls[:, low + 1] * frac

"""GRAPE: gradient-ascent pulse engineering (Khaneja et al., 2005).

Piecewise-constant controls ``u[k, t]`` over ``num_segments`` slots of
length ``dt`` evolve the system as a product of slot propagators
``exp(-i dt (H0 + sum_k u[k,t] H_k))``.  The objective is the
global-phase-invariant process fidelity ``|tr(V^dag U)|^2 / d^2``; exact
gradients come from the spectral formula for the derivative of the matrix
exponential, and the controls are optimized with bounded L-BFGS.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import minimize

from repro import telemetry
from repro.config import QOCConfig
from repro.exceptions import QOCError
from repro.obs import events as obs_events
from repro.qoc.hamiltonian import TransmonChain

__all__ = ["GrapeResult", "grape_optimize", "propagate", "pulse_propagator"]

logger = telemetry.get_logger("qoc.grape")


@dataclass(frozen=True)
class GrapeResult:
    """Outcome of a GRAPE run."""

    controls: np.ndarray  # (num_controls, num_segments)
    fidelity: float
    final_unitary: np.ndarray
    iterations: int
    converged: bool
    dt: float

    @property
    def duration(self) -> float:
        """Total pulse duration in nanoseconds."""
        return self.controls.shape[1] * self.dt


def _slot_propagators_and_eig(
    drift: np.ndarray,
    controls_h: Sequence[np.ndarray],
    u: np.ndarray,
    dt: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-slot propagators and eigensystems, batched over time slots.

    Returns ``(props, lams, qs)`` with shapes ``(T, d, d)``, ``(T, d)``
    and ``(T, d, d)``.
    """
    stack = np.stack([np.asarray(h, dtype=complex) for h in controls_h])
    hams = drift[None, :, :] + np.einsum("kt,kij->tij", u, stack)
    lams, qs = np.linalg.eigh(hams)
    phases = np.exp(-1j * dt * lams)
    props = (qs * phases[:, None, :]) @ np.conj(np.swapaxes(qs, 1, 2))
    return props, lams, qs


def propagate(
    drift: np.ndarray,
    controls_h: Sequence[np.ndarray],
    u: np.ndarray,
    dt: float,
) -> np.ndarray:
    """Total propagator for piecewise-constant controls ``u``."""
    props, _, _ = _slot_propagators_and_eig(drift, controls_h, u, dt)
    # left-fold over the stacked propagators: P_{T-1} ... P_1 P_0
    return reduce(
        lambda total, prop: prop @ total,
        props,
        np.eye(drift.shape[0], dtype=complex),
    )


def pulse_propagator(pulse, hardware: TransmonChain) -> np.ndarray:
    """The unitary a stored pulse actually implements on ``hardware``.

    Re-derives the propagator from the raw control samples (the same
    slot-propagator product GRAPE optimized through), independent of the
    fidelity metadata the pulse carries — which is what lets the
    verification layer catch corrupted or stale pulse-library artifacts
    whose recorded fidelity no longer matches their waveform.
    """
    controls_h, _ = hardware.controls()
    controls = np.asarray(pulse.controls, dtype=float)
    if controls.shape[0] != len(controls_h):
        raise QOCError(
            f"pulse drives {controls.shape[0]} control lines but the "
            f"{hardware.num_qubits}-qubit hardware model has {len(controls_h)}"
        )
    return propagate(hardware.drift(), controls_h, controls, pulse.dt)


def _exp_derivative_factor(lams: np.ndarray, dt: float) -> np.ndarray:
    """Divided differences ``f(a,b)`` for d/du exp(-i dt H), batched.

    ``lams`` has shape ``(T, d)``; the result has shape ``(T, d, d)``.
    """
    lam_col = lams[:, :, None]
    lam_row = lams[:, None, :]
    diff = lam_col - lam_row
    exp_col = np.exp(-1j * dt * lam_col)
    exp_row = np.exp(-1j * dt * lam_row)
    with np.errstate(divide="ignore", invalid="ignore"):
        factor = (exp_col - exp_row) / diff
    degenerate = np.abs(diff) < 1e-12
    broadcast_col = np.broadcast_to(-1j * dt * exp_col, factor.shape)
    factor[degenerate] = broadcast_col[degenerate]
    return factor


def grape_optimize(
    target: np.ndarray,
    hardware: TransmonChain,
    num_segments: int,
    config: Optional[QOCConfig] = None,
    initial_controls: Optional[np.ndarray] = None,
) -> GrapeResult:
    """Optimize piecewise-constant controls to realize ``target``.

    ``initial_controls`` warm-starts the optimization (used by the latency
    binary search to reuse solutions across candidate durations).
    """
    config = config or QOCConfig()
    target = np.asarray(target, dtype=complex)
    dim = target.shape[0]
    if dim != hardware.dim:
        raise QOCError(
            f"target dimension {dim} does not match the "
            f"{hardware.num_qubits}-qubit hardware model (dim {hardware.dim})"
        )
    if num_segments < 1:
        raise QOCError("num_segments must be >= 1")
    drift = hardware.drift()
    controls_h, _ = hardware.controls()
    num_controls = len(controls_h)
    dt = config.dt
    target_dag = target.conj().T

    rng = np.random.default_rng(config.seed)
    if initial_controls is not None and initial_controls.shape == (
        num_controls,
        num_segments,
    ):
        u0 = initial_controls.copy()
    elif initial_controls is not None:
        u0 = _resample_controls(initial_controls, num_segments)
    else:
        u0 = rng.uniform(-0.1, 0.1, size=(num_controls, num_segments))

    iteration_count = [0]

    control_stack = np.stack([np.asarray(h, dtype=complex) for h in controls_h])

    def objective(x: np.ndarray) -> Tuple[float, np.ndarray]:
        iteration_count[0] += 1
        u = x.reshape(num_controls, num_segments)
        props, lams, qs = _slot_propagators_and_eig(drift, controls_h, u, dt)
        # forward partial products A_t = P_{t-1} ... P_0  (A_0 = I)
        forward = np.empty((num_segments + 1, dim, dim), dtype=complex)
        forward[0] = np.eye(dim)
        for t in range(num_segments):
            forward[t + 1] = props[t] @ forward[t]
        total = forward[num_segments]
        overlap = np.trace(target_dag @ total)
        fidelity = abs(overlap) ** 2 / dim**2
        # backward products: back_t = V^dag P_{T-1} ... P_{t+1}
        back = np.empty((num_segments, dim, dim), dtype=complex)
        back[num_segments - 1] = target_dag
        for t in range(num_segments - 1, 0, -1):
            back[t - 1] = back[t] @ props[t]
        # dz[k,t] = tr(back_t Q_t (factor_t . Hk_eig) Q_t^dag A_t)
        #         = sum_ab (factor_t . RL_t^T)_ab Hk_eig_ab
        qs_dag = np.conj(np.swapaxes(qs, 1, 2))
        factor = _exp_derivative_factor(lams, dt)
        left = back @ qs  # (T, d, d)
        right = qs_dag @ forward[:num_segments]  # (T, d, d)
        core = factor * np.swapaxes(right @ left, 1, 2)  # (T, d, d)
        hk_eig = np.einsum(
            "tai,kij,tjb->ktab", qs_dag, control_stack, qs, optimize=True
        )
        dz = np.einsum("tab,ktab->kt", core, hk_eig, optimize=True)
        grad = 2.0 * (np.conj(overlap) * dz).real / dim**2
        return 1.0 - fidelity, -grad.ravel()

    bounds = [(-config.max_amplitude, config.max_amplitude)] * (
        num_controls * num_segments
    )
    with telemetry.get_tracer().span(
        "grape", segments=num_segments, dim=dim
    ) as span:
        result = minimize(
            objective,
            u0.ravel(),
            jac=True,
            method="L-BFGS-B",
            bounds=bounds,
            options={"maxiter": config.max_iterations, "ftol": 1e-12, "gtol": 1e-10},
        )
        u_final = result.x.reshape(num_controls, num_segments)
        final_unitary = propagate(drift, controls_h, u_final, dt)
        overlap = np.trace(target_dag @ final_unitary)
        fidelity = float(abs(overlap) ** 2 / dim**2)
        converged = fidelity >= config.fidelity_threshold
        span.set(
            iterations=iteration_count[0],
            fidelity=round(fidelity, 6),
            converged=converged,
        )
    metrics = telemetry.get_metrics()
    metrics.inc("grape.runs")
    metrics.inc("grape.converged" if converged else "grape.not_converged")
    metrics.observe("grape.iterations", iteration_count[0])
    # one event per GRAPE run (not per iteration) keeps the stream small;
    # in a worker this buffers locally and relays through the merge-back
    obs_events.get_bus().emit(
        "grape_iteration", iterations=iteration_count[0], converged=converged
    )
    logger.debug(
        "grape: %d segments, %d iterations, fidelity %.6f (%s)",
        num_segments,
        iteration_count[0],
        fidelity,
        "converged" if converged else "not converged",
    )
    return GrapeResult(
        controls=u_final,
        fidelity=fidelity,
        final_unitary=final_unitary,
        iterations=iteration_count[0],
        converged=converged,
        dt=dt,
    )


def _resample_controls(controls: np.ndarray, num_segments: int) -> np.ndarray:
    """Time-stretch a control array to a new segment count (warm start)."""
    num_controls, old_segments = controls.shape
    if old_segments == num_segments:
        return controls.copy()
    old_axis = np.linspace(0.0, 1.0, old_segments)
    new_axis = np.linspace(0.0, 1.0, num_segments)
    return np.vstack(
        [np.interp(new_axis, old_axis, controls[k]) for k in range(num_controls)]
    )

"""State-transfer GRAPE: drive |psi_0> to |psi_target>.

Section 2.4 of the paper defines QOC in terms of steering a *state* from
an initial to a target vector (Eqs. 1-2); the gate-synthesis objective
used by the pipeline is the unitary generalization.  This module provides
the state-transfer variant with the same exact-gradient machinery: the
objective is ``1 - |<psi_target| U(u) |psi_0>|^2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy.optimize import minimize

from repro.config import QOCConfig
from repro.exceptions import QOCError
from repro.qoc.grape import _exp_derivative_factor, _slot_propagators_and_eig
from repro.qoc.hamiltonian import TransmonChain

__all__ = ["StateTransferResult", "grape_state_transfer"]


@dataclass(frozen=True)
class StateTransferResult:
    """Outcome of a state-transfer optimization."""

    controls: np.ndarray
    fidelity: float
    final_state: np.ndarray
    iterations: int
    converged: bool
    dt: float

    @property
    def duration(self) -> float:
        return self.controls.shape[1] * self.dt


def grape_state_transfer(
    initial_state: np.ndarray,
    target_state: np.ndarray,
    hardware: TransmonChain,
    num_segments: int,
    config: Optional[QOCConfig] = None,
    initial_controls: Optional[np.ndarray] = None,
) -> StateTransferResult:
    """Optimize controls steering ``initial_state`` to ``target_state``.

    Both states are normalized internally; the fidelity is the squared
    overlap ``|<target|psi(T)>|^2``.
    """
    config = config or QOCConfig()
    psi0 = np.asarray(initial_state, dtype=complex).ravel()
    target = np.asarray(target_state, dtype=complex).ravel()
    dim = hardware.dim
    if psi0.shape != (dim,) or target.shape != (dim,):
        raise QOCError(
            f"states must have dimension {dim} for this hardware model"
        )
    norm0 = np.linalg.norm(psi0)
    norm1 = np.linalg.norm(target)
    if norm0 < 1e-12 or norm1 < 1e-12:
        raise QOCError("states must be non-zero")
    psi0 = psi0 / norm0
    target = target / norm1
    if num_segments < 1:
        raise QOCError("num_segments must be >= 1")

    drift = hardware.drift()
    controls_h, _ = hardware.controls()
    num_controls = len(controls_h)
    dt = config.dt
    rng = np.random.default_rng(config.seed)
    if initial_controls is not None:
        u0 = np.asarray(initial_controls, dtype=float)
        if u0.shape != (num_controls, num_segments):
            raise QOCError("initial_controls shape mismatch")
    else:
        u0 = rng.uniform(-0.1, 0.1, size=(num_controls, num_segments))

    control_stack = np.stack([np.asarray(h, dtype=complex) for h in controls_h])
    evals = [0]

    def objective(x: np.ndarray) -> Tuple[float, np.ndarray]:
        evals[0] += 1
        u = x.reshape(num_controls, num_segments)
        props, lams, qs = _slot_propagators_and_eig(drift, controls_h, u, dt)
        # forward states phi_t = P_{t-1}...P_0 |psi0>
        states = np.empty((num_segments + 1, dim), dtype=complex)
        states[0] = psi0
        for t in range(num_segments):
            states[t + 1] = props[t] @ states[t]
        overlap = np.vdot(target, states[num_segments])
        fidelity = abs(overlap) ** 2
        # costates chi_t = (P_{T-1}...P_{t+1})^dag |target>
        costates = np.empty((num_segments, dim), dtype=complex)
        costates[num_segments - 1] = target
        for t in range(num_segments - 1, 0, -1):
            costates[t - 1] = props[t].conj().T @ costates[t]
        qs_dag = np.conj(np.swapaxes(qs, 1, 2))
        factor = _exp_derivative_factor(lams, dt)
        # dz[k,t] = <chi_t| dP_t |phi_t> with dP_t = Q (factor . Hk_eig) Q^dag
        chi_q = np.einsum("ti,tia->ta", np.conj(costates), qs)
        phi_q = np.einsum("tab,tb->ta", qs_dag, states[:num_segments])
        outer = factor * np.einsum("ta,tb->tab", chi_q, phi_q)
        hk_eig = np.einsum("tai,kij,tjb->ktab", qs_dag, control_stack, qs)
        dz = np.einsum("tab,ktab->kt", outer, hk_eig)
        grad = 2.0 * (np.conj(overlap) * dz).real
        return 1.0 - fidelity, -grad.ravel()

    result = minimize(
        objective,
        u0.ravel(),
        jac=True,
        method="L-BFGS-B",
        bounds=[(-config.max_amplitude, config.max_amplitude)]
        * (num_controls * num_segments),
        options={"maxiter": config.max_iterations, "ftol": 1e-12, "gtol": 1e-10},
    )
    u_final = result.x.reshape(num_controls, num_segments)
    props, _, _ = _slot_propagators_and_eig(drift, controls_h, u_final, dt)
    state = psi0.copy()
    for p in props:
        state = p @ state
    fidelity = float(abs(np.vdot(target, state)) ** 2)
    return StateTransferResult(
        controls=u_final,
        fidelity=fidelity,
        final_state=state,
        iterations=evals[0],
        converged=fidelity >= config.fidelity_threshold,
        dt=dt,
    )

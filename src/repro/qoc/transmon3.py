"""Three-level transmon model: leakage-aware optimal control.

Real transmons are weakly anharmonic oscillators, not two-level systems:
driving the 0-1 transition also couples to level 2 ("leakage"), separated
only by the anharmonicity ``alpha``.  This extension models each qubit as
a qutrit, optimizes pulses on the full 3^n-dimensional space toward a
target embedded in the computational subspace, and reports the residual
leakage — the standard refinement on top of the paper's two-level GRAPE
(and the reason real single-qubit gates cannot be arbitrarily fast).

The subspace objective follows the usual recipe: maximize
``|tr(P V^dag U P)| / d`` where ``P`` projects onto the computational
basis states, so population that leaks out of the subspace is penalized
automatically.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import minimize

from repro.config import HardwareConfig, QOCConfig
from repro.exceptions import QOCError

__all__ = ["ThreeLevelTransmon", "LeakageResult", "grape_three_level"]


def _annihilation(levels: int = 3) -> np.ndarray:
    a = np.zeros((levels, levels), dtype=complex)
    for n in range(1, levels):
        a[n - 1, n] = np.sqrt(n)
    return a


def _embed_qutrit(op: np.ndarray, target: int, num_qubits: int) -> np.ndarray:
    factors = [np.eye(3, dtype=complex)] * num_qubits
    factors[target] = op
    result = np.eye(1, dtype=complex)
    for f in factors:
        result = np.kron(result, f)
    return result


@dataclass(frozen=True)
class ThreeLevelTransmon:
    """A chain of three-level transmons in the rotating frame.

    Drift: per-qubit anharmonicity ``alpha/2 * n(n-1)`` plus
    nearest-neighbour exchange; controls: X/Y drives through the full
    ladder operator (which is what physically couples to level 2).
    """

    num_qubits: int
    anharmonicity: float = -1.3  # rad/ns (~ -200 MHz * 2pi)
    config: HardwareConfig = HardwareConfig()

    def __post_init__(self):
        if self.num_qubits < 1:
            raise QOCError("need at least one transmon")

    @property
    def dim(self) -> int:
        return 3**self.num_qubits

    def drift(self) -> np.ndarray:
        a = _annihilation()
        number = a.conj().T @ a
        anharm = 0.5 * self.anharmonicity * (number @ number - number)
        h0 = np.zeros((self.dim, self.dim), dtype=complex)
        for q in range(self.num_qubits):
            h0 += _embed_qutrit(anharm, q, self.num_qubits)
        for q in range(self.num_qubits - 1):
            left = _embed_qutrit(a, q, self.num_qubits)
            right = _embed_qutrit(a, q + 1, self.num_qubits)
            h0 += self.config.coupling * (
                left.conj().T @ right + right.conj().T @ left
            )
        return h0

    def controls(self) -> Tuple[List[np.ndarray], List[str]]:
        a = _annihilation()
        x_drive = (a + a.conj().T) / 2.0
        y_drive = (1j * (a.conj().T - a)) / 2.0
        matrices, labels = [], []
        for q in range(self.num_qubits):
            matrices.append(_embed_qutrit(x_drive, q, self.num_qubits))
            labels.append(f"X{q}")
            matrices.append(_embed_qutrit(y_drive, q, self.num_qubits))
            labels.append(f"Y{q}")
        return matrices, labels

    def computational_indices(self) -> List[int]:
        """Indices of basis states with every transmon in {0, 1}."""
        indices = []
        for bits in itertools.product((0, 1), repeat=self.num_qubits):
            index = 0
            for b in bits:
                index = index * 3 + b
            indices.append(index)
        return indices


@dataclass(frozen=True)
class LeakageResult:
    """Outcome of a three-level GRAPE run."""

    controls: np.ndarray
    fidelity: float
    leakage: float
    iterations: int
    converged: bool
    dt: float

    @property
    def duration(self) -> float:
        return self.controls.shape[1] * self.dt


def grape_three_level(
    target: np.ndarray,
    hardware: ThreeLevelTransmon,
    num_segments: int,
    config: Optional[QOCConfig] = None,
    initial_controls: Optional[np.ndarray] = None,
) -> LeakageResult:
    """GRAPE on the qutrit chain with a computational-subspace objective.

    ``target`` is the desired ``2^n x 2^n`` unitary on the computational
    subspace.  Returns the achieved subspace fidelity and the average
    leakage (population escaping the subspace when starting inside it).
    """
    config = config or QOCConfig()
    target = np.asarray(target, dtype=complex)
    n = hardware.num_qubits
    if target.shape != (2**n, 2**n):
        raise QOCError(
            f"target shape {target.shape} does not match {n} transmons"
        )
    if num_segments < 1:
        raise QOCError("num_segments must be >= 1")
    drift = hardware.drift()
    controls_h, _ = hardware.controls()
    num_controls = len(controls_h)
    comp = hardware.computational_indices()
    dim_sub = len(comp)
    dt = config.dt

    rng = np.random.default_rng(config.seed)
    if initial_controls is not None:
        u0 = np.array(initial_controls, dtype=float)
        if u0.shape != (num_controls, num_segments):
            raise QOCError("initial_controls shape mismatch")
    else:
        u0 = rng.uniform(-0.05, 0.05, size=(num_controls, num_segments))

    target_dag = target.conj().T
    evals = [0]
    stack = np.stack(controls_h)

    def propagate_full(u: np.ndarray) -> np.ndarray:
        hams = drift[None] + np.einsum("kt,kij->tij", u, stack)
        lams, qs = np.linalg.eigh(hams)
        phases = np.exp(-1j * dt * lams)
        props = (qs * phases[:, None, :]) @ np.conj(np.swapaxes(qs, 1, 2))
        total = np.eye(hardware.dim, dtype=complex)
        for p in props:
            total = p @ total
        return total

    def objective(x: np.ndarray) -> float:
        evals[0] += 1
        total = propagate_full(x.reshape(num_controls, num_segments))
        block = total[np.ix_(comp, comp)]
        overlap = np.trace(target_dag @ block)
        return 1.0 - abs(overlap) / dim_sub

    result = minimize(
        objective,
        u0.ravel(),
        method="L-BFGS-B",
        bounds=[(-config.max_amplitude, config.max_amplitude)]
        * (num_controls * num_segments),
        options={"maxiter": config.max_iterations, "ftol": 1e-12},
    )
    u_final = result.x.reshape(num_controls, num_segments)
    total = propagate_full(u_final)
    block = total[np.ix_(comp, comp)]
    overlap = np.trace(target_dag @ block)
    fidelity = float(abs(overlap) ** 2 / dim_sub**2)
    # leakage: average population leaving the computational subspace
    columns = total[:, comp]
    inside = np.sum(np.abs(columns[comp, :]) ** 2, axis=0)
    leakage = float(np.mean(1.0 - inside))
    return LeakageResult(
        controls=u_final,
        fidelity=fidelity,
        leakage=leakage,
        iterations=evals[0],
        converged=fidelity >= config.fidelity_threshold,
        dt=dt,
    )

"""Minimal-duration pulse search (the AccQOC-style binary search).

For a target unitary, find the shortest piecewise-constant pulse that
reaches the configured fidelity threshold: double the segment count until
GRAPE converges, then binary-search between the last failure and the first
success.  Successful solutions warm-start neighbouring durations, which
cuts the total GRAPE iteration count substantially.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro import telemetry
from repro.config import QOCConfig
from repro.exceptions import QOCError
from repro.linalg.unitary import global_phase_align
from repro.qoc.grape import GrapeResult, grape_optimize
from repro.qoc.hamiltonian import TransmonChain
from repro.qoc.pulse import Pulse

__all__ = [
    "minimal_latency_pulse",
    "estimate_initial_segments",
    "pulse_for_unitary",
]

logger = telemetry.get_logger("qoc.latency")


def estimate_initial_segments(
    target: np.ndarray, hardware: TransmonChain, config: QOCConfig
) -> int:
    """A physics-motivated starting point for the duration search.

    Single-qubit content is fast (amplitude-limited); entangling content
    is paced by the chain coupling ``g`` (a CNOT-class interaction needs
    roughly ``pi / (2g)`` nanoseconds).  We start one rung *below* the
    estimate so the doubling phase brackets the true minimum.
    """
    num_qubits = hardware.num_qubits
    one_qubit_ns = math.pi / config.max_amplitude
    entangle_ns = math.pi / (2.0 * hardware.config.coupling)
    guess_ns = one_qubit_ns + (num_qubits - 1) * 0.5 * entangle_ns
    segments = max(config.min_segments, int(guess_ns / config.dt / 2.0))
    return min(segments, config.max_segments)


def pulse_for_unitary(
    matrix: np.ndarray, num_qubits: int, config: Optional[QOCConfig] = None
) -> Pulse:
    """Solve one pulse-library-style QOC problem on local wires 0..n-1.

    This is the process-pool work unit used by :mod:`repro.parallel`: it
    rebuilds the default :class:`TransmonChain` exactly as
    ``PulseLibrary.hardware_for`` does, so a worker's pulse is
    bit-for-bit identical to the one the serial path would have cached.
    """
    num_qubits = int(num_qubits)
    return minimal_latency_pulse(
        np.asarray(matrix, dtype=complex),
        tuple(range(num_qubits)),
        config=config,
        hardware=TransmonChain(num_qubits),
    )


def minimal_latency_pulse(
    target: np.ndarray,
    qubits: Tuple[int, ...],
    config: Optional[QOCConfig] = None,
    hardware: Optional[TransmonChain] = None,
) -> Pulse:
    """Find the shortest pulse implementing ``target`` on ``qubits``.

    Raises :class:`QOCError` when even the maximum allowed duration cannot
    reach the fidelity threshold (callers should treat this as a sign that
    the regrouped unitary is too large for the hardware budget).
    """
    config = config or QOCConfig()
    target = np.asarray(target, dtype=complex)
    num_qubits = len(qubits)
    if target.shape != (2**num_qubits, 2**num_qubits):
        raise QOCError(
            f"target of shape {target.shape} does not act on {num_qubits} qubits"
        )
    hardware = hardware or TransmonChain(num_qubits)
    metrics = telemetry.get_metrics()

    with telemetry.get_tracer().span(
        "qoc.pulse_search", qubits=num_qubits
    ) as search_span:
        # phase 1: double until success
        segments = estimate_initial_segments(target, hardware, config)
        best: Optional[GrapeResult] = None
        last_fail = 0
        warm: Optional[np.ndarray] = None
        while segments <= config.max_segments:
            metrics.inc("qoc.search_probes")
            result = grape_optimize(
                target, hardware, segments, config=config, initial_controls=warm
            )
            warm = result.controls
            if result.converged:
                best = result
                break
            last_fail = segments
            segments *= 2
        if best is None:
            # one last attempt at the hard cap
            if last_fail < config.max_segments:
                metrics.inc("qoc.search_probes")
                result = grape_optimize(
                    target, hardware, config.max_segments, config=config,
                    initial_controls=warm,
                )
                if result.converged:
                    best = result
                    segments = config.max_segments
            if best is None:
                metrics.inc("qoc.search_failures")
                raise QOCError(
                    f"no pulse under {config.max_segments * config.dt:.0f} ns reached "
                    f"fidelity {config.fidelity_threshold} for a {num_qubits}-qubit target"
                )

        # phase 2: binary search between last failure and the success
        low, high = last_fail, segments
        best_result = best
        while high - low > max(1, int(0.1 * high)):
            mid = (low + high) // 2
            metrics.inc("qoc.search_probes")
            metrics.inc("qoc.binary_search_steps")
            result = grape_optimize(
                target,
                hardware,
                mid,
                config=config,
                initial_controls=best_result.controls,
            )
            if result.converged:
                best_result = result
                high = mid
            else:
                low = mid

        search_span.set(
            segments=best_result.controls.shape[1],
            duration_ns=best_result.duration,
            fidelity=round(best_result.fidelity, 6),
        )

    metrics.observe("qoc.pulse_duration_ns", best_result.duration)
    metrics.observe("qoc.pulse_segments", best_result.controls.shape[1])
    logger.info(
        "pulse search: %d-qubit target -> %.1f ns at fidelity %.4f",
        num_qubits,
        best_result.duration,
        best_result.fidelity,
    )
    achieved = global_phase_align(target, best_result.final_unitary)
    distance = float(np.linalg.norm(target - achieved, ord=2))
    return Pulse(
        qubits=tuple(qubits),
        controls=best_result.controls,
        dt=config.dt,
        fidelity=best_result.fidelity,
        unitary_distance=distance,
        source="grape",
    )

"""Minimal-duration pulse search (the AccQOC-style binary search).

For a target unitary, find the shortest piecewise-constant pulse that
reaches the configured fidelity threshold: double the segment count until
GRAPE converges, then binary-search between the last failure and the first
success.  Successful solutions warm-start neighbouring durations, which
cuts the total GRAPE iteration count substantially.

The search is resilience-aware (see :mod:`repro.resilience`): it honours
a cooperative wall-clock :class:`~repro.resilience.policy.Deadline`,
re-attempts the hard cap with fresh seeds under a
:class:`~repro.resilience.policy.RetryPolicy`, and — when the caller's
:class:`~repro.config.ResilienceConfig` allows it — returns the best
non-converged pulse (``source="grape-degraded"``) instead of raising,
so one stubborn block degrades gracefully instead of aborting a whole
compilation.
"""

from __future__ import annotations

import math
import time
from dataclasses import replace
from typing import Dict, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.config import QOCConfig, ResilienceConfig
from repro.exceptions import QOCError
from repro.linalg.unitary import global_phase_align
from repro.qoc.grape import (
    GrapeResult,
    _resample_controls,
    grape_optimize,
    propagate,
)
from repro.qoc.hamiltonian import TransmonChain
from repro.qoc.pulse import Pulse
from repro.racing.cancel import CancelToken, cooperative_stall, poll_cancellation
from repro.resilience.faults import fault_fires
from repro.resilience.policy import Deadline, RetryPolicy

__all__ = [
    "minimal_latency_pulse",
    "estimate_initial_segments",
    "pulse_for_unitary",
]

logger = telemetry.get_logger("qoc.latency")


def estimate_initial_segments(
    target: np.ndarray, hardware: TransmonChain, config: QOCConfig
) -> int:
    """A physics-motivated starting point for the duration search.

    Single-qubit content is fast (amplitude-limited); entangling content
    is paced by the chain coupling ``g`` (a CNOT-class interaction needs
    roughly ``pi / (2g)`` nanoseconds).  We start one rung *below* the
    estimate so the doubling phase brackets the true minimum.

    ``min_segments <= max_segments`` is validated when the
    :class:`~repro.config.QOCConfig` is constructed, so the clamp here
    only ever trims a too-large physics estimate to the hard cap.
    """
    num_qubits = hardware.num_qubits
    one_qubit_ns = math.pi / config.max_amplitude
    entangle_ns = math.pi / (2.0 * hardware.config.coupling)
    guess_ns = one_qubit_ns + (num_qubits - 1) * 0.5 * entangle_ns
    segments = max(config.min_segments, int(guess_ns / config.dt / 2.0))
    return min(segments, config.max_segments)


def _search_start_segments(
    target: np.ndarray,
    hardware: TransmonChain,
    config: QOCConfig,
    warm_segments: Optional[int] = None,
) -> int:
    """Where the doubling phase starts probing.

    A warm-started search trusts the neighbour's recorded duration (its
    own binary search already certified it as near-minimal for a unitary
    within ``warm_start_max_distance``); a cold search falls back to the
    physics estimate.
    """
    if warm_segments is not None:
        segments = max(int(warm_segments), config.min_segments)
        return min(segments, config.max_segments)
    return estimate_initial_segments(target, hardware, config)


def _initial_probe_controls(
    config: QOCConfig,
    num_controls: int,
    num_segments: int,
    warm_controls: Optional[np.ndarray],
) -> np.ndarray:
    """The exact controls the first bracket probe starts from.

    Mirrors ``grape_optimize``'s seeding bit-for-bit — the batched
    bracket-probe pre-pass (:mod:`repro.qoc.batched`) reproduces the
    first evaluation point with this helper, and its precomputed
    eigendecomposition is only used when the optimizer's own first point
    matches it exactly.
    """
    if warm_controls is not None:
        warm = np.asarray(warm_controls, dtype=float)
        if warm.shape == (num_controls, num_segments):
            return warm.copy()
        return _resample_controls(warm, num_segments)
    rng = np.random.default_rng(config.seed)
    return rng.uniform(-0.1, 0.1, size=(num_controls, num_segments))


def pulse_for_unitary(
    matrix: np.ndarray,
    num_qubits: int,
    config: Optional[QOCConfig] = None,
    resilience: Optional[ResilienceConfig] = None,
    warm_controls: Optional[np.ndarray] = None,
    first_probe_eig=None,
    racing=None,
) -> Pulse:
    """Solve one pulse-library-style QOC problem on local wires 0..n-1.

    This is the process-pool work unit used by :mod:`repro.parallel`: it
    rebuilds the default :class:`TransmonChain` exactly as
    ``PulseLibrary.hardware_for`` does, so a worker's pulse is
    bit-for-bit identical to the one the serial path would have cached.
    ``warm_controls`` / ``first_probe_eig`` pass straight through to
    :func:`minimal_latency_pulse`.  An *active* ``racing``
    (:class:`~repro.config.RacingConfig`) routes the search through the
    hedged GRAPE-restart portfolio instead (see :mod:`repro.racing`).
    """
    num_qubits = int(num_qubits)
    matrix = np.asarray(matrix, dtype=complex)
    if racing is not None and racing.active:
        from repro.racing.portfolios import raced_minimal_latency_pulse

        return raced_minimal_latency_pulse(
            matrix,
            tuple(range(num_qubits)),
            config=config,
            hardware=TransmonChain(num_qubits),
            resilience=resilience,
            racing=racing,
            warm_controls=warm_controls,
            first_probe_eig=first_probe_eig,
        )
    return minimal_latency_pulse(
        matrix,
        tuple(range(num_qubits)),
        config=config,
        hardware=TransmonChain(num_qubits),
        resilience=resilience,
        warm_controls=warm_controls,
        first_probe_eig=first_probe_eig,
    )


def _observe_search_iterations(
    metrics, warm_seeded: bool, iterations: int
) -> None:
    """Record a whole search's GRAPE iteration total, split by seeding.

    The warm/cold split is what ``bench_warm_start`` (and any dashboard
    over the run ledger) compares to quantify iterations saved by
    library-neighbour seeding.
    """
    metrics.observe("qoc.search_iterations", iterations)
    name = (
        "qoc.search_iterations_warm"
        if warm_seeded
        else "qoc.search_iterations_cold"
    )
    metrics.observe(name, iterations)


def _finish_pulse(
    result: GrapeResult,
    qubits: Tuple[int, ...],
    target: np.ndarray,
    config: QOCConfig,
    source: str = "grape",
) -> Pulse:
    """Package a GRAPE result as the search's returned pulse."""
    achieved = global_phase_align(target, result.final_unitary)
    distance = float(np.linalg.norm(target - achieved, ord=2))
    return Pulse(
        qubits=tuple(qubits),
        controls=result.controls,
        dt=config.dt,
        fidelity=result.fidelity,
        unitary_distance=distance,
        source=source,
    )


def minimal_latency_pulse(
    target: np.ndarray,
    qubits: Tuple[int, ...],
    config: Optional[QOCConfig] = None,
    hardware: Optional[TransmonChain] = None,
    resilience: Optional[ResilienceConfig] = None,
    deadline: Optional[Deadline] = None,
    warm_controls: Optional[np.ndarray] = None,
    first_probe_eig=None,
    cancel: Optional[CancelToken] = None,
) -> Pulse:
    """Find the shortest pulse implementing ``target`` on ``qubits``.

    Raises :class:`QOCError` when even the maximum allowed duration cannot
    reach the fidelity threshold — unless ``resilience`` permits
    degradation, in which case the best-effort pulse comes back with
    ``source="grape-degraded"`` and the caller records the fidelity
    deficit on its ledger.  ``deadline`` (defaulting to
    ``resilience.qoc_timeout_seconds``) bounds the wall-clock spent on
    this one search; probes stop at expiry and the best result so far
    wins.

    ``warm_controls`` — a near-neighbour's solved waveform (see
    ``PulseLibrary.nearest``) — seeds both the search bracket (the first
    probe runs at the neighbour's segment count instead of the cold
    physics estimate) and GRAPE's initial controls (resampled on segment
    mismatch).  ``first_probe_eig`` optionally carries the first probe's
    precomputed slot eigendecomposition from the batched pre-pass
    (:mod:`repro.qoc.batched`).

    ``cancel`` makes every GRAPE probe a cooperative cancellation point:
    a raced search that lost unwinds with
    :class:`~repro.exceptions.RaceCancelled` before its next probe
    instead of running to completion.
    """
    config = config or QOCConfig()
    target = np.asarray(target, dtype=complex)
    num_qubits = len(qubits)
    if target.shape != (2**num_qubits, 2**num_qubits):
        raise QOCError(
            f"target of shape {target.shape} does not act on {num_qubits} qubits"
        )
    hardware = hardware or TransmonChain(num_qubits)
    metrics = telemetry.get_metrics()
    if deadline is None:
        deadline = Deadline(
            resilience.qoc_timeout_seconds if resilience is not None else None
        )
    cooperative_stall(
        "qoc.stall",
        cancel=cancel,
        deadline=deadline,
        qubits=num_qubits,
        seed=config.seed,
    )
    forced_fail = fault_fires("qoc.no_converge", qubits=num_qubits)
    warm_seeded = warm_controls is not None
    if warm_seeded:
        warm_controls = np.asarray(warm_controls, dtype=float)
        metrics.inc("grape.warm_started")

    # every probed segment count and its result: the binary search never
    # re-runs GRAPE for a count it has already seen
    probed: Dict[int, GrapeResult] = {}
    best_attempt: Optional[GrapeResult] = None
    search_iterations = [0]

    def probe(
        segment_count: int,
        probe_config: QOCConfig,
        initial_controls: Optional[np.ndarray],
        first_eig=None,
    ) -> GrapeResult:
        nonlocal best_attempt
        # cooperative cancellation point: a raced search that lost (or a
        # cancelled service job) stops here, before spending another full
        # GRAPE optimization
        poll_cancellation(cancel)
        metrics.inc("qoc.search_probes")
        result = grape_optimize(
            target,
            hardware,
            segment_count,
            config=probe_config,
            initial_controls=initial_controls,
            first_eig=first_eig,
        )
        search_iterations[0] += result.iterations
        if forced_fail and result.converged:
            # an injected non-convergence must look like a real one all
            # the way down to the waveform: attenuate the controls and
            # re-derive what they actually implement, so checks that
            # recompute the propagator see the same miss the metadata
            # reports (the clamp keeps the deficit visible even if the
            # attenuated pulse lands unreasonably close to the target)
            controls = result.controls * 0.5
            controls_h, _ = hardware.controls()
            final = propagate(
                hardware.drift(), controls_h, controls, probe_config.dt
            )
            overlap = np.trace(target.conj().T @ final)
            achieved = float(abs(overlap) ** 2 / target.shape[0] ** 2)
            result = replace(
                result,
                converged=False,
                controls=controls,
                final_unitary=final,
                fidelity=min(
                    achieved, probe_config.fidelity_threshold - 1e-6
                ),
            )
        probed[segment_count] = result
        if best_attempt is None or result.fidelity > best_attempt.fidelity:
            best_attempt = result
        return result

    with telemetry.get_tracer().span(
        "qoc.pulse_search", qubits=num_qubits, warm=warm_seeded
    ) as search_span:
        # phase 1: double until success, starting from the neighbour's
        # segment count when warm-seeded (cold: the physics estimate)
        initial = _search_start_segments(
            target,
            hardware,
            config,
            warm_controls.shape[1] if warm_seeded else None,
        )
        segments = initial
        best: Optional[GrapeResult] = None
        last_fail = 0
        warm: Optional[np.ndarray] = warm_controls
        first_eig = first_probe_eig
        timed_out = False
        while segments <= config.max_segments:
            result = probe(segments, config, warm, first_eig=first_eig)
            first_eig = None
            warm = result.controls
            if result.converged:
                best = result
                break
            last_fail = segments
            if forced_fail:
                break  # injected fault: behave as if no duration converges
            if deadline.expired:
                timed_out = True
                break
            segments *= 2

        if best is None and not timed_out:
            # one last attempt at the hard cap ...
            if last_fail < config.max_segments and config.max_segments not in probed:
                result = probe(config.max_segments, config, warm)
                if result.converged:
                    best = result
                    segments = config.max_segments
            # ... then reseeded retries under the resilience policy: a
            # non-convergence can be an unlucky random initialization, so
            # each retry restarts from a fresh seed instead of the stuck
            # warm-start controls
            attempt = 1
            for delay in RetryPolicy.from_config(resilience).delays():
                if best is not None or deadline.expired:
                    break
                metrics.inc("resilience.retries")
                logger.warning(
                    "pulse search retry %d for a %d-qubit target (seed %d)",
                    attempt,
                    num_qubits,
                    config.seed + attempt,
                )
                if delay > 0.0:
                    time.sleep(delay)
                result = probe(
                    config.max_segments,
                    replace(config, seed=config.seed + attempt),
                    None,
                )
                if result.converged:
                    best = result
                    segments = config.max_segments
                attempt += 1

        if best is None:
            metrics.inc("qoc.search_failures")
            if timed_out:
                metrics.inc("resilience.timeouts")
            reason = "wall-clock budget expired" if timed_out else (
                f"no pulse under {config.max_segments * config.dt:.0f} ns"
            )
            allow_degraded = (
                resilience is not None and resilience.degrade_on_qoc_failure
            )
            if allow_degraded and best_attempt is not None:
                metrics.inc("resilience.degraded_pulses")
                _observe_search_iterations(
                    metrics, warm_seeded, search_iterations[0]
                )
                search_span.set(
                    degraded=True, fidelity=round(best_attempt.fidelity, 6)
                )
                logger.warning(
                    "%s reached fidelity %.6f < %s for a %d-qubit target; "
                    "keeping the best-effort pulse",
                    reason,
                    best_attempt.fidelity,
                    config.fidelity_threshold,
                    num_qubits,
                )
                return _finish_pulse(
                    best_attempt, qubits, target, config, source="grape-degraded"
                )
            raise QOCError(
                f"{reason}: fidelity {config.fidelity_threshold} unreachable "
                f"for a {num_qubits}-qubit target"
            )

        # phase 2: binary search between last failure and the success
        if last_fail == 0:
            # The very first probe converged, so no failing duration
            # brackets the search from below.  Cold: durations under the
            # physics estimate are physically implausible.  Warm: the
            # neighbour's own search already certified its segment count
            # as near-minimal, and the target sits within
            # warm_start_max_distance of it — either way, seed the lower
            # bound at the start instead of at 0 so GRAPE probes are not
            # burned on hopeless segment counts.  (A warm search whose
            # first probe converges therefore ends at the neighbour's
            # duration: high == low, no refinement below the bracket.)
            low = initial
        else:
            low = last_fail
        high = segments
        best_result = best
        while high - low > max(1, int(0.1 * high)):
            mid = (low + high) // 2
            cached = probed.get(mid)
            if cached is not None:
                # the doubling phase already answered this segment count
                if cached.converged:
                    best_result = cached
                    high = mid
                else:
                    low = mid
                continue
            if deadline.expired:
                metrics.inc("resilience.timeouts")
                logger.info(
                    "pulse search budget expired mid refinement; keeping "
                    "%d segments",
                    best_result.controls.shape[1],
                )
                break
            metrics.inc("qoc.binary_search_steps")
            result = probe(mid, config, best_result.controls)
            if result.converged:
                best_result = result
                high = mid
            else:
                low = mid

        search_span.set(
            segments=best_result.controls.shape[1],
            duration_ns=best_result.duration,
            fidelity=round(best_result.fidelity, 6),
        )

    metrics.observe("qoc.pulse_duration_ns", best_result.duration)
    metrics.observe("qoc.pulse_segments", best_result.controls.shape[1])
    _observe_search_iterations(metrics, warm_seeded, search_iterations[0])
    logger.info(
        "pulse search: %d-qubit target -> %.1f ns at fidelity %.4f",
        num_qubits,
        best_result.duration,
        best_result.fidelity,
    )
    return _finish_pulse(best_result, qubits, target, config)

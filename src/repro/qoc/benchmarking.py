"""Randomized benchmarking (RB) of GRAPE pulses.

The paper's companion work (Cheng et al., 2023, cited in the
introduction) benchmarks quantum *pulses* with fidelity estimators and
randomized benchmarking; this module implements standard single-qubit RB
on top of the pulse library: random Clifford sequences are compiled to
their optimized pulses, the *achieved* (imperfect) unitaries are composed
with an exact inversion gate, and the survival probability decay over
sequence length yields the average error per Clifford.

For a depolarizing-like error model the survival probability follows
``p(m) = A * alpha^m + B`` and the error per Clifford is
``r = (1 - alpha) / 2`` (for a qubit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.config import QOCConfig
from repro.exceptions import QOCError
from repro.circuits.gates import gate_matrix
from repro.qoc.hamiltonian import TransmonChain
from repro.qoc.grape import propagate
from repro.qoc.library import PulseLibrary

__all__ = ["RBResult", "single_qubit_cliffords", "randomized_benchmarking"]


def single_qubit_cliffords() -> List[np.ndarray]:
    """The 24 single-qubit Clifford unitaries (up to global phase).

    Generated as the closure of {H, S} with deduplication up to phase.
    """
    h = gate_matrix("h")
    s = gate_matrix("s")
    found: List[np.ndarray] = [np.eye(2, dtype=complex)]

    def canonical_key(u: np.ndarray) -> bytes:
        # rotate out the phase using the FIRST non-negligible entry; the
        # position is phase-invariant (unlike argmax over equal magnitudes)
        flat = u.ravel()
        pivot = flat[np.flatnonzero(np.abs(flat) > 1e-6)[0]]
        aligned = np.round(u * (abs(pivot) / pivot), 8)
        aligned = (aligned.real + 0.0) + 1j * (aligned.imag + 0.0)
        return aligned.tobytes()

    seen = {canonical_key(found[0])}
    frontier = [found[0]]
    while frontier:
        next_frontier = []
        for u in frontier:
            for g in (h, s):
                candidate = g @ u
                key = canonical_key(candidate)
                if key not in seen:
                    seen.add(key)
                    found.append(candidate)
                    next_frontier.append(candidate)
        frontier = next_frontier
    if len(found) != 24:  # pragma: no cover - algebra guarantees 24
        raise QOCError(f"Clifford closure produced {len(found)} elements")
    return found


@dataclass(frozen=True)
class RBResult:
    """Fitted randomized-benchmarking outcome."""

    sequence_lengths: Tuple[int, ...]
    survival_probabilities: Tuple[float, ...]
    decay_rate: float  # alpha in A*alpha^m + B
    error_per_clifford: float

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RBResult(alpha={self.decay_rate:.5f}, "
            f"error_per_clifford={self.error_per_clifford:.2e})"
        )


def randomized_benchmarking(
    library: Optional[PulseLibrary] = None,
    config: Optional[QOCConfig] = None,
    sequence_lengths: Sequence[int] = (1, 2, 4, 8, 16),
    samples_per_length: int = 8,
    seed: int = 99,
) -> RBResult:
    """Run single-qubit RB over the library's optimized pulses.

    Each random Clifford in a sequence is realized by its GRAPE pulse (via
    the library) and the *achieved* propagator — imperfections included —
    is used; the exact inverse closes the sequence, and the |0> survival
    probability is averaged over random sequences.
    """
    config = config or QOCConfig()
    library = library or PulseLibrary(config=config)
    hardware = library.hardware_for(1)
    drift = hardware.drift()
    controls_h, _ = hardware.controls()
    cliffords = single_qubit_cliffords()

    # realize every Clifford once; cache its achieved unitary
    achieved: List[np.ndarray] = []
    for target in cliffords:
        pulse = library.get_pulse(target, (0,))
        achieved.append(propagate(drift, controls_h, pulse.controls, pulse.dt))

    rng = np.random.default_rng(seed)
    lengths = tuple(int(m) for m in sequence_lengths)
    survivals: List[float] = []
    zero = np.array([1.0, 0.0], dtype=complex)
    for m in lengths:
        total = 0.0
        for _ in range(samples_per_length):
            indices = rng.integers(len(cliffords), size=m)
            ideal = np.eye(2, dtype=complex)
            state = zero.copy()
            for index in indices:
                state = achieved[index] @ state
                ideal = cliffords[index] @ ideal
            state = ideal.conj().T @ state  # exact inversion
            total += float(abs(state[0]) ** 2)
        survivals.append(total / samples_per_length)

    alpha = _fit_decay(lengths, survivals)
    return RBResult(
        sequence_lengths=lengths,
        survival_probabilities=tuple(survivals),
        decay_rate=alpha,
        error_per_clifford=(1.0 - alpha) / 2.0,
    )


def _fit_decay(lengths: Sequence[int], survivals: Sequence[float]) -> float:
    """Fit ``p(m) = A alpha^m + B`` with B fixed at the 1/2 mixing floor."""
    floor = 0.5
    ys = np.asarray(survivals, dtype=float) - floor
    ms = np.asarray(lengths, dtype=float)
    mask = ys > 1e-9
    if mask.sum() < 2:
        return 0.0
    slope, _ = np.polyfit(ms[mask], np.log(ys[mask]), 1)
    return float(min(np.exp(slope), 1.0))

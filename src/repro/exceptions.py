"""Typed exception hierarchy for the repro (EPOC) library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CircuitError(ReproError):
    """Raised for malformed circuits: bad qubit indices, arity mismatches."""


class QasmError(ReproError):
    """Raised when OpenQASM 2.0 input cannot be parsed or is unsupported."""


class ZXError(ReproError):
    """Raised for invalid ZX-diagram operations or failed extraction."""


class PartitionError(ReproError):
    """Raised when a circuit cannot be partitioned under the given limits."""


class SynthesisError(ReproError):
    """Raised when circuit synthesis fails to reach the accuracy target."""


class QOCError(ReproError):
    """Raised for quantum-optimal-control failures (bad Hamiltonian sizes,
    non-convergent pulse searches when ``strict`` is requested, ...)."""


class ResilienceError(ReproError):
    """Raised by the fault-tolerance layer (unsafe resume requests,
    exhausted retry budgets when no fallback is allowed, ...)."""


class RaceCancelled(ReproError):
    """Raised *inside* a racing strategy thread when its
    :class:`~repro.racing.cancel.CancelToken` is set: the cooperative
    loops (QSearch expansion, LEAP level growth, GRAPE probes) poll the
    token and unwind with this exception so a losing strategy stops
    burning CPU.  It deliberately does **not** derive from
    :class:`SynthesisError`/:class:`QOCError` so retry wrappers that
    catch those let a cancellation propagate immediately."""


class StoreBusyError(ReproError):
    """A shared pulse-library store stayed locked past the caller's
    timeout (flock contention on the JSON backend, ``database is
    locked`` on SQLite).  Carries the best-effort pid of the holder so a
    stuck service operator knows *which* process to look at.

    The timeout is configurable per call site (``--store-timeout`` /
    ``REPRO_STORE_TIMEOUT``); see :func:`repro.db.open_store`.
    """

    def __init__(
        self,
        message: str,
        path: str = "",
        holder_pid: "int | None" = None,
        timeout_seconds: "float | None" = None,
    ):
        super().__init__(message)
        self.path = path
        self.holder_pid = holder_pid
        self.timeout_seconds = timeout_seconds


class VerificationError(ReproError):
    """Raised in ``strict`` verification mode when a stage-boundary
    equivalence check fails or the end-to-end error budget is exceeded.
    The message always names the stage (and block, when one is
    implicated) so the failure is actionable."""


class ScheduleError(ReproError):
    """Raised when a pulse schedule is inconsistent (overlapping pulses on
    one qubit line, negative times, unknown qubits)."""

"""Configuration objects for the EPOC pipeline and its QOC backend.

The defaults are sized for a laptop-scale simulation substrate: partition
blocks of up to 3 qubits and regrouped unitaries of up to 3 qubits keep
every GRAPE problem at dimension <= 8.  The paper ran blocks of up to 8
qubits on a 8x32-core cluster; the pipeline is identical, only the
affordable unitary dimension differs (see DESIGN.md, Section 2).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

#: environment variable consulted when ``ParallelConfig.workers`` is unset.
ENV_WORKERS = "REPRO_WORKERS"

#: environment variable consulted when ``VerifyConfig.mode`` is unset.
ENV_VERIFY = "REPRO_VERIFY"

#: environment variable consulted when ``ObsConfig.ledger`` is unset; a
#: truthy value or a path enables run-ledger recording (see
#: :mod:`repro.obs.ledger`, which owns path resolution).
ENV_LEDGER = "REPRO_LEDGER"

#: environment variable consulted when ``RacingConfig.enabled`` is unset;
#: a truthy value ("1", "true", ...) turns strategy racing on.
ENV_RACE = "REPRO_RACE"

#: accepted stage-boundary verification modes.
VERIFY_MODES = ("off", "warn", "strict")

#: accepted racing winner-selection modes (see :mod:`repro.racing`).
RACE_MODES = ("deterministic", "latency")

#: accepted GRAPE objective kernels (see :mod:`repro.qoc.grape`).
QOC_KERNELS = ("fast", "reference")


@dataclass(frozen=True)
class QOCConfig:
    """Settings for the GRAPE optimal-control backend."""

    #: duration of one piecewise-constant pulse segment, in nanoseconds.
    dt: float = 0.5
    #: process-fidelity target for a pulse to be accepted.
    fidelity_threshold: float = 0.999
    #: maximum GRAPE iterations per candidate duration.
    max_iterations: int = 150
    #: smallest and largest candidate segment counts for the binary search.
    min_segments: int = 2
    max_segments: int = 400
    #: learning rate for the Adam updates inside GRAPE.
    learning_rate: float = 0.1
    #: maximum control amplitude (rad/ns) the hardware can drive.
    max_amplitude: float = 2.0
    #: random seed for pulse initialization (deterministic by default).
    seed: int = 7
    #: GRAPE objective kernel: "fast" uses log-depth propagator scans and
    #: a contraction that never materializes the ``(K, T, d, d)``
    #: control-in-eigenbasis tensor; "reference" keeps the original
    #: loop-based objective (bitwise-identical to pre-fast-path builds).
    #: The two agree to ~1e-14 but not bitwise (matmul reassociation).
    kernel: str = "fast"
    #: seed each pulse search from the library's nearest same-width entry
    #: (initial controls + duration bracket) instead of a cold start.
    warm_start: bool = True
    #: largest global-phase-invariant unitary distance (``hs_distance``,
    #: in [0, 1]) at which a library entry still counts as a neighbour.
    warm_start_max_distance: float = 0.15
    #: widen cache lookups beyond global phase: serve misses whose
    #: target is an exact transform (transpose, dagger, qubit reversal,
    #: ...) or tensor product of already-solved unitaries by deriving
    #: the pulse algebraically instead of re-running GRAPE.  Derived
    #: pulses are re-simulated and accepted only at
    #: :attr:`fidelity_threshold` (see :mod:`repro.db.equivalence`).
    equivalence_lookup: bool = True

    def __post_init__(self):
        # an inverted segment bracket used to be clamped silently inside
        # ``estimate_initial_segments``, which started the duration search
        # at the cap and skipped the doubling phase entirely — fail loudly
        # at construction instead.
        if self.min_segments < 1:
            raise ValueError(
                f"QOCConfig.min_segments must be >= 1, got {self.min_segments}"
            )
        if self.max_segments < self.min_segments:
            raise ValueError(
                f"QOCConfig.min_segments ({self.min_segments}) exceeds "
                f"max_segments ({self.max_segments}); the duration search "
                "needs a non-empty segment bracket"
            )
        if self.dt <= 0.0:
            raise ValueError(f"QOCConfig.dt must be positive, got {self.dt}")
        if self.kernel not in QOC_KERNELS:
            raise ValueError(
                f"QOCConfig.kernel must be one of {QOC_KERNELS}, "
                f"got {self.kernel!r}"
            )
        if self.warm_start_max_distance < 0.0:
            raise ValueError(
                "QOCConfig.warm_start_max_distance must be >= 0, got "
                f"{self.warm_start_max_distance}"
            )


@dataclass(frozen=True)
class HardwareConfig:
    """A synthetic transmon-chain hardware model.

    Angular frequencies are expressed in rad/ns (i.e. GHz * 2*pi).  The
    drift Hamiltonian is a nearest-neighbour exchange coupling in the
    rotating frame; each qubit has X and Y drive lines.
    """

    #: qubit-qubit exchange coupling strength (rad/ns).
    coupling: float = 0.05
    #: per-qubit anharmonicity-induced ZZ term (rad/ns), 0 disables it.
    zz_crosstalk: float = 0.0
    #: latency (ns) of a calibrated single-qubit basis-gate pulse.
    one_qubit_gate_ns: float = 25.0
    #: latency (ns) of a calibrated two-qubit basis-gate pulse (CX/CZ).
    two_qubit_gate_ns: float = 180.0
    #: latency (ns) of a calibrated three-qubit gate decomposition.
    three_qubit_gate_ns: float = 6 * 180.0 + 8 * 25.0
    #: unitary-distance error of a calibrated single-qubit pulse (feeds the
    #: ESP fidelity product of the gate-based baseline).
    one_qubit_gate_error: float = 2e-4
    #: unitary-distance error of a calibrated two-qubit pulse.
    two_qubit_gate_error: float = 4e-3
    #: unitary-distance error of a calibrated three-qubit decomposition.
    three_qubit_gate_error: float = 2.5e-2


@dataclass(frozen=True)
class ParallelConfig:
    """Multi-process execution of the synthesis and pulse-generation stages.

    ``workers=0`` is the serial fallback and reproduces the single-process
    pipeline exactly (same spans, same cache accounting).  Positive values
    spin up that many worker processes; ``-1`` uses every available core.
    ``workers=None`` (the default) consults the ``REPRO_WORKERS``
    environment variable and falls back to serial when it is unset.
    """

    #: worker processes: 0 = serial, -1 = all cores, None = env/serial.
    workers: Optional[int] = None
    #: tasks batched into one inter-process round-trip.
    chunk_size: int = 1
    #: below this many tasks the pool is skipped and work runs inline
    #: (a process round-trip costs more than a tiny task).
    min_tasks: int = 2

    def resolved_workers(self) -> int:
        """The effective worker count (explicit > env var > serial)."""
        workers = self.workers
        if workers is None:
            raw = os.environ.get(ENV_WORKERS, "").strip()
            try:
                workers = int(raw) if raw else 0
            except ValueError:
                raise ValueError(
                    f"{ENV_WORKERS} must be an integer, got {raw!r}"
                ) from None
        if workers < 0:
            workers = os.cpu_count() or 1
        return workers


@dataclass(frozen=True)
class ResilienceConfig:
    """Fault tolerance for the compilation flows (see README "Resilience").

    The defaults degrade gracefully: failed GRAPE searches retry with a
    fresh seed and then fall back to a best-effort pulse recorded on the
    report's fidelity ledger, and a crashed worker's chunk is retried
    serially in the parent while the rest of the batch continues.  Set
    ``degrade_on_qoc_failure=False`` to restore the strict behaviour
    (a :class:`~repro.exceptions.QOCError` aborts the compilation).
    """

    #: extra reseeded attempts after a GRAPE/QSearch failure (0 disables).
    max_retries: int = 1
    #: initial sleep before a retry; grows by ``retry_backoff_factor``.
    retry_backoff_seconds: float = 0.0
    retry_backoff_factor: float = 2.0
    #: wall-clock budget (seconds) for one pulse duration search;
    #: ``None`` means unlimited.
    qoc_timeout_seconds: Optional[float] = None
    #: wall-clock budget (seconds) for the whole synthesis stage; blocks
    #: past the deadline keep their basis-transpiled form.
    synthesis_timeout_seconds: Optional[float] = None
    #: keep the best-effort pulse (ledger entry) instead of raising when
    #: no duration converges.
    degrade_on_qoc_failure: bool = True
    #: pool rebuild + serial chunk retries tolerated per map call.
    worker_crash_retries: int = 1
    #: pulse-library checkpoint file; ``None`` disables checkpointing.
    checkpoint_path: Optional[str] = None
    #: completed blocks between incremental checkpoint flushes.
    checkpoint_every: int = 1
    #: preload the checkpoint (if present) before compiling.
    resume: bool = False

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("ResilienceConfig.max_retries must be >= 0")
        if self.worker_crash_retries < 0:
            raise ValueError(
                "ResilienceConfig.worker_crash_retries must be >= 0"
            )
        if self.checkpoint_every < 1:
            raise ValueError("ResilienceConfig.checkpoint_every must be >= 1")
        if self.resume and self.checkpoint_path is None:
            raise ValueError(
                "ResilienceConfig.resume requires a checkpoint_path"
            )


@dataclass(frozen=True)
class RacingConfig:
    """Hedged strategy racing (see :mod:`repro.racing`).

    When enabled, the sequential QSearch → LEAP → analytic fallback chain
    and the reseeded GRAPE restarts become concurrent *portfolios*: the
    primary strategy starts immediately, each lower-priority hedge only
    after ``hedge_delay_seconds`` (so the common fast case costs nothing
    extra), and a per-``(site, strategy, block-width)`` circuit breaker
    skips strategies that keep failing.  The default ``deterministic``
    mode ranks acceptable results by canonical strategy priority so
    racing changes wall-clock but never output; ``latency`` mode takes
    the first acceptable finisher.
    """

    #: turn racing on/off; ``None`` consults ``REPRO_RACE`` (off when
    #: unset) so batch jobs can opt in without config plumbing.
    enabled: Optional[bool] = None
    #: "deterministic" (priority-ranked winner, bitwise-stable output)
    #: or "latency" (first acceptable finisher wins).
    mode: str = "deterministic"
    #: how long a lower-priority hedge waits before starting; each hedge
    #: rank waits one more multiple of this.
    hedge_delay_seconds: float = 0.25
    #: wall-clock budget for one racing strategy attempt; ``None`` means
    #: the attempt only honours the stage/QOC deadlines it already has.
    strategy_timeout_seconds: Optional[float] = 30.0
    #: extra differently-seeded GRAPE restarts raced against the primary
    #: pulse search for hard QOC blocks (0 races the primary alone).
    qoc_restarts: int = 2
    #: consecutive failures that open a strategy's circuit breaker for a
    #: block signature (0 disables the breaker).
    breaker_failures: int = 3
    #: seconds an open breaker waits before letting one half-open probe
    #: attempt through.
    breaker_cooldown_seconds: float = 30.0
    #: after cancelling the losers, how long the race waits for their
    #: threads to unwind before abandoning them (they are daemonic and
    #: poll cancellation, so this is a bound, not a sleep).
    cancel_grace_seconds: float = 2.0

    def __post_init__(self):
        if self.mode not in RACE_MODES:
            raise ValueError(
                f"RacingConfig.mode must be one of {RACE_MODES}, "
                f"got {self.mode!r}"
            )
        if self.hedge_delay_seconds < 0.0:
            raise ValueError(
                "RacingConfig.hedge_delay_seconds must be >= 0"
            )
        if (
            self.strategy_timeout_seconds is not None
            and self.strategy_timeout_seconds <= 0.0
        ):
            raise ValueError(
                "RacingConfig.strategy_timeout_seconds must be positive"
            )
        if self.qoc_restarts < 0:
            raise ValueError("RacingConfig.qoc_restarts must be >= 0")
        if self.breaker_failures < 0:
            raise ValueError("RacingConfig.breaker_failures must be >= 0")
        if self.breaker_cooldown_seconds < 0.0:
            raise ValueError(
                "RacingConfig.breaker_cooldown_seconds must be >= 0"
            )
        if self.cancel_grace_seconds < 0.0:
            raise ValueError(
                "RacingConfig.cancel_grace_seconds must be >= 0"
            )

    def resolved_enabled(self) -> bool:
        """Whether racing is on (explicit > ``REPRO_RACE`` > off)."""
        if self.enabled is not None:
            return self.enabled
        raw = os.environ.get(ENV_RACE, "").strip().lower()
        return raw not in ("", "0", "false", "no", "off")

    @property
    def active(self) -> bool:
        return self.resolved_enabled()


@dataclass(frozen=True)
class VerifyConfig:
    """Stage-boundary verification (see README "Verified compilation").

    Every compilation stage is supposed to preserve the circuit's
    unitary up to global phase; with verification on, the flows *check*
    that instead of trusting it.  ``warn`` logs failures and counts them
    on ``verify.*`` metrics while the compilation completes; ``strict``
    raises :class:`~repro.exceptions.VerificationError` naming the
    failing stage and block.  Checks are tensor-based (full unitaries)
    up to ``tensor_width_cutoff`` qubits, fall back to comparing the
    action on ``sample_states`` random statevectors up to
    ``state_width_cutoff``, and are skipped (and counted) beyond that.
    """

    #: "off", "warn" or "strict"; ``None`` consults ``REPRO_VERIFY`` and
    #: falls back to "off".
    mode: Optional[str] = None
    #: end-to-end infidelity budget summed across every verified stage.
    #: ``None`` derives the budget from the run itself: the sum of the
    #: per-check tolerances, i.e. the worst total a run whose every
    #: check passes could honestly accumulate.  An explicit float is a
    #: hard cap regardless of check count.
    error_budget: Optional[float] = None
    #: process-infidelity tolerance for stages that must be exact up to
    #: global phase (ZX, decompose, partition/regroup reassembly).
    unitary_atol: float = 1e-9
    #: synthesized blocks may sit at the synthesis threshold; allow this
    #: multiple of it before flagging the block.
    synthesis_slack: float = 2.0
    #: widest circuit whose full unitary is built for a check.
    tensor_width_cutoff: int = 10
    #: widest circuit verified through sampled statevectors; beyond this
    #: the check is skipped and counted on ``verify.skipped``.
    state_width_cutoff: int = 20
    #: random statevectors compared per sampled-state check.
    sample_states: int = 6
    #: seed for the sampled-state generator (deterministic by default).
    seed: int = 97

    def __post_init__(self):
        if self.mode is not None and self.mode not in VERIFY_MODES:
            raise ValueError(
                f"VerifyConfig.mode must be one of {VERIFY_MODES}, "
                f"got {self.mode!r}"
            )
        if self.error_budget is not None and self.error_budget <= 0.0:
            raise ValueError("VerifyConfig.error_budget must be positive")
        if self.tensor_width_cutoff < 1:
            raise ValueError("VerifyConfig.tensor_width_cutoff must be >= 1")
        if self.state_width_cutoff < self.tensor_width_cutoff:
            raise ValueError(
                "VerifyConfig.state_width_cutoff must be >= tensor_width_cutoff"
            )
        if self.sample_states < 1:
            raise ValueError("VerifyConfig.sample_states must be >= 1")

    def resolved_mode(self) -> str:
        """The effective mode (explicit > ``REPRO_VERIFY`` > "off")."""
        if self.mode is not None:
            return self.mode
        raw = os.environ.get(ENV_VERIFY, "").strip().lower()
        if not raw:
            return "off"
        if raw not in VERIFY_MODES:
            raise ValueError(
                f"{ENV_VERIFY} must be one of {VERIFY_MODES}, got {raw!r}"
            )
        return raw

    @property
    def enabled(self) -> bool:
        return self.resolved_mode() != "off"


@dataclass(frozen=True)
class TelemetryConfig:
    """Observability knobs (see :mod:`repro.telemetry`).

    ``log_level=None`` leaves logging untouched so library users keep
    control of their own handlers; the ``REPRO_LOG_LEVEL`` /
    ``REPRO_LOG_JSON`` environment variables and the CLI flags override.
    """

    #: logging level for the ``repro.*`` hierarchy ("DEBUG", "INFO", ...);
    #: ``None`` means do not configure logging at all.
    log_level: Optional[str] = None
    #: emit one JSON object per log line instead of human-readable text.
    log_json: bool = False


@dataclass(frozen=True)
class ObsConfig:
    """Persistent observability (see README "Observability").

    Everything here defaults to off; an all-default ``ObsConfig`` leaves
    the compile path byte-identical to an uninstrumented build.  The
    pieces are independent: progress events can stream without a ledger
    and vice versa — the run observer wires up exactly what is asked
    for (:func:`repro.obs.observe_run`).
    """

    #: render live progress on stderr (the ``--progress`` CLI flag).
    progress: bool = False
    #: write one JSON event per line to this file (``--progress-events``).
    events_path: Optional[str] = None
    #: append every run to the SQLite run ledger; ``None`` consults
    #: ``REPRO_LEDGER`` (a path or truthy value enables it).
    ledger: Optional[bool] = None
    #: ledger database file; ``None`` uses ``REPRO_LEDGER`` when it holds
    #: a path, else ``~/.cache/repro/runs.db``.
    ledger_path: Optional[str] = None
    #: free-form tag stored on the ledger row (``--label``).
    label: Optional[str] = None
    #: measure per-stage / per-worker CPU time and peak RSS whenever an
    #: observer is active (cheap: two ``getrusage`` calls per stage).
    profile_resources: bool = True
    #: also snapshot top Python allocation sites per stage (slow; off).
    trace_malloc: bool = False

    def ledger_enabled(self) -> bool:
        """Whether runs should be recorded (explicit > env > off)."""
        if self.ledger is not None:
            return self.ledger
        return bool(os.environ.get(ENV_LEDGER, "").strip())

    @property
    def active(self) -> bool:
        """Whether any observability output is switched on."""
        return bool(
            self.progress or self.events_path or self.ledger_enabled()
        )


@dataclass(frozen=True)
class EPOCConfig:
    """Top-level knobs of the EPOC pipeline."""

    #: run the ZX-calculus depth optimization (Section 3.1).
    use_zx: bool = True
    #: route the circuit to nearest-neighbour chain connectivity before
    #: partitioning (matches the transmon-chain hardware model; off by
    #: default because the paper's flow assumes pre-mapped circuits).
    route_to_chain: bool = False
    #: maximum number of qubits per partition block (Algorithm 1's *limit*
    #: is expressed in gates; this caps the horizontal grouping width).
    partition_qubit_limit: int = 3
    #: maximum number of gates per partition block.
    partition_gate_limit: int = 24
    #: run VUG-based synthesis on each block (Section 3.3).
    use_synthesis: bool = True
    #: synthesis accuracy threshold (Hilbert-Schmidt distance).
    synthesis_threshold: float = 1e-6
    #: maximum CNOT count explored by the synthesis search.
    synthesis_max_layers: int = 14
    #: regroup synthesized VUGs into unitaries of up to this many qubits.
    regroup_qubit_limit: int = 3
    #: maximum gates aggregated into one regrouped unitary.
    regroup_gate_limit: int = 16
    #: match pulse-library entries up to global phase (EPOC's cache trick).
    cache_global_phase: bool = True
    qoc: QOCConfig = field(default_factory=QOCConfig)
    hardware: HardwareConfig = field(default_factory=HardwareConfig)
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    parallel: ParallelConfig = field(default_factory=ParallelConfig)
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    racing: RacingConfig = field(default_factory=RacingConfig)
    verify: VerifyConfig = field(default_factory=VerifyConfig)
    obs: ObsConfig = field(default_factory=ObsConfig)

    def with_updates(self, **kwargs) -> "EPOCConfig":
        """Functional update helper (the dataclass is frozen)."""
        return replace(self, **kwargs)


#: A configuration tuned for fast unit tests: loose fidelity target, small
#: iteration counts.  Not used by the benchmark harness.
FAST_TEST_CONFIG = EPOCConfig(
    partition_qubit_limit=2,
    partition_gate_limit=10,
    synthesis_max_layers=6,
    regroup_qubit_limit=2,
    regroup_gate_limit=8,
    qoc=QOCConfig(
        dt=1.0,
        fidelity_threshold=0.99,
        max_iterations=60,
        max_segments=160,
    ),
)

"""Named benchmark circuits (QASMBench-style families).

The paper evaluates on 17 QASMBench programs and compares against PAQOC on
seven of them (simon, bb84, bv, qaoa, decod24, dnn, ham7 — Table 1).  The
originals target larger registers than a simulation-based QOC substrate
can afford, so each family is regenerated here at a laptop-tractable size
while keeping its structure (the DESIGN.md substitution table records
this).  Every builder is deterministic.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import CircuitError
from repro.circuits.circuit import QuantumCircuit

__all__ = [
    "bell_state",
    "ghz_state",
    "cat_state",
    "w_state",
    "bernstein_vazirani",
    "simon_circuit",
    "bb84_circuit",
    "qaoa_maxcut",
    "decod24_circuit",
    "dnn_circuit",
    "ham7_circuit",
    "qft_circuit",
    "ripple_adder",
    "toffoli_circuit",
    "fredkin_circuit",
    "grover_circuit",
    "ising_trotter",
    "qpe_circuit",
    "deutsch_jozsa",
    "vqe_uccsd_like",
    "diagonal_trotter_evolution",
    "clifford_vqe_ansatz",
    "basis_change",
    "benchmark_suite",
    "table1_suite",
    "get_benchmark",
    "SUITE_FAMILIES",
    "resolve_suite",
]


def bell_state() -> QuantumCircuit:
    """The 2-qubit Bell pair."""
    qc = QuantumCircuit(2)
    qc.h(0)
    qc.cx(0, 1)
    return qc


def ghz_state(num_qubits: int = 3) -> QuantumCircuit:
    """GHZ state preparation (the paper's Figure 2 example)."""
    qc = QuantumCircuit(num_qubits)
    qc.h(0)
    for q in range(num_qubits - 1):
        qc.cx(q, q + 1)
    return qc


def cat_state(num_qubits: int = 4) -> QuantumCircuit:
    """Cat state via a fanout of CNOTs from qubit 0."""
    qc = QuantumCircuit(num_qubits)
    qc.h(0)
    for q in range(1, num_qubits):
        qc.cx(0, q)
    return qc


def w_state(num_qubits: int = 3) -> QuantumCircuit:
    """W state by the cascaded controlled-Ry construction.

    Start from |10...0> and repeatedly split the excitation rightward:
    ``cry(2*acos(sqrt(1/(n-k))))`` followed by a back-CNOT moves amplitude
    ``sqrt(1/(n-k))`` stays / rest moves on, yielding equal weights.
    """
    qc = QuantumCircuit(num_qubits)
    qc.x(0)
    for k in range(num_qubits - 1):
        angle = 2.0 * math.acos(math.sqrt(1.0 / (num_qubits - k)))
        qc.add("cry", [k, k + 1], [angle])
        qc.cx(k + 1, k)
    return qc


def bernstein_vazirani(num_qubits: int = 5, secret: Optional[int] = None) -> QuantumCircuit:
    """Bernstein-Vazirani with an (n-1)-bit secret and one oracle ancilla."""
    data = num_qubits - 1
    if secret is None:
        secret = (1 << data) - 1 if data < 4 else 0b1011 & ((1 << data) - 1)
    qc = QuantumCircuit(num_qubits)
    ancilla = num_qubits - 1
    qc.x(ancilla)
    for q in range(num_qubits):
        qc.h(q)
    for q in range(data):
        if (secret >> (data - 1 - q)) & 1:
            qc.cx(q, ancilla)
    for q in range(data):
        qc.h(q)
    return qc


def simon_circuit(secret: int = 0b11) -> QuantumCircuit:
    """Simon's algorithm for a 2-bit secret (4 qubits: 2 data + 2 oracle).

    The oracle implements f(x) = f(x ^ s) with s = ``secret`` via CNOT
    copies plus secret-conditioned CNOTs, the standard construction.
    """
    n = 2
    qc = QuantumCircuit(2 * n)
    for q in range(n):
        qc.h(q)
    # copy x into the output register
    for q in range(n):
        qc.cx(q, n + q)
    # xor in the secret, conditioned on the first set bit of x
    pivot = 0 if (secret >> (n - 1)) & 1 else 1
    for q in range(n):
        if (secret >> (n - 1 - q)) & 1:
            qc.cx(pivot, n + q)
    for q in range(n):
        qc.h(q)
    return qc


def bb84_circuit(num_qubits: int = 4, seed: int = 24) -> QuantumCircuit:
    """BB84 state preparation/measurement bases (single-qubit heavy)."""
    rng = np.random.default_rng(seed)
    qc = QuantumCircuit(num_qubits)
    for q in range(num_qubits):
        if rng.integers(2):
            qc.x(q)
        if rng.integers(2):
            qc.h(q)
    for q in range(num_qubits):
        if rng.integers(2):
            qc.h(q)
    return qc


def qaoa_maxcut(num_qubits: int = 4, layers: int = 1, seed: int = 7) -> QuantumCircuit:
    """QAOA for MaxCut on a ring, ``layers`` rounds of (cost, mixer)."""
    rng = np.random.default_rng(seed)
    qc = QuantumCircuit(num_qubits)
    for q in range(num_qubits):
        qc.h(q)
    for _ in range(layers):
        gamma = float(rng.uniform(0.1, math.pi))
        beta = float(rng.uniform(0.1, math.pi))
        for q in range(num_qubits):
            qc.rzz(gamma, q, (q + 1) % num_qubits)
        for q in range(num_qubits):
            qc.rx(2.0 * beta, q)
    return qc


def decod24_circuit() -> QuantumCircuit:
    """The RevLib ``decod24`` 2-to-4 decoder (4 qubits, reversible)."""
    qc = QuantumCircuit(4)
    # standard decod24-v2 gate sequence
    qc.x(3)
    qc.cx(1, 2)
    qc.ccx(0, 2, 3)
    qc.cx(1, 2)
    qc.ccx(0, 1, 2)
    qc.x(0)
    qc.cx(0, 1)
    qc.x(0)
    qc.cx(1, 3)
    return qc


def dnn_circuit(num_qubits: int = 4, layers: int = 2, seed: int = 5) -> QuantumCircuit:
    """Quantum-neural-network layers (QASMBench ``dnn`` family): per-layer
    parameterized single-qubit rotations plus an entangling ladder."""
    rng = np.random.default_rng(seed)
    qc = QuantumCircuit(num_qubits)
    for _ in range(layers):
        for q in range(num_qubits):
            qc.ry(float(rng.uniform(0, 2 * math.pi)), q)
            qc.rz(float(rng.uniform(0, 2 * math.pi)), q)
        for q in range(num_qubits - 1):
            qc.cx(q, q + 1)
        for q in range(num_qubits):
            qc.ry(float(rng.uniform(0, 2 * math.pi)), q)
    return qc


def ham7_circuit() -> QuantumCircuit:
    """Hamming(7,4) coding circuit (RevLib ``ham7`` family, 7 qubits)."""
    qc = QuantumCircuit(7)
    # encode parity bits
    for target, sources in ((4, (0, 1, 3)), (5, (0, 2, 3)), (6, (1, 2, 3))):
        for s in sources:
            qc.cx(s, target)
    # syndrome-style mixing (reversible core of the RevLib circuit)
    qc.ccx(0, 1, 2)
    qc.cx(2, 4)
    qc.ccx(3, 4, 5)
    qc.cx(5, 6)
    qc.ccx(1, 2, 3)
    qc.cx(0, 6)
    qc.ccx(4, 5, 6)
    qc.cx(6, 0)
    return qc


def qft_circuit(num_qubits: int = 4) -> QuantumCircuit:
    """Quantum Fourier transform with final swaps."""
    qc = QuantumCircuit(num_qubits)
    for q in range(num_qubits):
        qc.h(q)
        for k in range(q + 1, num_qubits):
            qc.cp(math.pi / (2 ** (k - q)), k, q)
    for q in range(num_qubits // 2):
        qc.swap(q, num_qubits - 1 - q)
    return qc


def ripple_adder(bits: int = 2) -> QuantumCircuit:
    """Cuccaro-style ripple-carry adder on ``2*bits + 2`` qubits."""
    n = 2 * bits + 2
    qc = QuantumCircuit(n)
    a = list(range(bits))
    b = list(range(bits, 2 * bits))
    carry = 2 * bits
    out = 2 * bits + 1
    # initialize with a classical-looking pattern to exercise the carry
    qc.x(a[0])
    qc.x(b[0])
    if bits > 1:
        qc.x(b[1])
    for i in range(bits):
        qc.ccx(a[i], b[i], carry if i == 0 else out)
        qc.cx(a[i], b[i])
        if i == 0:
            qc.ccx(carry, b[i], out)
    qc.cx(carry, b[0])
    return qc


def toffoli_circuit() -> QuantumCircuit:
    """A bare Toffoli with basis framing."""
    qc = QuantumCircuit(3)
    qc.h(0)
    qc.h(1)
    qc.ccx(0, 1, 2)
    return qc


def fredkin_circuit() -> QuantumCircuit:
    """Controlled-swap with superposed control."""
    qc = QuantumCircuit(3)
    qc.h(0)
    qc.x(1)
    qc.cswap(0, 1, 2)
    return qc


def grover_circuit(num_qubits: int = 3, marked: int = 0b101) -> QuantumCircuit:
    """One Grover iteration marking ``marked`` (phase oracle + diffusion)."""
    qc = QuantumCircuit(num_qubits)
    for q in range(num_qubits):
        qc.h(q)
    # oracle: flip phase of |marked>
    for q in range(num_qubits):
        if not (marked >> (num_qubits - 1 - q)) & 1:
            qc.x(q)
    _multi_controlled_z(qc, num_qubits)
    for q in range(num_qubits):
        if not (marked >> (num_qubits - 1 - q)) & 1:
            qc.x(q)
    # diffusion
    for q in range(num_qubits):
        qc.h(q)
        qc.x(q)
    _multi_controlled_z(qc, num_qubits)
    for q in range(num_qubits):
        qc.x(q)
        qc.h(q)
    return qc


def _multi_controlled_z(qc: QuantumCircuit, num_qubits: int) -> None:
    if num_qubits == 1:
        qc.z(0)
    elif num_qubits == 2:
        qc.cz(0, 1)
    elif num_qubits == 3:
        qc.add("ccz", [0, 1, 2])
    else:
        raise CircuitError("grover builder supports up to 3 qubits")


def ising_trotter(num_qubits: int = 4, steps: int = 2, seed: int = 9) -> QuantumCircuit:
    """First-order Trotter evolution of a transverse-field Ising chain."""
    rng = np.random.default_rng(seed)
    j = float(rng.uniform(0.4, 1.0))
    h = float(rng.uniform(0.4, 1.0))
    dt = 0.3
    qc = QuantumCircuit(num_qubits)
    for _ in range(steps):
        for q in range(num_qubits - 1):
            qc.rzz(2.0 * j * dt, q, q + 1)
        for q in range(num_qubits):
            qc.rx(2.0 * h * dt, q)
    return qc


def qpe_circuit(num_counting: int = 3, phase: float = 1.0 / 8.0) -> QuantumCircuit:
    """Quantum phase estimation of a ``p(2*pi*phase)`` eigenphase."""
    n = num_counting + 1
    target = num_counting
    qc = QuantumCircuit(n)
    qc.x(target)  # eigenstate |1> of the phase gate
    for q in range(num_counting):
        qc.h(q)
    for q in range(num_counting):
        repetitions = 2 ** (num_counting - 1 - q)
        qc.cp(2.0 * math.pi * phase * repetitions, q, target)
    # inverse QFT on the counting register
    for q in range(num_counting // 2):
        qc.swap(q, num_counting - 1 - q)
    for q in range(num_counting - 1, -1, -1):
        for k in range(num_counting - 1, q, -1):
            qc.cp(-math.pi / (2 ** (k - q)), k, q)
        qc.h(q)
    return qc


def deutsch_jozsa(num_qubits: int = 4, balanced: bool = True) -> QuantumCircuit:
    """Deutsch-Jozsa with a balanced (or constant) oracle."""
    data = num_qubits - 1
    ancilla = num_qubits - 1
    qc = QuantumCircuit(num_qubits)
    qc.x(ancilla)
    for q in range(num_qubits):
        qc.h(q)
    if balanced:
        for q in range(data):
            qc.cx(q, ancilla)
    for q in range(data):
        qc.h(q)
    return qc


def vqe_uccsd_like(num_qubits: int = 4, seed: int = 13) -> QuantumCircuit:
    """UCCSD-flavoured VQE ansatz: Pauli-string exponentials with CNOT
    ladders.  Adjacent ladders cancel heavily under ZX/peephole
    optimization — the paper's extreme Figure 5 case comes from exactly
    this structure."""
    rng = np.random.default_rng(seed)
    qc = QuantumCircuit(num_qubits)
    for q in range(0, num_qubits, 2):
        qc.x(q)  # Hartree-Fock-like reference
    pairs = [
        (i, j) for i in range(num_qubits) for j in range(i + 1, num_qubits)
    ]
    for i, j in pairs:
        theta = float(rng.uniform(0.05, 0.5))
        # exp(-i theta/2 X_i X_j): H-framed, mirrored CNOT ladder
        qc.h(i)
        qc.h(j)
        _cnot_ladder(qc, i, j)
        qc.rz(theta, j)
        _cnot_ladder(qc, i, j, reverse=True)
        qc.h(i)
        qc.h(j)
    return qc


def _cnot_ladder(qc: QuantumCircuit, i: int, j: int, reverse: bool = False) -> None:
    steps = range(j - 1, i - 1, -1) if reverse else range(i, j)
    for q in steps:
        qc.cx(q, q + 1)


def diagonal_trotter_evolution(
    num_qubits: int = 6, steps: int = 40, seed: int = 21
) -> QuantumCircuit:
    """Deep Trotterized evolution of a diagonal (commuting-ZZ) Hamiltonian.

    Every Trotter step replays the same Pauli-Z strings through mirrored
    CNOT ladders, so adjacent steps cancel almost entirely under gate
    commutation/aggregation — this is the family behind the paper's
    extreme Figure 5 data point (VQE depth 7656 -> 1110).
    """
    rng = np.random.default_rng(seed)
    strings = [(i, min(i + 2, num_qubits - 1)) for i in range(num_qubits - 2)]
    angles = [float(rng.uniform(0.01, 0.2)) for _ in strings]
    qc = QuantumCircuit(num_qubits)
    for _ in range(steps):
        for (i, j), angle in zip(strings, angles):
            _cnot_ladder(qc, i, j)
            qc.rz(angle, j)
            _cnot_ladder(qc, i, j, reverse=True)
    return qc


def clifford_vqe_ansatz(
    num_qubits: int = 6, layers: int = 100, seed: int = 0
) -> QuantumCircuit:
    """A deep hardware-efficient ansatz at Clifford angle points.

    Warm-started VQE/QAOA runs commonly sit at (multiples of) pi/2; the
    circuit is then entirely Clifford and ZX-calculus collapses it to
    near-constant depth.  This family reproduces the paper's extreme
    Figure 5 data point (a VQE whose depth fell 7656 -> 1110).
    """
    rng = np.random.default_rng(seed)
    angles = (0.0, math.pi / 2.0, math.pi, 3.0 * math.pi / 2.0)
    qc = QuantumCircuit(num_qubits)
    for _ in range(layers):
        for q in range(num_qubits):
            qc.ry(float(rng.choice(angles)), q)
            qc.rz(float(rng.choice(angles)), q)
        for q in range(num_qubits - 1):
            qc.cx(q, q + 1)
    return qc


def basis_change(num_qubits: int = 3, seed: int = 17) -> QuantumCircuit:
    """Random single-qubit basis changes + a CZ ladder (QASMBench's
    ``basis_change`` flavour)."""
    rng = np.random.default_rng(seed)
    qc = QuantumCircuit(num_qubits)
    for q in range(num_qubits):
        qc.u3(*(float(x) for x in rng.uniform(0, math.pi, 3)), q)
    for q in range(num_qubits - 1):
        qc.cz(q, q + 1)
    for q in range(num_qubits):
        qc.u3(*(float(x) for x in rng.uniform(0, math.pi, 3)), q)
    return qc


#: The 17-benchmark evaluation suite (Figures 8, 9, 10).
_SUITE: Dict[str, Callable[[], QuantumCircuit]] = {
    "bell": bell_state,
    "ghz": lambda: ghz_state(3),
    "cat": lambda: cat_state(4),
    "wstate": lambda: w_state(3),
    "bv": lambda: bernstein_vazirani(5),
    "simon": simon_circuit,
    "bb84": lambda: bb84_circuit(4),
    "qaoa": lambda: qaoa_maxcut(4),
    "decod24": decod24_circuit,
    "dnn": lambda: dnn_circuit(4),
    "ham7": ham7_circuit,
    "qft": lambda: qft_circuit(4),
    "adder": lambda: ripple_adder(2),
    "toffoli": toffoli_circuit,
    "fredkin": fredkin_circuit,
    "grover": lambda: grover_circuit(3),
    "ising": lambda: ising_trotter(4),
    "qpe": lambda: qpe_circuit(3),
    "deutsch": lambda: deutsch_jozsa(4),
    "vqe": lambda: vqe_uccsd_like(4),
    "basis_change": lambda: basis_change(3),
    "trotter": lambda: diagonal_trotter_evolution(6, steps=8),
    "clifford_vqe": lambda: clifford_vqe_ansatz(5, layers=20),
}

#: the 7 circuits of Table 1
_TABLE1 = ("simon", "bb84", "bv", "qaoa", "decod24", "dnn", "ham7")

#: the 17 programs used for Figures 8-10
_FIGURE_SUITE = (
    "bell",
    "ghz",
    "cat",
    "wstate",
    "bv",
    "simon",
    "bb84",
    "qaoa",
    "decod24",
    "dnn",
    "ham7",
    "qft",
    "adder",
    "toffoli",
    "fredkin",
    "grover",
    "ising",
)


def get_benchmark(name: str) -> QuantumCircuit:
    """Build a named benchmark circuit."""
    try:
        return _SUITE[name]()
    except KeyError:
        raise CircuitError(
            f"unknown benchmark {name!r}; available: {sorted(_SUITE)}"
        ) from None


def benchmark_suite(names: Optional[List[str]] = None) -> Dict[str, QuantumCircuit]:
    """The Figures 8-10 suite (or a chosen subset) as a name->circuit map."""
    selected = names if names is not None else list(_FIGURE_SUITE)
    return {name: get_benchmark(name) for name in selected}


def table1_suite() -> Dict[str, QuantumCircuit]:
    """The seven Table 1 circuits."""
    return {name: get_benchmark(name) for name in _TABLE1}


#: Named circuit families addressable from the batch compiler
#: (``repro.cli compile-batch --suite NAME``).
SUITE_FAMILIES: Dict[str, Tuple[str, ...]] = {
    "table1": _TABLE1,
    "figures": _FIGURE_SUITE,
    "full": tuple(_SUITE),
}


def resolve_suite(spec: str) -> Dict[str, QuantumCircuit]:
    """Build the circuits a suite specifier names.

    ``spec`` is either a family name from :data:`SUITE_FAMILIES`
    (``"table1"``, ``"figures"``, ``"full"``) or a comma-separated list
    of individual benchmark names (``"ghz,qft,grover"``).
    """
    if spec in SUITE_FAMILIES:
        names: Sequence[str] = SUITE_FAMILIES[spec]
    else:
        names = [name.strip() for name in spec.split(",") if name.strip()]
        if not names:
            raise CircuitError(
                f"empty suite specifier {spec!r}; expected a family "
                f"({sorted(SUITE_FAMILIES)}) or comma-separated benchmark names"
            )
    return {name: get_benchmark(name) for name in names}

"""The per-block fidelity-budget ledger.

When GRAPE cannot reach the fidelity threshold for a block (and the
resilience config allows degradation), the flow keeps the best-effort
pulse instead of aborting the whole compilation — but the shortfall must
be *visible*.  The ledger records one :class:`DegradedBlock` per work
item whose pulse missed its target, and the pipeline surfaces the list
on :class:`~repro.core.metrics.CompilationReport.degraded_blocks` so
callers can decide whether the aggregate ESP is still acceptable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro import telemetry

__all__ = ["DegradedBlock", "FidelityLedger"]

logger = telemetry.get_logger("resilience.ledger")

#: pulse sources that mark a best-effort (non-converged) optimization.
_DEGRADED_SOURCES = frozenset({"grape-degraded"})


@dataclass(frozen=True)
class DegradedBlock:
    """One work item whose pulse fell short of the fidelity budget."""

    #: position of the item in the flow's QOC work list.
    index: int
    #: global qubit lines the pulse drives.
    qubits: Tuple[int, ...]
    #: the per-pulse fidelity the configuration asked for.
    target_fidelity: float
    #: the process fidelity the best-effort pulse actually achieves.
    achieved_fidelity: float
    #: why the block degraded ("qoc-non-convergence", "qoc-timeout", ...).
    reason: str = "qoc-non-convergence"

    @property
    def deficit(self) -> float:
        """How far below budget the block landed (never negative)."""
        return max(0.0, self.target_fidelity - self.achieved_fidelity)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "qubits": list(self.qubits),
            "target_fidelity": self.target_fidelity,
            "achieved_fidelity": self.achieved_fidelity,
            "deficit": self.deficit,
            "reason": self.reason,
        }


@dataclass
class FidelityLedger:
    """Collects :class:`DegradedBlock` entries while a flow runs."""

    target_fidelity: float
    entries: List[DegradedBlock] = field(default_factory=list)

    def observe(self, index: int, qubits: Tuple[int, ...], pulse) -> None:
        """Record ``pulse`` for the item at ``index`` if it is degraded.

        A pulse is degraded when its source marks a non-converged
        optimization or its achieved fidelity sits below the target —
        cache hits of degraded entries stay degraded on every reuse.
        """
        source = getattr(pulse, "source", "")
        degraded = source in _DEGRADED_SOURCES or (
            source.startswith("grape") and pulse.fidelity < self.target_fidelity
        )
        if not degraded:
            return
        entry = DegradedBlock(
            index=index,
            qubits=tuple(qubits),
            target_fidelity=self.target_fidelity,
            achieved_fidelity=pulse.fidelity,
            reason=(
                "qoc-non-convergence"
                if source in _DEGRADED_SOURCES
                else "below-fidelity-budget"
            ),
        )
        self.entries.append(entry)
        telemetry.get_metrics().inc("resilience.degraded_blocks")
        logger.warning(
            "degraded block %d on qubits %s: fidelity %.6f < %.6f "
            "(deficit %.2e)",
            index,
            entry.qubits,
            entry.achieved_fidelity,
            entry.target_fidelity,
            entry.deficit,
        )

    @property
    def total_deficit(self) -> float:
        return sum(entry.deficit for entry in self.entries)

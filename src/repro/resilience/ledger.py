"""Per-block fidelity and verification-error ledgers.

When GRAPE cannot reach the fidelity threshold for a block (and the
resilience config allows degradation), the flow keeps the best-effort
pulse instead of aborting the whole compilation — but the shortfall must
be *visible*.  The ledger records one :class:`DegradedBlock` per work
item whose pulse missed its target, and the pipeline surfaces the list
on :class:`~repro.core.metrics.CompilationReport.degraded_blocks` so
callers can decide whether the aggregate ESP is still acceptable.

:class:`ErrorBudgetLedger` extends that idea to *verified* compilation
(see :mod:`repro.verify`): every stage-boundary equivalence check lands
here as a :class:`VerificationRecord`, per-stage infidelity accumulates,
and the total is compared against an end-to-end error budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import telemetry

__all__ = [
    "DegradedBlock",
    "FidelityLedger",
    "VerificationRecord",
    "ErrorBudgetLedger",
]

logger = telemetry.get_logger("resilience.ledger")

#: pulse sources that mark a best-effort (non-converged) optimization.
_DEGRADED_SOURCES = frozenset({"grape-degraded"})


@dataclass(frozen=True)
class DegradedBlock:
    """One work item whose pulse fell short of the fidelity budget."""

    #: position of the item in the flow's QOC work list.
    index: int
    #: global qubit lines the pulse drives.
    qubits: Tuple[int, ...]
    #: the per-pulse fidelity the configuration asked for.
    target_fidelity: float
    #: the process fidelity the best-effort pulse actually achieves.
    achieved_fidelity: float
    #: why the block degraded ("qoc-non-convergence", "qoc-timeout", ...).
    reason: str = "qoc-non-convergence"

    @property
    def deficit(self) -> float:
        """How far below budget the block landed (never negative)."""
        return max(0.0, self.target_fidelity - self.achieved_fidelity)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "qubits": list(self.qubits),
            "target_fidelity": self.target_fidelity,
            "achieved_fidelity": self.achieved_fidelity,
            "deficit": self.deficit,
            "reason": self.reason,
        }


@dataclass
class FidelityLedger:
    """Collects :class:`DegradedBlock` entries while a flow runs."""

    target_fidelity: float
    entries: List[DegradedBlock] = field(default_factory=list)

    def observe(self, index: int, qubits: Tuple[int, ...], pulse) -> None:
        """Record ``pulse`` for the item at ``index`` if it is degraded.

        A pulse is degraded when its source marks a non-converged
        optimization or its achieved fidelity sits below the target —
        cache hits of degraded entries stay degraded on every reuse.
        """
        source = getattr(pulse, "source", "")
        degraded = source in _DEGRADED_SOURCES or (
            source.startswith("grape") and pulse.fidelity < self.target_fidelity
        )
        if not degraded:
            return
        entry = DegradedBlock(
            index=index,
            qubits=tuple(qubits),
            target_fidelity=self.target_fidelity,
            achieved_fidelity=pulse.fidelity,
            reason=(
                "qoc-non-convergence"
                if source in _DEGRADED_SOURCES
                else "below-fidelity-budget"
            ),
        )
        self.entries.append(entry)
        telemetry.get_metrics().inc("resilience.degraded_blocks")
        logger.warning(
            "degraded block %d on qubits %s: fidelity %.6f < %.6f "
            "(deficit %.2e)",
            index,
            entry.qubits,
            entry.achieved_fidelity,
            entry.target_fidelity,
            entry.deficit,
        )

    @property
    def total_deficit(self) -> float:
        return sum(entry.deficit for entry in self.entries)


@dataclass(frozen=True)
class VerificationRecord:
    """Outcome of one stage-boundary equivalence check."""

    #: which stage boundary the check guards ("zx", "partition",
    #: "synthesis", "regroup", "pulse", "decompose", "budget").
    stage: str
    #: the block / work-item index the check covers; ``None`` for
    #: whole-circuit checks.
    index: Optional[int]
    #: global qubit lines involved (empty for whole-circuit checks).
    qubits: Tuple[int, ...]
    #: measured process infidelity (1 - |tr(U†V)|²/d²), or the stage's
    #: own error metric for synthesis/pulse checks.
    infidelity: float
    #: the tolerance the check was held to.
    tolerance: float
    passed: bool
    #: how the check was evaluated: "tensor", "state" or "skipped".
    method: str = "tensor"
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stage": self.stage,
            "index": self.index,
            "qubits": list(self.qubits),
            "infidelity": self.infidelity,
            "tolerance": self.tolerance,
            "passed": self.passed,
            "method": self.method,
            "detail": self.detail,
        }


@dataclass
class ErrorBudgetLedger(FidelityLedger):
    """A :class:`FidelityLedger` that also accumulates verification error.

    Degraded-pulse accounting is inherited unchanged; on top of it, every
    stage-boundary check lands as a :class:`VerificationRecord` and its
    infidelity is charged against ``error_budget``.  Skipped checks
    (circuits too wide to simulate) are recorded with
    ``method="skipped"`` and charge nothing, but keep the compilation
    from claiming it was fully verified.
    """

    error_budget: float = math.inf
    records: List[VerificationRecord] = field(default_factory=list)

    def record_check(self, record: VerificationRecord) -> None:
        self.records.append(record)
        metrics = telemetry.get_metrics()
        metrics.inc("verify.checks")
        if record.method == "skipped":
            metrics.inc("verify.skipped")
        elif not record.passed:
            metrics.inc("verify.failures")
            logger.warning(
                "verification failed at stage %r%s: infidelity %.3e > "
                "tolerance %.3e%s",
                record.stage,
                f" (block {record.index})" if record.index is not None else "",
                record.infidelity,
                record.tolerance,
                f" — {record.detail}" if record.detail else "",
            )

    @property
    def checks(self) -> int:
        return len(self.records)

    @property
    def failures(self) -> List[VerificationRecord]:
        return [
            r for r in self.records if not r.passed and r.method != "skipped"
        ]

    @property
    def skipped(self) -> int:
        return sum(1 for r in self.records if r.method == "skipped")

    @property
    def total_infidelity(self) -> float:
        """Accumulated infidelity across every evaluated check."""
        return sum(
            max(0.0, r.infidelity)
            for r in self.records
            if r.method != "skipped"
        )

    @property
    def allowance(self) -> float:
        """The worst total an all-checks-pass run could accumulate: the
        sum of per-check tolerances across evaluated checks.  Used as
        the derived error budget when none was configured explicitly."""
        return sum(r.tolerance for r in self.records if r.method != "skipped")

    @property
    def budget_exceeded(self) -> bool:
        return self.total_infidelity > self.error_budget

    def stage_infidelity(self) -> Dict[str, float]:
        """Per-stage accumulated infidelity (evaluated checks only)."""
        out: Dict[str, float] = {}
        for record in self.records:
            if record.method == "skipped":
                continue
            out[record.stage] = out.get(record.stage, 0.0) + max(
                0.0, record.infidelity
            )
        return out

"""Fault tolerance for the compilation pipeline (see README "Resilience").

EPOC chains five lossy stages — ZX, partition, synthesis, regrouping,
GRAPE — and a production compilation must survive a hiccup in any of
them without discarding hours of pulse-library work.  This package
provides the four mechanisms the flows thread through:

* :class:`RetryPolicy` / :class:`Deadline` — bounded retries with
  backoff and cooperative wall-clock budgets for the GRAPE duration
  search and QSearch (:mod:`repro.resilience.policy`).
* :class:`FaultPlan` — deterministic fault injection, configured
  programmatically or through the ``REPRO_FAULTS`` environment
  variable, so every failure path is testable
  (:mod:`repro.resilience.faults`).
* :class:`FidelityLedger` — the per-block fidelity-budget ledger that
  turns GRAPE non-convergence into an explicit
  :class:`~repro.resilience.ledger.DegradedBlock` entry on the
  :class:`~repro.core.metrics.CompilationReport` instead of a hard
  :class:`~repro.exceptions.QOCError`
  (:mod:`repro.resilience.ledger`).
* :class:`CompilationJournal` — incremental pulse-library checkpoints
  plus an append-only journal so a killed run resumes from the last
  completed block (:mod:`repro.resilience.journal`).

Worker-crash recovery (serial in-parent chunk retry, task quarantine,
pool rebuild) lives in :class:`repro.parallel.ParallelExecutor` and is
driven by the same :class:`~repro.config.ResilienceConfig`.
"""

from __future__ import annotations

from repro.resilience.faults import (
    ENV_FAULTS,
    FaultPlan,
    FaultSpec,
    fault_fires,
    fault_params,
    get_fault_plan,
    set_fault_plan,
)
from repro.resilience.journal import (
    CompilationJournal,
    JournalError,
    journal_records,
    salvage_journal_tail,
)
from repro.resilience.ledger import (
    DegradedBlock,
    ErrorBudgetLedger,
    FidelityLedger,
    VerificationRecord,
)
from repro.resilience.policy import Deadline, RetryPolicy, retry_call

__all__ = [
    "RetryPolicy",
    "Deadline",
    "retry_call",
    "FaultPlan",
    "FaultSpec",
    "fault_fires",
    "fault_params",
    "get_fault_plan",
    "set_fault_plan",
    "ENV_FAULTS",
    "DegradedBlock",
    "FidelityLedger",
    "VerificationRecord",
    "ErrorBudgetLedger",
    "CompilationJournal",
    "JournalError",
    "journal_records",
    "salvage_journal_tail",
]

"""Checkpoint/resume: incremental library flushes plus a compilation journal.

The pulse library is the expensive artifact of a compilation — hours of
GRAPE work for large programs — so a killed run must not discard it.
:class:`CompilationJournal` couples two files:

* ``<path>`` — the pulse-library checkpoint, rewritten atomically (see
  :meth:`repro.qoc.library.PulseLibrary.save`) every ``checkpoint_every``
  completed blocks.  This is the *source of truth* for resume: pulses are
  keyed by unitary, so reloading it turns already-solved blocks into
  cache hits and the pipeline recomputes only what is missing.
* ``<path>.journal`` — an append-only JSONL log of run metadata and
  per-block completions.  It is advisory (human/tooling-readable
  progress, plus a config fingerprint that stops a resume from silently
  mixing incompatible configurations).

Journal records, one JSON object per line::

    {"event": "begin", "circuit": ..., "fingerprint": ..., "resumed": N}
    {"event": "block", "index": 3, "key": "<hex cache key>"}
    {"event": "flush", "entries": 17}
    {"event": "done", "blocks": 42}

Because every pulse search is deterministic and the checkpoint is written
in canonical key order, a killed-then-resumed run reproduces the same
library file bit for bit as an uninterrupted one.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import List, Optional, Tuple

from repro import telemetry
from repro.exceptions import ResilienceError

__all__ = [
    "CompilationJournal",
    "JournalError",
    "config_fingerprint",
    "journal_records",
    "salvage_journal_tail",
]

logger = telemetry.get_logger("resilience.journal")


def journal_records(path: str) -> Tuple[List[dict], bool]:
    """Replay a journal file; returns ``(records, truncated_tail)``.

    A crash mid-``_write`` leaves a partial final line (no newline, or
    invalid JSON).  That tail is *expected* damage: it is reported as
    ``truncated_tail=True`` and every complete record before it is
    salvaged, so a resume continues from the last complete record
    instead of distrusting the whole journal.  Invalid lines elsewhere
    (hand edits, disk corruption) are skipped with a warning.
    """
    records: List[dict] = []
    truncated = False
    with open(path) as fh:
        lines = fh.read().split("\n")
    # a well-formed journal ends with a newline, i.e. a trailing ''
    ends_clean = lines and lines[-1] == ""
    body = lines[:-1] if ends_clean else lines
    for number, line in enumerate(body):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            if number == len(body) - 1 and not ends_clean:
                truncated = True
            else:
                logger.warning(
                    "skipping invalid journal line %d in %s", number + 1, path
                )
            continue
        if not isinstance(record, dict):
            continue
        records.append(record)
    if not truncated and not ends_clean and body:
        # final line parsed but the newline never landed: the record is
        # complete, the file tail still needs repair before appending
        truncated = True
    return records, truncated


class JournalError(ResilienceError):
    """Raised when a resume request cannot be honoured safely."""


def salvage_journal_tail(path: str) -> bool:
    """Repair a JSONL journal whose final line was cut short by a crash.

    Every complete record is rewritten in place (atomically) and the
    partial tail dropped, so a subsequent append cannot weld new records
    onto broken JSON.  Returns whether a repair was performed.  Shared by
    :class:`CompilationJournal` and the batch suite journal.
    """
    if not os.path.exists(path):
        return False
    try:
        records, truncated = journal_records(path)
    except OSError:
        return False
    if not truncated:
        return False
    completed = sum(1 for r in records if r.get("event") == "block")
    logger.warning(
        "journal %s ends in a partially written record (crash mid-write); "
        "salvaging %d complete records (%d block completions) and resuming "
        "from the last complete one",
        path,
        len(records),
        completed,
    )
    telemetry.get_metrics().inc("resilience.journal_salvaged")
    tmp_path = path + ".salvage"
    with open(tmp_path, "w") as fh:
        for record in records:
            fh.write(json.dumps(record) + "\n")
    os.replace(tmp_path, path)
    return True


def config_fingerprint(*parts: object) -> str:
    """A short stable hash of the configuration a checkpoint depends on."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(repr(part).encode())
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


class CompilationJournal:
    """Incremental checkpointing of one flow's pulse library."""

    def __init__(self, path: str, library, checkpoint_every: int = 1, store=None):
        self.path = os.path.abspath(path)
        self.journal_path = self.path + ".journal"
        self.library = library
        self.checkpoint_every = max(1, int(checkpoint_every))
        #: optional store (:class:`repro.batch.SharedLibraryStore` or
        #: :class:`repro.db.SqliteLibraryStore`) for the same path; when
        #: set, flushes run its merge round instead of a blind ``save``
        #: so concurrent processes checkpointing into one shared file
        #: cannot drop each other's entries.  SQLite checkpoint paths
        #: get a store automatically — ``PulseLibrary.save`` only
        #: writes JSON, and the transactional store makes each flush an
        #: O(new rows) upsert instead of a full rewrite.
        if store is None:
            from repro.db import is_sqlite_path

            if is_sqlite_path(self.path):
                from repro.db import SqliteLibraryStore

                store = SqliteLibraryStore(self.path)
        self.store = store
        self._fh = None
        self._since_flush = 0
        self._blocks = 0
        #: entries preloaded from the checkpoint by :meth:`open`.
        self.resumed_entries = 0

    # -- lifecycle -------------------------------------------------------

    def open(
        self,
        circuit_name: str,
        fingerprint: str,
        resume: bool = False,
    ) -> int:
        """Start (or resume) the journal; returns the entries preloaded.

        With ``resume=True`` and an existing checkpoint, the stored
        fingerprint must match ``fingerprint`` — resuming under a
        different QOC configuration would stitch incompatible pulses
        into one library.  A resume with no checkpoint on disk degrades
        to a fresh start (the common "first attempt crashed before the
        first flush" case).
        """
        if resume and os.path.exists(self.path):
            stored = self._stored_fingerprint()
            if stored is not None and stored != fingerprint:
                raise JournalError(
                    f"checkpoint {self.path} was written under a different "
                    f"configuration (fingerprint {stored} != {fingerprint}); "
                    "refusing to resume"
                )
            if getattr(self.store, "kind", None) == "sqlite":
                self.resumed_entries = self.store.pull(self.library)
            else:
                self.resumed_entries = self.library.load(self.path)
            telemetry.get_metrics().inc(
                "resilience.resumed_entries", self.resumed_entries
            )
            logger.info(
                "resumed %d pulse-library entries from %s",
                self.resumed_entries,
                self.path,
            )
        mode = "a" if resume and os.path.exists(self.journal_path) else "w"
        if mode == "a":
            # a crash mid-write leaves a partial final line; appending to
            # it would weld the new 'begin' record onto the partial JSON
            # and corrupt both.  Salvage every complete record and
            # rewrite the tail before appending.
            self._salvage_tail()
        self._fh = open(self.journal_path, mode)
        self._write(
            {
                "event": "begin",
                "circuit": circuit_name,
                "fingerprint": fingerprint,
                "resumed": self.resumed_entries,
            }
        )
        return self.resumed_entries

    def close(self, complete: bool = True) -> None:
        """Flush the final checkpoint and seal the journal (idempotent)."""
        if self._fh is None:
            return
        self.flush()
        self._write(
            {
                "event": "done" if complete else "abort",
                "blocks": self._blocks,
            }
        )
        self._fh.close()
        self._fh = None

    def __enter__(self) -> "CompilationJournal":
        return self

    def __exit__(self, exc_type, *exc_info) -> None:
        self.close(complete=exc_type is None)

    # -- recording -------------------------------------------------------

    def record_block(self, index: int, key: bytes) -> None:
        """Note one completed work item; flush when the interval is due."""
        self._blocks += 1
        self._write({"event": "block", "index": index, "key": key.hex()})
        self._since_flush += 1
        if self._since_flush >= self.checkpoint_every:
            self.flush()

    def flush(self) -> None:
        """Write the library checkpoint atomically and log the flush."""
        if self.store is not None:
            self.store.sync(self.library)
        else:
            self.library.save(self.path)
        self._since_flush = 0
        self._write({"event": "flush", "entries": len(self.library)})
        telemetry.get_metrics().inc("resilience.checkpoint_flushes")

    # -- internals -------------------------------------------------------

    def _write(self, record: dict) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()

    def _salvage_tail(self) -> None:
        """Repair a journal whose final line was cut short by a crash."""
        salvage_journal_tail(self.journal_path)

    def _stored_fingerprint(self) -> Optional[str]:
        """The fingerprint of the most recent run in the journal, if any."""
        if not os.path.exists(self.journal_path):
            return None
        try:
            records, _ = journal_records(self.journal_path)
        except OSError:
            return None
        fingerprint: Optional[str] = None
        for record in records:
            if record.get("event") == "begin":
                fingerprint = record.get("fingerprint")
        return fingerprint

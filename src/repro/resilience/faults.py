"""Deterministic fault injection for resilience testing.

A :class:`FaultPlan` is a list of armed fault sites; instrumented code
asks :func:`fault_fires` ("should this site fail now?") with contextual
attributes, and a matching spec fires — usually a bounded number of
times.  Plans come from the ``REPRO_FAULTS`` environment variable
(inherited by worker processes) or from :func:`set_fault_plan` in tests.

Grammar (specs separated by ``;``)::

    site[@key=value[,key=value...]][*count]

    REPRO_FAULTS="qoc.no_converge@qubits=2*1;worker.crash@chunk=0"

``count`` defaults to 1 (one-shot); ``*-1`` means fire on every match.
Match values compare as strings against the ``str()`` of the context
attribute, and every key in the spec must be present in the context.

Sites instrumented across the codebase:

==================  =====================================================
``qoc.no_converge``  the GRAPE duration search behaves as if no duration
                     converged (context: ``qubits``)
``synthesis.qsearch``/``synthesis.leap``  that synthesis strategy raises
                     :class:`~repro.exceptions.SynthesisError`
``worker.crash``     a pool worker hard-exits mid-chunk (context:
                     ``chunk``); ignored outside worker processes
``pipeline.kill``    the pipeline raises mid pulse-generation (context:
                     ``item``) — simulates a killed run for resume tests
``synthesis.stall``  a synthesis strategy sleeps cooperatively before
                     running (parameter: ``seconds``; context:
                     ``strategy``, ``qubits``) — injects a straggler for
                     racing/hedging tests
``qoc.stall``        the pulse search sleeps cooperatively before its
                     first probe (parameter: ``seconds``; context:
                     ``qubits``)
==================  =====================================================

Some sites carry *parameters* rather than match keys: ``seconds`` in
``synthesis.stall@seconds=5`` configures how long the stall lasts instead
of filtering where it fires.  Instrumented code retrieves parameters with
:func:`fault_params`, naming which keys are parameters; all other keys
still behave as context matchers.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = [
    "ENV_FAULTS",
    "FaultSpec",
    "FaultPlan",
    "get_fault_plan",
    "set_fault_plan",
    "fault_fires",
    "fault_params",
]

#: environment variable holding the default fault plan.
ENV_FAULTS = "REPRO_FAULTS"


@dataclass
class FaultSpec:
    """One armed fault: a site name, match attributes, and a shot count."""

    site: str
    match: Dict[str, str] = field(default_factory=dict)
    #: how many more times this spec fires; -1 means unlimited.
    remaining: int = 1

    def matches(
        self,
        site: str,
        context: Dict[str, object],
        param_keys: Sequence[str] = (),
    ) -> bool:
        if self.remaining == 0 or site != self.site:
            return False
        return all(
            key in param_keys
            or (key in context and str(context[key]) == value)
            for key, value in self.match.items()
        )

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        text = text.strip()
        count = 1
        if "*" in text:
            text, _, count_text = text.rpartition("*")
            try:
                count = int(count_text)
            except ValueError:
                raise ValueError(
                    f"bad fault count {count_text!r} (expected an integer)"
                ) from None
        site, _, match_text = text.partition("@")
        site = site.strip()
        if not site:
            raise ValueError("fault spec has an empty site name")
        match: Dict[str, str] = {}
        if match_text:
            for pair in match_text.split(","):
                key, sep, value = pair.partition("=")
                if not sep or not key.strip():
                    raise ValueError(
                        f"bad fault match {pair!r} (expected key=value)"
                    )
                match[key.strip()] = value.strip()
        return cls(site=site, match=match, remaining=count)


class FaultPlan:
    """A set of armed :class:`FaultSpec`\\ s consulted by :func:`fault_fires`.

    Fire paths are serialized by an internal lock: once strategies race on
    concurrent threads, an unguarded ``remaining -= 1`` would let a
    one-shot spec fire twice (or never decrement).
    """

    def __init__(self, specs: Optional[List[FaultSpec]] = None):
        self.specs: List[FaultSpec] = list(specs or [])
        self._lock = threading.Lock()

    @classmethod
    def parse(cls, text: Optional[str]) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` grammar; empty/None yields an inactive plan."""
        if not text or not text.strip():
            return cls()
        return cls([
            FaultSpec.parse(part)
            for part in text.split(";")
            if part.strip()
        ])

    @property
    def active(self) -> bool:
        return any(spec.remaining != 0 for spec in self.specs)

    def fire(self, site: str, **context: object) -> bool:
        """True (and consume one shot) when an armed spec matches."""
        with self._lock:
            for spec in self.specs:
                if spec.matches(site, context):
                    if spec.remaining > 0:
                        spec.remaining -= 1
                    return True
        return False

    def fire_params(
        self, site: str, param_keys: Sequence[str], **context: object
    ) -> Optional[Dict[str, str]]:
        """Fire a parameterized site, returning its parameter values.

        Keys listed in ``param_keys`` are extracted from the matching
        spec instead of being compared against the context; every other
        spec key must still match.  Returns the (possibly empty)
        parameter dict when a spec fires, ``None`` otherwise.
        """
        with self._lock:
            for spec in self.specs:
                if spec.matches(site, context, param_keys=param_keys):
                    if spec.remaining > 0:
                        spec.remaining -= 1
                    return {
                        key: spec.match[key]
                        for key in param_keys
                        if key in spec.match
                    }
        return None


#: the installed plan; ``None`` means "lazily parse the environment".
_plan: Optional[FaultPlan] = None


def get_fault_plan() -> FaultPlan:
    """The installed fault plan (parsed from ``REPRO_FAULTS`` on first use)."""
    global _plan
    if _plan is None:
        _plan = FaultPlan.parse(os.environ.get(ENV_FAULTS))
    return _plan


def set_fault_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install ``plan`` globally; ``None`` re-arms lazy env parsing.

    Returns the previously installed plan (which may be ``None`` if the
    environment had not been consulted yet).
    """
    global _plan
    previous = _plan
    _plan = plan
    return previous


def fault_fires(site: str, **context: object) -> bool:
    """Cheap global check used at every instrumented fault site."""
    plan = get_fault_plan()
    if not plan.specs:
        return False
    return plan.fire(site, **context)


def fault_params(
    site: str, param_keys: Sequence[str], **context: object
) -> Optional[Dict[str, str]]:
    """Global check for a parameterized site (see :meth:`FaultPlan.fire_params`)."""
    plan = get_fault_plan()
    if not plan.specs:
        return None
    return plan.fire_params(site, param_keys, **context)

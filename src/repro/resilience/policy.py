"""Retry policies and cooperative wall-clock deadlines.

The compilation stages are CPU-bound library code, so there is no safe
way to preempt them from outside; instead every expensive loop (GRAPE
probes, QSearch node expansion, per-block synthesis) checks a
:class:`Deadline` between units of work.  Retries follow a
:class:`RetryPolicy` with exponential backoff; the sleep function is
injectable so tests never actually wait.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple, Type

from repro import telemetry

__all__ = ["RetryPolicy", "Deadline", "retry_call"]

logger = telemetry.get_logger("resilience.policy")


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to re-attempt a failed operation, and how to pace it.

    ``max_attempts`` counts the *total* number of tries (1 = no retry).
    Delays grow geometrically from ``backoff_seconds`` by
    ``backoff_factor``, capped at ``max_backoff_seconds``.
    """

    max_attempts: int = 2
    backoff_seconds: float = 0.0
    backoff_factor: float = 2.0
    max_backoff_seconds: float = 30.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("RetryPolicy.max_attempts must be >= 1")
        if self.backoff_seconds < 0.0:
            raise ValueError("RetryPolicy.backoff_seconds must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("RetryPolicy.backoff_factor must be >= 1")

    def delays(self) -> Iterator[float]:
        """The sleep before each retry (``max_attempts - 1`` values)."""
        delay = self.backoff_seconds
        for _ in range(self.max_attempts - 1):
            yield min(delay, self.max_backoff_seconds)
            delay = delay * self.backoff_factor if delay else self.backoff_seconds

    @classmethod
    def from_config(cls, resilience) -> "RetryPolicy":
        """Build the policy a :class:`~repro.config.ResilienceConfig` asks for."""
        if resilience is None:
            return cls(max_attempts=1)
        return cls(
            max_attempts=resilience.max_retries + 1,
            backoff_seconds=resilience.retry_backoff_seconds,
            backoff_factor=resilience.retry_backoff_factor,
        )


class Deadline:
    """A cooperative wall-clock budget started at construction time.

    ``Deadline(None)`` is unlimited: it never expires and costs one
    attribute check per poll, so hot loops can poll unconditionally.
    ``clock`` (defaulting to :func:`time.monotonic`) is injectable so
    tests can expire a deadline without waiting.
    """

    __slots__ = ("_expires_at", "_clock")

    def __init__(
        self,
        budget_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._clock = clock
        if budget_seconds is None:
            self._expires_at = None
        else:
            if budget_seconds < 0.0:
                raise ValueError("Deadline budget must be >= 0 seconds")
            self._expires_at = clock() + budget_seconds

    @classmethod
    def unlimited(cls) -> "Deadline":
        return cls(None)

    @property
    def expired(self) -> bool:
        return self._expires_at is not None and self._clock() >= self._expires_at

    def remaining(self) -> Optional[float]:
        """Seconds left, or ``None`` when unlimited (never negative)."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - self._clock())


def retry_call(
    fn: Callable[[int], object],
    policy: RetryPolicy,
    retry_on: Tuple[Type[BaseException], ...] = (Exception,),
    deadline: Optional[Deadline] = None,
    sleep: Callable[[float], None] = time.sleep,
    site: str = "call",
):
    """Invoke ``fn(attempt)`` until it succeeds or the policy is exhausted.

    ``fn`` receives the zero-based attempt index so callers can vary the
    seed per attempt.  Exceptions outside ``retry_on`` propagate
    immediately; when the ``deadline`` expires between attempts, the last
    failure propagates rather than starting another try, and backoff
    sleeps are clamped to ``deadline.remaining()`` so a retry never
    sleeps past the budget it is meant to honour.  Each retry increments
    the ``resilience.retries`` counter.
    """
    metrics = telemetry.get_metrics()
    delays = policy.delays()
    attempt = 0
    while True:
        try:
            return fn(attempt)
        except retry_on as exc:
            try:
                delay = next(delays)
            except StopIteration:
                raise exc
            if deadline is not None:
                if deadline.expired:
                    raise exc
                remaining = deadline.remaining()
                if remaining is not None:
                    delay = min(delay, remaining)
            metrics.inc("resilience.retries")
            logger.warning(
                "%s failed (attempt %d/%d): %s — retrying",
                site,
                attempt + 1,
                policy.max_attempts,
                exc,
            )
            if delay > 0.0:
                sleep(delay)
            attempt += 1

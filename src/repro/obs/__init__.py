"""Persistent observability for the compilation pipeline.

:mod:`repro.telemetry` answers "what is this process doing right now";
:mod:`repro.obs` makes that knowledge survive the process and cross run
boundaries:

* :mod:`repro.obs.events` — a typed progress-event bus (``run_started``,
  ``block_progress``, ``grape_iteration``, ...) feeding JSONL files and
  a live TTY renderer; worker events relay through the parallel
  executor's merge-back.
* :mod:`repro.obs.resources` — per-stage and per-worker CPU time and
  peak RSS via ``getrusage``, with opt-in ``tracemalloc``.
* :mod:`repro.obs.ledger` — every run appends one schema-versioned row
  to a SQLite ledger (``~/.cache/repro/runs.db`` by default).
* :mod:`repro.obs.stats` — queries and the stage-regression compare
  behind the ``repro stats`` CLI.
* :mod:`repro.obs.observer` — the per-run object tying it together.

Like the telemetry recorders, the bus and profiler are process-global
with disabled no-op defaults: ``get_bus()``/``get_profiler()`` always
return something emittable, and a fully-off configuration costs one
boolean test per instrumentation point.
"""

from repro.obs.events import (
    EVENT_TYPES,
    EventBus,
    JsonlSink,
    MemorySink,
    NULL_BUS,
    TTYRenderer,
    get_bus,
    set_bus,
    validate_event,
)
from repro.obs.ledger import (
    DEFAULT_LEDGER_PATH,
    ENV_LEDGER,
    LEDGER_SCHEMA_VERSION,
    LedgerError,
    RunLedger,
    RunRecord,
    resolve_ledger_path,
)
from repro.obs.observer import NULL_OBSERVER, RunObserver, observe_run
from repro.obs.resources import (
    NULL_PROFILER,
    ResourceProfiler,
    current_rusage,
    get_profiler,
    set_profiler,
)
from repro.obs.stats import (
    REGRESSION_EXIT_CODE,
    CompareResult,
    StageDelta,
    StrategiesReport,
    StrategySummary,
    aggregate_strategies,
    compare_runs,
    format_compare,
    format_run,
    format_run_table,
    format_strategies,
)

__all__ = [
    "EVENT_TYPES",
    "EventBus",
    "JsonlSink",
    "MemorySink",
    "NULL_BUS",
    "TTYRenderer",
    "get_bus",
    "set_bus",
    "validate_event",
    "DEFAULT_LEDGER_PATH",
    "ENV_LEDGER",
    "LEDGER_SCHEMA_VERSION",
    "LedgerError",
    "RunLedger",
    "RunRecord",
    "resolve_ledger_path",
    "NULL_OBSERVER",
    "RunObserver",
    "observe_run",
    "NULL_PROFILER",
    "ResourceProfiler",
    "current_rusage",
    "get_profiler",
    "set_profiler",
    "REGRESSION_EXIT_CODE",
    "CompareResult",
    "StageDelta",
    "StrategiesReport",
    "StrategySummary",
    "aggregate_strategies",
    "compare_runs",
    "format_compare",
    "format_run",
    "format_run_table",
    "format_strategies",
]

"""Per-stage and per-worker resource profiling.

:class:`ResourceProfiler` measures CPU time (user + system, via
``resource.getrusage``) and peak RSS around each pipeline stage, and
accumulates worker-process usage shipped back through the executor's
merge-back (one record per worker pid, exactly like the span trees).

Peak RSS is a *process-lifetime* high-water mark — the kernel never
lowers ``ru_maxrss`` — so per-stage values read as "peak observed by the
end of this stage", not "allocated by this stage".  The opt-in
``tracemalloc`` mode answers the latter question: it snapshots the top
allocation sites per stage (Python allocations only, at a real slowdown;
keep it off in benchmarks).
"""

from __future__ import annotations

import contextvars
import resource
import sys
import tracemalloc
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "ResourceProfiler",
    "NULL_PROFILER",
    "current_rusage",
    "get_profiler",
    "set_profiler",
]

#: ``ru_maxrss`` is kilobytes on Linux but bytes on macOS.
_RSS_DIVISOR = 1024 if sys.platform == "darwin" else 1

#: allocation sites kept per stage in tracemalloc mode.
_TOP_ALLOCATIONS = 5


def current_rusage() -> Dict[str, float]:
    """This process's CPU seconds and peak RSS, normalized to KiB."""
    usage = resource.getrusage(resource.RUSAGE_SELF)
    return {
        "cpu_seconds": usage.ru_utime + usage.ru_stime,
        "peak_rss_kb": usage.ru_maxrss / _RSS_DIVISOR,
    }


class ResourceProfiler:
    """Accumulates stage and worker resource usage for one session.

    Stage measurements nest under :meth:`stage`; repeated stages (one
    per circuit in a batch) accumulate CPU and keep the max RSS.  Worker
    snapshots merge through :meth:`merge_worker_state`, keyed by pid.
    """

    def __init__(self, enabled: bool = True, trace_malloc: bool = False):
        self.enabled = enabled
        self.trace_malloc = trace_malloc and enabled
        #: stage -> {"cpu_seconds", "peak_rss_kb", "wall_seconds", ...}
        self.stages: Dict[str, Dict[str, Any]] = {}
        #: worker pid -> {"cpu_seconds", "peak_rss_kb", "chunks"}
        self.workers: Dict[int, Dict[str, float]] = {}
        self._tracing = False

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Measure one stage's CPU delta and RSS high-water mark."""
        if not self.enabled:
            yield
            return
        import time

        if self.trace_malloc and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._tracing = True
        if self.trace_malloc:
            tracemalloc.clear_traces()
        before = current_rusage()
        wall0 = time.perf_counter()
        try:
            yield
        finally:
            after = current_rusage()
            entry = self.stages.setdefault(
                name,
                {"cpu_seconds": 0.0, "peak_rss_kb": 0.0, "wall_seconds": 0.0},
            )
            entry["cpu_seconds"] += after["cpu_seconds"] - before["cpu_seconds"]
            entry["wall_seconds"] += time.perf_counter() - wall0
            entry["peak_rss_kb"] = max(entry["peak_rss_kb"], after["peak_rss_kb"])
            if self.trace_malloc:
                entry["top_allocations"] = self._top_allocations()

    @staticmethod
    def _top_allocations() -> List[Dict[str, Any]]:
        snapshot = tracemalloc.take_snapshot()
        stats = snapshot.statistics("lineno")[:_TOP_ALLOCATIONS]
        return [
            {
                "site": str(stat.traceback[0]) if stat.traceback else "?",
                "size_kb": stat.size / 1024.0,
                "count": stat.count,
            }
            for stat in stats
        ]

    # -- cross-process transfer ------------------------------------------

    def merge_worker_state(self, state: Optional[Dict[str, Any]]) -> None:
        """Fold one worker chunk's resource snapshot into this profiler.

        The state is the dict built by the worker (see
        :func:`repro.parallel.worker.run_chunk`): the chunk's CPU delta
        and the worker process's RSS high-water mark.  CPU deltas sum
        per pid; RSS takes the max (it is already a high-water mark).
        """
        if not self.enabled or not state:
            return
        pid = int(state.get("pid", 0))
        entry = self.workers.setdefault(
            pid, {"cpu_seconds": 0.0, "peak_rss_kb": 0.0, "chunks": 0.0}
        )
        entry["cpu_seconds"] += float(state.get("cpu_seconds", 0.0))
        entry["peak_rss_kb"] = max(
            entry["peak_rss_kb"], float(state.get("peak_rss_kb", 0.0))
        )
        entry["chunks"] += 1

    # -- reading ---------------------------------------------------------

    def totals(self) -> Dict[str, float]:
        """Parent + worker CPU seconds and the overall peak RSS."""
        cpu = sum(s["cpu_seconds"] for s in self.stages.values())
        cpu += sum(w["cpu_seconds"] for w in self.workers.values())
        peaks = [s["peak_rss_kb"] for s in self.stages.values()]
        peaks += [w["peak_rss_kb"] for w in self.workers.values()]
        return {
            "cpu_seconds": cpu,
            "peak_rss_kb": max(peaks, default=0.0),
        }

    def snapshot(self) -> Dict[str, Any]:
        """Everything measured so far, JSON-ready (ledger ``resources``)."""
        return {
            "stages": {name: dict(entry) for name, entry in self.stages.items()},
            "workers": {
                str(pid): dict(entry) for pid, entry in self.workers.items()
            },
            "totals": self.totals(),
        }

    def close(self) -> None:
        if self._tracing and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._tracing = False


#: The installed-by-default profiler: permanently disabled.
NULL_PROFILER = ResourceProfiler(enabled=False)

#: Context-scoped like the event bus (see :mod:`repro.obs.events`):
#: concurrent service jobs each install their own profiler without
#: clobbering each other; single-job processes behave as before.
_profiler: contextvars.ContextVar[ResourceProfiler] = contextvars.ContextVar(
    "repro_obs_profiler", default=NULL_PROFILER
)


def get_profiler() -> ResourceProfiler:
    """The profiler installed in the current context (no-op by default)."""
    return _profiler.get()


def set_profiler(profiler: Optional[ResourceProfiler]) -> ResourceProfiler:
    """Install ``profiler`` in the current context; returns the previous one."""
    previous = _profiler.get()
    _profiler.set(profiler if profiler is not None else NULL_PROFILER)
    return previous

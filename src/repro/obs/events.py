"""Typed progress events for the compilation pipeline.

Every flow emits a small, schema'd stream of events while it compiles:

    run_started      -> {circuit, method}
    stage_started    -> {stage}
    block_progress   -> {stage, block, completed, total}
    grape_iteration  -> {iterations, converged}
    stage_finished   -> {stage, seconds}
    run_finished     -> {circuit, method, seconds, status}

Events are plain dicts (one JSON object each) carrying ``event``, a wall
clock ``ts`` and the emitting ``pid`` on top of the kind-specific fields
above, so the stream is mergeable across processes without rebasing:
worker processes buffer their events in a :class:`MemorySink` and the
parallel executor replays them through the parent's bus alongside the
span-tree merge-back (see DESIGN.md).

The bus is the event source the compile service streams to clients
(:mod:`repro.service` installs one bus per job); it also feeds two local
sinks — a JSONL file (``--progress-events``) and a live TTY renderer
(``--progress``) — plus the run ledger's internal counters.  A disabled
bus costs one truth test per emit, the same deal :mod:`repro.telemetry`
offers.  The *installed* bus is context-scoped (see :func:`get_bus`), so
concurrent jobs in one process keep disjoint streams.
"""

from __future__ import annotations

import contextvars
import json
import os
import sys
import time
from typing import Any, Dict, IO, List, Optional

from repro import telemetry

__all__ = [
    "EVENT_TYPES",
    "EventBus",
    "JsonlSink",
    "MemorySink",
    "TTYRenderer",
    "NULL_BUS",
    "validate_event",
    "get_bus",
    "set_bus",
]

logger = telemetry.get_logger("obs.events")

#: kind -> {field: required python type(s)} for every event payload.
#: ``ts`` (float, wall clock) and ``pid`` (int) are common to all kinds.
EVENT_TYPES: Dict[str, Dict[str, tuple]] = {
    "run_started": {"circuit": (str,), "method": (str,)},
    "stage_started": {"stage": (str,)},
    "block_progress": {
        "stage": (str,),
        "block": (int,),
        "completed": (int,),
        "total": (int,),
    },
    "grape_iteration": {"iterations": (int,), "converged": (bool,)},
    "stage_finished": {"stage": (str,), "seconds": (int, float)},
    "run_finished": {
        "circuit": (str,),
        "method": (str,),
        "seconds": (int, float),
        "status": (str,),
    },
}


def validate_event(record: Any) -> List[str]:
    """Schema-check one event record; returns the list of problems.

    An empty list means the record is a valid event.  Used by the tests
    and the CI observability job to hold the emitted JSONL stream to the
    documented schema.
    """
    problems: List[str] = []
    if not isinstance(record, dict):
        return [f"event is {type(record).__name__}, not an object"]
    kind = record.get("event")
    if kind not in EVENT_TYPES:
        return [f"unknown event kind {kind!r}"]
    if not isinstance(record.get("ts"), (int, float)):
        problems.append("missing/non-numeric 'ts'")
    if not isinstance(record.get("pid"), int):
        problems.append("missing/non-integer 'pid'")
    fields = EVENT_TYPES[kind]
    for name, types in fields.items():
        value = record.get(name)
        # bool is an int subclass; reject it where an int is expected
        if value is None or not isinstance(value, types) or (
            isinstance(value, bool) and bool not in types
        ):
            problems.append(f"field {name!r} missing or not {types}")
    extras = set(record) - set(fields) - {"event", "ts", "pid"}
    if extras:
        problems.append(f"unexpected fields {sorted(extras)}")
    if kind == "block_progress" and not problems:
        if not (0 < record["completed"] <= record["total"]):
            problems.append("completed out of range (0, total]")
    return problems


class JsonlSink:
    """Append each event as one JSON line to a file."""

    def __init__(self, path: str):
        self.path = path
        self._fh: Optional[IO[str]] = open(path, "w")

    def handle(self, event: Dict[str, Any]) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(event) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class MemorySink:
    """Buffer events in memory (worker-side relay, tests)."""

    def __init__(self):
        self.events: List[Dict[str, Any]] = []

    def handle(self, event: Dict[str, Any]) -> None:
        self.events.append(event)

    def close(self) -> None:
        return None


class TTYRenderer:
    """Live progress lines on a terminal.

    On a TTY, ``block_progress`` redraws one status line in place
    (carriage return); on a plain stream only stage boundaries print, so
    redirected output stays small.
    """

    def __init__(self, stream: Optional[IO[str]] = None):
        self.stream = stream if stream is not None else sys.stderr
        self._is_tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._line_open = False

    def _clear_line(self) -> None:
        if self._line_open:
            self.stream.write("\r\x1b[2K" if self._is_tty else "\n")
            self._line_open = False

    def handle(self, event: Dict[str, Any]) -> None:
        kind = event.get("event")
        if kind == "run_started":
            self._clear_line()
            self.stream.write(
                f"compiling {event.get('circuit')} [{event.get('method')}]\n"
            )
        elif kind == "stage_started":
            self._clear_line()
            self.stream.write(f"  {event.get('stage')} ...")
            if self._is_tty:
                self._line_open = True
            else:
                self.stream.write("\n")
        elif kind == "block_progress" and self._is_tty:
            self.stream.write(
                f"\r\x1b[2K  {event.get('stage')} "
                f"{event.get('completed')}/{event.get('total')}"
            )
            self._line_open = True
        elif kind == "stage_finished":
            if self._is_tty:
                self.stream.write(
                    f"\r\x1b[2K  {event.get('stage')} "
                    f"done in {event.get('seconds', 0.0):.2f}s\n"
                )
                self._line_open = False
            else:
                self.stream.write(
                    f"  {event.get('stage')} done in "
                    f"{event.get('seconds', 0.0):.2f}s\n"
                )
        elif kind == "run_finished":
            self._clear_line()
            self.stream.write(
                f"finished {event.get('circuit')} [{event.get('status')}] "
                f"in {event.get('seconds', 0.0):.2f}s\n"
            )
        self.stream.flush()

    def close(self) -> None:
        self._clear_line()
        self.stream.flush()


class EventBus:
    """Dispatches progress events to its sinks.

    A bus with no sinks (and ``enabled=True``) still timestamps and
    validates nothing — emit is a no-op unless someone listens, so the
    instrumented flows can emit unconditionally.
    """

    def __init__(self, sinks: Optional[List[Any]] = None, enabled: bool = True):
        self._enabled = enabled
        self.sinks: List[Any] = list(sinks) if sinks else []

    @property
    def enabled(self) -> bool:
        """Whether emitting is worthwhile: enabled *and* someone listens."""
        return self._enabled and bool(self.sinks)

    def add_sink(self, sink: Any) -> None:
        self.sinks.append(sink)

    def remove_sink(self, sink: Any) -> None:
        if sink in self.sinks:
            self.sinks.remove(sink)

    def emit(self, kind: str, **fields: Any) -> None:
        """Build and dispatch one event (no-op when nothing listens)."""
        if not self.enabled:
            return
        if kind not in EVENT_TYPES:
            raise ValueError(f"unknown event kind {kind!r}")
        event = {"event": kind, "ts": time.time(), "pid": os.getpid(), **fields}
        self.dispatch(event)

    def dispatch(self, event: Dict[str, Any]) -> None:
        """Hand an already-built event to every sink.

        Used both by :meth:`emit` and by the executor's merge-back, which
        replays fully formed worker events (their original ``ts`` and
        ``pid`` intact) through the parent's sinks.
        """
        if not self.enabled:
            return
        for sink in self.sinks:
            try:
                sink.handle(event)
            except Exception:
                # a broken sink must never abort a compilation
                logger.warning(
                    "event sink %r failed; continuing", sink, exc_info=True
                )

    def replay(self, events: List[Dict[str, Any]]) -> None:
        """Dispatch a batch of worker events in order."""
        for event in events:
            self.dispatch(event)

    def close(self) -> None:
        for sink in self.sinks:
            try:
                sink.close()
            except Exception:  # pragma: no cover - defensive
                logger.warning("event sink %r failed to close", sink)


#: The installed-by-default bus: permanently disabled, dispatches nothing.
NULL_BUS = EventBus(enabled=False)

#: The installed bus is *context-scoped*, not process-global: each job in a
#: multi-job process (the ``repro.service`` daemon) installs its bus inside
#: its own :mod:`contextvars` context, so two concurrent jobs can never
#: interleave each other's streams or clobber each other's ``set_bus``.
#: Single-job processes see the old semantics unchanged.  Fork-started
#: workers inherit the forking thread's context, and
#: :func:`repro.parallel.worker.run_chunk` still drops the inherited bus
#: explicitly; fresh threads start from an *empty* context (ContextVars do
#: not follow ``threading.Thread``), which is why
#: :class:`repro.racing.race.StrategyRace` copies the caller's context into
#: every strategy thread it spawns.
_bus: contextvars.ContextVar[EventBus] = contextvars.ContextVar(
    "repro_obs_bus", default=NULL_BUS
)


def get_bus() -> EventBus:
    """The bus installed in the current context (a disabled no-op by default)."""
    return _bus.get()


def set_bus(bus: Optional[EventBus]) -> EventBus:
    """Install ``bus`` in the current context; returns the previous one.

    ``None`` restores :data:`NULL_BUS` (the reset idiom used by fork-safe
    workers and test teardown).
    """
    previous = _bus.get()
    _bus.set(bus if bus is not None else NULL_BUS)
    return previous

"""Per-run observation: one object owning events, resources and ledger.

Every flow's ``compile`` builds a :class:`RunObserver` through
:func:`observe_run` and wraps its work in it.  The observer

* installs the run's event bus and resource profiler globally for the
  duration (so instrumented leaf code — GRAPE, the pulse library, the
  parallel workers — reaches them without threading arguments through
  every call, exactly how :mod:`repro.telemetry` installs its tracer),
* emits the ``run_started`` / ``run_finished`` envelope and, through
  :meth:`stage`, the per-stage events plus wall-clock and resource
  accounting the ledger row needs,
* counts ``grape_iteration`` events with a private sink so the ledger
  can report search effort even when no user-facing sink is attached,
* appends the finished run to the :class:`~repro.obs.ledger.RunLedger`.

When observability is entirely off, :func:`observe_run` returns the
shared :data:`NULL_OBSERVER` whose every method is a no-op — the
compile path stays byte-identical to an uninstrumented build.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.obs import events as obs_events
from repro.obs import resources as obs_resources
from repro.obs.ledger import RunLedger, RunRecord
from repro.racing.breaker import get_breaker_board
from repro.racing.stats import RaceStats, get_race_stats

__all__ = ["RunObserver", "NULL_OBSERVER", "observe_run"]


class _GrapeCounter:
    """Internal sink tallying GRAPE effort for the ledger row."""

    def __init__(self):
        self.runs = 0
        self.iterations = 0

    def handle(self, event: Dict[str, Any]) -> None:
        if event.get("event") == "grape_iteration":
            self.runs += 1
            self.iterations += int(event.get("iterations", 0))

    def close(self) -> None:
        return None


class RunObserver:
    """Scopes one compilation run's observability.

    Use as a context manager around the run, :meth:`stage` around each
    stage, and :meth:`record` (after the report exists) to append the
    ledger row.  Built by :func:`observe_run`; not usually constructed
    directly.
    """

    enabled = True

    def __init__(
        self,
        circuit: str,
        method: str,
        kind: str = "run",
        label: Optional[str] = None,
        fingerprint: Optional[str] = None,
        bus: Optional[obs_events.EventBus] = None,
        own_bus: bool = False,
        profiler: Optional[obs_resources.ResourceProfiler] = None,
        ledger: Optional[RunLedger] = None,
    ):
        self.circuit = circuit
        self.method = method
        self.kind = kind
        self.label = label
        self.fingerprint = fingerprint
        self.bus = bus if bus is not None else obs_events.NULL_BUS
        self.profiler = (
            profiler if profiler is not None else obs_resources.NULL_PROFILER
        )
        self.ledger = ledger
        #: stage name -> wall seconds, in execution order.
        self.stage_seconds: Dict[str, float] = {}
        self.wall_seconds = 0.0
        self._own_bus = own_bus
        self._counter = _GrapeCounter() if ledger is not None else None
        #: race-stats snapshot taken on entry; the ledger row stores the
        #: delta so each run reports only its own races.
        self._race_start: Optional[Dict[str, Any]] = None
        self._prev_bus: Optional[obs_events.EventBus] = None
        self._prev_profiler: Optional[obs_resources.ResourceProfiler] = None
        self._t0 = 0.0

    # -- run envelope ----------------------------------------------------

    def __enter__(self) -> "RunObserver":
        if self._counter is not None:
            self.bus.add_sink(self._counter)
        if self._own_bus:
            self._prev_bus = obs_events.set_bus(self.bus)
        self._prev_profiler = obs_resources.set_profiler(self.profiler)
        if self.ledger is not None:
            self._race_start = get_race_stats().snapshot()
        self._t0 = time.perf_counter()
        self.bus.emit("run_started", circuit=self.circuit, method=self.method)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall_seconds = time.perf_counter() - self._t0
        self.bus.emit(
            "run_finished",
            circuit=self.circuit,
            method=self.method,
            seconds=self.wall_seconds,
            status="error" if exc_type is not None else "ok",
        )
        if self._counter is not None:
            self.bus.remove_sink(self._counter)
        obs_resources.set_profiler(self._prev_profiler)
        self.profiler.close()
        if self._own_bus:
            obs_events.set_bus(self._prev_bus)
            self.bus.close()

    # -- stages ----------------------------------------------------------

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Emit stage events and account wall clock + resources."""
        self.bus.emit("stage_started", stage=name)
        wall0 = time.perf_counter()
        try:
            with self.profiler.stage(name):
                yield
        finally:
            seconds = time.perf_counter() - wall0
            self.stage_seconds[name] = (
                self.stage_seconds.get(name, 0.0) + seconds
            )
            self.bus.emit("stage_finished", stage=name, seconds=seconds)

    def block_progress(
        self, stage: str, block: int, completed: int, total: int
    ) -> None:
        self.bus.emit(
            "block_progress",
            stage=stage,
            block=int(block),
            completed=int(completed),
            total=int(total),
        )

    def chunk_progress(
        self, stage: str, total: int
    ) -> Optional[Callable[[int, List[Any]], None]]:
        """An executor ``on_chunk`` callback emitting one event per block.

        Emission happens parent-side as chunks complete, so the merged
        stream contains every block exactly once regardless of worker
        count (returns ``None`` when nothing listens, keeping the
        executor's fast path untouched).
        """
        if not self.bus.enabled or total <= 0:
            return None
        state = {"completed": 0}

        def on_chunk(start: int, values: List[Any]) -> None:
            for offset in range(len(values)):
                state["completed"] += 1
                self.block_progress(
                    stage, start + offset, state["completed"], total
                )

        return on_chunk

    # -- ledger ----------------------------------------------------------

    def record_values(self, **values: Any) -> Optional[int]:
        """Append a ledger row from explicit values plus observed state."""
        if self.ledger is None:
            return None
        totals = self.profiler.totals()
        racing: Dict[str, Any] = {}
        if self._race_start is not None:
            delta = RaceStats.delta(
                self._race_start, get_race_stats().snapshot()
            )
            if delta.get("races") or delta.get("strategies"):
                racing = delta
                breakers = get_breaker_board().snapshot()
                if breakers:
                    racing["breakers"] = breakers
        record = RunRecord(
            kind=self.kind,
            label=self.label,
            fingerprint=self.fingerprint,
            grape_searches=self._counter.runs if self._counter else 0,
            grape_iterations=self._counter.iterations if self._counter else 0,
            cpu_seconds=totals["cpu_seconds"],
            peak_rss_kb=totals["peak_rss_kb"],
            stages=dict(self.stage_seconds),
            resources=self.profiler.snapshot() if self.profiler.enabled else {},
            racing=racing,
            **values,
        )
        return self.ledger.record(record)

    def record(self, report: Any, extra: Optional[Dict[str, Any]] = None) -> Optional[int]:
        """Append a :class:`CompilationReport`'s run to the ledger."""
        if self.ledger is None:
            return None
        stats = getattr(report, "stats", {}) or {}
        verification = getattr(report, "verification", None)
        return self.record_values(
            circuit=report.circuit_name,
            method=report.method,
            wall_seconds=float(report.compile_seconds),
            latency_ns=float(report.latency_ns),
            fidelity=float(report.fidelity),
            pulse_count=int(report.pulse_count),
            cache_hits=int(stats.get("cache_hits", 0)),
            cache_misses=int(stats.get("cache_misses", 0)),
            degraded_blocks=len(getattr(report, "degraded_blocks", []) or []),
            verification=(
                getattr(verification, "status", None) if verification else None
            ),
            extra=dict(extra) if extra else {},
        )


class _NullObserver:
    """The do-nothing observer installed when observability is off."""

    enabled = False
    bus = obs_events.NULL_BUS
    profiler = obs_resources.NULL_PROFILER
    ledger = None
    stage_seconds: Dict[str, float] = {}
    wall_seconds = 0.0

    def __enter__(self) -> "_NullObserver":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        yield

    def block_progress(self, stage, block, completed, total) -> None:
        return None

    def chunk_progress(self, stage, total) -> None:
        return None

    def record_values(self, **values) -> None:
        return None

    def record(self, report, extra=None) -> None:
        return None


NULL_OBSERVER = _NullObserver()


def observe_run(
    config: Any,
    *,
    circuit: str,
    method: str,
    fingerprint: Optional[str] = None,
    kind: str = "run",
) -> Any:
    """Build the observer for one run from config + installed globals.

    ``config`` is an :class:`~repro.config.ObsConfig` (or ``None`` for
    all-off).  An already-installed enabled bus (a batch session's, or a
    test's) is reused rather than replaced; otherwise a bus is created
    from the config's sinks and owned — installed on entry, restored and
    closed on exit.  Returns :data:`NULL_OBSERVER` when nothing at all
    is switched on.
    """
    installed_bus = obs_events.get_bus()
    sinks: List[Any] = []
    ledger: Optional[RunLedger] = None
    profile = False
    trace_malloc = False
    label = None
    if config is not None:
        if not installed_bus.enabled:
            if getattr(config, "events_path", None):
                sinks.append(obs_events.JsonlSink(config.events_path))
            if getattr(config, "progress", False):
                sinks.append(obs_events.TTYRenderer())
        if config.ledger_enabled():
            ledger = RunLedger(getattr(config, "ledger_path", None))
        profile = bool(getattr(config, "profile_resources", True))
        trace_malloc = bool(getattr(config, "trace_malloc", False))
        label = getattr(config, "label", None)

    if installed_bus.enabled:
        bus, own_bus = installed_bus, False
    elif sinks or ledger is not None:
        bus, own_bus = obs_events.EventBus(sinks), True
    else:
        bus, own_bus = obs_events.NULL_BUS, False

    installed_profiler = obs_resources.get_profiler()
    active = bus is not obs_events.NULL_BUS or installed_profiler.enabled
    if not active:
        return NULL_OBSERVER

    profiler = obs_resources.ResourceProfiler(
        enabled=profile, trace_malloc=trace_malloc
    )
    return RunObserver(
        circuit=circuit,
        method=method,
        kind=kind,
        label=label,
        fingerprint=fingerprint,
        bus=bus,
        own_bus=own_bus,
        profiler=profiler,
        ledger=ledger,
    )

"""The persistent run ledger: every compile appends one SQLite row.

Telemetry from a single process evaporates with it; the ledger is the
durable record that lets ``repro stats`` answer "is this build faster
than last week's?".  Each :class:`RunRecord` carries the run's identity
(circuit, flow, config fingerprint), its headline results (latency,
fidelity, compile seconds), per-stage wall-clock extracted from the
run's observer, GRAPE search/iteration counts, library hit rate,
degraded-block and verification outcomes, and peak resource usage.

The database lives at ``~/.cache/repro/runs.db`` by default; override
with ``ObsConfig.ledger_path`` or the ``REPRO_LEDGER`` environment
variable (a path enables recording *and* points at the file).  Records
are schema-versioned: a newer database refuses to open rather than
silently misreading rows.

Writes use one short-lived connection per operation with SQLite's WAL
mode and a busy timeout, so concurrent batch invocations appending to
one ledger do not corrupt or lose rows.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.config import ENV_LEDGER
from repro.exceptions import ReproError

__all__ = [
    "LEDGER_SCHEMA_VERSION",
    "ENV_LEDGER",
    "DEFAULT_LEDGER_PATH",
    "LedgerError",
    "RunLedger",
    "RunRecord",
    "resolve_ledger_path",
]

#: bump when the ``runs`` table layout changes incompatibly.
#: v2 adds the ``racing`` column (per-strategy race outcome deltas).
LEDGER_SCHEMA_VERSION = 2

DEFAULT_LEDGER_PATH = os.path.join("~", ".cache", "repro", "runs.db")

#: values of ``REPRO_LEDGER`` that enable recording at the default path
#: instead of naming a file.
_TRUTHY = {"1", "true", "yes", "on"}


class LedgerError(ReproError):
    """Raised for unusable ledger files or unknown run ids."""


def resolve_ledger_path(explicit: Optional[str] = None) -> str:
    """The ledger file to use: explicit > ``REPRO_LEDGER`` > default."""
    if explicit:
        return os.path.expanduser(explicit)
    raw = os.environ.get(ENV_LEDGER, "").strip()
    if raw and raw.lower() not in _TRUTHY:
        return os.path.expanduser(raw)
    return os.path.expanduser(DEFAULT_LEDGER_PATH)


@dataclass
class RunRecord:
    """One ledger row; ``id``/``created_at`` are assigned on record."""

    circuit: str
    method: str
    kind: str = "run"  # "run" | "suite" | "bench"
    label: Optional[str] = None
    fingerprint: Optional[str] = None
    wall_seconds: float = 0.0
    latency_ns: float = 0.0
    fidelity: float = 0.0
    pulse_count: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    grape_searches: int = 0
    grape_iterations: int = 0
    degraded_blocks: int = 0
    verification: Optional[str] = None
    cpu_seconds: float = 0.0
    peak_rss_kb: float = 0.0
    #: stage name -> wall seconds, insertion-ordered.
    stages: Dict[str, float] = field(default_factory=dict)
    #: full resource-profiler snapshot (may be empty).
    resources: Dict[str, Any] = field(default_factory=dict)
    #: per-strategy race outcomes accrued during the run (empty when the
    #: run never raced): ``{"races": N, "strategies": {...}, "breakers"?: {...}}``.
    racing: Dict[str, Any] = field(default_factory=dict)
    #: free-form extras (benchmark payloads, suite footers, ...).
    extra: Dict[str, Any] = field(default_factory=dict)
    id: Optional[int] = None
    created_at: Optional[float] = None

    @property
    def hit_rate(self) -> Optional[float]:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else None


_COLUMNS = (
    "schema_version", "created_at", "kind", "label", "circuit", "method",
    "fingerprint", "wall_seconds", "latency_ns", "fidelity", "pulse_count",
    "cache_hits", "cache_misses", "grape_searches", "grape_iterations",
    "degraded_blocks", "verification", "cpu_seconds", "peak_rss_kb",
    "stages", "resources", "racing", "extra",
)

_CREATE = """
CREATE TABLE IF NOT EXISTS runs (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    schema_version INTEGER NOT NULL,
    created_at REAL NOT NULL,
    kind TEXT NOT NULL,
    label TEXT,
    circuit TEXT NOT NULL,
    method TEXT NOT NULL,
    fingerprint TEXT,
    wall_seconds REAL,
    latency_ns REAL,
    fidelity REAL,
    pulse_count INTEGER,
    cache_hits INTEGER,
    cache_misses INTEGER,
    grape_searches INTEGER,
    grape_iterations INTEGER,
    degraded_blocks INTEGER,
    verification TEXT,
    cpu_seconds REAL,
    peak_rss_kb REAL,
    stages TEXT,
    resources TEXT,
    racing TEXT,
    extra TEXT
);
CREATE TABLE IF NOT EXISTS baselines (
    name TEXT PRIMARY KEY,
    run_id INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT
);
CREATE INDEX IF NOT EXISTS runs_circuit ON runs (circuit, method);
"""


class RunLedger:
    """Append-and-query interface over the SQLite run database."""

    def __init__(self, path: Optional[str] = None):
        self.path = resolve_ledger_path(path)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with self._session() as conn:
            conn.executescript(_CREATE)
            row = conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                conn.execute(
                    "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                    (str(LEDGER_SCHEMA_VERSION),),
                )
            elif int(row[0]) > LEDGER_SCHEMA_VERSION:
                raise LedgerError(
                    f"ledger {self.path} uses schema {row[0]}; this build "
                    f"reads <= {LEDGER_SCHEMA_VERSION}"
                )
            elif int(row[0]) < LEDGER_SCHEMA_VERSION:
                self._migrate(conn, int(row[0]))

    @staticmethod
    def _migrate(conn: sqlite3.Connection, from_version: int) -> None:
        """Upgrade an older database in place (v1 -> v2 adds ``racing``)."""
        if from_version < 2:
            columns = {
                row[1] for row in conn.execute("PRAGMA table_info(runs)")
            }
            if "racing" not in columns:
                conn.execute("ALTER TABLE runs ADD COLUMN racing TEXT")
        conn.execute(
            "UPDATE meta SET value = ? WHERE key = 'schema_version'",
            (str(LEDGER_SCHEMA_VERSION),),
        )

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=30.0)
        conn.row_factory = sqlite3.Row
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA busy_timeout=30000")
        return conn

    @contextmanager
    def _session(self) -> Iterator[sqlite3.Connection]:
        """One short-lived connection: commit on success, always close."""
        conn = self._connect()
        try:
            with conn:
                yield conn
        finally:
            conn.close()

    # -- writing ---------------------------------------------------------

    def record(self, record: RunRecord) -> int:
        """Append one run; returns the assigned row id."""
        record.created_at = (
            record.created_at if record.created_at is not None else time.time()
        )
        values = {
            "schema_version": LEDGER_SCHEMA_VERSION,
            "created_at": record.created_at,
            "kind": record.kind,
            "label": record.label,
            "circuit": record.circuit,
            "method": record.method,
            "fingerprint": record.fingerprint,
            "wall_seconds": float(record.wall_seconds),
            "latency_ns": float(record.latency_ns),
            "fidelity": float(record.fidelity),
            "pulse_count": int(record.pulse_count),
            "cache_hits": int(record.cache_hits),
            "cache_misses": int(record.cache_misses),
            "grape_searches": int(record.grape_searches),
            "grape_iterations": int(record.grape_iterations),
            "degraded_blocks": int(record.degraded_blocks),
            "verification": record.verification,
            "cpu_seconds": float(record.cpu_seconds),
            "peak_rss_kb": float(record.peak_rss_kb),
            "stages": json.dumps(record.stages),
            "resources": json.dumps(record.resources, default=float),
            "racing": json.dumps(record.racing, default=float),
            "extra": json.dumps(record.extra, default=float),
        }
        with self._session() as conn:
            cursor = conn.execute(
                f"INSERT INTO runs ({', '.join(_COLUMNS)}) "
                f"VALUES ({', '.join(':' + c for c in _COLUMNS)})",
                values,
            )
            record.id = int(cursor.lastrowid)
        return record.id

    # -- reading ---------------------------------------------------------

    @staticmethod
    def _from_row(row: sqlite3.Row) -> RunRecord:
        return RunRecord(
            id=int(row["id"]),
            created_at=float(row["created_at"]),
            kind=row["kind"],
            label=row["label"],
            circuit=row["circuit"],
            method=row["method"],
            fingerprint=row["fingerprint"],
            wall_seconds=float(row["wall_seconds"]),
            latency_ns=float(row["latency_ns"]),
            fidelity=float(row["fidelity"]),
            pulse_count=int(row["pulse_count"]),
            cache_hits=int(row["cache_hits"]),
            cache_misses=int(row["cache_misses"]),
            grape_searches=int(row["grape_searches"]),
            grape_iterations=int(row["grape_iterations"]),
            degraded_blocks=int(row["degraded_blocks"]),
            verification=row["verification"],
            cpu_seconds=float(row["cpu_seconds"]),
            peak_rss_kb=float(row["peak_rss_kb"]),
            stages=json.loads(row["stages"] or "{}"),
            resources=json.loads(row["resources"] or "{}"),
            racing=json.loads(row["racing"] or "{}"),
            extra=json.loads(row["extra"] or "{}"),
        )

    def runs(
        self,
        limit: int = 20,
        circuit: Optional[str] = None,
        method: Optional[str] = None,
    ) -> List[RunRecord]:
        """Most recent runs first, optionally filtered."""
        query = "SELECT * FROM runs"
        clauses, params = [], []
        if circuit is not None:
            clauses.append("circuit = ?")
            params.append(circuit)
        if method is not None:
            clauses.append("method = ?")
            params.append(method)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY id DESC LIMIT ?"
        params.append(int(limit))
        with self._session() as conn:
            rows = conn.execute(query, params).fetchall()
        return [self._from_row(row) for row in rows]

    def run(self, run_id: int) -> RunRecord:
        """Fetch one run by id; raises :class:`LedgerError` when absent."""
        with self._session() as conn:
            row = conn.execute(
                "SELECT * FROM runs WHERE id = ?", (int(run_id),)
            ).fetchone()
        if row is None:
            raise LedgerError(f"no run {run_id} in ledger {self.path}")
        return self._from_row(row)

    def __len__(self) -> int:
        with self._session() as conn:
            return int(conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0])

    # -- baselines -------------------------------------------------------

    def set_baseline(self, run_id: int, name: str = "default") -> None:
        """Pin ``run_id`` as the named baseline for future compares."""
        self.run(run_id)  # validates the id exists
        with self._session() as conn:
            conn.execute(
                "INSERT INTO baselines (name, run_id) VALUES (?, ?) "
                "ON CONFLICT(name) DO UPDATE SET run_id = excluded.run_id",
                (name, int(run_id)),
            )

    def baseline(self, name: str = "default") -> Optional[RunRecord]:
        """The pinned baseline run, or ``None`` when unset."""
        with self._session() as conn:
            row = conn.execute(
                "SELECT run_id FROM baselines WHERE name = ?", (name,)
            ).fetchone()
        if row is None:
            return None
        return self.run(int(row[0]))

    def clear_baseline(self, name: str = "default") -> bool:
        """Unpin the named baseline; returns whether one existed."""
        with self._session() as conn:
            cursor = conn.execute(
                "DELETE FROM baselines WHERE name = ?", (name,)
            )
            return cursor.rowcount > 0

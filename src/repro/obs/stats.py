"""Query and regression analysis over the run ledger.

``compare_runs`` diffs two ledger records stage by stage and flags
regressions: a stage regressed when it got slower by more than
``threshold`` (relative) *and* by more than ``min_seconds`` (absolute —
a 2 ms stage doubling is scheduler noise, not a regression).  The CLI
(``repro stats compare``) exits with :data:`REGRESSION_EXIT_CODE` when
any stage or the total wall clock regresses, which is the CI perf gate.

``aggregate_strategies`` sums the per-run ``racing`` columns into
portfolio win rates per block width — the ``repro stats strategies``
report that shows which synthesis/QOC strategy actually wins races on
which block sizes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.ledger import RunRecord
from repro.racing.stats import OUTCOME_FIELDS

__all__ = [
    "REGRESSION_EXIT_CODE",
    "StageDelta",
    "CompareResult",
    "StrategySummary",
    "StrategiesReport",
    "aggregate_strategies",
    "compare_runs",
    "format_compare",
    "format_run",
    "format_run_table",
    "format_strategies",
]

#: ``repro stats compare`` exit status when a regression is detected
#: (distinct from 1/2, the generic error codes).
REGRESSION_EXIT_CODE = 3

#: default relative slowdown tolerated before a stage counts as regressed.
DEFAULT_THRESHOLD = 0.25

#: default absolute slowdown (seconds) a stage must exceed to count.
DEFAULT_MIN_SECONDS = 0.05


@dataclass(frozen=True)
class StageDelta:
    """One stage's timing, before vs after."""

    stage: str
    before: Optional[float]
    after: Optional[float]
    regressed: bool

    @property
    def ratio(self) -> Optional[float]:
        if self.before is None or self.after is None or self.before <= 0.0:
            return None
        return self.after / self.before


@dataclass
class CompareResult:
    """Everything ``repro stats compare`` reports."""

    base: RunRecord
    new: RunRecord
    threshold: float
    min_seconds: float
    stages: List[StageDelta] = field(default_factory=list)
    wall_delta: Optional[StageDelta] = None

    @property
    def regressions(self) -> List[StageDelta]:
        out = [delta for delta in self.stages if delta.regressed]
        if self.wall_delta is not None and self.wall_delta.regressed:
            out.append(self.wall_delta)
        return out

    @property
    def regressed(self) -> bool:
        return bool(self.regressions)


def _is_regression(
    before: Optional[float],
    after: Optional[float],
    threshold: float,
    min_seconds: float,
) -> bool:
    if before is None or after is None:
        return False
    return after > before * (1.0 + threshold) and (after - before) > min_seconds


def compare_runs(
    base: RunRecord,
    new: RunRecord,
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> CompareResult:
    """Diff two ledger records stage by stage.

    Stages present in only one run show with a ``None`` on the other
    side and never count as regressions (a pipeline change, not a
    slowdown) — only stages timed in both runs gate.
    """
    result = CompareResult(
        base=base, new=new, threshold=threshold, min_seconds=min_seconds
    )
    names: List[str] = list(base.stages)
    names.extend(stage for stage in new.stages if stage not in base.stages)
    for name in names:
        before = base.stages.get(name)
        after = new.stages.get(name)
        result.stages.append(
            StageDelta(
                stage=name,
                before=before,
                after=after,
                regressed=_is_regression(before, after, threshold, min_seconds),
            )
        )
    result.wall_delta = StageDelta(
        stage="(wall clock)",
        before=base.wall_seconds,
        after=new.wall_seconds,
        regressed=_is_regression(
            base.wall_seconds, new.wall_seconds, threshold, min_seconds
        ),
    )
    return result


# -- strategy racing ------------------------------------------------------


@dataclass
class StrategySummary:
    """Accumulated race outcomes for one (site, signature, strategy)."""

    site: str
    signature: str
    strategy: str
    attempts: int = 0
    wins: int = 0
    cancellations: int = 0
    failures: int = 0
    timeouts: int = 0
    skipped: int = 0
    abandoned: int = 0

    @property
    def win_rate(self) -> Optional[float]:
        return self.wins / self.attempts if self.attempts else None


@dataclass
class StrategiesReport:
    """Everything ``repro stats strategies`` reports."""

    runs_scanned: int = 0
    raced_runs: int = 0
    races: int = 0
    summaries: List[StrategySummary] = field(default_factory=list)


def aggregate_strategies(records: List[RunRecord]) -> StrategiesReport:
    """Sum the ``racing`` columns of ``records`` into per-strategy totals.

    Keys in the stored JSON flatten to ``site|signature|strategy`` (see
    :meth:`repro.racing.stats.RaceStats.snapshot`); malformed keys from
    hand-edited rows are skipped rather than crashing the report.
    """
    report = StrategiesReport(runs_scanned=len(records))
    table: Dict[tuple, StrategySummary] = {}
    for record in records:
        racing = record.racing or {}
        strategies = racing.get("strategies") or {}
        races = int(racing.get("races", 0) or 0)
        if not strategies and not races:
            continue
        report.raced_runs += 1
        report.races += races
        for key, counts in strategies.items():
            parts = str(key).split("|")
            if len(parts) != 3:
                continue
            summary = table.setdefault(
                tuple(parts), StrategySummary(*parts)
            )
            for outcome in OUTCOME_FIELDS:
                value = int(counts.get(outcome, 0) or 0)
                setattr(summary, outcome, getattr(summary, outcome) + value)
    report.summaries = [
        table[key]
        for key in sorted(
            table, key=lambda k: (k[0], k[1], -table[k].wins, k[2])
        )
    ]
    return report


def format_strategies(report: StrategiesReport) -> str:
    """``repro stats strategies`` output: win rates per block width."""
    if not report.summaries:
        return (
            f"(no raced runs in the last {report.runs_scanned} "
            "ledger rows — compile with --race to populate)"
        )
    lines = [
        f"{report.races} races across {report.raced_runs} of "
        f"{report.runs_scanned} runs scanned",
        f"{'site':<10} {'width':<6} {'strategy':<18} {'attempts':>8} "
        f"{'wins':>6} {'win%':>7} {'cancel':>7} {'fail':>6} {'t/o':>5} "
        f"{'skip':>5}",
    ]
    for s in report.summaries:
        rate = s.win_rate
        win_pct = f"{100.0 * rate:6.1f}%" if rate is not None else "     --"
        lines.append(
            f"{s.site:<10} {s.signature:<6} {s.strategy:<18.18} "
            f"{s.attempts:>8} {s.wins:>6} {win_pct:>7} "
            f"{s.cancellations:>7} {s.failures:>6} {s.timeouts:>5} "
            f"{s.skipped:>5}"
        )
    return "\n".join(lines)


# -- CLI formatting -------------------------------------------------------


def _age(created_at: Optional[float]) -> str:
    if created_at is None:
        return "?"
    seconds = max(0.0, time.time() - created_at)
    if seconds < 120:
        return f"{seconds:.0f}s ago"
    if seconds < 7200:
        return f"{seconds / 60:.0f}m ago"
    if seconds < 172800:
        return f"{seconds / 3600:.1f}h ago"
    return f"{seconds / 86400:.1f}d ago"


def format_run_table(records: List[RunRecord]) -> str:
    """``repro stats list`` output: one row per run, newest first."""
    if not records:
        return "(ledger is empty)"
    lines = [
        f"{'id':>5}  {'when':>9}  {'kind':<5} {'circuit':<16} {'method':<12} "
        f"{'wall':>8}  {'latency':>10}  {'fidelity':>8}  {'cache':>6}  deg"
    ]
    for record in records:
        rate = record.hit_rate
        cache = f"{100.0 * rate:5.1f}%" if rate is not None else "    --"
        lines.append(
            f"{record.id:>5}  {_age(record.created_at):>9}  "
            f"{record.kind:<5} {record.circuit:<16.16} {record.method:<12} "
            f"{record.wall_seconds:>7.2f}s  {record.latency_ns:>8.1f}ns  "
            f"{record.fidelity:>8.4f}  {cache:>6}  "
            f"{record.degraded_blocks or ''}"
        )
    return "\n".join(lines)


def format_run(record: RunRecord) -> str:
    """``repro stats show`` output: the full record, stages included."""
    rate = record.hit_rate
    lines = [
        f"run {record.id}: {record.circuit} [{record.method}]"
        + (f"  label={record.label}" if record.label else ""),
        f"  kind={record.kind}  recorded {_age(record.created_at)}"
        + (f"  fingerprint={record.fingerprint}" if record.fingerprint else ""),
        f"  wall={record.wall_seconds:.3f}s  latency={record.latency_ns:.1f}ns  "
        f"fidelity={record.fidelity:.4f}  pulses={record.pulse_count}",
        f"  cache: {record.cache_hits} hits / {record.cache_misses} misses"
        + (f" ({100.0 * rate:.1f}%)" if rate is not None else ""),
        f"  grape: {record.grape_searches} searches, "
        f"{record.grape_iterations} iterations",
        f"  degraded={record.degraded_blocks}  "
        f"verification={record.verification or '--'}",
        f"  resources: cpu={record.cpu_seconds:.3f}s  "
        f"peak_rss={record.peak_rss_kb / 1024.0:.1f} MiB",
    ]
    if record.stages:
        lines.append("  stages:")
        width = max(len(name) for name in record.stages)
        for name, seconds in record.stages.items():
            lines.append(f"    {name:<{width}}  {seconds:>9.4f}s")
    workers = record.resources.get("workers") or {}
    if workers:
        lines.append("  workers:")
        for pid, usage in workers.items():
            lines.append(
                f"    pid {pid}: cpu={usage.get('cpu_seconds', 0.0):.3f}s  "
                f"peak_rss={usage.get('peak_rss_kb', 0.0) / 1024.0:.1f} MiB  "
                f"chunks={usage.get('chunks', 0):.0f}"
            )
    return "\n".join(lines)


def format_compare(result: CompareResult) -> str:
    """``repro stats compare`` output: per-stage diff plus a verdict."""
    base, new = result.base, result.new
    lines = [
        f"comparing run {base.id} ({base.circuit} [{base.method}]) "
        f"-> run {new.id} ({new.circuit} [{new.method}])",
        f"  threshold: +{100.0 * result.threshold:.0f}% and "
        f"> {result.min_seconds:.3f}s absolute",
    ]
    rows = result.stages + (
        [result.wall_delta] if result.wall_delta is not None else []
    )
    width = max((len(delta.stage) for delta in rows), default=5)
    for delta in rows:
        before = f"{delta.before:.4f}s" if delta.before is not None else "--"
        after = f"{delta.after:.4f}s" if delta.after is not None else "--"
        ratio = delta.ratio
        trend = f"{ratio:5.2f}x" if ratio is not None else "     "
        flag = "  REGRESSED" if delta.regressed else ""
        lines.append(
            f"  {delta.stage:<{width}}  {before:>10} -> {after:>10}  "
            f"{trend}{flag}"
        )
    if result.regressed:
        names = ", ".join(delta.stage for delta in result.regressions)
        lines.append(f"verdict: REGRESSED ({names})")
    else:
        lines.append("verdict: ok")
    return "\n".join(lines)

"""Counters, gauges and fixed-bucket histograms for the EPOC pipeline.

A :class:`MetricsRegistry` is a flat, name-keyed store::

    registry.inc("library.hits")
    registry.gauge("library.size", len(lib))
    registry.observe("grape.iterations", result.iterations)

``to_dict()`` renders everything as plain JSON (the ``--metrics FILE``
CLI output); ``flat()`` collapses the same data to ``{name: float}``
pairs suitable for ``CompilationReport.stats``.  A disabled registry
turns every method into an early return so instrumented hot loops pay
one truth test when telemetry is off.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Any, Dict, Optional, Sequence, Tuple

__all__ = ["Histogram", "MetricsRegistry", "NULL_METRICS", "DEFAULT_BUCKETS"]

#: Generic 1-2-5 geometric bucket ladder; wide enough for iteration
#: counts, node expansions and nanosecond durations alike.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500,
    1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
)


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max running stats."""

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.bounds: Tuple[float, ...] = tuple(sorted(float(b) for b in buckets))
        #: one slot per upper bound plus a final +inf overflow slot
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    # -- cross-process transfer ------------------------------------------

    def state(self) -> Dict[str, Any]:
        """A lossless, picklable snapshot (see :meth:`merge_state`)."""
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Fold another histogram's :meth:`state` into this one.

        Used to merge worker-process observations back into the parent
        registry; requires identical bucket bounds.
        """
        if tuple(float(b) for b in state["bounds"]) != self.bounds:
            raise ValueError("cannot merge histograms with different bucket bounds")
        for index, count in enumerate(state["bucket_counts"]):
            self.bucket_counts[index] += count
        self.count += state["count"]
        self.total += state["sum"]
        if state["count"]:
            self.min = min(self.min, state["min"])
            self.max = max(self.max, state["max"])

    def to_dict(self) -> Dict[str, Any]:
        buckets = {f"le_{bound:g}": count
                   for bound, count in zip(self.bounds, self.bucket_counts)}
        buckets["le_inf"] = self.bucket_counts[-1]
        return {
            "count": self.count,
            "sum": self.total,
            # null, not 0.0: an empty histogram has no extrema, and a fake
            # 0.0 min is indistinguishable from a real observed zero
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "buckets": buckets,
        }


class MetricsRegistry:
    """Thread-safe, name-keyed counters, gauges and histograms."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- recording -------------------------------------------------------

    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to the named counter (created at 0)."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge to its latest value."""
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = float(value)

    def observe(
        self, name: str, value: float, buckets: Optional[Sequence[float]] = None
    ) -> None:
        """Record ``value`` into the named histogram.

        ``buckets`` fixes the bucket bounds on first use for that name and
        is ignored afterwards (bounds are immutable once observations
        exist).
        """
        if not self.enabled:
            return
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(
                    buckets if buckets is not None else DEFAULT_BUCKETS
                )
        histogram.observe(value)

    # -- reading ---------------------------------------------------------

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def gauge_value(self, name: str) -> float:
        return self._gauges.get(name, 0.0)

    def histogram(self, name: str) -> Optional[Histogram]:
        return self._histograms.get(name)

    def to_dict(self) -> Dict[str, Any]:
        """Everything in the registry, as plain JSON-ready data."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: h.to_dict() for name, h in self._histograms.items()
                },
            }

    def flat(self) -> Dict[str, float]:
        """Collapse to ``{name: float}`` for ``CompilationReport.stats``.

        Histograms contribute ``<name>.count`` / ``.mean`` / ``.max``.
        """
        with self._lock:
            out: Dict[str, float] = dict(self._counters)
            out.update(self._gauges)
            for name, histogram in self._histograms.items():
                out[f"{name}.count"] = float(histogram.count)
                out[f"{name}.mean"] = histogram.mean
                out[f"{name}.max"] = histogram.max if histogram.count else 0.0
        return out

    # -- cross-process transfer ------------------------------------------

    def state(self) -> Dict[str, Any]:
        """A lossless, picklable snapshot for cross-process merging.

        Unlike :meth:`to_dict` (a rendered export), the snapshot keeps the
        structural histogram data needed by :meth:`merge_state`.
        """
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: h.state() for name, h in self._histograms.items()
                },
            }

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Fold a worker registry's :meth:`state` into this registry.

        Counters add, gauges take the incoming (latest) value, histograms
        merge bucket-wise.  Disabled registries ignore the merge, matching
        every other recording method.
        """
        if not self.enabled:
            return
        with self._lock:
            for name, value in state.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0.0) + value
            for name, value in state.get("gauges", {}).items():
                self._gauges[name] = float(value)
            for name, hist_state in state.get("histograms", {}).items():
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = self._histograms[name] = Histogram(
                        hist_state["bounds"]
                    )
                histogram.merge_state(hist_state)

    def to_prometheus(self, prefix: str = "repro") -> str:
        """Render the registry in the Prometheus text exposition format.

        Metric names are sanitized (dots become underscores) and
        prefixed; counters get the conventional ``_total`` suffix and
        histograms emit *cumulative* ``_bucket{le=...}`` series plus
        ``_sum`` / ``_count``, so the output scrapes directly into a
        Prometheus/OpenMetrics pipeline (or a textfile collector).
        """

        def name_for(raw: str) -> str:
            cleaned = "".join(
                ch if ch.isalnum() or ch == "_" else "_" for ch in raw
            )
            return f"{prefix}_{cleaned}" if prefix else cleaned

        def fmt(value: float) -> str:
            return f"{float(value):g}"

        lines: list = []
        with self._lock:
            for raw in sorted(self._counters):
                name = name_for(raw) + "_total"
                lines.append(f"# TYPE {name} counter")
                lines.append(f"{name} {fmt(self._counters[raw])}")
            for raw in sorted(self._gauges):
                name = name_for(raw)
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {fmt(self._gauges[raw])}")
            for raw in sorted(self._histograms):
                histogram = self._histograms[raw]
                name = name_for(raw)
                lines.append(f"# TYPE {name} histogram")
                cumulative = 0
                for bound, count in zip(
                    histogram.bounds, histogram.bucket_counts
                ):
                    cumulative += count
                    lines.append(
                        f'{name}_bucket{{le="{fmt(bound)}"}} {cumulative}'
                    )
                cumulative += histogram.bucket_counts[-1]
                lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
                lines.append(f"{name}_sum {fmt(histogram.total)}")
                lines.append(f"{name}_count {histogram.count}")
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Drop every recorded value (bucket layouts included)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def export(self, path: str) -> None:
        """Write ``to_dict()`` as JSON to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, default=float)


#: The installed-by-default registry: permanently disabled, records nothing.
NULL_METRICS = MetricsRegistry(enabled=False)

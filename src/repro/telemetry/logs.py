"""The ``repro.*`` logging hierarchy and its structured JSON formatter.

Every module logs through :func:`get_logger`, which parents all loggers
under the ``repro`` root.  Nothing is emitted until
:func:`configure_logging` installs a handler — from the CLI flags
(``-v/--log-level``, ``--log-json``), from
``EPOCConfig.telemetry``, or from the environment::

    REPRO_LOG_LEVEL=DEBUG REPRO_LOG_JSON=1 python -m repro.cli compile ...
"""

from __future__ import annotations

import json
import logging
import os
import sys
from typing import IO, Optional, Union

__all__ = [
    "ROOT_LOGGER",
    "ENV_LOG_LEVEL",
    "ENV_LOG_JSON",
    "JsonLogFormatter",
    "get_logger",
    "configure_logging",
]

ROOT_LOGGER = "repro"
ENV_LOG_LEVEL = "REPRO_LOG_LEVEL"
ENV_LOG_JSON = "REPRO_LOG_JSON"

#: handler name used to find/replace our handler on reconfiguration
_HANDLER_NAME = "repro-telemetry"

#: LogRecord attributes that are plumbing, not user payload
_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime"}


class JsonLogFormatter(logging.Formatter):
    """One JSON object per line: ts, level, logger, message, extras."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                payload[key] = value
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` hierarchy (e.g. ``repro.qoc.grape``).

    Pass the dotted suffix (``"qoc.grape"``) or a full ``repro.*`` name;
    with no argument, the hierarchy root itself.
    """
    if not name:
        return logging.getLogger(ROOT_LOGGER)
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def _env_truthy(value: str) -> bool:
    return value.strip().lower() in ("1", "true", "yes", "on")


def configure_logging(
    level: Optional[Union[int, str]] = None,
    json_output: Optional[bool] = None,
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """Install (or replace) the handler on the ``repro`` root logger.

    Arguments left as ``None`` fall back to the ``REPRO_LOG_LEVEL`` /
    ``REPRO_LOG_JSON`` environment variables, then to ``WARNING`` /
    human-readable text.  Reconfiguration is idempotent: the previous
    telemetry handler is replaced, never stacked.
    """
    if level is None:
        level = os.environ.get(ENV_LOG_LEVEL, "WARNING")
    if json_output is None:
        json_output = _env_truthy(os.environ.get(ENV_LOG_JSON, ""))
    if isinstance(level, str):
        level = level.upper()
        if level not in logging.getLevelNamesMapping():
            # a typo'd REPRO_LOG_LEVEL must not crash library users
            level = "WARNING"

    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.set_name(_HANDLER_NAME)
    if json_output:
        handler.setFormatter(JsonLogFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)-7s %(name)s: %(message)s")
        )

    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(level)
    for existing in list(logger.handlers):
        if existing.get_name() == _HANDLER_NAME:
            logger.removeHandler(existing)
    logger.addHandler(handler)
    logger.propagate = False
    return logger
